module sympack

go 1.22
