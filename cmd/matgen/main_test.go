package main

import "testing"

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range []string{"flan", "bone", "thermal", "laplace2d", "laplace3d", "random"} {
		a, err := build(kind, 1, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("nosuch", 1, 1); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	if _, err := build("flan", 0, 1); err == nil {
		t.Fatal("expected scale error")
	}
}

func TestPrintTable1(t *testing.T) {
	printTable1(1) // smoke: must not panic
}
