// Command matgen generates the synthetic analogues of the paper's test
// matrices (Table 1) and writes them to disk in Matrix Market or
// Rutherford-Boeing format, the two formats the paper's experiments consume
// (AD/AE §A.2.4).
//
// Usage:
//
//	matgen -kind flan -scale 4 -format rb -o flan.rb
//	matgen -kind thermal -scale 6 -format mm -o thermal.mtx
//	matgen -table1 -scale 2            # print Table 1 statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"sympack"
	"sympack/internal/gen"
)

func main() {
	var (
		kind   = flag.String("kind", "flan", "matrix kind: flan|bone|thermal|laplace2d|laplace3d|random")
		scale  = flag.Int("scale", 3, "integer problem scale (≥1)")
		format = flag.String("format", "rb", "output format: rb|mm")
		out    = flag.String("o", "", "output path (default stdout)")
		seed   = flag.Int64("seed", 1, "generator seed")
		table1 = flag.Bool("table1", false, "print the paper's Table 1 for the three analogues and exit")
	)
	flag.Parse()

	if *table1 {
		printTable1(*scale)
		return
	}

	a, err := build(*kind, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matgen:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	switch *format {
	case "rb":
		err = sympack.WriteRutherfordBoeing(w, a, fmt.Sprintf("%s scale %d", *kind, *scale))
	case "mm":
		err = sympack.WriteMatrixMarket(w, a)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "matgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "matgen: %s scale %d: n=%d nnz=%d\n", *kind, *scale, a.N, a.NnzFull())
}

func build(kind string, scale int, seed int64) (*sympack.Matrix, error) {
	if scale < 1 {
		return nil, fmt.Errorf("scale must be ≥ 1, got %d", scale)
	}
	switch kind {
	case "flan":
		s := 2 + scale
		return sympack.Flan3D(s, s, s, seed), nil
	case "bone":
		s := 4 + 2*scale
		return sympack.Bone3D(s, s, s, 0.35, seed), nil
	case "thermal":
		s := 8 + 8*scale
		return sympack.Thermal2D(s, s, scale, seed), nil
	case "laplace2d":
		s := 8 + 8*scale
		return sympack.Laplace2D(s, s), nil
	case "laplace3d":
		s := 3 + scale
		return sympack.Laplace3D(s, s, s), nil
	case "random":
		return sympack.RandomSPD(50*scale, 0.05, seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func printTable1(scale int) {
	fmt.Println("Matrices from the synthetic generator (paper Table 1 analogues)")
	fmt.Printf("%-12s %-45s %10s %14s\n", "Name", "Description", "n", "nnz")
	for _, p := range gen.Table1Problems() {
		m := p.Build(scale)
		st := gen.StatsOf(p.Name, p.Description, m)
		fmt.Printf("%-12s %-45s %10d %14d\n", st.Name, st.Description, st.N, st.Nnz)
	}
}
