// Command sympackd is the factorization daemon: a long-lived HTTP/JSON
// service over the sparse Cholesky engine with admission control, request
// deadlines, a circuit breaker, a byte-budgeted Analysis/Factor cache and
// graceful drain on SIGTERM — the serving counterpart of the one-shot
// spsolve CLI.
//
// Usage:
//
//	sympackd -addr :8157 -ranks 4 -cache-mb 256
//	sympackd -addr :8157 -chaos 1 -solver-chaos 1    # chaos soak
//	curl -s localhost:8157/healthz
//
// Endpoints: POST /v1/analyze, /v1/factor, /v1/solve, /v1/solvebatch,
// /v1/solvecg (iterative CG/PCG with a cached IC(k) preconditioner);
// GET /healthz (real readiness: 503 while draining, breaker-open or
// saturated) and /metrics (Prometheus text). See README "Serving".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sympack/internal/core"
	"sympack/internal/faults"
	"sympack/internal/machine"
	"sympack/internal/metrics"
	"sympack/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8157", "HTTP listen address for the API ('host:0' binds an ephemeral port)")
		inflight = flag.Int("inflight", 0, "max concurrently executing requests (0 = default 4)")
		queue    = flag.Int("queue", 0, "max requests waiting for a slot; arrivals beyond are shed with 429 (0 = 2×inflight)")
		cacheMB  = flag.Int64("cache-mb", 256, "Analysis/Factor cache budget in MiB")
		deadline = flag.Duration("deadline", 0, "default per-request deadline for requests that specify none (0 = unbounded)")

		ranks   = flag.Int("ranks", 1, "simulated UPC++ processes per factorization")
		workers = flag.Int("workers", 0, "executor goroutines per rank (0 = SYMPACK_WORKERS env, else GOMAXPROCS/ranks)")
		gpus    = flag.Int("gpus", 0, "GPUs per node (0 = CPU only)")

		brkN  = flag.Int("breaker-threshold", 3, "consecutive device/stall failures that trip the breaker")
		brkCD = flag.Duration("breaker-cooldown", 5*time.Second, "how long the breaker stays open before a half-open probe")

		chaosSeed   = flag.Int64("chaos", 0, "inject server fault classes (slow clients, canceled requests, cache thrash) with this seed (0 = off)")
		chaosSpec   = flag.String("server-faults", "", "explicit server fault plan, e.g. slowclient=0.1,cancelreq=0.05 (seeded by -chaos, default 1)")
		solverSeed  = flag.Int64("solver-chaos", 0, "forward the default runtime chaos plan with this seed to every factorization (0 = off)")
		solverSpec  = flag.String("solver-faults", "", "explicit runtime fault plan forwarded to factorizations (seeded by -solver-chaos, default 1)")
		drainT      = flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight requests before giving up")
		metricsAddr = flag.String("metrics-addr", "", "also serve /metrics and /healthz on this sidecar host:port (the main mux always serves both)")
		report      = flag.String("report", "", "write a final machine-readable run report on drain ('auto' = BENCH_sympackd_<timestamp>.json)")
	)
	flag.Parse()
	if err := run(*addr, *inflight, *queue, *cacheMB, *deadline, *ranks, *workers, *gpus,
		*brkN, *brkCD, *chaosSeed, *chaosSpec, *solverSeed, *solverSpec, *drainT, *metricsAddr, *report); err != nil {
		fmt.Fprintln(os.Stderr, "sympackd:", err)
		os.Exit(1)
	}
}

// plan resolves a (seed, explicit-spec) flag pair into an optional fault
// plan, defaulting the plan shape by kind when only the seed is given.
func plan(seed int64, spec string, def func(int64) faults.Plan) (*faults.Plan, error) {
	switch {
	case spec != "":
		if seed == 0 {
			seed = 1
		}
		p, err := faults.Parse(spec, seed)
		if err != nil {
			return nil, err
		}
		return &p, nil
	case seed != 0:
		p := def(seed)
		return &p, nil
	default:
		return nil, nil
	}
}

func run(addr string, inflight, queue int, cacheMB int64, deadline time.Duration,
	ranks, workers, gpus, brkN int, brkCD time.Duration,
	chaosSeed int64, chaosSpec string, solverSeed int64, solverSpec string,
	drainT time.Duration, metricsAddr, report string) error {

	chaos, err := plan(chaosSeed, chaosSpec, faults.ServerChaos)
	if err != nil {
		return err
	}
	solverChaos, err := plan(solverSeed, solverSpec, faults.DefaultChaos)
	if err != nil {
		return err
	}

	s := server.New(server.Config{
		InflightCap:      inflight,
		QueueCap:         queue,
		CacheBudget:      cacheMB << 20,
		DefaultDeadline:  deadline,
		BreakerThreshold: brkN,
		BreakerCooldown:  brkCD,
		Solver:           core.Options{Ranks: ranks, Workers: workers, GPUsPerNode: gpus},
		Chaos:            chaos,
		SolverChaos:      solverChaos,
	})
	if err := s.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sympackd: serving on http://%s (ranks=%d gpus=%d inflight-cap=%d)\n",
		s.Addr(), ranks, gpus, inflight)
	if chaos != nil {
		fmt.Fprintf(os.Stderr, "sympackd: server chaos active: %s\n", chaos.String())
	}
	if solverChaos != nil {
		fmt.Fprintf(os.Stderr, "sympackd: solver chaos active: %s\n", solverChaos.String())
	}

	var sidecar *metrics.Server
	if metricsAddr != "" {
		sidecar, err = metrics.Serve(metricsAddr, s.Registry().Snapshot, func() (any, bool) {
			h, ok := s.HealthCheck()
			return h, ok
		})
		if err != nil {
			return fmt.Errorf("metrics sidecar: %w", err)
		}
		fmt.Fprintf(os.Stderr, "sympackd: metrics sidecar at http://%s/metrics\n", sidecar.Addr())
	}

	// Drain on SIGTERM/SIGINT: stop admitting, finish in-flight requests,
	// flush the final run report, exit 0.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigC
	fmt.Fprintf(os.Stderr, "sympackd: %v received, draining (timeout %v)\n", sig, drainT)
	ctx, cancel := context.WithTimeout(context.Background(), drainT)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if sidecar != nil {
		_ = sidecar.Close()
	}
	if report != "" {
		if err := writeReport(report, s, ranks, workers, gpus); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "sympackd: drained cleanly")
	return nil
}

// writeReport flushes the server's full metric registry as the standard
// run-report document, so a daemon's lifetime is greppable alongside the
// batch benchmarks.
func writeReport(path string, s *server.Server, ranks, workers, gpus int) error {
	now := machine.WallNow()
	if path == "auto" {
		path = metrics.ReportFilename("sympackd", now)
	}
	rep := &metrics.RunReport{
		Command:   "sympackd",
		Timestamp: now.UTC().Format(time.RFC3339),
		Ranks:     ranks,
		Workers:   workers,
		GPUs:      gpus,
		Metrics:   s.Registry().Snapshot().Series,
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := metrics.WriteRunReport(fh, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sympackd: report written to %s\n", path)
	return nil
}
