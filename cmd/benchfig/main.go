// Command benchfig regenerates every table and figure of the paper's
// evaluation (§5) from the reproduction's models and solvers:
//
//	table1 — characteristics of the three test matrices (Table 1)
//	5      — RMA get flood bandwidth, native vs reference memory kinds vs
//	         MPI (Fig. 5)
//	6      — CPU vs GPU BLAS/LAPACK call counts, rank 0 (Fig. 6)
//	7/8    — factorization / solve strong scaling, Flan analogue (Figs. 7–8)
//	9/10   — factorization / solve strong scaling, bone analogue (Figs. 9–10)
//	11/12  — factorization / solve strong scaling, thermal analogue
//	         (Figs. 11–12)
//	variants — factorization strong scaling of the three task formulations
//	         (fan-out / fan-in / fan-both) on the Flan analogue at scales
//	         1–2 (DESIGN.md §13)
//	iter   — iterative vs direct time-to-solution and CG/PCG iteration
//	         counts on the thermal analogue at scales 1–2 (DESIGN.md §14)
//
// Usage:
//
//	benchfig -fig all -scale 2
//	benchfig -fig 7 -scale 3
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sympack"
	"sympack/internal/des"
	"sympack/internal/gen"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: table1|5|6|7|8|9|10|11|12|variants|iter|all")
		scale = flag.Int("scale", 2, "problem scale for the matrix generators")
	)
	flag.StringVar(&csvDir, "csv", "", "also write each figure's series as CSV files into this directory")
	flag.Parse()
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
	}

	run := func(name string, f func(int) error) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Printf("==================== %s ====================\n", header(name))
		if err := f(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", table1)
	run("5", fig5)
	run("6", fig6)
	run("7", scaling("Flan_1565 analogue", buildFlan, false))
	run("8", scaling("Flan_1565 analogue", buildFlan, true))
	run("9", scaling("boneS10 analogue", buildBone, false))
	run("10", scaling("boneS10 analogue", buildBone, true))
	run("11", scaling("thermal2 analogue", buildThermal, false))
	run("12", scaling("thermal2 analogue", buildThermal, true))
	run("variants", variantsFig)
	run("iter", iterFig)

	if len(figures) > 0 {
		path := filepath.Join(csvDir, "BENCH_scaling.json")
		if err := writeScalingReport(path, *scale, figures); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		fmt.Printf("scaling report written to %s\n", path)
	}
}

// figures accumulates one entry per strong-scaling run for the
// BENCH_scaling.json run report (Figs. 7–12).
var figures []sympack.MetricsFigure

// writeScalingReport dumps the collected strong-scaling curves in the
// shared run-report schema so benchmark trajectories stay greppable
// across revisions.
func writeScalingReport(path string, scale int, figs []sympack.MetricsFigure) error {
	rep := &sympack.RunReport{
		Command:   "benchfig",
		Timestamp: machine.WallNow().UTC().Format(time.RFC3339),
		Matrix:    fmt.Sprintf("generated analogues, scale %d", scale),
		Figures:   figs,
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return sympack.WriteRunReport(fh, rep)
}

func header(name string) string {
	switch name {
	case "table1":
		return "Table 1: test matrices"
	case "5":
		return "Figure 5: RMA get flood bandwidth (memory kinds)"
	case "6":
		return "Figure 6: BLAS/LAPACK calls on CPU vs GPU"
	case "7":
		return "Figure 7: factorization strong scaling, Flan analogue"
	case "8":
		return "Figure 8: solve strong scaling, Flan analogue"
	case "9":
		return "Figure 9: factorization strong scaling, bone analogue"
	case "10":
		return "Figure 10: solve strong scaling, bone analogue"
	case "11":
		return "Figure 11: factorization strong scaling, thermal analogue"
	case "12":
		return "Figure 12: solve strong scaling, thermal analogue"
	case "variants":
		return "Scheduling variants: formulation strong scaling, Flan analogue"
	case "iter":
		return "Iterative solves: CG/PCG vs direct, thermal analogue"
	}
	return name
}

// csvDir, when set, receives one CSV per figure for plotting.
var csvDir string

// writeCSV writes rows (first row = header) to <csvDir>/<name>.csv.
func writeCSV(name string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	fh, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	defer w.Flush()
	return w.WriteAll(rows)
}

func table1(scale int) error {
	fmt.Printf("%-12s %-45s %10s %14s\n", "Name", "Description", "n", "nnz")
	for _, p := range gen.Table1Problems() {
		m := p.Build(scale)
		st := gen.StatsOf(p.Name, p.Description, m)
		fmt.Printf("%-12s %-45s %10d %14d\n", st.Name, st.Description, st.N, st.Nnz)
	}
	return nil
}

// fig5 evaluates the flood-bandwidth of the three transfer paths at the
// paper's payload sizes (window of 64 in-flight gets, as in the AD/AE).
func fig5(int) error {
	native := simnet.New(machine.Perlmutter())
	const window = 64
	fmt.Printf("%-10s %16s %16s %16s %10s %10s\n",
		"size", "native (MiB/s)", "reference", "MPI", "nat/ref", "nat/MPI")
	for _, bytes := range []int64{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		nat := native.Bandwidth(simnet.PathGDR, bytes, window)
		ref := native.Bandwidth(simnet.PathStaged, bytes, window)
		mpi := native.Bandwidth(simnet.PathMPIGet, bytes, window)
		fmt.Printf("%-10s %16.1f %16.1f %16.1f %10.2f %10.2f\n",
			sizeName(bytes), nat/(1<<20), ref/(1<<20), mpi/(1<<20), nat/ref, nat/mpi)
	}
	fmt.Println("(limiting wire speed: 23 GB/s ≈ 21934 MiB/s)")
	rows := [][]string{{"bytes", "native_mibs", "reference_mibs", "mpi_mibs"}}
	for _, bytes := range []int64{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		rows = append(rows, []string{
			fmt.Sprint(bytes),
			fmt.Sprintf("%.1f", native.Bandwidth(simnet.PathGDR, bytes, window)/(1<<20)),
			fmt.Sprintf("%.1f", native.Bandwidth(simnet.PathStaged, bytes, window)/(1<<20)),
			fmt.Sprintf("%.1f", native.Bandwidth(simnet.PathMPIGet, bytes, window)/(1<<20)),
		})
	}
	return writeCSV("fig5", rows)
}

func sizeName(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dkiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fig6 runs a real factorization + solve of the Flan analogue with 4 ranks
// and 4 GPUs and prints rank 0's per-operation CPU/GPU call counts.
func fig6(scale int) error {
	a := buildFlan(scale)
	f, err := sympack.Factorize(a, sympack.Options{
		Ranks: 4, RanksPerNode: 4, GPUsPerNode: 4,
	})
	if err != nil {
		return err
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if _, err := f.SolveDistributed(b); err != nil {
		return err
	}
	fmt.Printf("matrix: Flan analogue n=%d, 4 UPC++ processes, 4 GPUs; rank 0 shown\n", a.N)
	fmt.Printf("%-8s %12s %12s\n", "op", "CPU", "GPU")
	r0 := f.Stats.PerRank[0]
	for op := 0; op < machine.NumOps; op++ {
		fmt.Printf("%-8s %12d %12d\n", machine.Op(op), r0.CPU[op], r0.GPU[op])
	}
	return nil
}

func buildFlan(scale int) *matrix.SparseSym {
	s := 4 + 3*scale
	return gen.Flan3D(s, s, s, 1565)
}

func buildBone(scale int) *matrix.SparseSym {
	s := 8 + 6*scale
	return gen.Bone3D(s, s, s, 0.35, 10)
}

func buildThermal(scale int) *matrix.SparseSym {
	s := 64 + 96*scale
	return gen.Thermal2D(s, s, s/16, 2)
}

// scaling returns a figure runner for one matrix: strong scaling of
// factorization or solve for both solvers over 1–64 nodes, best
// ranks-per-node per point (the paper's methodology).
func scaling(name string, build func(int) *matrix.SparseSym, solve bool) func(int) error {
	return func(scale int) error {
		a := build(scale)
		st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
		if err != nil {
			return err
		}
		tg := symbolic.BuildTaskGraph(st)
		fmt.Printf("matrix: %s  n=%d nnz=%d  supernodes=%d  factor flops=%.3g\n",
			name, a.N, a.NnzFull(), st.NumSupernodes(), float64(st.FactorFlop))
		phase := "factorization"
		if solve {
			phase = "solve"
		}
		fmt.Printf("%-6s %18s %18s %9s\n", "nodes", "symPACK "+phase, "PaStiX-like", "speedup")
		spPts, err := des.StrongScaling(st, tg, des.DefaultSweep(des.SymPACK))
		if err != nil {
			return err
		}
		blPts, err := des.StrongScaling(st, tg, des.DefaultSweep(des.Baseline))
		if err != nil {
			return err
		}
		tag := "factor"
		if solve {
			tag = "solve"
		}
		fig := sympack.MetricsFigure{
			Name:   strings.ReplaceAll(name, " ", "_") + "_" + tag,
			Matrix: name,
			Phase:  tag,
		}
		rows := [][]string{{"nodes", "sympack_seconds", "pastix_seconds"}}
		for i := range spPts {
			spT, blT := spPts[i].FactorSeconds, blPts[i].FactorSeconds
			if solve {
				spT, blT = spPts[i].SolveSeconds, blPts[i].SolveSeconds
			}
			fmt.Printf("%-6d %15.4gs %15.4gs %8.1fx\n", spPts[i].Nodes, spT, blT, blT/spT)
			rows = append(rows, []string{
				fmt.Sprint(spPts[i].Nodes),
				fmt.Sprintf("%.6g", spT),
				fmt.Sprintf("%.6g", blT),
			})
			fig.Points = append(fig.Points, sympack.MetricsPoint{
				Nodes: spPts[i].Nodes, Seconds: spT, Baseline: blT,
			})
		}
		figures = append(figures, fig)
		return writeCSV(fig.Name, rows)
	}
}

// iterFig compares the iterative-solve subsystem against the direct solver
// on the thermal analogue — the very-sparse regime where incomplete
// factorization pays — at scales 1 and 2 (the -scale flag is ignored so the
// figure stays comparable across revisions). For each scale it times direct
// factor+solve and then CG, PCG+IC(0) and PCG+IC(1) to rtol 1e-8, printing
// iteration counts, matvecs and wall time-to-solution; one curve per solver
// (Nodes = scale, Baseline = direct wall at that scale) lands in
// BENCH_scaling.json. Wall times vary run to run; iteration counts are
// bit-deterministic.
func iterFig(int) error {
	type curve struct {
		name string
		cg   sympack.CGOptions
	}
	solvers := []curve{
		{name: "cg", cg: sympack.CGOptions{Rtol: 1e-8}},
		{name: "pcg-ic0", cg: sympack.CGOptions{Rtol: 1e-8, Precond: sympack.PrecondIC, ICLevel: 0}},
		{name: "pcg-ic1", cg: sympack.CGOptions{Rtol: 1e-8, Precond: sympack.PrecondIC, ICLevel: 1}},
	}
	figs := make([]sympack.MetricsFigure, len(solvers))
	for i, s := range solvers {
		figs[i] = sympack.MetricsFigure{
			Name:   "iter_thermal_" + s.name,
			Matrix: "thermal2 analogue",
			Phase:  "solve",
		}
	}
	directFig := sympack.MetricsFigure{
		Name: "iter_thermal_direct", Matrix: "thermal2 analogue", Phase: "solve",
	}
	rows := [][]string{{"scale", "solver", "iterations", "matvecs", "wall_seconds", "residual"}}
	for _, scale := range []int{1, 2} {
		a := buildThermal(scale)
		// A seeded random RHS: the all-ones vector is nearly an eigenvector
		// of the thermal problem and converges in one CG step, which says
		// nothing about the solvers.
		rng := rand.New(rand.NewSource(int64(scale)))
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fmt.Printf("matrix: thermal analogue scale %d  n=%d nnz=%d\n", scale, a.N, a.NnzFull())
		fmt.Printf("%-10s %12s %10s %14s %12s\n", "solver", "iterations", "matvecs", "wall", "residual")

		t0 := machine.WallNow()
		f, err := sympack.Factorize(a, sympack.Options{})
		if err != nil {
			return err
		}
		x, err := f.Solve(b)
		if err != nil {
			return err
		}
		directWall := machine.WallSince(t0).Seconds()
		directRes := sympack.ResidualNorm(a, x, b)
		fmt.Printf("%-10s %12s %10s %13.4gs %12.3g\n", "direct", "-", "-", directWall, directRes)
		rows = append(rows, []string{fmt.Sprint(scale), "direct", "0", "0",
			fmt.Sprintf("%.6g", directWall), fmt.Sprintf("%.3g", directRes)})
		directFig.Points = append(directFig.Points, sympack.MetricsPoint{
			Nodes: scale, Seconds: directWall, Baseline: directWall,
		})

		for i, s := range solvers {
			t0 := machine.WallNow()
			res, err := sympack.SolveCG(a, b, sympack.Options{}, s.cg)
			if err != nil {
				return err
			}
			wall := machine.WallSince(t0).Seconds()
			rel := sympack.ResidualNorm(a, res.X, b)
			fmt.Printf("%-10s %12d %10d %13.4gs %12.3g\n", s.name, res.Iterations, res.MatVecs, wall, rel)
			rows = append(rows, []string{fmt.Sprint(scale), s.name,
				fmt.Sprint(res.Iterations), fmt.Sprint(res.MatVecs),
				fmt.Sprintf("%.6g", wall), fmt.Sprintf("%.3g", rel)})
			figs[i].Points = append(figs[i].Points, sympack.MetricsPoint{
				Nodes: scale, Seconds: wall, Baseline: directWall, Iterations: res.Iterations,
			})
		}
		fmt.Println()
	}
	figures = append(figures, directFig)
	figures = append(figures, figs...)
	return writeCSV("iter", rows)
}

// variantsFig races the three task formulations through the performance
// model on the Flan analogue: one factorization strong-scaling curve per
// formulation at scales 1 and 2 (the -scale flag is ignored so the figure
// stays comparable across revisions), appended to BENCH_scaling.json. The
// conformance battery (internal/core/conformance_test.go) pins all three
// to identical factor bits, so these curves differ in schedule and traffic
// only; fan-out is the baseline column of each curve.
func variantsFig(int) error {
	forms := symbolic.Formulations()
	for _, scale := range []int{1, 2} {
		a := buildFlan(scale)
		st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
		if err != nil {
			return err
		}
		tg := symbolic.BuildTaskGraph(st)
		fmt.Printf("matrix: Flan analogue scale %d  n=%d nnz=%d  supernodes=%d\n",
			scale, a.N, a.NnzFull(), st.NumSupernodes())
		curves := make([][]des.ScalingPoint, len(forms))
		for fi, form := range forms {
			sw := des.DefaultSweep(des.SymPACK)
			sw.Formulation = form
			if curves[fi], err = des.StrongScaling(st, tg, sw); err != nil {
				return err
			}
		}
		ref := curves[0] // fan-out
		fmt.Printf("%-6s %14s %14s %14s\n", "nodes", "fan-out", "fan-in", "fan-both")
		rows := [][]string{{"nodes", "fanout_seconds", "fanin_seconds", "fanboth_seconds"}}
		for i := range ref {
			fmt.Printf("%-6d %13.4gs %13.4gs %13.4gs\n", ref[i].Nodes,
				curves[0][i].FactorSeconds, curves[1][i].FactorSeconds, curves[2][i].FactorSeconds)
			rows = append(rows, []string{
				fmt.Sprint(ref[i].Nodes),
				fmt.Sprintf("%.6g", curves[0][i].FactorSeconds),
				fmt.Sprintf("%.6g", curves[1][i].FactorSeconds),
				fmt.Sprintf("%.6g", curves[2][i].FactorSeconds),
			})
		}
		for fi, form := range forms {
			fig := sympack.MetricsFigure{
				Name:   fmt.Sprintf("formulation_%s_scale%d_factor", form, scale),
				Matrix: fmt.Sprintf("Flan_1565 analogue (scale %d)", scale),
				Phase:  "factor",
			}
			for i := range curves[fi] {
				fig.Points = append(fig.Points, sympack.MetricsPoint{
					Nodes:    curves[fi][i].Nodes,
					Seconds:  curves[fi][i].FactorSeconds,
					Baseline: ref[i].FactorSeconds,
				})
			}
			figures = append(figures, fig)
		}
		if err := writeCSV(fmt.Sprintf("variants_scale%d", scale), rows); err != nil {
			return err
		}
	}
	return nil
}
