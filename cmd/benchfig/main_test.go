package main

import "testing"

func TestHeaders(t *testing.T) {
	for _, name := range []string{"table1", "5", "6", "7", "8", "9", "10", "11", "12"} {
		if h := header(name); h == name || h == "" {
			t.Fatalf("missing header for %s", name)
		}
	}
	if header("zz") != "zz" {
		t.Fatal("unknown name should pass through")
	}
}

func TestSizeName(t *testing.T) {
	cases := map[int64]string{16: "16B", 4 << 10: "4kiB", 1 << 20: "1MiB"}
	for b, want := range cases {
		if got := sizeName(b); got != want {
			t.Fatalf("sizeName(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestFigureRunnersSmallScale(t *testing.T) {
	if err := table1(1); err != nil {
		t.Fatal(err)
	}
	if err := fig5(1); err != nil {
		t.Fatal(err)
	}
	if err := fig6(1); err != nil {
		t.Fatal(err)
	}
}

func TestScalingRunnerSmallScale(t *testing.T) {
	// One factor figure on the smallest matrix keeps this quick while
	// driving the full sweep code path.
	if err := scaling("bone test", buildBone, false)(0); err != nil {
		t.Fatal(err)
	}
}

func TestBuilders(t *testing.T) {
	for name, m := range map[string]interface{ Validate() error }{
		"flan":    buildFlan(1),
		"bone":    buildBone(1),
		"thermal": buildThermal(1),
	} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
