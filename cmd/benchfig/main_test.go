package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sympack"
)

func TestHeaders(t *testing.T) {
	for _, name := range []string{"table1", "5", "6", "7", "8", "9", "10", "11", "12", "variants"} {
		if h := header(name); h == name || h == "" {
			t.Fatalf("missing header for %s", name)
		}
	}
	if header("zz") != "zz" {
		t.Fatal("unknown name should pass through")
	}
}

func TestSizeName(t *testing.T) {
	cases := map[int64]string{16: "16B", 4 << 10: "4kiB", 1 << 20: "1MiB"}
	for b, want := range cases {
		if got := sizeName(b); got != want {
			t.Fatalf("sizeName(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestFigureRunnersSmallScale(t *testing.T) {
	if err := table1(1); err != nil {
		t.Fatal(err)
	}
	if err := fig5(1); err != nil {
		t.Fatal(err)
	}
	if err := fig6(1); err != nil {
		t.Fatal(err)
	}
}

func TestScalingRunnerSmallScale(t *testing.T) {
	// One factor figure on the smallest matrix keeps this quick while
	// driving the full sweep code path.
	figures = nil
	if err := scaling("bone test", buildBone, false)(0); err != nil {
		t.Fatal(err)
	}
	if len(figures) != 1 || len(figures[0].Points) == 0 {
		t.Fatalf("scaling runner collected %d figures", len(figures))
	}
}

// TestScalingReportRoundTrip is the ISSUE acceptance check: the
// BENCH_scaling.json document written by the scaling runners must
// round-trip through encoding/json with its curves intact.
func TestScalingReportRoundTrip(t *testing.T) {
	figures = nil
	if err := scaling("bone test", buildBone, false)(0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := writeScalingReport(path, 0, figures); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep sympack.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema == "" || rep.Command != "benchfig" {
		t.Fatalf("schema %q command %q", rep.Schema, rep.Command)
	}
	if len(rep.Figures) != len(figures) {
		t.Fatalf("%d figures, want %d", len(rep.Figures), len(figures))
	}
	for i := range rep.Figures {
		if rep.Figures[i].Name != figures[i].Name || len(rep.Figures[i].Points) != len(figures[i].Points) {
			t.Fatalf("figure %d did not survive the round trip", i)
		}
		for j, p := range rep.Figures[i].Points {
			if p != figures[i].Points[j] {
				t.Fatalf("figure %d point %d: %+v != %+v", i, j, p, figures[i].Points[j])
			}
		}
	}
}

// TestVariantsRunner drives the formulation-comparison figure: two scales ×
// three formulations must yield six curves, each point carrying fan-out's
// time in the baseline column (so the fan-out curve has Seconds ==
// Baseline everywhere).
func TestVariantsRunner(t *testing.T) {
	figures = nil
	if err := variantsFig(0); err != nil {
		t.Fatal(err)
	}
	if len(figures) != 6 {
		t.Fatalf("variants collected %d figures, want 6", len(figures))
	}
	for _, fig := range figures {
		if len(fig.Points) == 0 {
			t.Fatalf("figure %s has no points", fig.Name)
		}
		for _, p := range fig.Points {
			if p.Seconds <= 0 || p.Baseline <= 0 {
				t.Fatalf("figure %s: non-positive point %+v", fig.Name, p)
			}
			if strings.Contains(fig.Name, "fan-out") && p.Seconds != p.Baseline {
				t.Fatalf("figure %s: fan-out must be its own baseline, got %+v", fig.Name, p)
			}
		}
	}
}

func TestBuilders(t *testing.T) {
	for name, m := range map[string]interface{ Validate() error }{
		"flan":    buildFlan(1),
		"bone":    buildBone(1),
		"thermal": buildThermal(1),
	} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
