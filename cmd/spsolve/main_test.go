package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sympack"
)

// directIter is the default solver configuration: the direct
// factorization in double precision.
func directIter() iterConfig {
	return iterConfig{solver: "direct", precision: sympack.PrecFP64, icLevel: 1, rtol: 1e-8}
}

func writeTestMatrix(t *testing.T, dir string) (string, *sympack.Matrix) {
	t.Helper()
	a := sympack.Laplace2D(9, 9)
	path := filepath.Join(dir, "a.mtx")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := sympack.WriteMatrixMarket(fh, a); err != nil {
		t.Fatal(err)
	}
	return path, a
}

func readVec(t *testing.T, path string, n int) []float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, line := range strings.Fields(string(data)) {
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	if len(out) != n {
		t.Fatalf("vector length %d, want %d", len(out), n)
	}
	return out
}

func TestSolveEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mat, a := writeTestMatrix(t, dir)
	out := filepath.Join(dir, "x.txt")
	if err := run(mat, "", out, 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, "", "", "", nil, "", ""); err != nil {
		t.Fatal(err)
	}
	x := readVec(t, out, a.N)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if r := sympack.ResidualNorm(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

// TestSolveVariantEndToEnd drives the CLI path under a non-default
// scheduling variant (-formulation fan-both -mapping subtree).
func TestSolveVariantEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mat, a := writeTestMatrix(t, dir)
	out := filepath.Join(dir, "x.txt")
	if err := run(mat, "", out, 2, 0, 0, "SCOTCH", sympack.FanBoth, sympack.MapSubtree, directIter(), false, "", "", "", nil, "", ""); err != nil {
		t.Fatal(err)
	}
	x := readVec(t, out, a.N)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if r := sympack.ResidualNorm(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

// TestSolveIterativeEndToEnd drives the CLI's CG and PCG paths: both
// must produce a solution at the direct path's residual bar.
func TestSolveIterativeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mat, a := writeTestMatrix(t, dir)
	for _, solver := range []string{"cg", "pcg"} {
		out := filepath.Join(dir, "x_"+solver+".txt")
		iter := directIter()
		iter.solver = solver
		iter.rtol = 1e-10
		if err := run(mat, "", out, 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, iter, false, "", "", "", nil, "", ""); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		x := readVec(t, out, a.N)
		b := make([]float64, a.N)
		for i := range b {
			b[i] = 1
		}
		if r := sympack.ResidualNorm(a, x, b); r > 1e-8 {
			t.Fatalf("%s residual %g", solver, r)
		}
	}
}

func TestFactorCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mat, a := writeTestMatrix(t, dir)
	fac := filepath.Join(dir, "a.spkf")
	// Factor-only invocation.
	if err := run(mat, "", "", 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, fac, "", "", nil, "", ""); err != nil {
		t.Fatal(err)
	}
	// Solve from the cached factor with an explicit rhs.
	rhs := filepath.Join(dir, "b.txt")
	var sb strings.Builder
	for i := 0; i < a.N; i++ {
		sb.WriteString("1.5\n")
	}
	if err := os.WriteFile(rhs, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "x.txt")
	if err := run("", rhs, out, 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, "", fac, "", nil, "", ""); err != nil {
		t.Fatal(err)
	}
	x := readVec(t, out, a.N)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1.5
	}
	if r := sympack.ResidualNorm(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestRefineAndSelinv(t *testing.T) {
	dir := t.TempDir()
	mat, a := writeTestMatrix(t, dir)
	out := filepath.Join(dir, "x.txt")
	diag := filepath.Join(dir, "d.txt")
	if err := run(mat, "", out, 2, 0, 0, "AMD", sympack.FanOut, sympack.Map2DCyclic, directIter(), true, "", "", diag, nil, "", ""); err != nil {
		t.Fatal(err)
	}
	d := readVec(t, diag, a.N)
	for i, v := range d {
		if v <= 0 {
			t.Fatalf("diag(A⁻¹)[%d] = %g, want positive", i, v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, "", "", "", nil, "", ""); err == nil {
		t.Fatal("expected error without inputs")
	}
	if err := run("/nonexistent.mtx", "", "", 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, "", "", "", nil, "", ""); err == nil {
		t.Fatal("expected file error")
	}
	dir := t.TempDir()
	mat, _ := writeTestMatrix(t, dir)
	if err := run(mat, "", "", 2, 0, 0, "BOGUS", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, "", "", "", nil, "", ""); err == nil {
		t.Fatal("expected ordering error")
	}
	// Refinement without the matrix must be refused.
	fac := filepath.Join(dir, "a.spkf")
	if err := run(mat, "", "", 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), false, fac, "", "", nil, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", filepath.Join(dir, "x.txt"), 2, 0, 0, "SCOTCH", sympack.FanOut, sympack.Map2DCyclic, directIter(), true, "", fac, "", nil, "", ""); err == nil {
		t.Fatal("expected refine-without-matrix error")
	}
}
