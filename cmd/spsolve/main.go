// Command spsolve is the downstream-user tool: it solves A·x = b for a
// sparse SPD matrix from disk, with optional iterative refinement, factor
// caching (save/load), and selected inversion.
//
// Usage:
//
//	spsolve -A system.mtx -b rhs.txt -o x.txt -ranks 8 -refine
//	spsolve -A system.rb -save-factor system.spkf        # factor once
//	spsolve -load-factor system.spkf -b rhs.txt -o x.txt # reuse it
//	spsolve -A system.mtx -selinv-diag diag.txt          # diag(A⁻¹)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sympack"
)

func main() {
	var (
		matPath = flag.String("A", "", "matrix file (.mtx or .rb)")
		rhsPath = flag.String("b", "", "right-hand side file (one value per line; default: all ones)")
		outPath = flag.String("o", "", "solution output file (default stdout)")
		ranks   = flag.Int("ranks", 4, "simulated UPC++ processes")
		workers = flag.Int("workers", 0, "executor goroutines per rank (0 = SYMPACK_WORKERS env, else GOMAXPROCS/ranks)")
		gpus    = flag.Int("gpus", 0, "GPUs per node (0 = CPU only)")
		ordName = flag.String("ordering", "SCOTCH", "fill-reducing ordering")
	formNm  = flag.String("formulation", "fan-out", "task formulation: fan-out|fan-in|fan-both")
	mapNm   = flag.String("mapping", "2d-cyclic", "block→process mapping: 2d-cyclic|1d-cols|subtree")
		solverNm = flag.String("solver", "direct", "solve strategy: direct|cg|pcg")
		precNm   = flag.String("precision", "fp64", "factorization precision: fp64|fp32 (fp32 pairs with refinement)")
		icLevel  = flag.Int("ic-level", 1, "IC(k) fill level for -solver=pcg")
		rtol     = flag.Float64("rtol", 1e-8, "relative tolerance for -solver=cg|pcg")
		refine  = flag.Bool("refine", false, "apply iterative refinement")
		saveFac = flag.String("save-factor", "", "write the factor to this file and exit if no rhs given")
		loadFac = flag.String("load-factor", "", "load a factor instead of factoring")
		selDiag = flag.String("selinv-diag", "", "write diag(A⁻¹) to this file (selected inversion)")
		chaos   = flag.Int64("chaos", 0, "run under the default chaos fault plan with this seed (0 = off)")
		faultsF = flag.String("faults", "", "explicit fault plan, e.g. drop=0.05,delay=0.1 (seeded by -chaos, default 1)")
		metAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this host:port while factoring (use :0 for an ephemeral port)")
		report  = flag.String("report", "", "write a machine-readable run report to this JSON file ('auto' = BENCH_spsolve_<timestamp>.json)")
	)
	flag.Parse()
	plan, err := faultPlan(*faultsF, *chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsolve:", err)
		os.Exit(1)
	}
	form, err := sympack.ParseFormulation(*formNm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsolve:", err)
		os.Exit(1)
	}
	bmap, err := sympack.ParseMapping(*mapNm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsolve:", err)
		os.Exit(1)
	}
	prec, err := sympack.ParsePrecision(*precNm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsolve:", err)
		os.Exit(1)
	}
	switch *solverNm {
	case "direct", "cg", "pcg":
	default:
		fmt.Fprintf(os.Stderr, "spsolve: unknown solver %q (want direct, cg or pcg)\n", *solverNm)
		os.Exit(1)
	}
	iter := iterConfig{solver: *solverNm, precision: prec, icLevel: *icLevel, rtol: *rtol}
	if err := run(*matPath, *rhsPath, *outPath, *ranks, *workers, *gpus, *ordName, form, bmap, iter, *refine, *saveFac, *loadFac, *selDiag, plan, *metAddr, *report); err != nil {
		fmt.Fprintln(os.Stderr, "spsolve:", err)
		os.Exit(1)
	}
}

// iterConfig bundles the iterative-solve flags (-solver, -precision,
// -ic-level, -rtol).
type iterConfig struct {
	solver    string
	precision sympack.Precision
	icLevel   int
	rtol      float64
}

// faultPlan resolves the -chaos / -faults flags into an optional plan.
func faultPlan(spec string, chaos int64) (*sympack.FaultPlan, error) {
	switch {
	case spec != "":
		s := chaos
		if s == 0 {
			s = 1
		}
		p, err := sympack.ParseFaultPlan(spec, s)
		if err != nil {
			return nil, err
		}
		return &p, nil
	case chaos != 0:
		p := sympack.DefaultChaosPlan(chaos)
		return &p, nil
	default:
		return nil, nil
	}
}

func run(matPath, rhsPath, outPath string, ranks, workers, gpus int, ordName string, form sympack.Formulation, bmap sympack.MappingKind, iter iterConfig, refine bool, saveFac, loadFac, selDiag string, plan *sympack.FaultPlan, metAddr, report string) error {
	var (
		a   *sympack.Matrix
		f   *sympack.Factor
		err error
	)
	if iter.solver != "direct" {
		// Iterative path: no complete factorization at all — CG (optionally
		// through the engine-built IC(k) preconditioner) solves directly.
		if matPath == "" {
			return fmt.Errorf("-solver=%s needs the matrix (-A)", iter.solver)
		}
		if a, err = readMatrix(matPath); err != nil {
			return err
		}
		ord, err := parseOrdering(ordName)
		if err != nil {
			return err
		}
		b := make([]float64, a.N)
		if rhsPath != "" {
			if err := readVector(rhsPath, b); err != nil {
				return err
			}
		} else {
			for i := range b {
				b[i] = 1
			}
		}
		cg := sympack.CGOptions{Rtol: iter.rtol}
		if iter.solver == "pcg" {
			cg.Precond = sympack.PrecondIC
			cg.ICLevel = iter.icLevel
		}
		res, err := sympack.SolveCG(a, b, sympack.Options{
			Ranks: ranks, Workers: workers, GPUsPerNode: gpus, Ordering: ord,
			Formulation: form, Mapping: bmap, Precision: iter.precision, Faults: plan,
		}, cg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsolve: %s converged in %d iterations (%d matvecs), residual %.3g\n",
			iter.solver, res.Iterations, res.MatVecs, res.Residual)
		return writeVector(outPath, res.X)
	}
	switch {
	case loadFac != "":
		fh, err := os.Open(loadFac)
		if err != nil {
			return err
		}
		f, err = sympack.LoadFactor(fh)
		fh.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsolve: loaded factor: n=%d, %d supernodes\n",
			f.St.N, f.St.NumSupernodes())
		if matPath != "" {
			if a, err = readMatrix(matPath); err != nil {
				return err
			}
		}
	case matPath != "":
		if a, err = readMatrix(matPath); err != nil {
			return err
		}
		ord, err := parseOrdering(ordName)
		if err != nil {
			return err
		}
		f, err = sympack.Factorize(a, sympack.Options{
			Ranks: ranks, Workers: workers, GPUsPerNode: gpus, Ordering: ord, Faults: plan,
			Formulation: form, Mapping: bmap, Precision: iter.precision,
			MetricsAddr: metAddr,
		})
		if err != nil {
			return err
		}
		defer f.CloseMetrics()
		if addr := f.MetricsAddr(); addr != "" {
			fmt.Fprintf(os.Stderr, "spsolve: metrics at http://%s/metrics\n", addr)
		}
		fmt.Fprintf(os.Stderr, "spsolve: factored n=%d nnz=%d in %v (nnz(L)=%d)\n",
			a.N, a.NnzFull(), f.Stats.Wall, f.Stats.NnzL)
		if f.Stats.Faults.Any() {
			fmt.Fprintf(os.Stderr, "spsolve: faults injected/recovered: %s\n", f.Stats.Faults)
		}
		if report != "" {
			if err := writeReport(report, matPath, a, f, ranks, gpus); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("one of -A or -load-factor is required")
	}

	if saveFac != "" {
		fh, err := os.Create(saveFac)
		if err != nil {
			return err
		}
		if err := f.Save(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsolve: factor saved to %s\n", saveFac)
	}

	if selDiag != "" {
		si, err := f.SelectedInverse()
		if err != nil {
			return err
		}
		if err := writeVector(selDiag, si.Diag()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsolve: diag(A⁻¹) written to %s (%d selected entries)\n",
			selDiag, si.Nnz())
	}

	if rhsPath == "" && outPath == "" && (saveFac != "" || selDiag != "") {
		return nil // factor-only or selinv-only invocation
	}

	n := f.St.N
	b := make([]float64, n)
	if rhsPath != "" {
		if err := readVector(rhsPath, b); err != nil {
			return err
		}
	} else {
		for i := range b {
			b[i] = 1
		}
	}
	if iter.precision == sympack.PrecFP32 && !refine {
		// An fp32 factor alone gives single-precision accuracy; refinement
		// against the fp64 matrix recovers the rest.
		if a == nil {
			return fmt.Errorf("-precision=fp32 needs the matrix (-A) for refinement residuals")
		}
		refine = true
	}
	var x []float64
	if refine {
		if a == nil {
			return fmt.Errorf("-refine needs the matrix (-A) for residuals")
		}
		var rel float64
		var iters int
		x, rel, iters, err = f.SolveRefined(a, b, 1e-14, 5)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsolve: solved with %d refinement steps, residual %.3g\n", iters, rel)
	} else {
		x, err = f.SolveDistributed(b)
		if err != nil {
			return err
		}
		if a != nil {
			fmt.Fprintf(os.Stderr, "spsolve: solved, residual %.3g\n", sympack.ResidualNorm(a, x, b))
		}
	}
	return writeVector(outPath, x)
}

// writeReport dumps the merged metric registry plus run configuration as
// one BENCH_*.json document.
func writeReport(path, matName string, a *sympack.Matrix, f *sympack.Factor, ranks, gpus int) error {
	now := time.Now()
	if path == "auto" {
		path = sympack.ReportFilename("spsolve", now)
	}
	st := &f.Stats
	rep := &sympack.RunReport{
		Command:      "spsolve",
		Timestamp:    now.UTC().Format(time.RFC3339),
		Matrix:       matName,
		N:            a.N,
		Nnz:          int64(a.NnzFull()),
		Ranks:        ranks,
		Workers:      st.Workers,
		GPUs:         gpus,
		WallSeconds:  st.Wall.Seconds(),
		ModelSeconds: st.ModelSeconds,
		Metrics:      f.Metrics.Snapshot().Series,
	}
	if st.ModelSeconds > 0 {
		rep.GFlops = float64(st.FactorFlop) / st.ModelSeconds / 1e9
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := sympack.WriteRunReport(fh, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spsolve: report written to %s\n", path)
	return nil
}

func readMatrix(path string) (*sympack.Matrix, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	if strings.HasSuffix(path, ".rb") || strings.HasSuffix(path, ".rsa") || strings.HasSuffix(path, ".psa") {
		return sympack.ReadRutherfordBoeing(fh)
	}
	return sympack.ReadMatrixMarket(fh)
}

func parseOrdering(name string) (sympackOrdering, error) {
	switch strings.ToUpper(name) {
	case "SCOTCH", "ND", "METIS":
		return sympack.OrderNestedDissection, nil
	case "AMD", "MMD", "MINDEGREE":
		return sympack.OrderMinDegree, nil
	case "RCM":
		return sympack.OrderRCM, nil
	case "NATURAL", "NONE":
		return sympack.OrderNatural, nil
	default:
		return sympack.OrderNatural, fmt.Errorf("unknown ordering %q", name)
	}
}

// sympackOrdering aliases the facade's ordering kind for the helper above.
type sympackOrdering = sympack.OrderingKind

// readVector loads one float per line.
func readVector(path string, dst []float64) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	i := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i >= len(dst) {
			return fmt.Errorf("%s: more than %d values", path, len(dst))
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return fmt.Errorf("%s line %d: %v", path, i+1, err)
		}
		dst[i] = v
		i++
	}
	if i != len(dst) {
		return fmt.Errorf("%s: %d values, want %d", path, i, len(dst))
	}
	return sc.Err()
}

// writeVector stores one float per line; empty path writes to stdout.
func writeVector(path string, v []float64) error {
	w := os.Stdout
	if path != "" {
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	bw := bufio.NewWriter(w)
	for _, x := range v {
		fmt.Fprintf(bw, "%.17g\n", x)
	}
	return bw.Flush()
}
