// Command loadgen drives a sympackd instance with many concurrent client
// sessions and reports the service's behaviour under pressure: latency
// percentiles, shed rate and the full response-status taxonomy. It is the
// measurement half of the robustness story — sympackd supplies the chaos
// (-chaos/-solver-chaos server side), loadgen supplies the stampede and
// judges the outcome.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8157 -sessions 64 -requests 8
//	loadgen -addr 127.0.0.1:8157 -sessions 200 -deadline-ms 500 -report auto
//
// Exit status is non-zero when any request ends in an unexpected status:
// 429/499/503/504 are the envelope working as designed, 5xx engine
// failures and transport errors are not.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sympack/internal/gen"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8157", "sympackd address to load")
		sessions = flag.Int("sessions", 16, "concurrent client sessions")
		requests = flag.Int("requests", 8, "factor requests per session")
		solves   = flag.Int("solves", 2, "solve requests per successful factor")
		size     = flag.Int("size", 8, "test matrices are size×size 2D Laplacians")
		patterns = flag.Int("patterns", 4, "distinct sparsity patterns to cycle (analysis-cache pressure)")
		mix      = flag.Float64("mix", 0, "fraction of sessions driving iterative /v1/solvecg instead of factor+solve (0..1)")
		deadline = flag.Int64("deadline-ms", 0, "per-request deadline forwarded to the server (0 = none)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "client-side HTTP timeout per request")

		metricsAddr = flag.String("metrics-addr", "", "serve loadgen's own /metrics and /healthz on this host:port while running")
		report      = flag.String("report", "", "write a machine-readable run report to this JSON file ('auto' = BENCH_loadgen_<timestamp>.json)")
	)
	flag.Parse()
	if *mix < 0 || *mix > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -mix must be in [0, 1]")
		os.Exit(1)
	}
	ok, err := run(*addr, *sessions, *requests, *solves, *size, *patterns, *mix, *deadline, *timeout, *metricsAddr, *report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(2)
	}
}

// outcome is one request's result.
type outcome struct {
	endpoint string
	code     int // 0 = transport error
	seconds  float64
}

// expectedStatus is the envelope vocabulary: statuses the robustness
// design produces on purpose under overload, chaos or client error.
// Anything else (especially 500) is a defect.
func expectedStatus(code int) bool {
	switch code {
	case http.StatusOK, http.StatusNotFound, http.StatusUnprocessableEntity,
		http.StatusTooManyRequests, server.StatusClientClosedRequest,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func run(addr string, sessions, requests, solves, size, patterns int, mix float64, deadlineMillis int64,
	timeout time.Duration, metricsAddr, report string) (bool, error) {

	if patterns < 1 {
		patterns = 1
	}
	// Base matrices: distinct sparsity patterns; per-request value scaling
	// below makes factor keys distinct while analyses stay shared.
	bases := make([]*matrix.SparseSym, patterns)
	for i := range bases {
		bases[i] = gen.Laplace2D(size, size+i)
	}

	reg := metrics.NewRegistry()
	reqTotal := func(endpoint string, code int) *metrics.Counter {
		return reg.Counter("sympack_loadgen_requests_total",
			"loadgen requests by endpoint and status (0 = transport error)",
			"endpoint", endpoint, "code", fmt.Sprintf("%d", code))
	}
	var sidecar *metrics.Server
	if metricsAddr != "" {
		var err error
		sidecar, err = metrics.Serve(metricsAddr, reg.Snapshot, func() (any, bool) {
			return map[string]bool{"ok": true}, true
		})
		if err != nil {
			return false, fmt.Errorf("metrics sidecar: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: metrics at http://%s/metrics\n", sidecar.Addr())
		defer sidecar.Close()
	}

	client := &http.Client{Timeout: timeout}
	var mu sync.Mutex
	var results []outcome
	record := func(o outcome) {
		mu.Lock()
		results = append(results, o)
		mu.Unlock()
		reqTotal(o.endpoint, o.code).Inc()
	}

	post := func(path string, body, out any) (int, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post("http://"+addr+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	// The first ⌈mix·sessions⌉ sessions drive the iterative endpoint; the
	// rest run the classic factor+solve flow. Assignment by session index
	// keeps the blend deterministic for a given flag set.
	iterSessions := int(mix * float64(sessions))

	start := machine.WallNow()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			iterative := s < iterSessions
			for r := 0; r < requests; r++ {
				base := bases[(s+r)%len(bases)]
				m := base.Clone()
				scale := 1 + 0.01*float64(s*31+r) // distinct values → distinct factor keys
				for i := range m.Val {
					m.Val[i] *= scale
				}
				if iterative {
					rhs := make([]float64, m.N)
					for i := range rhs {
						rhs[i] = float64(i%3) + 1
					}
					creq := server.SolveCGRequest{
						Matrix: server.WireMatrix{
							N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: m.Val,
						},
						B: rhs, Solver: "pcg", ICLevel: 1,
						DeadlineMillis: deadlineMillis,
					}
					t0 := machine.WallNow()
					code, err := post("/v1/solvecg", creq, nil)
					if err != nil && code == 0 {
						code = 0
					}
					record(outcome{endpoint: "solvecg", code: code, seconds: machine.WallSince(t0).Seconds()})
					continue
				}
				freq := server.FactorRequest{
					Matrix: server.WireMatrix{
						N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: m.Val,
					},
					DeadlineMillis: deadlineMillis,
				}
				var fresp server.FactorResponse
				t0 := machine.WallNow()
				code, err := post("/v1/factor", freq, &fresp)
				if err != nil && code == 0 {
					record(outcome{endpoint: "factor", code: 0, seconds: machine.WallSince(t0).Seconds()})
					continue
				}
				record(outcome{endpoint: "factor", code: code, seconds: machine.WallSince(t0).Seconds()})
				if code != http.StatusOK {
					continue
				}
				rhs := make([]float64, m.N)
				for i := range rhs {
					rhs[i] = float64(i%3) + 1
				}
				for k := 0; k < solves; k++ {
					t1 := machine.WallNow()
					scode, serr := post("/v1/solve",
						server.SolveRequest{Factor: fresp.Factor, B: rhs}, nil)
					if serr != nil && scode == 0 {
						scode = 0
					}
					record(outcome{endpoint: "solve", code: scode, seconds: machine.WallSince(t1).Seconds()})
				}
			}
		}()
	}
	wg.Wait()
	wall := machine.WallSince(start)

	return summarize(reg, results, wall, sessions, requests, report)
}

// summarize prints the human report, publishes the headline gauges, and
// writes the optional run-report artifact. It returns false when any
// request fell outside the expected status vocabulary.
func summarize(reg *metrics.Registry, results []outcome, wall time.Duration,
	sessions, requests int, report string) (bool, error) {

	taxonomy := map[int]int64{}
	var lat []float64
	latByMode := map[string][]float64{}
	var shed, unexpected int64
	for _, o := range results {
		taxonomy[o.code]++
		if o.code == http.StatusOK {
			lat = append(lat, o.seconds)
			mode := "direct"
			if o.endpoint == "solvecg" {
				mode = "iter"
			}
			latByMode[mode] = append(latByMode[mode], o.seconds)
		}
		if o.code == http.StatusTooManyRequests {
			shed++
		}
		if !expectedStatus(o.code) {
			unexpected++
		}
	}
	total := int64(len(results))
	pctl := func(lat []float64, q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(float64(len(lat)) * q)
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	sort.Float64s(lat)
	p50, p99 := pctl(lat, 0.50), pctl(lat, 0.99)

	reg.Gauge("sympack_loadgen_p50_seconds", "p50 latency of successful requests", metrics.MergeMax).Set(p50)
	reg.Gauge("sympack_loadgen_p99_seconds", "p99 latency of successful requests", metrics.MergeMax).Set(p99)
	var modes []string
	for mode := range latByMode {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		ml := latByMode[mode]
		sort.Float64s(ml)
		reg.Gauge("sympack_loadgen_mode_p50_seconds", "p50 latency by session mode", metrics.MergeMax,
			"mode", mode).Set(pctl(ml, 0.50))
		reg.Gauge("sympack_loadgen_mode_p99_seconds", "p99 latency by session mode", metrics.MergeMax,
			"mode", mode).Set(pctl(ml, 0.99))
	}
	reg.Gauge("sympack_loadgen_shed_ratio", "fraction of requests shed with 429", metrics.MergeMax).
		Set(ratio(shed, total))
	reg.Counter("sympack_loadgen_unexpected_total", "responses outside the expected status vocabulary").
		Add(float64(unexpected))

	fmt.Printf("loadgen: %d sessions × %d factor requests in %v\n", sessions, requests, wall.Round(time.Millisecond))
	fmt.Printf("  requests: %d total, p50 %.1fms, p99 %.1fms (successful only)\n",
		total, p50*1e3, p99*1e3)
	for _, mode := range modes {
		ml := latByMode[mode]
		fmt.Printf("  %-7s %6d ok, p50 %.1fms, p99 %.1fms\n",
			mode+":", len(ml), pctl(ml, 0.50)*1e3, pctl(ml, 0.99)*1e3)
	}
	fmt.Printf("  shed rate: %.1f%% (%d × 429)\n", 100*ratio(shed, total), shed)
	fmt.Println("  status taxonomy:")
	var codes []int
	for c := range taxonomy {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		label := http.StatusText(c)
		switch c {
		case 0:
			label = "transport error"
		case server.StatusClientClosedRequest:
			label = "Client Closed Request"
		}
		marker := ""
		if !expectedStatus(c) {
			marker = "  <-- UNEXPECTED"
		}
		fmt.Printf("    %3d %-24s %6d%s\n", c, label, taxonomy[c], marker)
	}

	if report != "" {
		now := machine.WallNow()
		path := report
		if path == "auto" {
			path = metrics.ReportFilename("loadgen", now)
		}
		rep := &metrics.RunReport{
			Command:     "loadgen",
			Timestamp:   now.UTC().Format(time.RFC3339),
			WallSeconds: wall.Seconds(),
			Metrics:     reg.Snapshot().Series,
		}
		fh, err := os.Create(path)
		if err != nil {
			return false, err
		}
		if err := metrics.WriteRunReport(fh, rep); err != nil {
			fh.Close()
			return false, err
		}
		if err := fh.Close(); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "loadgen: report written to %s\n", path)
	}

	if unexpected > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL — %d responses outside the expected vocabulary\n", unexpected)
		return false, nil
	}
	fmt.Println("loadgen: all responses within the expected vocabulary")
	return true, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
