package main

// Vet-tool mode: cmd/go's unitchecker protocol. `go vet
// -vettool=sympacklint ./...` invokes the tool once per package with a
// single JSON .cfg argument describing the unit of work: source files,
// the import map, and the export-data files the build system already
// produced for every dependency. The tool type-checks the unit against
// that export data (no re-compilation of dependencies), runs the suite,
// writes the (empty — the suite is fact-free) .vetx facts file the driver
// expects, and exits 2 on findings so the build fails.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"sympack/internal/lint"
	"sympack/internal/lint/load"
)

// vetConfig mirrors the JSON schema cmd/go writes for vet tools (the
// exported fields of x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte("sympacklint\n"), 0o666)
		}
	}

	// The suite's invariants are runtime properties of the solver, not of
	// its tests (tests may use wall clocks and unordered maps freely), so
	// test files and synthesized test-main units are skipped. Standalone
	// mode makes the same cut via go/build's non-test file list.
	if cfg.VetxOnly || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx()
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		return fail(err)
	}

	p := &load.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	diags, err := lint.RunPackage(p, lint.Analyzers())
	if err != nil {
		return fail(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
