package main

// Vet-tool mode: cmd/go's unitchecker protocol. `go vet
// -vettool=sympacklint ./...` invokes the tool once per package with a
// single JSON .cfg argument describing the unit of work: source files,
// the import map, the export-data files the build system already produced
// for every dependency, and the .vetx fact files earlier units of this
// tool wrote for those dependencies. The tool type-checks the unit
// against that export data (no re-compilation of dependencies), seeds the
// fact store from the dependency vetx payloads, runs the suite, writes
// this unit's facts to VetxOutput, and exits 2 on findings so the build
// fails.
//
// Fact-only units (VetxOnly, which cmd/go schedules for dependencies of
// the requested packages) are analyzed when they are sympack-local — the
// diagnostics are discarded, only the exported facts matter — and skipped
// with an empty-but-decodable payload otherwise: futureerr's analyzed
// marker is then absent, so importing units stay conservative about the
// package, which is sound.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"sympack/internal/lint"
	"sympack/internal/lint/analysis"
	"sympack/internal/lint/load"
)

// vetConfig mirrors the JSON schema cmd/go writes for vet tools (the
// exported fields of x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// sympackLocal reports whether an import path belongs to this module, the
// only world our analyzers export facts about.
func sympackLocal(path string) bool {
	return path == "sympack" || strings.HasPrefix(path, "sympack/")
}

func runVet(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}
	analyzers := lint.Analyzers()
	store := analysis.NewFactStore(analyzers)
	writeVetx := func(pkg *types.Package) int {
		if cfg.VetxOutput == "" {
			return 0
		}
		payload, err := store.EncodeVetx(pkg)
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			return fail(err)
		}
		return 0
	}

	// The suite's invariants are runtime properties of the solver, not of
	// its tests (tests may use wall clocks and unordered maps freely), so
	// test files and synthesized test-main units are skipped. Standalone
	// mode makes the same cut via go/build's non-test file list. Non-local
	// fact-only units are skipped too: no facts, conservative importers.
	factOnly := cfg.VetxOnly
	if strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") ||
		(factOnly && !sympackLocal(cfg.ImportPath)) {
		return writeVetx(nil)
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return writeVetx(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(nil)
		}
		return fail(err)
	}

	// Seed the store with the dependency facts cmd/go threaded to us.
	// Payloads decode lazily, on the first fact import touching a package.
	for path, file := range cfg.PackageVetx {
		if payload, err := os.ReadFile(file); err == nil {
			store.AddVetx(path, payload)
		}
	}

	p := &load.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	diags, err := lint.RunPackageFacts(p, analyzers, store)
	if err != nil {
		return fail(err)
	}
	if rc := writeVetx(tpkg); rc != 0 {
		return rc
	}
	if factOnly {
		return 0 // dependency unit: facts are the product, findings are not
	}
	// Vet units render -json paths module-root-relative too, found from
	// the unit's own directory (best effort: absolute-but-slashed paths
	// outside any module).
	modRoot := ""
	if mr, err := findModuleRoot(cfg.Dir); err == nil {
		modRoot = mr
	}
	findings := 0
	for _, d := range diags {
		switch {
		case jsonOut:
			printJSON(os.Stdout, modRoot, fset, d)
		case d.Note:
			fmt.Fprintf(os.Stderr, "%s: note: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		case !d.Suppressed:
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		if !d.Suppressed && !d.Note {
			findings++
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}
