package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scratchModule writes a tiny sympack-named module with three findings:
// an unsuppressed wallclock read, a suppressed one, and a stale
// //lint:ignore that trips unusedignore. Deterministic input for the
// -json schema and baseline-ratchet tests.
func scratchModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sympack\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

// The raw clock read the wallclock analyzer exists to stop.
var epoch = time.Now()

func human() time.Time {
	//lint:ignore wallclock operator-facing timestamp, never schedules work
	return time.Now()
}

func fixedAlready() int {
	//lint:ignore wallclock stale: the clock read below was removed
	return 1
}
`)
	return root
}

// capture runs f with os.Stdout redirected to a pipe and returns what it
// printed alongside its return code.
func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	rc := f()
	w.Close()
	os.Stdout = old
	return <-done, rc
}

// TestJSONGolden pins the -json wire schema (one object per line: file,
// line, analyzer, message, suppressed, plus note only when set) against a
// committed golden file, so downstream tooling can depend on it. Paths
// are module-root-relative, so the golden needs no normalization — and
// the rooted temp module proves no absolute path leaks into the report.
func TestJSONGolden(t *testing.T) {
	root := scratchModule(t)
	t.Chdir(root)
	out, rc := capture(t, func() int { return run([]string{"-json", "./..."}) })
	if rc != 2 {
		t.Fatalf("exit code = %d, want 2 (unsuppressed findings present)", rc)
	}
	if strings.Contains(out, root) {
		t.Errorf("-json output embeds the absolute module root %q:\n%s", root, out)
	}
	normalized := out
	golden := filepath.Join(testdataDir(t), "json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(normalized), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if normalized != string(want) {
		t.Errorf("-json output drifted from golden:\n--- got ---\n%s--- want ---\n%s", normalized, want)
	}

	// Schema pin independent of the golden bytes: every line is an object
	// with exactly the documented fields, required ones always present.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", line, err)
		}
		for _, k := range []string{"file", "line", "analyzer", "message", "suppressed"} {
			if _, ok := obj[k]; !ok {
				t.Errorf("line %q missing required key %q", line, k)
			}
		}
		for k := range obj {
			switch k {
			case "file", "line", "analyzer", "message", "suppressed", "note":
			default:
				t.Errorf("line %q has undocumented key %q", line, k)
			}
		}
	}
}

// TestJSONPathsRepoRelative runs -json from a subdirectory of a rooted
// temp module: file paths must stay module-root-relative and
// slash-separated (not cwd-relative, not absolute), the portability
// contract baselines and archived CI reports rely on.
func TestJSONPathsRepoRelative(t *testing.T) {
	root := scratchModule(t)
	t.Chdir(filepath.Join(root, "internal", "core"))
	out, rc := capture(t, func() int { return run([]string{"-json", "./..."}) })
	if rc != 2 {
		t.Fatalf("exit code = %d, want 2; out=%s", rc, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var jd jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if jd.File != "internal/core/bad.go" {
			t.Errorf("file = %q, want module-root-relative slash path %q", jd.File, "internal/core/bad.go")
		}
	}
}

// pkgDir is the package source directory, captured before any t.Chdir
// moves the test into a temp module; the golden file lives under it.
var pkgDir string

func TestMain(m *testing.M) {
	if wd, err := os.Getwd(); err == nil {
		pkgDir = wd
	}
	os.Exit(m.Run())
}

func testdataDir(t *testing.T) string {
	t.Helper()
	if pkgDir == "" {
		t.Fatal("package dir not captured")
	}
	return filepath.Join(pkgDir, "testdata")
}

// TestBaselineRatchet covers -write-baseline / -baseline: recorded
// findings stop gating, new findings still fail, and the committed empty
// baseline format (comments and blank lines) parses.
func TestBaselineRatchet(t *testing.T) {
	root := scratchModule(t)
	t.Chdir(root)
	basePath := filepath.Join(root, "base.jsonl")

	if _, rc := capture(t, func() int { return run([]string{"-write-baseline", basePath, "./..."}) }); rc != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0", rc)
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (wallclock + unusedignore): %q", len(lines), data)
	}
	for _, l := range lines {
		if strings.Contains(l, root) {
			t.Errorf("baseline entry %q embeds the absolute module root; want relative paths", l)
		}
	}

	// Everything is baselined: the ratchet passes.
	if out, rc := capture(t, func() int { return run([]string{"-baseline", basePath, "./..."}) }); rc != 0 {
		t.Fatalf("-baseline over recorded findings exit = %d, want 0; out=%s", rc, out)
	}

	// A new finding is not in the baseline: the ratchet fails.
	newFile := filepath.Join(root, "internal", "core", "worse.go")
	if err := os.WriteFile(newFile, []byte("package core\n\nimport \"time\"\n\nvar later = time.Now()\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	out, rc := capture(t, func() int { return run([]string{"-baseline", basePath, "./..."}) })
	if rc != 2 {
		t.Fatalf("-baseline with a new finding exit = %d, want 2; out=%s", rc, out)
	}
	if !strings.Contains(out, "worse.go") || strings.Contains(out, "bad.go") {
		t.Errorf("ratchet output should report only the new finding, got:\n%s", out)
	}

	// The committed empty-baseline format (comment header only) parses
	// and tolerates nothing.
	empty := filepath.Join(root, "empty.jsonl")
	if err := os.WriteFile(empty, []byte("# header comment\n\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, rc := capture(t, func() int { return run([]string{"-baseline", empty, "./..."}) }); rc != 2 {
		t.Fatalf("-baseline with empty baseline exit = %d, want 2", rc)
	}
}
