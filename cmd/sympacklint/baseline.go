package main

// Ratchet mode. A baseline is a JSONL file of findings (the -json wire
// schema, one object per line) recording the debt the team has accepted
// so far. `sympacklint -baseline lint-baseline.jsonl ./...` then fails
// only on findings NOT in the baseline — CI ratchets: existing debt is
// tolerated, new debt is rejected, and paying debt down just means
// rewriting the baseline with -write-baseline (shrinking it is always
// safe to merge).
//
// Matching deliberately ignores the line number: an unrelated edit above
// a baselined finding moves it without changing what it is. The key is
// the module-root-relative file path, the analyzer, and the exact
// message. Suppressed findings and notes never enter a baseline; they do
// not gate the exit code in the first place.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"sympack/internal/lint/analysis"
)

// baseline is the set of accepted findings, keyed file|analyzer|message.
type baseline map[string]bool

func baselineKey(relFile, analyzer, message string) string {
	return relFile + "|" + analyzer + "|" + message
}

// relFile renders a diagnostic's file path relative to the module root,
// slash-separated, so baselines and -json reports are portable across
// checkouts. With no known root (vet units outside any module) the path
// is only slash-normalized.
func relFile(modRoot string, fset *token.FileSet, d analysis.Diagnostic) string {
	name := fset.Position(d.Pos).Filename
	if modRoot == "" {
		return filepath.ToSlash(name)
	}
	if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

func (b baseline) has(modRoot string, fset *token.FileSet, d analysis.Diagnostic) bool {
	return b[baselineKey(relFile(modRoot, fset, d), d.Analyzer, d.Message)]
}

// readBaseline parses a JSONL baseline. An empty (or all-blank) file is a
// valid empty baseline — the committed starting point.
func readBaseline(path string) (baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	b := baseline{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var jd jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %w", path, lineNo, err)
		}
		b[baselineKey(filepath.ToSlash(jd.File), jd.Analyzer, jd.Message)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// writeBaseline records the current gating findings (unsuppressed,
// non-note) as a JSONL baseline with module-root-relative paths.
func writeBaseline(path, modRoot string, fset *token.FileSet, diags []analysis.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, d := range diags {
		if d.Suppressed || d.Note {
			continue
		}
		pos := fset.Position(d.Pos)
		out, err := json.Marshal(jsonDiagnostic{
			File:       relFile(modRoot, fset, d),
			Line:       pos.Line,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: false,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", out)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}
