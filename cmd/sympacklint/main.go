// Command sympacklint runs the sympack static-analysis suite: custom
// analyzers that mechanically enforce the solver's determinism, atomicity,
// and future-error invariants (see DESIGN.md §10). It is runnable two
// ways:
//
//	go run ./cmd/sympacklint ./...          # standalone multichecker
//	go vet -vettool=$(which sympacklint) ./...   # as a vet tool
//
// Standalone mode loads the enclosing module with the stdlib-only loader
// (internal/lint/load) and exits 2 if any diagnostic survives the
// //lint:ignore audit, so CI can gate on it. Vet-tool mode speaks the
// cmd/go unitchecker protocol: a single <package>.cfg JSON argument,
// export data supplied by the build system, plus the -V=full and -flags
// handshakes (see vetmode.go).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sympack/internal/lint"
	"sympack/internal/lint/analysis"

	"go/token"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return 0
		case a == "-flags":
			// The vet driver asks which extra flags the tool accepts;
			// the suite is configuration-free.
			fmt.Println("[]")
			return 0
		case a == "help" || a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0])
	}
	return runStandalone(args)
}

func usage() {
	fmt.Printf("usage: sympacklint [package pattern ...]   (default ./...)\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Printf("  %-20s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nsuppress an audited finding with: //lint:ignore <analyzer> <reason>\n")
}

// printVersion implements the `-V=full` handshake cmd/go uses to build a
// cache key for the vet tool: name, a version token, and a content hash of
// the executable so rebuilding the tool invalidates stale results.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	modRoot, err := findModuleRoot(wd)
	if err != nil {
		return fail(err)
	}

	var diags []analysis.Diagnostic
	var fset *token.FileSet
	wantAll := len(patterns) == 0
	var dirs []string
	for _, p := range patterns {
		if strings.HasSuffix(p, "...") {
			// Any ellipsis pattern in this single-module repo means
			// "the whole module": the walk is cheap and extra
			// packages never add false findings.
			wantAll = true
			continue
		}
		dirs = append(dirs, p)
	}
	if wantAll {
		diags, fset, err = lint.RunModule(modRoot, lint.Analyzers())
	} else {
		diags, fset, err = lint.RunDirs(modRoot, dirs, lint.Analyzers())
	}
	if err != nil {
		return fail(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", relTo(wd, pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sympacklint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sympacklint:", err)
	return 1
}

// relTo renders a position with a path relative to the working directory
// when that is shorter, matching go vet's output style.
func relTo(wd string, pos token.Position) string {
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
