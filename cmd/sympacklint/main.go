// Command sympacklint runs the sympack static-analysis suite: custom
// analyzers that mechanically enforce the solver's determinism, atomicity,
// and future-error invariants (see DESIGN.md §10). It is runnable two
// ways:
//
//	go run ./cmd/sympacklint ./...          # standalone multichecker
//	go vet -vettool=$(which sympacklint) ./...   # as a vet tool
//
// Standalone mode loads the enclosing module with the stdlib-only loader
// (internal/lint/load) and exits 2 if any diagnostic survives the
// //lint:ignore audit, so CI can gate on it. Vet-tool mode speaks the
// cmd/go unitchecker protocol: a single <package>.cfg JSON argument,
// export data supplied by the build system, plus the -V=full and -flags
// handshakes (see vetmode.go).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sympack/internal/lint"
	"sympack/internal/lint/analysis"

	"go/token"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var opts options
	var rest []string
	takeValue := func(i *int, name, inline string) (string, bool) {
		if inline != "" {
			return inline, true
		}
		if *i+1 < len(args) {
			*i++
			return args[*i], true
		}
		fmt.Fprintf(os.Stderr, "sympacklint: %s requires a file argument\n", name)
		return "", false
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return 0
		case a == "-flags":
			// The vet driver asks which extra flags the tool accepts;
			// the suite is configuration-free beyond the output mode.
			fmt.Println("[]")
			return 0
		case a == "help" || a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		case a == "-json" || a == "--json":
			opts.jsonOut = true
		case a == "-baseline" || strings.HasPrefix(a, "-baseline="):
			v, ok := takeValue(&i, "-baseline", strings.TrimPrefix(strings.TrimPrefix(a, "-baseline"), "="))
			if !ok {
				return 1
			}
			opts.baseline = v
		case a == "-write-baseline" || strings.HasPrefix(a, "-write-baseline="):
			v, ok := takeValue(&i, "-write-baseline", strings.TrimPrefix(strings.TrimPrefix(a, "-write-baseline"), "="))
			if !ok {
				return 1
			}
			opts.writeBaseline = v
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], opts.jsonOut)
	}
	return runStandalone(rest, opts)
}

// options collects the standalone-mode flags.
type options struct {
	jsonOut       bool
	baseline      string // compare findings against this JSONL baseline
	writeBaseline string // write the current findings here and exit 0
}

func usage() {
	fmt.Printf("usage: sympacklint [-json] [-baseline file | -write-baseline file] [package pattern ...]   (default ./...)\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Printf("  %-20s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nsuppress an audited finding with: //lint:ignore <analyzer> <reason>\n")
	fmt.Printf("-json emits one diagnostic per line (file, line, analyzer, message,\nsuppressed, note) including audited suppressions; the exit code still\ncounts only unsuppressed findings\n")
	fmt.Printf("-baseline compares findings against a JSONL baseline (ratchet mode):\nonly findings absent from the baseline gate the exit code;\n-write-baseline records the current findings and exits 0\n")
}

// jsonDiagnostic is the -json wire format: one object per line, stable
// field set, so CI can archive and diff lint reports mechanically. File
// is module-root-relative and slash-separated (the same normalization as
// baselines), so reports diff cleanly across checkouts and platforms.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Note       bool   `json:"note,omitempty"`
}

func printJSON(w io.Writer, modRoot string, fset *token.FileSet, d analysis.Diagnostic) {
	pos := fset.Position(d.Pos)
	out, _ := json.Marshal(jsonDiagnostic{
		File:       relFile(modRoot, fset, d),
		Line:       pos.Line,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: d.Suppressed,
		Note:       d.Note,
	})
	fmt.Fprintf(w, "%s\n", out)
}

// printVersion implements the `-V=full` handshake cmd/go uses to build a
// cache key for the vet tool: name, a version token, and a content hash of
// the executable so rebuilding the tool invalidates stale results.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

func runStandalone(patterns []string, opts options) int {
	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	modRoot, err := findModuleRoot(wd)
	if err != nil {
		return fail(err)
	}

	var diags []analysis.Diagnostic
	var fset *token.FileSet
	wantAll := len(patterns) == 0
	var dirs []string
	for _, p := range patterns {
		if strings.HasSuffix(p, "...") {
			// Any ellipsis pattern in this single-module repo means
			// "the whole module": the walk is cheap and extra
			// packages never add false findings.
			wantAll = true
			continue
		}
		dirs = append(dirs, p)
	}
	if wantAll {
		diags, fset, err = lint.RunModule(modRoot, lint.Analyzers())
	} else {
		diags, fset, err = lint.RunDirs(modRoot, dirs, lint.Analyzers())
	}
	if err != nil {
		return fail(err)
	}

	if opts.writeBaseline != "" {
		if err := writeBaseline(opts.writeBaseline, modRoot, fset, diags); err != nil {
			return fail(err)
		}
		return 0
	}
	var base baseline
	if opts.baseline != "" {
		base, err = readBaseline(opts.baseline)
		if err != nil {
			return fail(err)
		}
	}

	findings := 0
	for _, d := range diags {
		gates := !d.Suppressed && !d.Note
		if gates && base != nil && base.has(modRoot, fset, d) {
			// Ratchet mode: a pre-existing finding recorded in the
			// baseline does not gate; only regressions do.
			gates = false
		}
		switch {
		case opts.jsonOut:
			printJSON(os.Stdout, modRoot, fset, d)
		case d.Note:
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: note: [%s] %s\n", relTo(wd, pos), d.Analyzer, d.Message)
		case gates:
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: [%s] %s\n", relTo(wd, pos), d.Analyzer, d.Message)
		}
		if gates {
			findings++
		}
	}
	if findings > 0 {
		if base != nil {
			fmt.Fprintf(os.Stderr, "sympacklint: %d new finding(s) not in baseline\n", findings)
		} else {
			fmt.Fprintf(os.Stderr, "sympacklint: %d finding(s)\n", findings)
		}
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sympacklint:", err)
	return 1
}

// relTo renders a position with a path relative to the working directory
// when that is shorter, matching go vet's output style.
func relTo(wd string, pos token.Position) string {
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
