// Command sympacklint runs the sympack static-analysis suite: custom
// analyzers that mechanically enforce the solver's determinism, atomicity,
// and future-error invariants (see DESIGN.md §10). It is runnable two
// ways:
//
//	go run ./cmd/sympacklint ./...          # standalone multichecker
//	go vet -vettool=$(which sympacklint) ./...   # as a vet tool
//
// Standalone mode loads the enclosing module with the stdlib-only loader
// (internal/lint/load) and exits 2 if any diagnostic survives the
// //lint:ignore audit, so CI can gate on it. Vet-tool mode speaks the
// cmd/go unitchecker protocol: a single <package>.cfg JSON argument,
// export data supplied by the build system, plus the -V=full and -flags
// handshakes (see vetmode.go).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sympack/internal/lint"
	"sympack/internal/lint/analysis"

	"go/token"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return 0
		case a == "-flags":
			// The vet driver asks which extra flags the tool accepts;
			// the suite is configuration-free beyond the output mode.
			fmt.Println("[]")
			return 0
		case a == "help" || a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		case a == "-json" || a == "--json":
			jsonOut = true
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], jsonOut)
	}
	return runStandalone(rest, jsonOut)
}

func usage() {
	fmt.Printf("usage: sympacklint [-json] [package pattern ...]   (default ./...)\n\nanalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Printf("  %-20s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nsuppress an audited finding with: //lint:ignore <analyzer> <reason>\n")
	fmt.Printf("-json emits one diagnostic per line (file, line, analyzer, message,\nsuppressed) including audited suppressions; the exit code still counts\nonly unsuppressed findings\n")
}

// jsonDiagnostic is the -json wire format: one object per line, stable
// field set, so CI can archive and diff lint reports mechanically.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func printJSON(w io.Writer, fset *token.FileSet, d analysis.Diagnostic) {
	pos := fset.Position(d.Pos)
	out, _ := json.Marshal(jsonDiagnostic{
		File:       pos.Filename,
		Line:       pos.Line,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: d.Suppressed,
	})
	fmt.Fprintf(w, "%s\n", out)
}

// printVersion implements the `-V=full` handshake cmd/go uses to build a
// cache key for the vet tool: name, a version token, and a content hash of
// the executable so rebuilding the tool invalidates stale results.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

func runStandalone(patterns []string, jsonOut bool) int {
	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	modRoot, err := findModuleRoot(wd)
	if err != nil {
		return fail(err)
	}

	var diags []analysis.Diagnostic
	var fset *token.FileSet
	wantAll := len(patterns) == 0
	var dirs []string
	for _, p := range patterns {
		if strings.HasSuffix(p, "...") {
			// Any ellipsis pattern in this single-module repo means
			// "the whole module": the walk is cheap and extra
			// packages never add false findings.
			wantAll = true
			continue
		}
		dirs = append(dirs, p)
	}
	if wantAll {
		diags, fset, err = lint.RunModule(modRoot, lint.Analyzers())
	} else {
		diags, fset, err = lint.RunDirs(modRoot, dirs, lint.Analyzers())
	}
	if err != nil {
		return fail(err)
	}
	findings := 0
	for _, d := range diags {
		if jsonOut {
			printJSON(os.Stdout, fset, d)
		} else if !d.Suppressed {
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: [%s] %s\n", relTo(wd, pos), d.Analyzer, d.Message)
		}
		if !d.Suppressed {
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "sympacklint: %d finding(s)\n", findings)
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sympacklint:", err)
	return 1
}

// relTo renders a position with a path relative to the working directory
// when that is shorter, matching go vet's output style.
func relTo(wd string, pos token.Position) string {
	if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
