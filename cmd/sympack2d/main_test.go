package main

import (
	"os"
	"path/filepath"
	"testing"

	"sympack"
)

func TestLoadMatrixGenerators(t *testing.T) {
	for _, spec := range []string{"flan:1", "bone:1", "thermal:1", "laplace2d:1", "laplace3d:2", "flan"} {
		a, name, err := loadMatrix("", spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if a.N <= 0 || name == "" {
			t.Fatalf("%s: empty matrix", spec)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestLoadMatrixErrors(t *testing.T) {
	if _, _, err := loadMatrix("", "", 1); err == nil {
		t.Fatal("expected error with no input")
	}
	if _, _, err := loadMatrix("", "nosuch:2", 1); err == nil {
		t.Fatal("expected unknown generator error")
	}
	if _, _, err := loadMatrix("", "flan:x", 1); err == nil {
		t.Fatal("expected bad scale error")
	}
	if _, _, err := loadMatrix("/nonexistent/file.mtx", "", 1); err == nil {
		t.Fatal("expected file error")
	}
}

func TestLoadMatrixFiles(t *testing.T) {
	dir := t.TempDir()
	a := sympack.Laplace2D(5, 5)

	mm := filepath.Join(dir, "m.mtx")
	fh, err := os.Create(mm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sympack.WriteMatrixMarket(fh, a); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	got, _, err := loadMatrix(mm, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != a.N || got.Nnz() != a.Nnz() {
		t.Fatal("matrix market load mismatch")
	}

	rb := filepath.Join(dir, "m.rb")
	fh, err = os.Create(rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sympack.WriteRutherfordBoeing(fh, a, "t"); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	got, _, err = loadMatrix(rb, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != a.N || got.Nnz() != a.Nnz() {
		t.Fatal("rutherford-boeing load mismatch")
	}
}

func TestPrintWorkloadSplit(t *testing.T) {
	a := sympack.Laplace2D(8, 8)
	f, err := sympack.Factorize(a, sympack.Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	printWorkloadSplit(f) // must not panic with zero GPU counters
}
