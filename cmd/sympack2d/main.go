// Command sympack2d is the equivalent of the paper's run_sympack2D driver
// (AD/AE §A.2.4): it loads or generates a sparse SPD matrix, runs the
// fan-out Cholesky factorization over the simulated UPC++ ranks, solves
// with the requested number of right-hand sides, and reports timings,
// residuals, and (with -gpu_v) the CPU/GPU workload-distribution statistics
// behind the paper's Fig. 6.
//
// Usage:
//
//	sympack2d -in matrix.rb -nrhs 1 -ordering SCOTCH -ranks 4 -gpus 2
//	sympack2d -gen flan:4 -ranks 8 -ranks-per-node 4 -gpus 4 -gpu_v
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"sympack"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/ordering"
	"sympack/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input matrix file (.mtx MatrixMarket or .rb Rutherford-Boeing)")
		genSpec  = flag.String("gen", "", "generate a matrix instead: flan:S, bone:S, thermal:S, laplace2d:S, laplace3d:S (S = integer scale)")
		nrhs     = flag.Int("nrhs", 1, "number of right-hand sides to solve")
		ordName  = flag.String("ordering", "SCOTCH", "fill-reducing ordering: SCOTCH|AMD|RCM|NATURAL")
		formName = flag.String("formulation", "fan-out", "task formulation: fan-out|fan-in|fan-both")
		mapName  = flag.String("mapping", "2d-cyclic", "block→process mapping: 2d-cyclic|1d-cols|subtree")
		solverNm = flag.String("solver", "direct", "solve strategy: direct|cg|pcg")
		precNm   = flag.String("precision", "fp64", "factorization precision: fp64|fp32 (fp32 direct solves auto-refine)")
		icLevel  = flag.Int("ic-level", 1, "IC(k) fill level for -solver=pcg")
		rtol     = flag.Float64("rtol", 1e-8, "relative tolerance for -solver=cg|pcg")
		ranks    = flag.Int("ranks", 4, "number of UPC++ processes to simulate")
		workers  = flag.Int("workers", 0, "executor goroutines per rank (0 = SYMPACK_WORKERS env, else GOMAXPROCS/ranks)")
		rpn      = flag.Int("ranks-per-node", 0, "ranks per node (0 = all on one node)")
		gpus     = flag.Int("gpus", 0, "GPUs per node (0 = CPU only)")
		devCap   = flag.Int64("device-mem", 0, "device memory per GPU in MiB (0 = unbounded)")
		fallback = flag.String("fallback", "cpu", "device OOM fallback: cpu|error")
		gpuV     = flag.Bool("gpu_v", false, "print CPU/GPU workload distribution (Fig. 6 data)")
		distSol  = flag.Bool("dist-solve", true, "use the distributed triangular solve")
		seed     = flag.Int64("seed", 1, "generator / RHS seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event timeline of the factorization to this file")
		chaos    = flag.Int64("chaos", 0, "run under the default chaos fault plan with this seed (0 = off)")
		faultStr = flag.String("faults", "", "explicit fault plan, e.g. drop=0.05,delay=0.1,oom=0.1/20 (uses -chaos or -seed as the plan seed)")
		metAddr  = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /healthz (JSON) on this host:port while the run executes (use :0 for an ephemeral port)")
		metHold  = flag.Duration("metrics-hold", 0, "keep the metrics endpoint serving this long after the run completes (for scrapers)")
		report   = flag.String("report", "", "write a machine-readable run report to this JSON file ('auto' = BENCH_sympack2d_<timestamp>.json)")
	)
	flag.Parse()

	a, name, err := loadMatrix(*in, *genSpec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	ord, err := ordering.ParseKind(*ordName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	form, err := sympack.ParseFormulation(*formName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	bmap, err := sympack.ParseMapping(*mapName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	prec, err := sympack.ParsePrecision(*precNm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	opt := sympack.Options{
		Ranks:        *ranks,
		Workers:      *workers,
		RanksPerNode: *rpn,
		GPUsPerNode:  *gpus,
		Ordering:     ord,
		Formulation:  form,
		Mapping:      bmap,
		Precision:    prec,
	}
	if *devCap > 0 {
		opt.DeviceCapacity = *devCap * (1 << 20) / 8
	}
	if *fallback == "error" {
		opt.Fallback = gpu.FallbackError
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
		opt.Trace = rec
	}
	plan, planDesc, err := faultPlan(*faultStr, *chaos, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d:", err)
		os.Exit(1)
	}
	opt.Faults = plan
	opt.MetricsAddr = *metAddr

	fmt.Printf("matrix: %s  n=%d  nnz=%d  ordering=%v  ranks=%d  gpus/node=%d  formulation=%v  mapping=%v\n",
		name, a.N, a.NnzFull(), ord, *ranks, *gpus, form, bmap)
	if plan != nil {
		fmt.Printf("fault injection: %s  (seed %d)\n", planDesc, plan.Seed)
	}

	switch *solverNm {
	case "direct":
	case "cg", "pcg":
		runIterative(a, opt, *solverNm, *icLevel, *rtol, *nrhs, *seed)
		return
	default:
		fmt.Fprintf(os.Stderr, "sympack2d: unknown solver %q (want direct, cg or pcg)\n", *solverNm)
		os.Exit(1)
	}

	f, err := sympack.Factorize(a, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sympack2d: factorization failed:", err)
		os.Exit(1)
	}
	st := &f.Stats
	if addr := f.MetricsAddr(); addr != "" {
		fmt.Printf("metrics: serving http://%s/metrics and /healthz\n", addr)
	}
	fmt.Printf("factorization: wall=%v  modeled=%.4gs  supernodes=%d  blocks=%d  updates=%d  workers/rank=%d\n",
		st.Wall, st.ModelSeconds, st.Supernodes, st.Blocks, st.Updates, st.Workers)
	fmt.Printf("factor: nnz(L)=%d  flops=%.3g  fill=%.2fx\n",
		st.NnzL, float64(st.FactorFlop), float64(st.NnzL)/float64(a.Nnz()))
	if st.FallbacksOOM > 0 {
		fmt.Printf("device OOM fallbacks to CPU: %d\n", st.FallbacksOOM)
	}
	if st.Faults.Any() {
		fmt.Printf("faults injected/recovered: %s\n", st.Faults)
	}

	rng := rand.New(rand.NewSource(*seed + 100))
	for r := 0; r < *nrhs; r++ {
		xTrue := make([]float64, a.N)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		var x []float64
		if prec == sympack.PrecFP32 {
			// An fp32 factor alone gives single-precision accuracy;
			// refinement against the fp64 matrix recovers the rest.
			var rel float64
			var sweeps int
			x, rel, sweeps, err = f.SolveRefined(a, b, 1e-14, 5)
			if err == nil {
				fmt.Printf("solve %d: %d refinement sweeps  relative residual=%.3g\n", r, sweeps, rel)
				continue
			}
		} else if *distSol {
			x, err = f.SolveDistributed(b)
		} else {
			x, err = f.Solve(b)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sympack2d: solve failed:", err)
			os.Exit(1)
		}
		fmt.Printf("solve %d: wall=%v  relative residual=%.3g\n",
			r, f.SolveStats.Wall, sympack.ResidualNorm(a, x, b))
	}

	if f.SolveStats.Faults.Any() {
		fmt.Printf("solve faults injected/recovered: %s\n", f.SolveStats.Faults)
	}

	if *gpuV {
		printWorkloadSplit(f)
	}

	if *report != "" {
		if err := writeReport(*report, name, a, f, *ranks, *gpus); err != nil {
			fmt.Fprintln(os.Stderr, "sympack2d:", err)
			os.Exit(1)
		}
	}

	if *metHold > 0 && f.MetricsAddr() != "" {
		fmt.Printf("metrics: holding endpoint open for %v\n", *metHold)
		time.Sleep(*metHold)
	}
	_ = f.CloseMetrics()

	if rec != nil {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sympack2d:", err)
			os.Exit(1)
		}
		defer fh.Close()
		if err := rec.WriteChromeTrace(fh); err != nil {
			fmt.Fprintln(os.Stderr, "sympack2d:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s (open in chrome://tracing)\n", rec.Len(), *traceOut)
		fmt.Println("rank utilization (busy fraction of makespan):")
		util := rec.RankUtilization()
		for rank := 0; rank < *ranks; rank++ {
			fmt.Printf("  rank %2d: %5.1f%%\n", rank, 100*util[int32(rank)])
		}
	}
}

// runIterative is the -solver=cg|pcg path: no complete factorization —
// conjugate gradients (optionally through an engine-built IC(k)
// preconditioner, whose build honors the full distributed surface in opt)
// solves each right-hand side.
func runIterative(a *sympack.Matrix, opt sympack.Options, solver string, icLevel int, rtol float64, nrhs int, seed int64) {
	cg := sympack.CGOptions{Rtol: rtol}
	if solver == "pcg" {
		cg.Precond = sympack.PrecondIC
		cg.ICLevel = icLevel
		fmt.Printf("iterative: %s with IC(%d), rtol=%.1g, precision=%v\n", solver, icLevel, rtol, opt.Precision)
	} else {
		fmt.Printf("iterative: %s, rtol=%.1g\n", solver, rtol)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	for r := 0; r < nrhs; r++ {
		xTrue := make([]float64, a.N)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		res, err := sympack.SolveCG(a, b, opt, cg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sympack2d: iterative solve failed:", err)
			os.Exit(1)
		}
		fmt.Printf("solve %d: %d iterations  %d matvecs  relative residual=%.3g\n",
			r, res.Iterations, res.MatVecs, sympack.ResidualNorm(a, res.X, b))
	}
}

// writeReport dumps the merged metric registry plus run configuration as
// one BENCH_*.json document.
func writeReport(path, name string, a *sympack.Matrix, f *sympack.Factor, ranks, gpus int) error {
	now := time.Now()
	if path == "auto" {
		path = sympack.ReportFilename("sympack2d", now)
	}
	st := &f.Stats
	rep := &sympack.RunReport{
		Command:      "sympack2d",
		Timestamp:    now.UTC().Format(time.RFC3339),
		Matrix:       name,
		N:            a.N,
		Nnz:          int64(a.NnzFull()),
		Ranks:        ranks,
		Workers:      st.Workers,
		GPUs:         gpus,
		WallSeconds:  st.Wall.Seconds(),
		ModelSeconds: st.ModelSeconds,
		Metrics:      f.Metrics.Snapshot().Series,
	}
	if st.ModelSeconds > 0 {
		rep.GFlops = float64(st.FactorFlop) / st.ModelSeconds / 1e9
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := sympack.WriteRunReport(fh, rep); err != nil {
		return err
	}
	fmt.Printf("report: %s\n", path)
	return nil
}

// faultPlan resolves the -chaos / -faults flags into an optional plan. An
// explicit -faults spec wins and is seeded by -chaos when given (else the
// run seed); -chaos alone selects the default chaos plan.
func faultPlan(spec string, chaos, seed int64) (*sympack.FaultPlan, string, error) {
	switch {
	case spec != "":
		s := chaos
		if s == 0 {
			s = seed
		}
		p, err := sympack.ParseFaultPlan(spec, s)
		if err != nil {
			return nil, "", err
		}
		return &p, p.String(), nil
	case chaos != 0:
		p := sympack.DefaultChaosPlan(chaos)
		return &p, p.String(), nil
	default:
		return nil, "", nil
	}
}

// loadMatrix reads a file or builds a generated problem.
func loadMatrix(in, genSpec string, seed int64) (*sympack.Matrix, string, error) {
	switch {
	case in != "":
		fh, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer fh.Close()
		var a *sympack.Matrix
		if strings.HasSuffix(in, ".rb") || strings.HasSuffix(in, ".rua") || strings.HasSuffix(in, ".rsa") {
			a, err = sympack.ReadRutherfordBoeing(fh)
		} else {
			a, err = sympack.ReadMatrixMarket(fh)
		}
		return a, in, err
	case genSpec != "":
		parts := strings.SplitN(genSpec, ":", 2)
		scale := 3
		if len(parts) == 2 {
			s, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, "", fmt.Errorf("bad scale in %q", genSpec)
			}
			scale = s
		}
		switch parts[0] {
		case "flan":
			s := 2 + scale
			return sympack.Flan3D(s, s, s, seed), genSpec, nil
		case "bone":
			s := 4 + 2*scale
			return sympack.Bone3D(s, s, s, 0.35, seed), genSpec, nil
		case "thermal":
			s := 8 + 8*scale
			return sympack.Thermal2D(s, s, scale, seed), genSpec, nil
		case "laplace2d":
			s := 8 + 8*scale
			return sympack.Laplace2D(s, s), genSpec, nil
		case "laplace3d":
			s := 3 + scale
			return sympack.Laplace3D(s, s, s), genSpec, nil
		default:
			return nil, "", fmt.Errorf("unknown generator %q", parts[0])
		}
	default:
		return nil, "", fmt.Errorf("one of -in or -gen is required")
	}
}

// printWorkloadSplit prints the Fig. 6 data: per-operation CPU vs GPU call
// counts for rank 0 (representative, as in the paper) and in aggregate.
func printWorkloadSplit(f *sympack.Factor) {
	fmt.Println("\nworkload distribution (rank 0, as in paper Fig. 6):")
	fmt.Printf("%-8s %12s %12s\n", "op", "CPU", "GPU")
	r0 := f.Stats.PerRank[0]
	for op := 0; op < machine.NumOps; op++ {
		fmt.Printf("%-8s %12d %12d\n", machine.Op(op), r0.CPU[op], r0.GPU[op])
	}
	fmt.Println("\nworkload distribution (all ranks):")
	fmt.Printf("%-8s %12s %12s\n", "op", "CPU", "GPU")
	var tot struct{ cpu, gpu [machine.NumOps]int64 }
	for _, s := range f.Stats.PerRank {
		for op := 0; op < machine.NumOps; op++ {
			tot.cpu[op] += s.CPU[op]
			tot.gpu[op] += s.GPU[op]
		}
	}
	for op := 0; op < machine.NumOps; op++ {
		fmt.Printf("%-8s %12d %12d\n", machine.Op(op), tot.cpu[op], tot.gpu[op])
	}
}
