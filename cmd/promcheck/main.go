// Command promcheck validates a Prometheus text exposition (v0.0.4) read
// from stdin: line format, label escaping, histogram completeness. It is
// the no-external-deps substitute for promtool in the CI metrics smoke
// job:
//
//	curl -s http://127.0.0.1:9464/metrics | promcheck -min 20
//
// Exit status is nonzero when the input is malformed or declares fewer
// than -min distinct metric families.
package main

import (
	"flag"
	"fmt"
	"os"

	"sympack/internal/metrics"
)

func main() {
	min := flag.Int("min", 0, "fail unless at least this many distinct metric families are present")
	flag.Parse()
	families, samples, err := metrics.ValidateExposition(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if families < *min {
		fmt.Fprintf(os.Stderr, "promcheck: %d metric families, want at least %d\n", families, *min)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok: %d families, %d samples\n", families, samples)
}
