package sympack

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	a := Laplace2D(20, 20)
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	f, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestBuilderFlow(t *testing.T) {
	bld := NewBuilder(3)
	bld.Add(0, 0, 4)
	bld.Add(1, 1, 4)
	bld.Add(2, 2, 4)
	bld.Add(1, 0, 1)
	bld.Add(2, 1, 1)
	a, err := bld.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveOnce(a, []float64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, x, []float64{1, 2, 3}); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestAnalysisReuse(t *testing.T) {
	a := Thermal2D(24, 24, 2, 7)
	an, err := Analyze(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if an.NumSupernodes() <= 0 || an.NnzFactor() <= 0 || an.Flops() <= 0 {
		t.Fatal("analysis stats empty")
	}
	rng := rand.New(rand.NewSource(2))
	for _, sigma := range []float64{0, 1, 5} {
		sh, err := a.ShiftDiag(sigma)
		if err != nil {
			t.Fatal(err)
		}
		f, err := an.Factorize(sh)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := ResidualNorm(sh, x, b); r > 1e-10 {
			t.Fatalf("sigma=%g residual %g", sigma, r)
		}
	}
}

func TestBaselineAgreesWithCore(t *testing.T) {
	a := Bone3D(4, 4, 4, 0.3, 3)
	bf, err := FactorizeBaseline(a, OrderNestedDissection)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Factorize(a, Options{Ordering: OrderNestedDissection})
	if err != nil {
		t.Fatal(err)
	}
	for j := int32(0); j < int32(a.N); j++ {
		for i := j; i < int32(a.N); i++ {
			if d := math.Abs(bf.L(i, j) - cf.L(i, j)); d > 1e-9 {
				t.Fatalf("factors disagree at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func TestIORoundTripThroughFacade(t *testing.T) {
	a := RandomSPD(15, 0.3, 4)
	var mm, rb bytes.Buffer
	if err := WriteMatrixMarket(&mm, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteRutherfordBoeing(&rb, a, "facade"); err != nil {
		t.Fatal(err)
	}
	a2, err := ReadMatrixMarket(&mm)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := ReadRutherfordBoeing(&rb)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Nnz() != a.Nnz() || a3.Nnz() != a.Nnz() {
		t.Fatal("round trips lost entries")
	}
}

func TestGeneratorsExported(t *testing.T) {
	if Laplace3D(3, 3, 3).N != 27 {
		t.Fatal("laplace3d")
	}
	if Flan3D(2, 2, 2, 1).N != 24 {
		t.Fatal("flan3d")
	}
	if m := Perlmutter(); m.GPUsPerNode != 4 {
		t.Fatal("perlmutter")
	}
	if th := DefaultThresholds(); th.Gemm <= 0 {
		t.Fatal("thresholds")
	}
}

func TestGPURunThroughFacade(t *testing.T) {
	a := Flan3D(3, 3, 2, 1)
	th := Thresholds{Potrf: 64, Trsm: 128, Syrk: 96, Gemm: 96}
	f, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
		Thresholds: &th, Fallback: FallbackCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gpuOps int64
	for _, s := range f.Stats.PerRank {
		for i := range s.GPU {
			gpuOps += s.GPU[i]
		}
	}
	if gpuOps == 0 {
		t.Fatal("expected offloaded ops")
	}
}

func TestFacadeSaveLoadSelInvRefine(t *testing.T) {
	a := Thermal2D(16, 16, 2, 3)
	f, err := Factorize(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	si, err := g.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	if len(si.Diag()) != a.N {
		t.Fatal("selected inverse diag length")
	}
	b := make([]float64, a.N)
	b[0] = 1
	x, rel, _, err := g.SolveRefined(a, b, 1e-14, 3)
	if err != nil || rel > 1e-12 {
		t.Fatalf("refined solve: rel=%g err=%v", rel, err)
	}
	if r := ResidualNorm(a, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestFacadeTrace(t *testing.T) {
	rec := NewTraceRecorder()
	a := Laplace2D(8, 8)
	if _, err := Factorize(a, Options{Ranks: 2, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
}
