package machine

import "testing"

func TestPerlmutterShape(t *testing.T) {
	m := Perlmutter()
	if m.CoresPerNode != 64 || m.GPUsPerNode != 4 || m.NICsPerNode != 4 {
		t.Fatalf("node shape wrong: %+v", m)
	}
	if !m.GDR {
		t.Fatal("Perlmutter model must default to native memory kinds")
	}
	r := m.WithoutGDR()
	if r.GDR || !m.GDR {
		t.Fatal("WithoutGDR must copy, not mutate")
	}
}

func TestCPUGPUCrossover(t *testing.T) {
	m := Perlmutter()
	// Tiny kernels: CPU must win (launch overhead dominates).
	small := KernelFlops(OpGemm, 8, 8, 8)
	if m.GPUTime(small) <= m.CPUTime(small) {
		t.Fatalf("tiny GEMM should be faster on CPU: gpu=%g cpu=%g", m.GPUTime(small), m.CPUTime(small))
	}
	// Large kernels: GPU must win by a wide margin.
	big := KernelFlops(OpGemm, 2048, 2048, 2048)
	if m.GPUTime(big) >= m.CPUTime(big)/10 {
		t.Fatalf("large GEMM should be ≫ faster on GPU: gpu=%g cpu=%g", m.GPUTime(big), m.CPUTime(big))
	}
	// Monotonicity in flops.
	if m.GPUTime(big) <= m.GPUTime(small) {
		t.Fatal("GPU time not monotone")
	}
	if m.CPUTime(big) <= m.CPUTime(small) {
		t.Fatal("CPU time not monotone")
	}
}

func TestKernelFlops(t *testing.T) {
	if KernelFlops(OpPotrf, 0, 6, 0) != 72 {
		t.Fatal("potrf flops")
	}
	if KernelFlops(OpTrsm, 5, 3, 0) != 45 {
		t.Fatal("trsm flops")
	}
	if KernelFlops(OpSyrk, 3, 2, 0) != 24 {
		t.Fatal("syrk flops")
	}
	if KernelFlops(OpGemm, 2, 3, 4) != 2*2*3*4 {
		t.Fatal("gemm flops")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{OpPotrf: "POTRF", OpTrsm: "TRSM", OpSyrk: "SYRK", OpGemm: "GEMM"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%v != %s", op, want)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0.25)
	if c.Seconds() != 1.75 {
		t.Fatalf("clock = %g", c.Seconds())
	}
	c.Reset()
	if c.Seconds() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHostDeviceCopyTime(t *testing.T) {
	m := Perlmutter()
	small := m.HostDeviceCopyTime(8)
	big := m.HostDeviceCopyTime(1 << 26)
	if big <= small {
		t.Fatal("copy time not monotone")
	}
	// Large copies approach the configured bandwidth.
	bw := float64(int64(1<<26)) / big
	if bw < 0.5*m.GPUCopyBandwidth {
		t.Fatalf("large-copy bandwidth %g too far below %g", bw, m.GPUCopyBandwidth)
	}
}

func TestFrontierShape(t *testing.T) {
	f := Frontier()
	if f.Name != "frontier" || f.GPUsPerNode != 4 || !f.GDR {
		t.Fatalf("frontier model wrong: %+v", f)
	}
	// AMD model must differ from the NVIDIA one where it matters.
	p := Perlmutter()
	if f.GPUFlops == p.GPUFlops || f.GPULaunchOverhead == p.GPULaunchOverhead {
		t.Fatal("frontier should not clone perlmutter")
	}
	// Sanity: large kernels still much faster on its GPU.
	fl := KernelFlops(OpGemm, 1024, 1024, 1024)
	if f.GPUTime(fl) >= f.CPUTime(fl) {
		t.Fatal("frontier GPU should beat CPU on large GEMM")
	}
}
