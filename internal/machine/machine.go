// Package machine describes the execution platform being modeled. The
// paper's experiments run on NERSC Perlmutter GPU nodes (one 64-core AMD
// EPYC 7763, four NVIDIA A100s, four Slingshot-11 NICs); since none of that
// hardware is reachable from a Go test suite, this package captures it as a
// parametric cost model that the simulated GPU (internal/gpu), the simulated
// network (internal/simnet) and the strong-scaling engine (internal/des)
// consume. Only relative magnitudes matter for reproducing the paper's
// figure shapes; the defaults are taken from public Perlmutter
// specifications.
package machine

import (
	"math"
	"sync/atomic"

	"sympack/internal/blas"
)

// Machine is a distributed-memory platform description.
type Machine struct {
	Name string

	// Node shape.
	CoresPerNode int
	GPUsPerNode  int
	NICsPerNode  int

	// Compute rates in FLOP/s. CPUFlops is per core (the paper runs
	// flat, one process per core); GPUFlops is per GPU at asymptotic
	// FP64 throughput.
	CPUFlops float64
	GPUFlops float64

	// GPU kernel-launch overhead in seconds (invocation + sync), the
	// quantity that makes small-block offload unprofitable (paper §4.2).
	GPULaunchOverhead float64
	// Host↔device copy bandwidth within a node, bytes/s.
	GPUCopyBandwidth float64
	// Host↔device copy setup latency, seconds.
	GPUCopyLatency float64

	// Network parameters per NIC.
	NICLatency   float64 // one-way small-message latency, seconds
	NICBandwidth float64 // large-message bandwidth, bytes/s

	// GDR (GPUDirect RDMA / native memory kinds): when false, transfers
	// touching device memory stage through a host bounce buffer
	// (the "Reference" implementation of Fig. 5).
	GDR bool
	// StagingOverhead is the extra per-transfer latency of the staged
	// path (progress-thread handoff + bounce-buffer management).
	StagingOverhead float64
	// StagingBandwidth is the effective bandwidth of the staged
	// pipeline (bounce copy serializes with the wire).
	StagingBandwidth float64
}

// Perlmutter returns the model of a NERSC Perlmutter GPU node group with
// native memory kinds enabled.
func Perlmutter() Machine {
	return Machine{
		Name:              "perlmutter-gpu",
		CoresPerNode:      64,
		GPUsPerNode:       4,
		NICsPerNode:       4,
		CPUFlops:          35e9,   // one Milan core, dense DGEMM
		GPUFlops:          15e12,  // A100 FP64 (sustained, no tensor cores for TRSM/POTRF mix)
		GPULaunchOverhead: 8e-6,   // CUDA launch + sync
		GPUCopyBandwidth:  22e9,   // PCIe 4.0 x16 effective
		GPUCopyLatency:    6e-6,   //
		NICLatency:        2.2e-6, // Slingshot-11 put/get
		NICBandwidth:      23e9,   // ~25 GB/s wire, minus protocol
		GDR:               true,
		StagingOverhead:   12e-6,
		StagingBandwidth:  17.7e9,
	}
}

// Frontier returns a model of an OLCF Frontier node (AMD EPYC "Trento" +
// 4× MI250X, Slingshot-11). The paper's §6 notes symPACK's portability to
// AMD GPUs through UPC++ memory kinds; this model exists to exercise the
// hardware-agnostic parts of the solver (notably the analytical offload
// thresholds) against a second platform.
func Frontier() Machine {
	return Machine{
		Name:              "frontier",
		CoresPerNode:      64,
		GPUsPerNode:       4, // MI250X counted as one device here
		NICsPerNode:       4,
		CPUFlops:          32e9,
		GPUFlops:          24e12, // MI250X FP64 vector (both dies)
		GPULaunchOverhead: 11e-6, // HIP launch + sync, a touch above CUDA
		GPUCopyBandwidth:  36e9,  // Infinity Fabric host link
		GPUCopyLatency:    7e-6,
		NICLatency:        2.0e-6,
		NICBandwidth:      24e9,
		GDR:               true,
		StagingOverhead:   13e-6,
		StagingBandwidth:  17e9,
	}
}

// WithoutGDR returns a copy using the reference (host-staged) memory-kinds
// path, the "Reference" series of Fig. 5.
func (m Machine) WithoutGDR() Machine {
	m.GDR = false
	m.Name += "-refkinds"
	return m
}

// Op enumerates the BLAS/LAPACK kernels the solver invokes (paper §3.2).
type Op uint8

const (
	OpPotrf Op = iota
	OpTrsm
	OpSyrk
	OpGemm
	numOps
)

// NumOps is the number of kernel kinds.
const NumOps = int(numOps)

func (o Op) String() string {
	switch o {
	case OpPotrf:
		return "POTRF"
	case OpTrsm:
		return "TRSM"
	case OpSyrk:
		return "SYRK"
	case OpGemm:
		return "GEMM"
	default:
		return "OP?"
	}
}

// KernelFlops returns the flop count of an operation with the solver's
// block geometry: m = block rows, n = supernode width, k = inner dimension
// (rows of the transposed operand for GEMM/SYRK; unused for POTRF/TRSM).
func KernelFlops(op Op, m, n, k int) int64 {
	switch op {
	case OpPotrf:
		return blas.FlopsPotrf(n)
	case OpTrsm:
		return blas.FlopsTrsm(blas.Right, m, n)
	case OpSyrk:
		return blas.FlopsSyrk(m, n)
	case OpGemm:
		return blas.FlopsGemm(m, k, n)
	default:
		return 0
	}
}

// CPUTime returns the modeled wall time of running `flops` on one core.
// Small kernels run below peak; a fixed call overhead plus an efficiency
// taper keeps tiny operations from looking free.
func (m *Machine) CPUTime(flops int64) float64 {
	const callOverhead = 1e-7 // BLAS dispatch etc.
	eff := 1.0
	if flops < 1e5 {
		eff = 0.35 // out of cache warmup, loop overheads
	} else if flops < 1e7 {
		eff = 0.7
	}
	return callOverhead + float64(flops)/(m.CPUFlops*eff)
}

// GPUTime returns the modeled wall time of running `flops` as one kernel on
// the GPU, excluding data movement: the launch overhead dominates small
// kernels, which is exactly what the paper's offload thresholds exploit.
func (m *Machine) GPUTime(flops int64) float64 {
	eff := 1.0
	if flops < 1e7 {
		eff = 0.15 // far from saturating 100k+ threads
	} else if flops < 1e9 {
		eff = 0.55
	}
	return m.GPULaunchOverhead + float64(flops)/(m.GPUFlops*eff)
}

// HostDeviceCopyTime returns the modeled time to move `bytes` between host
// and device memory within one node.
func (m *Machine) HostDeviceCopyTime(bytes int64) float64 {
	return m.GPUCopyLatency + float64(bytes)/m.GPUCopyBandwidth
}

// Clock is an accumulator of modeled seconds, used by the runtime to
// attribute virtual time to ranks. It is safe for concurrent use: with the
// engine's intra-rank worker pool, several executor goroutines charge kernel
// time to one rank's clock at once, so Advance is a lock-free CAS add.
type Clock struct {
	bits atomic.Uint64 // float64 seconds, as IEEE-754 bits
}

// Advance adds dt seconds.
func (c *Clock) Advance(dt float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + dt)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Seconds returns the accumulated time.
func (c *Clock) Seconds() float64 { return math.Float64frombits(c.bits.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.bits.Store(0) }
