// Wall-time facade. The solver's deterministic packages are forbidden (and
// mechanically prevented, by sympacklint's wallclock analyzer) from calling
// time.Now/time.Sleep directly: modeled time lives in Clock, and anything
// that reads the host clock could leak schedule timing into numeric state.
// The few legitimate host-clock uses — idle backoff that paces a spinning
// goroutine, watchdog tickers, wall-time statistics — route through this
// file instead, so every wall-clock touchpoint in the solver is enumerable
// here and auditable as "pacing or reporting only, never feeds factor
// bits". See DESIGN.md §10.
package machine

import "time"

// WallNow returns the host wall-clock time. For statistics and backoff
// deadlines only; factor bits must never depend on it.
func WallNow() time.Time { return time.Now() }

// WallSince returns the host wall-clock time elapsed since t0.
func WallSince(t0 time.Time) time.Duration { return time.Since(t0) }

// Backoff sleeps the calling goroutine for d of host time. It paces idle
// spins and injected stalls; it carries no modeled-time meaning (use
// Clock.Advance for that).
func Backoff(d time.Duration) { time.Sleep(d) }

// NewWallTicker returns a host-time ticker (watchdog pacing). The caller
// owns Stop.
func NewWallTicker(d time.Duration) *time.Ticker { return time.NewTicker(d) }
