// Package gpu simulates the CUDA accelerator of the paper's §4: a device
// with its own bounded memory, cuBLAS/cuSolver-like kernels (GEMM, SYRK,
// TRSM, POTRF) and a kernel-launch overhead that makes small operations
// unprofitable. Kernels perform the real numeric computation (via
// internal/blas) on device-resident buffers and return the modeled elapsed
// time, so both numeric correctness and the offload-economics behaviour the
// paper depends on are exercised.
package gpu

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"sympack/internal/blas"
	"sympack/internal/faults"
	"sympack/internal/machine"
	"sympack/internal/metrics"
)

// ErrOutOfMemory is returned when a device allocation does not fit. The
// solver's fallback options (§4.2) react to it.
var ErrOutOfMemory = errors.New("gpu: device out of memory")

// ErrDeviceFailed is returned once a device has gone permanently bad
// (injected mid-run hardware failure). Unlike ErrOutOfMemory it never
// clears: ranks bound to the device must demote themselves to CPU kernels.
var ErrDeviceFailed = errors.New("gpu: device failed")

// DefaultAdmission is the default number of concurrently admitted device
// operations (kernels and host↔device copies) per device — the stand-in for
// a small pool of CUDA streams. Ranks' worker pools share one device, so
// admission is the back-pressure that keeps a device from being timeshared
// by arbitrarily many concurrent submissions.
const DefaultAdmission = 4

// Device is one simulated GPU.
type Device struct {
	ID int
	M  machine.Machine

	mu       sync.Mutex
	capacity int64 // in float64 elements
	used     int64

	// admit is a counting semaphore bounding concurrently executing
	// device operations (per-op admission); every kernel and copy holds
	// one slot for its duration.
	admit chan struct{}

	// Busy accumulates modeled kernel seconds, for utilization reports.
	busy machine.Clock

	// inj, when non-nil, may fail allocations transiently or kill the
	// device outright; failed latches the death.
	inj    *faults.Injector
	failed atomic.Bool

	// met, when non-nil, receives allocation/admission telemetry.
	met *devMetrics
}

// devMetrics bundles the live per-device series so hot paths pay one
// atomic per event, never a registry lookup.
type devMetrics struct {
	admissions    *metrics.Counter
	allocs        *metrics.Counter
	allocFailures [3]*metrics.Counter // devfail, transient, oom
	memPeak       *metrics.Gauge
}

const (
	allocFailDev = iota
	allocFailTransient
	allocFailOOM
)

// SetMetrics registers this device's series in reg and starts recording.
// Call before the device is shared with concurrent users.
func (d *Device) SetMetrics(reg *metrics.Registry) {
	id := strconv.Itoa(d.ID)
	m := &devMetrics{
		admissions: reg.Counter("sympack_gpu_device_admissions_total",
			"device operations (kernels and copies) admitted through the stream semaphore", "device", id),
		allocs: reg.Counter("sympack_gpu_device_allocs_total",
			"successful device buffer allocations", "device", id),
		memPeak: reg.Gauge("sympack_gpu_device_mem_peak_elements",
			"high-water device memory use in float64 elements", metrics.MergeMax, "device", id),
	}
	for i, reason := range []string{"devfail", "transient", "oom"} {
		m.allocFailures[i] = reg.Counter("sympack_gpu_device_alloc_failures_total",
			"device allocation failures by cause", "device", id, "reason", reason)
	}
	d.met = m
}

// NewDevice creates a device with a capacity of capElems float64 elements.
// Zero or negative capacity means unbounded.
func NewDevice(id int, m machine.Machine, capElems int64) *Device {
	return &Device{ID: id, M: m, capacity: capElems, admit: make(chan struct{}, DefaultAdmission)}
}

// SetAdmission resizes the per-op admission semaphore (n ≥ 1). It must be
// called before the device is shared with concurrent users.
func (d *Device) SetAdmission(n int) {
	if n < 1 {
		n = 1
	}
	d.admit = make(chan struct{}, n)
}

// Admission returns the concurrent-operation limit.
func (d *Device) Admission() int { return cap(d.admit) }

// begin blocks until an admission slot is free; end releases it. Every
// kernel and host↔device copy runs inside a begin/end pair, so at most
// cap(admit) device operations make progress at once regardless of how many
// executor goroutines target the device.
func (d *Device) begin() {
	d.admit <- struct{}{}
	if d.met != nil {
		d.met.admissions.Inc()
	}
}
func (d *Device) end() { <-d.admit }

// Buffer is a device-resident array. Its Data lives in host address space
// (this is a simulation) but is accounted against the device capacity and
// must only be touched through kernels and copies, as real device memory
// would be.
type Buffer struct {
	dev  *Device
	Data []float64
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.Data) }

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// SetFaults attaches a fault injector consulted on every allocation; nil
// detaches it.
func (d *Device) SetFaults(inj *faults.Injector) { d.inj = inj }

// Failed reports whether the device has gone permanently bad.
func (d *Device) Failed() bool { return d.failed.Load() }

// MarkFailed kills the device permanently (tests and operators).
func (d *Device) MarkFailed() { d.failed.Store(true) }

// Alloc reserves n float64 elements of device memory. It returns
// ErrDeviceFailed once the device is dead, a transient error (wrapping
// faults.ErrTransient) on an injected hiccup, and ErrOutOfMemory when the
// allocation genuinely does not fit.
func (d *Device) Alloc(n int) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d", n)
	}
	if d.failed.Load() || d.inj.DeviceFailed(d.ID) {
		d.failed.Store(true)
		d.countAllocFail(allocFailDev)
		return nil, fmt.Errorf("device %d: %w", d.ID, ErrDeviceFailed)
	}
	if d.inj.AllocFault(d.ID) {
		d.countAllocFail(allocFailTransient)
		return nil, fmt.Errorf("gpu: device %d: injected allocation failure: %w", d.ID, faults.ErrTransient)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.capacity > 0 && d.used+int64(n) > d.capacity {
		d.countAllocFail(allocFailOOM)
		return nil, fmt.Errorf("%w: want %d elements, %d of %d in use", ErrOutOfMemory, n, d.used, d.capacity)
	}
	d.used += int64(n)
	if d.met != nil {
		d.met.allocs.Inc()
		d.met.memPeak.SetMax(float64(d.used))
	}
	return &Buffer{dev: d, Data: make([]float64, n)}, nil
}

func (d *Device) countAllocFail(reason int) {
	if d.met != nil {
		d.met.allocFailures[reason].Inc()
	}
}

// Free releases a buffer's reservation. Double frees are programming
// errors and panic.
func (d *Device) Free(b *Buffer) {
	if b == nil || b.dev != d {
		panic("gpu: freeing foreign or nil buffer")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.used -= int64(len(b.Data))
	if d.used < 0 {
		panic("gpu: double free")
	}
	b.dev = nil
	b.Data = nil
}

// Used returns the current allocation in elements.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Capacity returns the device capacity in elements (0 = unbounded).
func (d *Device) Capacity() int64 { return d.capacity }

// BusySeconds returns accumulated modeled kernel time.
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy.Seconds()
}

func (d *Device) charge(flops int64) float64 {
	dt := d.M.GPUTime(flops)
	d.mu.Lock()
	d.busy.Advance(dt)
	d.mu.Unlock()
	return dt
}

// HostToDevice copies host data into a device buffer, returning modeled
// seconds.
func (d *Device) HostToDevice(dst *Buffer, src []float64) float64 {
	d.begin()
	defer d.end()
	copy(dst.Data, src)
	return d.M.HostDeviceCopyTime(int64(len(src) * 8))
}

// DeviceToHost copies device data back to the host, returning modeled
// seconds.
func (d *Device) DeviceToHost(dst []float64, src *Buffer) float64 {
	d.begin()
	defer d.end()
	copy(dst, src.Data)
	return d.M.HostDeviceCopyTime(int64(len(dst) * 8))
}

// Potrf runs the cuSOLVER-equivalent Cholesky factorization on a device
// buffer (column-major, order n, leading dimension ld), returning modeled
// seconds.
func (d *Device) Potrf(n int, a *Buffer, lda int) (float64, error) {
	d.begin()
	defer d.end()
	if err := blas.Potrf(blas.Lower, n, a.Data, lda); err != nil {
		return 0, err
	}
	return d.charge(blas.FlopsPotrf(n)), nil
}

// Trsm runs the cuBLAS triangular solve X·Lᵀ = B used by factorization
// tasks: b (m×n) is overwritten with the solution against the lower factor
// in a (n×n).
func (d *Device) Trsm(m, n int, a *Buffer, lda int, b *Buffer, ldb int) float64 {
	d.begin()
	defer d.end()
	blas.Trsm(blas.Right, blas.Lower, blas.Transpose, m, n, 1, a.Data, lda, b.Data, ldb)
	return d.charge(blas.FlopsTrsm(blas.Right, m, n))
}

// Syrk runs the cuBLAS symmetric rank-k product C = A·Aᵀ (lower triangle,
// beta = 0), producing the scratch contribution the solver scatters into
// its target block.
func (d *Device) Syrk(n, k int, a *Buffer, lda int, c *Buffer, ldc int) float64 {
	d.begin()
	defer d.end()
	blas.Syrk(blas.Lower, blas.NoTrans, n, k, 1, a.Data, lda, 0, c.Data, ldc)
	return d.charge(blas.FlopsSyrk(n, k))
}

// Gemm runs the cuBLAS product C = A·Bᵀ (beta = 0) with A m×k, B n×k,
// C m×n, producing the scratch contribution the solver scatters into its
// target block.
func (d *Device) Gemm(m, n, k int, a *Buffer, lda int, b *Buffer, ldb int, c *Buffer, ldc int) float64 {
	d.begin()
	defer d.end()
	blas.Gemm(blas.NoTrans, blas.Transpose, m, n, k, 1, a.Data, lda, b.Data, ldb, 0, c.Data, ldc)
	return d.charge(blas.FlopsGemm(m, n, k))
}

// FallbackPolicy selects what the solver does when a device allocation
// fails (paper §4.2: "fallback options").
type FallbackPolicy uint8

const (
	// FallbackCPU silently performs the computation on the CPU (default).
	FallbackCPU FallbackPolicy = iota
	// FallbackError aborts the factorization so the user can rerun with
	// more device memory.
	FallbackError
)

func (p FallbackPolicy) String() string {
	if p == FallbackCPU {
		return "cpu"
	}
	return "error"
}

// Thresholds holds the per-operation minimum problem sizes (in elements of
// the output buffer) above which an operation is offloaded to the GPU. Each
// operation gets its own threshold because each has a different
// non-asymptotic arithmetic intensity (§4.2).
type Thresholds struct {
	Potrf int
	Trsm  int
	Syrk  int
	Gemm  int
}

// DefaultThresholds mirror the paper's brute-force manual tuning (§4.2),
// here tuned against the modeled Perlmutter costs so that an offloaded
// operation — kernel launch plus PCIe copies — actually beats the CPU at
// the threshold. POTRF needs the largest blocks (small factorizations
// cannot fill the device); GEMM/SYRK amortize earliest thanks to their
// higher arithmetic intensity.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Potrf: 160 * 160,
		Trsm:  128 * 128,
		Syrk:  96 * 96,
		Gemm:  96 * 96,
	}
}

// ShouldOffload applies the per-op threshold to an operation whose output
// buffer holds `elems` elements.
func (t Thresholds) ShouldOffload(op machine.Op, elems int) bool {
	switch op {
	case machine.OpPotrf:
		return elems >= t.Potrf
	case machine.OpTrsm:
		return elems >= t.Trsm
	case machine.OpSyrk:
		return elems >= t.Syrk
	case machine.OpGemm:
		return elems >= t.Gemm
	default:
		return false
	}
}
