package gpu

import (
	"testing"

	"sympack/internal/machine"
)

func TestAnalyticThresholdsEconomics(t *testing.T) {
	for _, m := range []machine.Machine{machine.Perlmutter(), machine.Frontier()} {
		th := AnalyticThresholds(m)
		for _, op := range []machine.Op{machine.OpPotrf, machine.OpTrsm, machine.OpSyrk, machine.OpGemm} {
			var thr int
			switch op {
			case machine.OpPotrf:
				thr = th.Potrf
			case machine.OpTrsm:
				thr = th.Trsm
			case machine.OpSyrk:
				thr = th.Syrk
			case machine.OpGemm:
				thr = th.Gemm
			}
			if thr <= 1 {
				t.Fatalf("%s/%v: degenerate threshold %d", m.Name, op, thr)
			}
			// At the threshold edge, the GPU must win; well below it, the
			// CPU must win.
			edge := 1
			for edge*edge < thr {
				edge++
			}
			if !offloadWins(&m, op, edge+1) {
				t.Fatalf("%s/%v: GPU does not win just above threshold edge %d", m.Name, op, edge)
			}
			if offloadWins(&m, op, max(edge/4, 2)) && edge > 12 {
				t.Fatalf("%s/%v: GPU already wins far below threshold edge %d", m.Name, op, edge)
			}
		}
	}
}

// The derived thresholds must land in the same regime as the brute-force
// tuned defaults for the default machine (the paper tuned on Perlmutter).
func TestAnalyticMatchesTunedRegime(t *testing.T) {
	th := AnalyticThresholds(machine.Perlmutter())
	def := DefaultThresholds()
	check := func(name string, got, want int) {
		lo, hi := want/6, want*6
		if got < lo || got > hi {
			t.Fatalf("%s: analytic %d outside [%d, %d] around tuned %d", name, got, lo, hi, want)
		}
	}
	check("potrf", th.Potrf, def.Potrf)
	check("trsm", th.Trsm, def.Trsm)
	check("syrk", th.Syrk, def.Syrk)
	check("gemm", th.Gemm, def.Gemm)
	// The qualitative ordering: POTRF needs the largest blocks (poor GPU
	// efficiency at small orders), GEMM/SYRK amortize earliest.
	if th.Potrf <= th.Gemm {
		t.Fatalf("potrf threshold %d should exceed gemm %d", th.Potrf, th.Gemm)
	}
}

// Hardware-agnosticism: a different platform yields different thresholds
// from the same framework.
func TestAnalyticThresholdsVaryByMachine(t *testing.T) {
	p := AnalyticThresholds(machine.Perlmutter())
	f := AnalyticThresholds(machine.Frontier())
	if p == f {
		t.Fatal("distinct machines produced identical thresholds")
	}
	// A machine with an absurdly slow GPU should effectively never
	// offload.
	slow := machine.Perlmutter()
	slow.GPUFlops = slow.CPUFlops / 4
	s := AnalyticThresholds(slow)
	if s.Gemm < 1<<20 {
		t.Fatalf("slow-GPU machine got gemm threshold %d, want effectively-never", s.Gemm)
	}
}

func TestAnalyticShapeSanity(t *testing.T) {
	for _, op := range []machine.Op{machine.OpPotrf, machine.OpTrsm, machine.OpSyrk, machine.OpGemm} {
		f1, b1 := analyticShape(op, 16)
		f2, b2 := analyticShape(op, 32)
		if f2 <= f1 || b2 <= b1 {
			t.Fatalf("%v: shape not monotone", op)
		}
	}
	if f, b := analyticShape(machine.Op(99), 16); f != 0 || b != 0 {
		t.Fatal("unknown op should be zero")
	}
}
