package gpu

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sympack/internal/blas"
	"sympack/internal/machine"
)

func newDev(capElems int64) *Device {
	return NewDevice(0, machine.Perlmutter(), capElems)
}

func TestAllocFreeAccounting(t *testing.T) {
	d := newDev(100)
	b1, err := d.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 60 {
		t.Fatalf("used = %d", d.Used())
	}
	if _, err := d.Alloc(50); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	b2, err := d.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	d.Free(b1)
	if d.Used() != 40 {
		t.Fatalf("used after free = %d", d.Used())
	}
	d.Free(b2)
	if d.Used() != 0 {
		t.Fatal("not all freed")
	}
}

func TestAllocUnbounded(t *testing.T) {
	d := newDev(0)
	if _, err := d.Alloc(10_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestAllocNegative(t *testing.T) {
	d := newDev(0)
	if _, err := d.Alloc(-1); err == nil {
		t.Fatal("expected error")
	}
}

func TestFreeForeignPanics(t *testing.T) {
	d1, d2 := newDev(10), newDev(10)
	b, _ := d1.Alloc(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d2.Free(b)
}

func TestKernelsComputeCorrectly(t *testing.T) {
	d := newDev(0)
	rng := rand.New(rand.NewSource(1))
	n := 12
	// Build SPD on the device, factor, and reconstruct.
	host := make([]float64, n*n)
	tmp := make([]float64, n*n)
	for i := range tmp {
		tmp[i] = rng.NormFloat64()
	}
	blas.RefGemm(blas.NoTrans, blas.Transpose, n, n, n, 1, tmp, n, tmp, n, 0, host, n)
	for i := 0; i < n; i++ {
		host[i+i*n] += float64(n)
	}
	buf, _ := d.Alloc(n * n)
	if dt := d.HostToDevice(buf, host); dt <= 0 {
		t.Fatal("copy time must be positive")
	}
	dt, err := d.Potrf(n, buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatal("kernel time must be positive")
	}
	got := make([]float64, n*n)
	d.DeviceToHost(got, buf)
	// L·Lᵀ ≈ original.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			for r := 0; r <= j; r++ {
				s += got[i+r*n] * got[j+r*n]
			}
			if math.Abs(s-host[i+j*n]) > 1e-8*float64(n) {
				t.Fatalf("device potrf wrong at (%d,%d)", i, j)
			}
		}
	}
	if d.BusySeconds() <= 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestDeviceGemmSyrkTrsmMatchHost(t *testing.T) {
	d := newDev(0)
	rng := rand.New(rand.NewSource(2))
	m, n, k := 7, 5, 6
	a := make([]float64, m*k)
	b := make([]float64, n*k)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	want := make([]float64, m*n)
	blas.Gemm(blas.NoTrans, blas.Transpose, m, n, k, 1, a, m, b, n, 0, want, m)

	da, _ := d.Alloc(m * k)
	db, _ := d.Alloc(n * k)
	dc, _ := d.Alloc(m * n)
	d.HostToDevice(da, a)
	d.HostToDevice(db, b)
	d.HostToDevice(dc, c)
	d.Gemm(m, n, k, da, m, db, n, dc, m)
	got := make([]float64, m*n)
	d.DeviceToHost(got, dc)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("device gemm differs from host")
		}
	}

	// SYRK.
	cs := make([]float64, m*m)
	for i := range cs {
		cs[i] = rng.NormFloat64()
	}
	wantS := make([]float64, m*m)
	blas.Syrk(blas.Lower, blas.NoTrans, m, k, 1, a, m, 0, wantS, m)
	// Syrk writes only the lower triangle; mirror the untouched upper
	// entries of the input so the comparison is apples-to-apples.
	for j := 0; j < m; j++ {
		for i := 0; i < j; i++ {
			wantS[i+j*m] = cs[i+j*m]
		}
	}
	dcs, _ := d.Alloc(m * m)
	d.HostToDevice(dcs, cs)
	d.Syrk(m, k, da, m, dcs, m)
	gotS := make([]float64, m*m)
	d.DeviceToHost(gotS, dcs)
	for i := range gotS {
		if math.Abs(gotS[i]-wantS[i]) > 1e-12 {
			t.Fatal("device syrk differs from host")
		}
	}

	// TRSM against a well-conditioned lower factor.
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = rng.NormFloat64()
		}
		l[j+j*n] = 3 + math.Abs(l[j+j*n])
	}
	x := make([]float64, m*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	wantX := append([]float64(nil), x...)
	blas.Trsm(blas.Right, blas.Lower, blas.Transpose, m, n, 1, l, n, wantX, m)
	dl, _ := d.Alloc(n * n)
	dx, _ := d.Alloc(m * n)
	d.HostToDevice(dl, l)
	d.HostToDevice(dx, x)
	d.Trsm(m, n, dl, n, dx, m)
	gotX := make([]float64, m*n)
	d.DeviceToHost(gotX, dx)
	for i := range gotX {
		if math.Abs(gotX[i]-wantX[i]) > 1e-12 {
			t.Fatal("device trsm differs from host")
		}
	}
}

func TestPotrfErrorPropagates(t *testing.T) {
	d := newDev(0)
	buf, _ := d.Alloc(4)
	// Indefinite 2x2.
	copy(buf.Data, []float64{1, 2, 2, 1})
	if _, err := d.Potrf(2, buf, 2); !errors.Is(err, blas.ErrNotPositiveDefinite) {
		t.Fatalf("expected not-SPD error, got %v", err)
	}
}

func TestThresholds(t *testing.T) {
	th := DefaultThresholds()
	// A tiny block stays on CPU for every op.
	for _, op := range []machine.Op{machine.OpPotrf, machine.OpTrsm, machine.OpSyrk, machine.OpGemm} {
		if th.ShouldOffload(op, 16) {
			t.Fatalf("%v offloaded a 16-element block", op)
		}
		if !th.ShouldOffload(op, 1<<20) {
			t.Fatalf("%v kept a 1M-element block on CPU", op)
		}
	}
	// Ops have distinct thresholds (the paper's point about differing
	// arithmetic intensity).
	if th.Potrf == th.Trsm && th.Trsm == th.Syrk {
		t.Fatal("thresholds should differ per op")
	}
}

func TestFallbackPolicyString(t *testing.T) {
	if FallbackCPU.String() != "cpu" || FallbackError.String() != "error" {
		t.Fatal("policy names")
	}
}

// The economics the thresholds encode: total modeled time (copies +
// kernel) must favor CPU below threshold and GPU above, for the default
// machine.
func TestOffloadEconomics(t *testing.T) {
	m := machine.Perlmutter()
	cost := func(n int, onGPU bool) float64 {
		fl := machine.KernelFlops(machine.OpGemm, n, n, n)
		if !onGPU {
			return m.CPUTime(fl)
		}
		bytes := int64(3 * n * n * 8)
		return m.HostDeviceCopyTime(bytes) + m.GPUTime(fl)
	}
	if cost(8, true) < cost(8, false) {
		t.Fatal("8×8 GEMM should not be worth offloading")
	}
	if cost(512, true) > cost(512, false) {
		t.Fatal("512×512 GEMM should be worth offloading")
	}
}
