package gpu

import (
	"errors"
	"testing"

	"sympack/internal/faults"
)

func faultyDev(capElems int64, c faults.Class, rate float64, limit int64) *Device {
	p := faults.Plan{Seed: 7}
	p.Rate[c] = rate
	p.Limit[c] = limit
	d := newDev(capElems)
	d.SetFaults(faults.New(p, 1))
	return d
}

func TestAllocTransientFault(t *testing.T) {
	// Limit 2: the first two allocations hiccup transiently, the third
	// succeeds. Transient failures must not consume device capacity.
	d := faultyDev(100, faults.TransientOOM, 1.0, 2)
	for i := 0; i < 2; i++ {
		_, err := d.Alloc(10)
		if !errors.Is(err, faults.ErrTransient) {
			t.Fatalf("alloc %d: err = %v, want transient", i, err)
		}
		if errors.Is(err, ErrOutOfMemory) || errors.Is(err, ErrDeviceFailed) {
			t.Fatalf("alloc %d misclassified: %v", i, err)
		}
	}
	b, err := d.Alloc(10)
	if err != nil {
		t.Fatalf("alloc after fault budget: %v", err)
	}
	if d.Used() != 10 {
		t.Fatalf("used = %d after transient failures", d.Used())
	}
	d.Free(b)
}

func TestDeviceFailedLatches(t *testing.T) {
	d := faultyDev(100, faults.DeviceFail, 1.0, 0)
	if d.Failed() {
		t.Fatal("device dead before first touch")
	}
	_, err := d.Alloc(10)
	if !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	if errors.Is(err, faults.ErrTransient) {
		t.Fatalf("permanent failure misclassified as transient: %v", err)
	}
	if !d.Failed() {
		t.Fatal("failure must latch on the device")
	}
	// The latch holds even if the injector would no longer fire.
	d.SetFaults(nil)
	if _, err := d.Alloc(10); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("latched device allocated: %v", err)
	}
}

func TestMarkFailed(t *testing.T) {
	d := newDev(100)
	if d.Failed() {
		t.Fatal("fresh device reports failed")
	}
	d.MarkFailed()
	if !d.Failed() {
		t.Fatal("MarkFailed did not latch")
	}
	if _, err := d.Alloc(1); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
}
