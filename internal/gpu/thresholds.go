package gpu

import "sympack/internal/machine"

// This file implements the paper's §6 future-work item: "a hardware-
// agnostic analytical framework for determining the optimal GPU threshold
// sizes for each operation". Instead of the brute-force manual tuning the
// paper used, AnalyticThresholds derives each operation's offload
// threshold directly from a machine's cost model by locating the crossover
// where the offloaded execution (kernel launch + PCIe copies + device
// time) becomes cheaper than the host execution.

// analyticShape describes one operation's modeled geometry as a function
// of a square block edge s: its flop count and the bytes that must cross
// the host-device link (inputs + outputs), assuming no operand caching —
// the conservative case the thresholds must cover.
func analyticShape(op machine.Op, s int) (flops int64, bytes int64) {
	e := int64(s) * int64(s)
	switch op {
	case machine.OpPotrf:
		// In-place factorization: the block goes down and comes back.
		return machine.KernelFlops(machine.OpPotrf, 0, s, 0), 2 * 8 * e
	case machine.OpTrsm:
		// The panel block round-trips; the triangular operand goes down
		// once (often device-resident already, but the threshold must
		// hold without that luck).
		return machine.KernelFlops(machine.OpTrsm, s, s, 0), 3 * 8 * e
	case machine.OpSyrk:
		// One operand down, the scratch product back.
		return machine.KernelFlops(machine.OpSyrk, s, s, 0), 2 * 8 * e
	case machine.OpGemm:
		// Two operands down, the scratch product back.
		return machine.KernelFlops(machine.OpGemm, s, s, s), 3 * 8 * e
	default:
		return 0, 0
	}
}

// offloadWins reports whether the modeled GPU execution of op at edge s
// beats the CPU execution on machine m.
func offloadWins(m *machine.Machine, op machine.Op, s int) bool {
	flops, bytes := analyticShape(op, s)
	gpu := m.GPUTime(flops) + m.HostDeviceCopyTime(bytes)
	return gpu < m.CPUTime(flops)
}

// crossover returns the smallest block edge s at which offloading op wins
// and keeps winning (the cost curves cross exactly once in practice; the
// search still guards against early noise by requiring two consecutive
// wins). Returns maxEdge+1 when the GPU never wins below maxEdge.
func crossover(m *machine.Machine, op machine.Op, maxEdge int) int {
	for s := 2; s <= maxEdge; s++ {
		if offloadWins(m, op, s) && offloadWins(m, op, s+1) {
			return s
		}
	}
	return maxEdge + 1
}

// AnalyticThresholds derives per-operation offload thresholds (in output
// elements, matching Thresholds' units) from a machine's cost model. A
// small safety margin is applied on top of the raw crossover: blocks right
// at the break-even point gain nothing from the device but add transfer
// traffic, so production thresholds sit slightly above it.
func AnalyticThresholds(m machine.Machine) Thresholds {
	const (
		maxEdge = 8192
		margin  = 1.15 // 15% above break-even on the block edge
	)
	edge := func(op machine.Op) int {
		s := crossover(&m, op, maxEdge)
		return int(float64(s) * margin)
	}
	sq := func(s int) int { return s * s }
	return Thresholds{
		Potrf: sq(edge(machine.OpPotrf)),
		Trsm:  sq(edge(machine.OpTrsm)),
		Syrk:  sq(edge(machine.OpSyrk)),
		Gemm:  sq(edge(machine.OpGemm)),
	}
}
