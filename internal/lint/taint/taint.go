// Package taint is the suite's summary-based interprocedural taint
// engine. A client analyzer (nondetflow, errflow) describes its domain as
// a Spec — what introduces taint (sources), where tainted values must not
// arrive (sinks), what cleanses them (kills), and how specific well-known
// calls transfer taint — and the engine does the rest: a flow-sensitive
// forward may-analysis over each function's internal/lint/cfg graph via
// the shared internal/lint/dataflow solver, composed across functions by
// per-function summaries and across packages by Facts the client exports.
//
// The abstract state maps (variable, label) pairs to "may be tainted";
// labels record provenance. "p<i>" and "recv" mean "flows from parameter
// i / the receiver" and feed summaries; "src:<desc>" means "flows from an
// intrinsic source inside some analyzed function" and feeds diagnostics.
// A function's Summary says which labels reach which results (Results,
// with result -1 meaning the receiver, covering receiver/field transfer)
// and which parameters reach a sink inside it or its callees (Sinks, with
// the call chain recorded in Via). Applying a callee's summary at a call
// site substitutes actual-argument taint for parameter labels, so a
// source laundered through any depth of module-local helpers still
// arrives at the sink with its provenance intact — the hole the
// intraprocedural suite could not close.
//
// Within one package the engine iterates the callgraph's functions in
// source order to a summary fixpoint (summaries only grow, so iteration
// terminates), then replays every function once more to report findings
// deterministically. Across packages the client's Lookup/fact plumbing
// supplies summaries for imported functions, exactly mirroring how
// futureerr's consumption facts travel.
//
// Suppression is taint-aware: an //lint:ignore <analyzer> directive
// covering a source or an assignment kills the taint at that point — and
// the engine records the consumption through Pass.MarkIgnoreUsed so the
// unusedignore audit sees the directive as live even though no diagnostic
// was ever produced at its line.
//
// Known, deliberate approximations: taint on a composite value is
// tracked per variable, not per field (a tainted field taints the whole
// object); function literals are analyzed as closed functions (captured
// variables do not carry taint in); parameter-to-parameter mutation
// flows are not summarized (only parameter-to-result, -to-receiver and
// -to-sink are).
package taint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/callgraph"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// RecvLabel is the provenance label of the receiver.
const RecvLabel = "recv"

// RecvResult is the Result index denoting "flows into the receiver".
const RecvResult = -1

// RecvFieldLabel returns the provenance label of one first-level field of
// the receiver ("recv.stats"). Field-scoped receiver labels keep one
// method's clock-stamped statistics field from tainting every other field
// a sibling method hands to a sink.
func RecvFieldLabel(field string) string { return RecvLabel + "." + field }

// ParamLabel returns the provenance label of parameter i.
func ParamLabel(i int) string { return "p" + strconv.Itoa(i) }

// SourceLabel returns the provenance label of an intrinsic source.
func SourceLabel(desc string) string { return "src:" + desc }

// sourceDesc extracts the description from a source label, or "" for
// parameter/receiver labels.
func sourceDesc(label string) string {
	if s, ok := strings.CutPrefix(label, "src:"); ok {
		return s
	}
	return ""
}

// paramIndex parses a "p<i>" label, returning -1 for any other label.
func paramIndex(label string) int {
	s, ok := strings.CutPrefix(label, "p")
	if !ok {
		return -1
	}
	i, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return i
}

// A ResultFlow records one provenance label reaching one result of a
// function (or its receiver, Result == RecvResult). For receiver flows,
// Field names the first-level receiver field written ("" = the whole
// receiver), so call sites can scope the incoming taint to that field.
type ResultFlow struct {
	From   string // "p<i>", "recv", "recv.<field>", or "src:<desc>"
	Result int
	Field  string // first-level receiver field, RecvResult flows only
}

// A SinkFlow records a parameter or the receiver reaching a sink inside
// the function or transitively inside its callees.
type SinkFlow struct {
	From string // "p<i>", "recv", or "recv.<field>"
	Sink string // sink description
	Via  string // call chain from this function to the sink, "" if direct
}

// A Summary is the exportable interprocedural behavior of one function.
// The zero Summary means "no flows". All slices are sorted and
// duplicate-free (normalize), so summaries compare with Equal and encode
// deterministically as Facts.
type Summary struct {
	Results []ResultFlow
	Sinks   []SinkFlow
}

// Empty reports whether the summary carries no flows.
func (s Summary) Empty() bool { return len(s.Results) == 0 && len(s.Sinks) == 0 }

func (s *Summary) normalize() {
	sort.Slice(s.Results, func(i, j int) bool {
		if s.Results[i].From != s.Results[j].From {
			return s.Results[i].From < s.Results[j].From
		}
		if s.Results[i].Result != s.Results[j].Result {
			return s.Results[i].Result < s.Results[j].Result
		}
		return s.Results[i].Field < s.Results[j].Field
	})
	s.Results = compactResults(s.Results)
	sort.Slice(s.Sinks, func(i, j int) bool {
		if s.Sinks[i].From != s.Sinks[j].From {
			return s.Sinks[i].From < s.Sinks[j].From
		}
		if s.Sinks[i].Sink != s.Sinks[j].Sink {
			return s.Sinks[i].Sink < s.Sinks[j].Sink
		}
		return s.Sinks[i].Via < s.Sinks[j].Via
	})
	s.Sinks = compactSinks(s.Sinks)
}

func compactResults(in []ResultFlow) []ResultFlow {
	var out []ResultFlow
	for i, r := range in {
		if i == 0 || r != in[i-1] {
			out = append(out, r)
		}
	}
	return out
}

func compactSinks(in []SinkFlow) []SinkFlow {
	var out []SinkFlow
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Equal reports whether two normalized summaries are identical.
func (s Summary) Equal(o Summary) bool {
	if len(s.Results) != len(o.Results) || len(s.Sinks) != len(o.Sinks) {
		return false
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	for i := range s.Sinks {
		if s.Sinks[i] != o.Sinks[i] {
			return false
		}
	}
	return true
}

// A SinkUse declares that the value of one expression flows into a sink.
// Spec.Sinks returns these for the nodes it recognizes.
type SinkUse struct {
	Value ast.Expr
	Desc  string
}

// A Finding is one source-to-sink flow, reported at the sink (or at the
// call forwarding into the sink, with the chain in Via).
type Finding struct {
	Pos    token.Pos
	Source string // source description (no "src:" prefix)
	Sink   string
	Via    string // call chain, "" when the sink is in the reported function
}

// Spec configures one client analysis.
type Spec struct {
	// Analyzer is the client's analyzer name, used to honor
	// //lint:ignore <Analyzer> taint kills.
	Analyzer string

	// SourceExpr classifies an expression (typically a call or a
	// selector) as an intrinsic taint source, returning a short
	// description or "".
	SourceExpr func(e ast.Expr) string

	// RangeSource classifies a range statement whose iteration order
	// taints the key/value variables (map iteration), returning a
	// description or "". Taint of the ranged operand flows into the
	// variables regardless.
	RangeSource func(rs *ast.RangeStmt) string

	// Sinks returns the sink uses of one AST node. The engine calls it
	// for every node and subexpression (excluding nested function
	// literals) in replay order.
	Sinks func(n ast.Node) []SinkUse

	// Kills returns expressions whose root variable's taint a call
	// removes (e.g. the slice argument of sort.Slice). May be nil.
	Kills func(call *ast.CallExpr) []ast.Expr

	// TransferCall overrides taint propagation for one call: handled
	// means the engine taints result i from exactly the expressions in
	// byResult[i] (an empty row means the result is clean). Use it for
	// well-known externals — fmt.Errorf's %w arguments, (error).Error().
	// May be nil.
	TransferCall func(call *ast.CallExpr) (byResult [][]ast.Expr, handled bool)

	// PropagateUnknown, when set, makes a call with no resolvable callee
	// or summary taint all its results from all its arguments (and
	// receiver). nondetflow wants this (math.Sqrt of a tainted value is
	// tainted); errflow does not (errors.Is of a tainted error is a
	// clean bool).
	PropagateUnknown bool

	// Lookup returns the summary of a function not defined in the
	// package under analysis — the client's fact import. May be nil.
	Lookup func(fn *types.Func) (Summary, bool)

	// Visit, if non-nil, is called for every replayed node with a taint
	// query valid at that program point, for client checks that do not
	// fit the source/sink mold. The query returns the sorted provenance
	// labels of an expression.
	Visit func(n ast.Node, taintOf func(e ast.Expr) []string)
}

// Result is the outcome of Run: deterministic findings plus the final
// summaries of every function declared in the package, for the client to
// export as Facts.
type Result struct {
	Findings  []Finding
	Summaries map[*types.Func]Summary
	Graph     *callgraph.Graph
}

// maxFixpointRounds bounds the intra-package summary iteration; summaries
// grow monotonically, so the bound only guards against bugs.
const maxFixpointRounds = 32

// Run executes the analysis over one package.
func Run(pass *analysis.Pass, spec Spec) *Result {
	eng := &engine{
		pass:      pass,
		spec:      spec,
		graph:     callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files),
		ignores:   analysis.NewIgnoreIndex(pass.Fset, pass.Files),
		summaries: map[*types.Func]Summary{},
		reported:  map[string]bool{},
	}

	// Phase 1: summary fixpoint over declared functions in source order.
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, node := range eng.graph.Nodes {
			sum := eng.analyze(node.Decl.Body, eng.funcParams(node.Decl), nil)
			sum.normalize()
			if !sum.Equal(eng.summaries[node.Func]) {
				eng.summaries[node.Func] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: replay with reporting — declared functions, then every
	// function literal as its own closed function.
	for _, node := range eng.graph.Nodes {
		eng.analyze(node.Decl.Body, eng.funcParams(node.Decl), eng.report)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				eng.analyze(lit.Body, eng.litParams(lit), eng.report)
			}
			return true
		})
	}

	return &Result{Findings: eng.findings, Summaries: eng.summaries, Graph: eng.graph}
}

type engine struct {
	pass      *analysis.Pass
	spec      Spec
	graph     *callgraph.Graph
	ignores   *analysis.IgnoreIndex
	summaries map[*types.Func]Summary
	findings  []Finding
	reported  map[string]bool
}

// report appends a deduplicated finding.
func (e *engine) report(f Finding) {
	key := fmt.Sprintf("%d|%s|%s|%s", f.Pos, f.Source, f.Sink, f.Via)
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.findings = append(e.findings, f)
}

// param seeds the boundary state for one declared function: receiver and
// parameters labeled with their own provenance.
type param struct {
	obj   types.Object
	label string
}

func (e *engine) funcParams(decl *ast.FuncDecl) []param {
	var out []param
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				if obj := e.pass.TypesInfo.Defs[name]; obj != nil {
					out = append(out, param{obj, RecvLabel})
				}
			}
		}
	}
	i := 0
	for _, f := range decl.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, name := range f.Names {
			if obj := e.pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, param{obj, ParamLabel(i)})
			}
			i++
		}
	}
	return out
}

func (e *engine) litParams(lit *ast.FuncLit) []param {
	var out []param
	i := 0
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, name := range f.Names {
			if obj := e.pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, param{obj, ParamLabel(i)})
			}
			i++
		}
	}
	return out
}

// objKey renders a stable state key for one object.
func objKey(obj types.Object) string {
	return obj.Name() + "#" + strconv.Itoa(int(obj.Pos()))
}

func stateKey(obj types.Object, label string) string {
	return objKey(obj) + "\x00" + label
}

// fieldPrefix is the state-key prefix of one first-level field of an
// object: writes through x.f (at any depth below f) land here instead of
// on the whole-object key, so sibling fields stay independent. Go
// identifiers cannot contain '#' or '.', so the prefixes never collide
// with another object's whole-object keys.
func fieldPrefix(obj types.Object, field string) string {
	return objKey(obj) + "." + field + "\x00"
}

// analyze runs the dataflow solve over one body and replays it, building
// the function's summary; when report is non-nil, source-to-sink flows
// are also emitted as findings.
func (e *engine) analyze(body *ast.BlockStmt, params []param, report func(Finding)) Summary {
	if body == nil {
		return Summary{}
	}
	g := cfg.New(body)
	boundary := dataflow.Set{}
	for _, p := range params {
		boundary[stateKey(p.obj, p.label)] = true
	}
	fe := &fnEval{engine: e, params: params}
	lat := dataflow.SetLattice{Intersect: false}
	res := dataflow.Solve(g, lat, dataflow.Forward, boundary,
		func(b *cfg.Block, in dataflow.Set) dataflow.Set {
			fe.state = in
			for _, n := range b.Nodes {
				fe.node(n)
			}
			return fe.state
		})

	// Replay in block-index order from the solved in-states: summary
	// collection and reporting happen here, against fixpoint facts.
	fe.sum = &Summary{}
	fe.reportFn = report
	for _, b := range g.Reachable() {
		fe.state = lat.Clone(res.In[b])
		for _, n := range b.Nodes {
			fe.node(n)
		}
	}
	sum := *fe.sum
	sum.normalize()
	return sum
}

// fnEval evaluates one function's nodes against the abstract state.
type fnEval struct {
	*engine
	params   []param
	state    dataflow.Set
	sum      *Summary      // non-nil during replay
	reportFn func(Finding) // non-nil during the reporting replay
}

// labelsOf returns the state's whole-object labels for one object
// (field-scoped labels live under fieldPrefix keys and are joined in by
// fieldRead).
func (fe *fnEval) labelsOf(obj types.Object) map[string]bool {
	if obj == nil {
		return nil
	}
	return fe.labelsAt(objKey(obj) + "\x00")
}

// fieldLabels returns the labels stored for one first-level field.
func (fe *fnEval) fieldLabels(obj types.Object, field string) map[string]bool {
	if obj == nil {
		return nil
	}
	return fe.labelsAt(fieldPrefix(obj, field))
}

func (fe *fnEval) labelsAt(prefix string) map[string]bool {
	var out map[string]bool
	// Collect matching keys; the result is a set, so visit order cannot
	// leak into it.
	//lint:ignore mapiterdeterminism membership scan into a set: result independent of visit order
	for k := range fe.state {
		if strings.HasPrefix(k, prefix) {
			if out == nil {
				out = map[string]bool{}
			}
			out[k[len(prefix):]] = true
		}
	}
	return out
}

// setLabels strongly updates an object: the whole-object key and every
// field-scoped key are cleared before the new labels (if any) are added.
func (fe *fnEval) setLabels(obj types.Object, labels map[string]bool) {
	if obj == nil {
		return
	}
	fe.clearPrefix(objKey(obj) + "\x00")
	fe.clearPrefix(objKey(obj) + ".")
	fe.addLabels(obj, labels)
}

// clearField kills the taint of one first-level field only; sibling
// fields and the whole-object labels survive.
func (fe *fnEval) clearField(obj types.Object, field string) {
	if obj == nil {
		return
	}
	fe.clearPrefix(fieldPrefix(obj, field))
}

func (fe *fnEval) clearPrefix(prefix string) {
	var stale []string
	//lint:ignore mapiterdeterminism key collection before delete: order-insensitive
	for k := range fe.state {
		if strings.HasPrefix(k, prefix) {
			stale = append(stale, k)
		}
	}
	for _, k := range stale {
		delete(fe.state, k)
	}
}

func (fe *fnEval) addLabels(obj types.Object, labels map[string]bool) {
	if obj == nil || len(labels) == 0 {
		return
	}
	//lint:ignore mapiterdeterminism set union into state: membership-only writes
	for l := range labels {
		fe.state[stateKey(obj, l)] = true
	}
}

// addFieldLabels weakly taints one first-level field of an object.
func (fe *fnEval) addFieldLabels(obj types.Object, field string, labels map[string]bool) {
	if obj == nil || len(labels) == 0 {
		return
	}
	prefix := fieldPrefix(obj, field)
	//lint:ignore mapiterdeterminism set union into state: membership-only writes
	for l := range labels {
		fe.state[prefix+l] = true
	}
}

// covered reports whether an //lint:ignore for the client analyzer covers
// pos, consuming the directive so the audit sees it as live.
func (fe *fnEval) covered(pos token.Pos) bool {
	if !fe.ignores.Covers(pos, fe.spec.Analyzer) {
		return false
	}
	fe.pass.ConsumeIgnore(pos, fe.spec.Analyzer)
	return true
}

// sortedLabels renders a label set for deterministic iteration.
func sortedLabels(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func union(a, b map[string]bool) map[string]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	//lint:ignore mapiterdeterminism set union: membership-only writes
	for k := range a {
		out[k] = true
	}
	//lint:ignore mapiterdeterminism set union: membership-only writes
	for k := range b {
		out[k] = true
	}
	return out
}

// node processes one CFG node (statement or branch condition) in
// execution order.
func (fe *fnEval) node(n ast.Node) {
	if fe.spec.Visit != nil && fe.reportFn != nil {
		fe.spec.Visit(n, func(e ast.Expr) []string { return sortedLabels(fe.taintOf(e)) })
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		fe.checkSinks(n)
		fe.assign(n)
	case *ast.DeclStmt:
		fe.checkSinks(n)
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fe.valueSpec(vs)
				}
			}
		}
	case *ast.RangeStmt:
		// The header node: per-iteration key/value binding.
		fe.rangeAssign(n)
	case *ast.ReturnStmt:
		fe.checkSinks(n)
		fe.returns(n)
	case *ast.ExprStmt:
		fe.checkSinks(n)
		fe.sideEffects(n.X)
	case *ast.GoStmt:
		fe.checkSinks(n)
		fe.sideEffects(n.Call)
	case *ast.DeferStmt:
		fe.checkSinks(n)
		fe.sideEffects(n.Call)
	case *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt, *ast.BranchStmt:
		fe.checkSinks(n)
	case ast.Stmt:
		fe.checkSinks(n)
	case ast.Expr:
		// Branch conditions and switch tags: sinks can hide in calls.
		fe.checkSinks(n)
		fe.sideEffects(n)
	}
}

// sideEffects evaluates an expression for its call effects (kills,
// receiver taint, summary sinks) without consuming the value.
func (fe *fnEval) sideEffects(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fe.callResults(call)
		}
		return true
	})
}

// checkSinks walks a node (not descending into function literals) and
// evaluates every declared sink use against the current state.
func (fe *fnEval) checkSinks(n ast.Node) {
	if fe.spec.Sinks == nil {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		if sub == nil {
			return false
		}
		for _, use := range fe.spec.Sinks(sub) {
			fe.sinkUse(use, "")
		}
		return true
	})
}

// sinkUse records/reports the labels reaching one sink.
func (fe *fnEval) sinkUse(use SinkUse, via string) {
	labels := fe.taintOf(use.Value)
	for _, l := range sortedLabels(labels) {
		if desc := sourceDesc(l); desc != "" {
			if fe.reportFn != nil {
				fe.reportFn(Finding{Pos: use.Value.Pos(), Source: desc, Sink: use.Desc, Via: via})
			}
			continue
		}
		// Parameter/receiver provenance: part of this function's summary.
		if fe.sum != nil {
			fe.sum.Sinks = append(fe.sum.Sinks, SinkFlow{From: l, Sink: use.Desc, Via: via})
		}
	}
}

// assign handles every assignment form.
func (fe *fnEval) assign(n *ast.AssignStmt) {
	switch {
	case len(n.Lhs) == len(n.Rhs):
		// Evaluate all RHS first (Go's order), then bind.
		taints := make([]map[string]bool, len(n.Rhs))
		for i, rhs := range n.Rhs {
			taints[i] = fe.taintOf(rhs)
		}
		for i, lhs := range n.Lhs {
			fe.bind(lhs, taints[i], n.Pos())
		}
	case len(n.Rhs) == 1:
		// Multi-value: x, y := f() — per-result taint.
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			results := fe.callResults(call)
			for i, lhs := range n.Lhs {
				var t map[string]bool
				if i < len(results) {
					t = results[i]
				}
				fe.bind(lhs, t, n.Pos())
			}
			return
		}
		// v, ok := m[k] / x.(T) / <-ch: taint both from the operand.
		t := fe.taintOf(n.Rhs[0])
		for _, lhs := range n.Lhs {
			fe.bind(lhs, t, n.Pos())
		}
	}
}

func (fe *fnEval) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Names) == len(vs.Values) {
		for i, name := range vs.Names {
			fe.bindIdent(name, fe.taintOf(vs.Values[i]), vs.Pos())
		}
		return
	}
	if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && len(vs.Values) == 1 {
		results := fe.callResults(call)
		for i, name := range vs.Names {
			var t map[string]bool
			if i < len(results) {
				t = results[i]
			}
			fe.bindIdent(name, t, vs.Pos())
		}
	}
}

// bind assigns taint to an lvalue. Plain identifiers get a strong update;
// selector/index targets weakly taint their root object (field transfer).
// An //lint:ignore for the analyzer covering the assignment kills the
// incoming taint.
func (fe *fnEval) bind(lhs ast.Expr, taint map[string]bool, at token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		fe.bindIdent(lhs, taint, at)
	default:
		if len(taint) == 0 {
			return
		}
		if fe.covered(at) {
			return
		}
		root, field := fe.rootAndField(lhs)
		if field != "" {
			fe.addFieldLabels(root, field, taint)
		} else {
			fe.addLabels(root, taint)
		}
		fe.recvFlow(root, field, taint)
	}
}

func (fe *fnEval) bindIdent(id *ast.Ident, taint map[string]bool, at token.Pos) {
	if id.Name == "_" {
		return
	}
	obj := fe.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = fe.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if len(taint) > 0 && fe.covered(at) {
		taint = nil
	}
	fe.setLabels(obj, taint)
}

// recvFlow records taint arriving at the receiver object (in field, or
// the whole receiver when field is "") as a summary flow, so callers see
// their receiver — scoped to that field — tainted.
func (fe *fnEval) recvFlow(root types.Object, field string, taint map[string]bool) {
	if fe.sum == nil || root == nil || !fe.isReceiver(root) {
		return
	}
	self := RecvLabel
	if field != "" {
		self = RecvFieldLabel(field)
	}
	for _, l := range sortedLabels(taint) {
		if l == self {
			continue
		}
		fe.sum.Results = append(fe.sum.Results, ResultFlow{From: l, Result: RecvResult, Field: field})
	}
}

// isReceiver reports whether obj is this function's receiver parameter.
func (fe *fnEval) isReceiver(obj types.Object) bool {
	for _, p := range fe.params {
		if p.obj == obj && p.label == RecvLabel {
			return true
		}
	}
	return false
}

// rootAndField resolves an expression chain to its base object and the
// first field selected from it (x.f[i].g → x, "f"); field is "" when the
// chain selects no field (a plain identifier, *p, xs[i]). Qualified
// identifiers resolve to the package-level object with the fields
// selected below it (pkg.Var.f → Var, "f").
func (fe *fnEval) rootAndField(e ast.Expr) (types.Object, string) {
	field := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := fe.pass.TypesInfo.Uses[x]; obj != nil {
				return obj, field
			}
			return fe.pass.TypesInfo.Defs[x], field
		case *ast.SelectorExpr:
			if _, ok := fe.pass.TypesInfo.Selections[x]; !ok {
				// Qualified identifier: x.Sel is the root object.
				return fe.pass.TypesInfo.Uses[x.Sel], field
			}
			field = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

// fieldRead returns the labels of a one-level field read root.<field>...:
// field-scoped taint joined with whole-object taint (aliasing and
// whole-value assignments still flow). When root is the receiver, the
// plain receiver entry label narrows to the field-scoped one, so the
// summary records which field was read instead of claiming the whole
// receiver reached the sink.
func (fe *fnEval) fieldRead(root types.Object, field string) map[string]bool {
	labels := union(fe.fieldLabels(root, field), fe.labelsOf(root))
	if !labels[RecvLabel] || !fe.isReceiver(root) {
		return labels
	}
	out := make(map[string]bool, len(labels))
	//lint:ignore mapiterdeterminism label rewrite into a set: membership-only writes
	for l := range labels {
		if l == RecvLabel {
			out[RecvFieldLabel(field)] = true
			continue
		}
		out[l] = true
	}
	return out
}

// rangeAssign handles the per-iteration binding of a range header.
func (fe *fnEval) rangeAssign(rs *ast.RangeStmt) {
	taint := fe.taintOf(rs.X)
	if fe.spec.RangeSource != nil {
		if desc := fe.spec.RangeSource(rs); desc != "" {
			if fe.covered(rs.Pos()) {
				// Audited: iteration order deemed harmless here.
			} else {
				taint = union(taint, map[string]bool{SourceLabel(desc): true})
			}
		}
	}
	if rs.Key != nil {
		fe.bind(rs.Key, taint, rs.Pos())
	}
	if rs.Value != nil {
		fe.bind(rs.Value, taint, rs.Pos())
	}
}

// returns records result flows for the summary.
func (fe *fnEval) returns(n *ast.ReturnStmt) {
	if fe.sum == nil {
		return
	}
	for i, res := range n.Results {
		var t map[string]bool
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && len(n.Results) == 1 {
			// return f(): spread multi-result taint positionally.
			for j, rt := range fe.callResults(call) {
				for _, l := range sortedLabels(rt) {
					fe.sum.Results = append(fe.sum.Results, ResultFlow{From: l, Result: j})
				}
			}
			return
		}
		t = fe.taintOf(res)
		for _, l := range sortedLabels(t) {
			fe.sum.Results = append(fe.sum.Results, ResultFlow{From: l, Result: i})
		}
	}
}

// taintOf computes the provenance labels of an expression under the
// current state.
func (fe *fnEval) taintOf(e ast.Expr) map[string]bool {
	if e == nil {
		return nil
	}
	e = ast.Unparen(e)
	if fe.spec.SourceExpr != nil {
		if desc := fe.spec.SourceExpr(e); desc != "" {
			if fe.covered(e.Pos()) {
				return nil
			}
			return map[string]bool{SourceLabel(desc): true}
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := fe.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = fe.pass.TypesInfo.Defs[e]
		}
		return fe.labelsOf(obj)
	case *ast.SelectorExpr:
		if _, ok := fe.pass.TypesInfo.Selections[e]; ok {
			if root, field := fe.rootAndField(e); root != nil && field != "" {
				return fe.fieldRead(root, field)
			}
			return fe.taintOf(e.X)
		}
		// Qualified identifier: package-level object.
		return fe.labelsOf(fe.pass.TypesInfo.Uses[e.Sel])
	case *ast.CallExpr:
		var all map[string]bool
		for _, r := range fe.callResults(e) {
			all = union(all, r)
		}
		return all
	case *ast.BinaryExpr:
		return union(fe.taintOf(e.X), fe.taintOf(e.Y))
	case *ast.UnaryExpr:
		return fe.taintOf(e.X)
	case *ast.StarExpr:
		return fe.taintOf(e.X)
	case *ast.IndexExpr:
		return union(fe.taintOf(e.X), fe.taintOf(e.Index))
	case *ast.SliceExpr:
		return fe.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return fe.taintOf(e.X)
	case *ast.CompositeLit:
		var all map[string]bool
		for _, elt := range e.Elts {
			all = union(all, fe.taintOf(elt))
		}
		return all
	case *ast.KeyValueExpr:
		return fe.taintOf(e.Value)
	}
	return nil
}

// callResults computes per-result taint of a call and applies its side
// effects: kills, callee-summary receiver taint, and callee-summary sink
// flows.
func (fe *fnEval) callResults(call *ast.CallExpr) []map[string]bool {
	nres := fe.numResults(call)
	results := make([]map[string]bool, nres)

	// Kills first: sort.Slice(xs, less) leaves xs clean afterwards — and
	// the call's own result (none) is irrelevant. A field victim
	// (sort.Slice(e.tasks, ...)) kills only that field's taint.
	if fe.spec.Kills != nil {
		for _, victim := range fe.spec.Kills(call) {
			root, field := fe.rootAndField(victim)
			if field != "" {
				fe.clearField(root, field)
			} else {
				fe.setLabels(root, nil)
			}
		}
	}

	// Client override for well-known externals.
	if fe.spec.TransferCall != nil {
		if byResult, handled := fe.spec.TransferCall(call); handled {
			for i := range results {
				if i < len(byResult) {
					for _, src := range byResult[i] {
						results[i] = union(results[i], fe.taintOf(src))
					}
				}
			}
			return results
		}
	}

	// Conversions pass taint through.
	if tv, ok := fe.pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		var all map[string]bool
		for _, arg := range call.Args {
			all = union(all, fe.taintOf(arg))
		}
		for i := range results {
			results[i] = all
		}
		return results
	}

	// Builtins with data flow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fe.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var all map[string]bool
				for _, arg := range call.Args {
					all = union(all, fe.taintOf(arg))
				}
				if nres > 0 {
					results[0] = all
				}
			case "min", "max":
				var all map[string]bool
				for _, arg := range call.Args {
					all = union(all, fe.taintOf(arg))
				}
				if nres > 0 {
					results[0] = all
				}
			}
			return results
		}
	}

	callees, _ := fe.graph.Resolver.Callees(call)
	applied := false
	for _, callee := range callees {
		if sum, ok := fe.summaryOf(callee); ok {
			fe.applySummary(call, callee, sum, results)
			applied = true
		}
	}
	if !applied && fe.spec.PropagateUnknown {
		var all map[string]bool
		for _, arg := range call.Args {
			all = union(all, fe.taintOf(arg))
		}
		if recv := fe.receiverExpr(call); recv != nil {
			all = union(all, fe.taintOf(recv))
		}
		for i := range results {
			results[i] = all
		}
	}
	return results
}

// summaryOf finds a callee's summary: the in-progress fixpoint for
// functions of this package, the client's fact import otherwise.
func (fe *fnEval) summaryOf(fn *types.Func) (Summary, bool) {
	if fn.Pkg() == fe.pass.Pkg {
		sum, ok := fe.summaries[fn]
		return sum, ok
	}
	if fe.spec.Lookup != nil {
		return fe.spec.Lookup(fn)
	}
	return Summary{}, false
}

// receiverExpr returns the receiver expression of a method call, or nil.
func (fe *fnEval) receiverExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := fe.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// applySummary substitutes actual-argument taint into a callee summary at
// a call site.
func (fe *fnEval) applySummary(call *ast.CallExpr, callee *types.Func, sum Summary, results []map[string]bool) {
	argTaint := func(from string) map[string]bool {
		if from == RecvLabel {
			// Whole-receiver provenance: only whole-object taint of the
			// receiver chain applies (field-scoped taint stays put).
			if recv := fe.receiverExpr(call); recv != nil {
				return fe.taintOf(recv)
			}
			return nil
		}
		if f, ok := strings.CutPrefix(from, RecvLabel+"."); ok {
			// Field-scoped receiver provenance: resolve against the
			// matching field of our receiver expression. A chained
			// receiver (s.eng.M reading eng's field f) folds to the
			// chain's own first-level field, keeping the one-level model.
			recv := fe.receiverExpr(call)
			if recv == nil {
				return nil
			}
			root, chainField := fe.rootAndField(recv)
			if root == nil {
				return fe.taintOf(recv)
			}
			if chainField != "" {
				return fe.fieldRead(root, chainField)
			}
			return fe.fieldRead(root, f)
		}
		if i := paramIndex(from); i >= 0 {
			if i < len(call.Args) {
				return fe.taintOf(call.Args[i])
			}
			return nil
		}
		// Intrinsic source inside the callee.
		return map[string]bool{from: true}
	}

	for _, rf := range sum.Results {
		t := argTaint(rf.From)
		if len(t) == 0 {
			continue
		}
		if rf.Result == RecvResult {
			// Callee taints its receiver (rf.Field scopes the write):
			// taint the matching slot of our receiver's root.
			if recv := fe.receiverExpr(call); recv != nil {
				root, chainField := fe.rootAndField(recv)
				field := rf.Field
				if chainField != "" {
					field = chainField
				}
				if field != "" {
					fe.addFieldLabels(root, field, t)
				} else {
					fe.addLabels(root, t)
				}
				fe.recvFlow(root, field, t)
			}
			continue
		}
		if rf.Result >= 0 && rf.Result < len(results) {
			results[rf.Result] = union(results[rf.Result], t)
		}
	}

	for _, sf := range sum.Sinks {
		t := argTaint(sf.From)
		if len(t) == 0 {
			continue
		}
		via := callgraph.DisplayName(callee)
		if sf.Via != "" {
			via += " → " + sf.Via
		}
		pos := call.Pos()
		if i := paramIndex(sf.From); i >= 0 && i < len(call.Args) {
			pos = call.Args[i].Pos()
		}
		for _, l := range sortedLabels(t) {
			if desc := sourceDesc(l); desc != "" {
				if fe.reportFn != nil {
					fe.reportFn(Finding{Pos: pos, Source: desc, Sink: sf.Sink, Via: via})
				}
				continue
			}
			if fe.sum != nil {
				fe.sum.Sinks = append(fe.sum.Sinks, SinkFlow{From: l, Sink: sf.Sink, Via: via})
			}
		}
	}
}

// numResults returns the number of results of a call expression (1
// minimum, so single-value contexts always have a slot).
func (fe *fnEval) numResults(call *ast.CallExpr) int {
	if tv, ok := fe.pass.TypesInfo.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			if tuple.Len() > 1 {
				return tuple.Len()
			}
			return 1
		}
	}
	return 1
}
