// Package offpath is outside the request-path scope: the same shapes
// that trip ctxflow in internal/core must stay silent here.
package offpath

import "context"

type Worker struct{}

func (w *Worker) Run() {}

func (w *Worker) RunCtx(ctx context.Context) {}

func replay(ctx context.Context, w *Worker) {
	w.Run()
	c := context.Background()
	w.RunCtx(c)
}
