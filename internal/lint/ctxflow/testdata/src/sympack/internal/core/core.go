// Package core exercises the ctxflow rules inside a request-path
// package: fresh-context materialization, Ctx-variant siblings, and the
// all-paths derivation dataflow.
package core

import (
	"context"
	"time"
)

type Solver struct{}

func (s *Solver) Solve() {}

func (s *Solver) SolveCtx(ctx context.Context) {}

func (s *Solver) Refine() {}

func fetch() {}

func fetchCtx(ctx context.Context) {}

// dropsVariant calls the ctx-less API with a context in hand.
func dropsVariant(ctx context.Context, s *Solver) {
	s.Solve() // want "Solve drops the request context but SolveCtx exists"
	fetch()   // want "fetch drops the request context but fetchCtx exists"
	s.SolveCtx(ctx)
	fetchCtx(ctx)
	s.Refine() // no Ctx sibling: nothing to prefer
}

// materializes manufactures fresh contexts downstream of the request.
func materializes(ctx context.Context, s *Solver) {
	c := context.Background() // want "context.Background.. materialized downstream of a request"
	s.SolveCtx(c) // want "context c is not derived from the request context on every path"
	s.SolveCtx(context.TODO()) // want "context.TODO.. materialized downstream of a request"
}

// derivedChain threads the request context through With* wrappers.
func derivedChain(ctx context.Context, s *Solver) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	s.SolveCtx(c)
	s.SolveCtx(context.WithValue(c, "k", "v"))
}

// partialDerive rebinds the context to a fresh one on one arm only; the
// call site after the merge must flag the variable.
func partialDerive(ctx context.Context, s *Solver, cond bool) {
	c := ctx
	if cond {
		c = context.TODO() // want "context.TODO.. materialized downstream of a request"
	}
	s.SolveCtx(c) // want "context c is not derived from the request context on every path"
}

// rederived loses the context on one arm but restores it before the
// call: the must-analysis sees both paths derived again.
func rederived(ctx context.Context, s *Solver, cond bool) {
	c := ctx
	if cond {
		c = context.TODO() // want "context.TODO.. materialized downstream of a request"
		c = ctx
	}
	s.SolveCtx(c)
}

// loopRebind kills derivation inside a loop; the back edge carries the
// fresh binding into the next iteration's call.
func loopRebind(ctx context.Context, s *Solver, n int) {
	c := ctx
	for i := 0; i < n; i++ {
		s.SolveCtx(c) // want "context c is not derived from the request context on every path"
		c = context.TODO() // want "context.TODO.. materialized downstream of a request"
	}
}

// noCtxParam is off the request path: no context parameter, no rules.
func noCtxParam(s *Solver) {
	s.Solve()
	c := context.Background()
	s.SolveCtx(c)
}

// detached launches a goroutine that legitimately outlives the request;
// function literals are outside the rules.
func detached(ctx context.Context, s *Solver) {
	go func() {
		s.Solve()
		s.SolveCtx(context.Background())
	}()
	s.SolveCtx(ctx)
}
