// Package ctxflow enforces cooperative-cancellation discipline on the
// request path. sympackd promises that a canceled or deadline-expired
// factorization request surfaces core.ErrCanceled instead of hanging
// (DESIGN.md §9); that only holds if every function between the HTTP
// handler and the blocking engine call threads the request's
// context.Context through. A single hop that drops the context — calling
// the ctx-less variant of a blocking API, or manufacturing a fresh
// context.Background() downstream of the request — silently detaches the
// whole subtree from cancellation.
//
// The analyzer runs over the request-path packages (internal/server,
// internal/core) and inspects every function that takes a
// context.Context parameter — having one IS the request-path marker:
//
//   - Materializing context.Background() or context.TODO() inside such a
//     function is reported: downstream of a request there is always a
//     better parent.
//   - Calling a function or method f when a sibling fCtx with a context
//     parameter exists (same package or same receiver type, sympack code
//     only) is reported: the blocking callee has a cancellable variant
//     and the caller has a context in hand.
//   - Every context argument passed to a callee must be request-derived
//     on every path: a forward must-dataflow over the control-flow graph
//     (internal/lint/cfg + internal/lint/dataflow) tracks which context
//     variables derive from the request context (the parameter itself,
//     context.With* chains rooted at it, req.Context()), with set
//     intersection at merges. An argument that is fresh on even one
//     incoming path is reported.
//
// Function literals are skipped entirely: a goroutine launched from a
// request may legitimately outlive it (detached audit work), and the
// enclosing function's derivation state does not transfer to a closure's
// execution time. The escape hatch for deliberate detachment is the
// audited //lint:ignore ctxflow directive, with the reason on record.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// Name is the analyzer's registry name.
const Name = "ctxflow"

// requestPathPackages are the packages whose functions serve requests;
// the cancellation contract applies there.
var requestPathPackages = map[string]bool{
	"sympack/internal/server": true,
	"sympack/internal/core":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "checks that request-path functions (internal/server, internal/core) " +
		"thread their context.Context into every blocking callee: no " +
		"context.Background()/TODO() downstream of a request, no call to a " +
		"ctx-less function that has a Ctx variant, and every context argument " +
		"request-derived on every path (CFG must-dataflow)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !requestPathPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seed := ctxParams(pass, fd)
			if len(seed) == 0 {
				continue // no request context in hand: not on the request path
			}
			w.checkFunc(fd, seed)
		}
	}
	return nil, nil
}

type walker struct {
	pass *analysis.Pass
}

// ctxParams returns the context.Context parameters of a function.
func ctxParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	seed := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return seed
	}
	for _, f := range fd.Type.Params.List {
		for _, nm := range f.Names {
			if obj := pass.TypesInfo.Defs[nm]; obj != nil && isContext(obj.Type()) {
				seed[obj] = true
			}
		}
	}
	return seed
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkFunc applies all three rules to one request-path function.
func (w *walker) checkFunc(fd *ast.FuncDecl, seed map[types.Object]bool) {
	g := cfg.New(fd.Body)
	res := dataflow.Solve(g, dataflow.SetLattice{Intersect: true}, dataflow.Forward, dataflow.Set{},
		func(b *cfg.Block, in dataflow.Set) dataflow.Set {
			for _, n := range b.Nodes {
				w.applyNode(n, seed, in)
			}
			return in
		})
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		derived := dataflow.Set{}
		for k := range in {
			derived[k] = true
		}
		for _, n := range b.Nodes {
			w.checkNode(n, seed, derived)
			w.applyNode(n, seed, derived)
		}
	}
}

// objKey is the dataflow-set key of a context variable: name plus
// declaration position, unique and deterministic within a file set.
func objKey(obj types.Object) string {
	return fmt.Sprintf("%s#%d", obj.Name(), obj.Pos())
}

// applyNode is the transfer function: context-typed assignments gen
// (request-derived right-hand side) or kill (anything else) their
// left-hand variable.
func (w *walker) applyNode(n ast.Node, seed map[types.Object]bool, derived dataflow.Set) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		if ds, ok := n.(*ast.DeclStmt); ok {
			if gd, ok := ds.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						w.applySpec(vs, seed, derived)
					}
				}
			}
		}
		return
	}
	// ctx, cancel := context.WithTimeout(parent, d): one call, two names.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		ok := w.derivedExpr(as.Rhs[0], seed, derived)
		for _, lhs := range as.Lhs {
			w.setDerived(lhs, ok, derived)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) {
			w.setDerived(lhs, w.derivedExpr(as.Rhs[i], seed, derived), derived)
		}
	}
}

func (w *walker) applySpec(vs *ast.ValueSpec, seed map[types.Object]bool, derived dataflow.Set) {
	for i, nm := range vs.Names {
		obj := w.pass.TypesInfo.Defs[nm]
		if obj == nil || !isContext(obj.Type()) {
			continue
		}
		ok := false
		if i < len(vs.Values) {
			ok = w.derivedExpr(vs.Values[i], seed, derived)
		} else if len(vs.Values) == 1 {
			ok = w.derivedExpr(vs.Values[0], seed, derived)
		}
		if ok {
			derived[objKey(obj)] = true
		} else {
			delete(derived, objKey(obj))
		}
	}
}

func (w *walker) setDerived(lhs ast.Expr, ok bool, derived dataflow.Set) {
	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Uses[id]
	}
	if obj == nil || !isContext(obj.Type()) {
		return
	}
	if ok {
		derived[objKey(obj)] = true
	} else {
		delete(derived, objKey(obj))
	}
}

// derivedExpr reports whether an expression evaluates to a
// request-derived context: the request context itself, a context.With*
// chain rooted at one, or an http request's Context().
func (w *walker) derivedExpr(e ast.Expr, seed map[types.Object]bool, derived dataflow.Set) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		return obj != nil && (seed[obj] || derived[objKey(obj)])
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := w.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "context" {
				switch sel.Sel.Name {
				case "WithCancel", "WithTimeout", "WithDeadline", "WithValue":
					return len(e.Args) > 0 && w.derivedExpr(e.Args[0], seed, derived)
				}
				return false // Background, TODO: fresh by definition
			}
		}
		// req.Context(): the canonical request root.
		return sel.Sel.Name == "Context" && len(e.Args) == 0
	}
	return false
}

// checkNode applies the reporting rules to one CFG node with the derived
// set that holds on entry to it.
func (w *walker) checkNode(n ast.Node, seed map[types.Object]bool, derived dataflow.Set) {
	if n == nil {
		return
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		n = r.X // the loop body has its own blocks
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit:
			return false // closures detach; audited ignores cover intent
		case *ast.CallExpr:
			w.checkCall(nn, seed, derived)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, seed map[types.Object]bool, derived dataflow.Set) {
	// Rule 1: no fresh contexts downstream of a request.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := w.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "context" {
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					w.pass.Reportf(call.Pos(),
						"context.%s() materialized downstream of a request — a canceled "+
							"request can never reach this subtree; derive from the request context instead",
						sel.Sel.Name)
					return
				}
			}
		}
	}

	// Rule 2: prefer the Ctx variant when one exists.
	w.checkCtxVariant(call)

	// Rule 3: context arguments must be request-derived on every path.
	for _, arg := range call.Args {
		tv, ok := w.pass.TypesInfo.Types[arg]
		if !ok || !isContext(tv.Type) {
			continue
		}
		switch a := ast.Unparen(arg).(type) {
		case *ast.Ident:
			obj := w.pass.TypesInfo.Uses[a]
			if obj == nil || !isContext(obj.Type()) {
				continue
			}
			if _, isVar := obj.(*types.Var); !isVar {
				continue // e.g. the nil ident
			}
			if seed[obj] || derived[objKey(obj)] {
				continue
			}
			w.pass.Reportf(a.Pos(),
				"context %s is not derived from the request context on every path "+
					"to this call — a canceled request cannot cancel the callee",
				a.Name)
		case *ast.CallExpr:
			// Direct context.With*(...) and req.Context() arguments are
			// judged by derivedExpr; Background()/TODO() were reported by
			// rule 1 already, and unknown producer calls stay silent
			// (conservative).
		}
	}
}

// checkCtxVariant reports a call to f when an fCtx sibling taking a
// context exists in the same package (or on the same receiver type).
func (w *walker) checkCtxVariant(call *ast.CallExpr) {
	fn := calleeFunc(w.pass, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "sympack/") {
		return
	}
	if strings.HasSuffix(fn.Name(), "Ctx") || signatureHasContext(fn) {
		return
	}
	sibling := fn.Name() + "Ctx"
	var alt *types.Func
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Name() == sibling {
					alt = m
					break
				}
			}
		}
	} else if obj := fn.Pkg().Scope().Lookup(sibling); obj != nil {
		alt, _ = obj.(*types.Func)
	}
	if alt == nil || !signatureHasContext(alt) {
		return
	}
	w.pass.Reportf(call.Pos(),
		"%s drops the request context but %s exists — call the Ctx variant "+
			"so cancellation reaches the blocking work", fn.Name(), sibling)
}

func signatureHasContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
