package ctxflow_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "sympack/internal/core")
}

// TestScopeGate pins that the same shapes stay silent outside the
// request-path packages.
func TestScopeGate(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "sympack/internal/offpath")
}
