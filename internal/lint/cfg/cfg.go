// Package cfg builds intraprocedural control-flow graphs over ast.Stmt,
// mirroring the shape (and deliberately a subset of the semantics) of
// golang.org/x/tools/go/cfg, which the stdlib-only build cannot vendor
// (DESIGN.md §2). The suite's flow-sensitive analyzers — mutexguard's
// lockset meet, futureerr's consulted-on-all-paths check, ctxflow's
// context-derivation tracking, goroutineleak's path reachability — all
// reason over these graphs instead of walking statements in source order,
// which is what makes their verdicts sound at path merges.
//
// A Graph has one synthetic Entry and one synthetic Exit block. Basic
// blocks carry the statements and branch conditions they execute, in
// execution order; Nodes may therefore hold both ast.Stmt and ast.Expr
// values, exactly like upstream. Edges cover structured control flow
// (if/else, for, range, switch, type switch, select), unstructured
// control flow (break/continue/goto, labeled or not, and fallthrough),
// returns, and calls of the panic builtin (an edge to Exit with the
// block marked PanicExit, so analyzers can excuse error paths). Deferred
// statements run at every function exit; the builder records them in
// Graph.Defers, in source order, for analyzers that model return-time
// effects.
//
// The builder is purely syntactic: it needs no *types.Info, so graphs can
// be built for any parsed function (including testdata that does not
// type-check standalone). Function literals are NOT expanded into the
// enclosing graph — a literal's body is its own function with its own
// graph, matching how the analyzers treat closures as concurrency
// boundaries.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block // in creation order; Blocks[0] == Entry
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt // every defer in the body, in source order
}

// A Block is a basic block: a maximal sequence of nodes with one entry
// point and one exit point.
type Block struct {
	Index int        // position in Graph.Blocks
	Nodes []ast.Node // statements and conditions, in execution order
	Succs []*Block
	Preds []*Block

	// PanicExit marks a block whose edge to Exit comes from a call of the
	// panic builtin rather than a return: analyzers that reason about
	// "every path to return" may excuse panic paths.
	PanicExit bool

	// comment names the block's role ("entry", "if.then", "for.body", ...)
	// for the debug dump; it has no semantic weight.
	comment string
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		graph:  &Graph{},
		labels: map[string]*labelInfo{},
	}
	b.graph.Entry = b.newBlock("entry")
	b.graph.Exit = b.newBlock("exit")
	b.current = b.graph.Entry
	b.stmts(body.List)
	// Fall off the end of the body: implicit return.
	b.jump(b.graph.Exit)
	return b.graph
}

// labelInfo resolves gotos and labeled break/continue against the blocks a
// labeled statement introduces.
type labelInfo struct {
	target        *Block // the labeled statement itself (goto target)
	breakTarget   *Block // set while the labeled loop/switch/select is open
	contTarget    *Block // set while the labeled loop is open
}

type builder struct {
	graph   *Graph
	current *Block
	labels  map[string]*labelInfo

	// Innermost enclosing targets for unlabeled break/continue.
	breakStack []*Block
	contStack  []*Block

	// labeled carries the pending label name between a LabeledStmt and
	// the loop/switch it labels, so labeled break/continue resolve.
	labeled string
}

func (b *builder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.graph.Blocks), comment: comment}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// edge links from → to.
func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and leaves the
// builder in a fresh, unreachable block (statements after an
// unconditional jump are dead until a label or join reuses them).
func (b *builder) jump(target *Block) {
	b.edge(b.current, target)
	b.current = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.graph.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.current.PanicExit = true
			b.jump(b.graph.Exit)
		}

	case *ast.DeferStmt:
		b.graph.Defers = append(b.graph.Defers, s)
		b.add(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.current
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		b.edge(condBlock, then)
		b.current = then
		b.stmts(s.Body.List)
		b.edge(b.current, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlock, els)
			b.current = els
			b.stmt(s.Else)
			b.edge(b.current, join)
		} else {
			b.edge(condBlock, join)
		}
		b.current = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock("for.header")
		b.edge(b.current, header)
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
		}
		post := header
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, header)
		}
		exit := b.newBlock("for.exit")
		if s.Cond != nil {
			b.edge(header, exit)
		}
		body := b.newBlock("for.body")
		b.edge(header, body)
		b.pushLoop(s, exit, post)
		b.current = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.current, post)
		b.current = exit

	case *ast.RangeStmt:
		b.add(s.X)
		header := b.newBlock("range.header")
		b.edge(b.current, header)
		// The per-iteration key/value assignment is part of the header.
		header.Nodes = append(header.Nodes, s)
		exit := b.newBlock("range.exit")
		b.edge(header, exit)
		body := b.newBlock("range.body")
		b.edge(header, body)
		b.pushLoop(s, exit, header)
		b.current = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.current, header)
		b.current = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.cases(s, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.cases(s, s.Body.List, nil)

	case *ast.SelectStmt:
		header := b.current
		exit := b.newBlock("select.exit")
		b.pushBreak(s, exit)
		hasCase := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			hasCase = true
			body := b.newBlock("select.case")
			b.edge(header, body)
			b.current = body
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.current, exit)
		}
		b.popBreak()
		if !hasCase {
			// select{} blocks forever: no successor at all.
			b.current = b.newBlock("unreachable")
			return
		}
		b.current = exit

	case *ast.LabeledStmt:
		info := b.label(s.Label.Name)
		b.edge(b.current, info.target)
		b.current = info.target
		b.labels[s.Label.Name] = info
		b.labeled = s.Label.Name
		b.stmt(s.Stmt)
		b.labeled = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.add(s)
				b.jump(t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.add(s)
				b.jump(t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.add(s)
				b.jump(b.label(s.Label.Name).target)
			}
		case token.FALLTHROUGH:
			// Handled by cases(): the case body's fallthrough edge is the
			// edge to the next body block; record the statement only.
			b.add(s)
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-
		// line nodes.
		if s != nil {
			if _, ok := s.(*ast.EmptyStmt); ok {
				return
			}
			b.add(s)
		}
	}
}

// cases builds the shared switch/type-switch shape: every case body is a
// successor of the header block, fallthrough chains body i to body i+1,
// and a missing default adds a header→exit edge.
func (b *builder) cases(sw ast.Stmt, clauses []ast.Stmt, caseExprs func(*ast.CaseClause, *Block)) {
	header := b.current
	exit := b.newBlock("switch.exit")
	b.pushBreak(sw, exit)
	var bodies []*Block
	var ccs []*ast.CaseClause
	hasDefault := false
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		ccs = append(ccs, cc)
		blk := b.newBlock("switch.case")
		b.edge(header, blk)
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, blk)
		}
		bodies = append(bodies, blk)
	}
	for i, blk := range bodies {
		b.current = blk
		b.stmts(ccs[i].Body)
		if fallsThrough(ccs[i].Body) && i+1 < len(bodies) {
			b.edge(b.current, bodies[i+1])
			b.current = b.newBlock("unreachable")
		} else {
			b.edge(b.current, exit)
		}
	}
	b.popBreak()
	if !hasDefault {
		b.edge(header, exit)
	}
	b.current = exit
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// label returns (creating on first reference) the info for a label, so
// forward gotos resolve to the same block the LabeledStmt later claims.
func (b *builder) label(name string) *labelInfo {
	if info, ok := b.labels[name]; ok {
		return info
	}
	info := &labelInfo{target: b.newBlock("label." + name)}
	b.labels[name] = info
	return info
}

// pushLoop opens a loop's break/continue scope; if the loop carries a
// pending label, the label's targets are bound too.
func (b *builder) pushLoop(s ast.Stmt, brk, cont *Block) {
	b.breakStack = append(b.breakStack, brk)
	b.contStack = append(b.contStack, cont)
	if b.labeled != "" {
		info := b.labels[b.labeled]
		info.breakTarget = brk
		info.contTarget = cont
		b.labeled = "" // consumed: inner loops must not rebind this label
	}
}

func (b *builder) popLoop() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
}

// pushBreak opens a switch/select break scope (no continue target).
func (b *builder) pushBreak(s ast.Stmt, brk *Block) {
	b.breakStack = append(b.breakStack, brk)
	if b.labeled != "" {
		b.labels[b.labeled].breakTarget = brk
		b.labeled = ""
	}
}

func (b *builder) popBreak() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
}

// branchTarget resolves break (isBreak) or continue to its target block,
// or nil when the program is malformed (dangling break in a function
// body fragment — tolerated, since the type checker owns that error).
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		info, ok := b.labels[label.Name]
		if !ok {
			return nil
		}
		if isBreak {
			return info.breakTarget
		}
		return info.contTarget
	}
	if isBreak {
		if len(b.breakStack) == 0 {
			return nil
		}
		return b.breakStack[len(b.breakStack)-1]
	}
	if len(b.contStack) == 0 {
		return nil
	}
	return b.contStack[len(b.contStack)-1]
}

// isPanicCall reports a direct call of the panic builtin. Purely
// syntactic: a local function named panic would shadow the builtin, which
// no code in this tree (or sane code anywhere) does.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the blocks reachable from Entry, in a deterministic
// (block-index) order. Dead blocks the builder created after jumps are
// excluded, which is what dataflow iteration wants.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	stack = append(stack, g.Entry)
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}

// Dump renders the graph for tests and debugging: one line per block with
// its role, node count and successor indices.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s) n=%d ->", blk.Index, blk.comment, len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
