package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"sympack/internal/lint/cfg"
)

// build parses one function body and returns its graph.
func build(t *testing.T, body string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body), fset
}

// reach reports whether to is reachable from from.
func reach(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, "x := 1\n_ = x\nreturn")
	if !reach(g.Entry, g.Exit) {
		t.Fatal("exit unreachable in straight-line function")
	}
	if len(g.Entry.Nodes) != 3 { // assign, assign, return
		t.Errorf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
}

func TestIfJoin(t *testing.T) {
	g, _ := build(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	// The join block must have two predecessors (then and else arms).
	var join *cfg.Block
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 && b != g.Exit {
			join = b
		}
	}
	if join == nil {
		t.Fatalf("no two-predecessor join block:\n%s", g.Dump(nil))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g, _ := build(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	// Condition block must reach the join both through and around the
	// then-arm: the join has 2 preds.
	found := false
	for _, b := range g.Blocks {
		if b != g.Exit && len(b.Preds) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing then/fallthrough join:\n%s", g.Dump(nil))
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g, _ := build(t, "for i := 0; i < 4; i++ {\n\t_ = i\n}")
	// Some block must have a successor with a smaller index (the back
	// edge to the loop header).
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("no back edge in for loop:\n%s", g.Dump(nil))
	}
	if !reach(g.Entry, g.Exit) {
		t.Fatal("loop exit unreachable")
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g, _ := build(t, "for {\n\t_ = 1\n}")
	if reach(g.Entry, g.Exit) {
		t.Fatalf("exit reachable through condition-less for:\n%s", g.Dump(nil))
	}
}

func TestBreakEscapesInfiniteLoop(t *testing.T) {
	g, _ := build(t, "for {\n\tbreak\n}")
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("break does not reach exit:\n%s", g.Dump(nil))
	}
}

func TestContinueSkipsRest(t *testing.T) {
	// After continue, the increment statement is dead within its block
	// path; the graph must still terminate and reach exit.
	g, _ := build(t, "x := 0\nfor i := 0; i < 4; i++ {\n\tif i == 2 {\n\t\tcontinue\n\t}\n\tx++\n}\n_ = x")
	if !reach(g.Entry, g.Exit) {
		t.Fatal("exit unreachable with continue")
	}
}

func TestReturnTerminatesPath(t *testing.T) {
	g, _ := build(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x")
	// The then-arm must edge to Exit, not to the join.
	var ret *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				ret = b
			}
		}
	}
	if ret == nil {
		t.Fatal("return block not found")
	}
	if len(ret.Succs) != 1 || ret.Succs[0] != g.Exit {
		t.Fatalf("return block succs = %v, want [exit]", ret.Succs)
	}
}

func TestPanicEdgesToExit(t *testing.T) {
	g, _ := build(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\n_ = x")
	var pan *cfg.Block
	for _, b := range g.Blocks {
		if b.PanicExit {
			pan = b
		}
	}
	if pan == nil {
		t.Fatalf("no PanicExit block:\n%s", g.Dump(nil))
	}
	if len(pan.Succs) != 1 || pan.Succs[0] != g.Exit {
		t.Fatal("panic block must edge to Exit")
	}
}

func TestSwitchCasesAndDefault(t *testing.T) {
	g, _ := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\ncase 2:\n\tx = 3\ndefault:\n\tx = 4\n}\n_ = x")
	// With a default, the header must NOT edge straight to the exit
	// join: three case bodies only.
	var header *cfg.Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 3 {
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no 3-successor switch header:\n%s", g.Dump(nil))
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g, _ := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n}\n_ = x")
	// Without a default the header edges to both the case and the exit.
	ok := false
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 && b != g.Exit {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("header missing no-match edge:\n%s", g.Dump(nil))
	}
}

func TestFallthroughChains(t *testing.T) {
	g, _ := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n\tfallthrough\ncase 2:\n\tx = 3\n}\n_ = x")
	// The first case body must edge into the second case body (which
	// then has two preds: header and the fallthrough).
	found := false
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 && b != g.Exit {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					found = true
					_ = as
				}
			}
		}
	}
	if !found {
		t.Fatalf("fallthrough target lacks dual preds:\n%s", g.Dump(nil))
	}
}

func TestSelectBranches(t *testing.T) {
	g, _ := build(t, "var a, b chan int\nselect {\ncase <-a:\n\t_ = 1\ncase <-b:\n\t_ = 2\n}")
	var header *cfg.Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 && blk != g.Exit {
			header = blk
		}
	}
	if header == nil {
		t.Fatalf("select header with 2 case successors not found:\n%s", g.Dump(nil))
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g, _ := build(t, "select {}\n_ = 1")
	if reach(g.Entry, g.Exit) {
		t.Fatalf("exit reachable past select{}:\n%s", g.Dump(nil))
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _ := build(t, "x := 0\nloop:\n\tx++\nif x < 3 {\n\tgoto loop\n}\ngoto done\ndone:\n\treturn")
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("goto graph does not reach exit:\n%s", g.Dump(nil))
	}
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("backward goto produced no back edge:\n%s", g.Dump(nil))
	}
}

func TestLabeledBreak(t *testing.T) {
	g, _ := build(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\n_ = 1")
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("labeled break does not escape nested loops:\n%s", g.Dump(nil))
	}
}

// TestLabeledBreakOutOfNestedSelect pins the interaction of the label
// machinery with select: a `break outer` two selects deep must escape
// both comm clauses and the enclosing loop in one edge.
func TestLabeledBreakOutOfNestedSelect(t *testing.T) {
	g, _ := build(t, `var a, b chan int
outer:
	for {
		select {
		case <-a:
			break outer
		case <-b:
			select {
			case <-a:
				break outer
			case <-b:
				_ = 1
			}
		}
	}
	_ = 2`)
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("labeled break inside nested selects does not escape the loop:\n%s", g.Dump(nil))
	}
}

// TestLabeledContinueOutOfNestedSelect: `continue outer` from a comm
// clause must edge back to the loop advance, keeping both the back edge
// and the normal loop exit alive.
func TestLabeledContinueOutOfNestedSelect(t *testing.T) {
	g, _ := build(t, `var a, b chan int
outer:
	for i := 0; i < 3; i++ {
		select {
		case <-a:
			continue outer
		case <-b:
			_ = 1
		}
		_ = 2
	}
	_ = 3`)
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("loop with labeled continue never reaches exit:\n%s", g.Dump(nil))
	}
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("labeled continue produced no back edge:\n%s", g.Dump(nil))
	}
}

// TestGotoIntoLoopBody: the builder must stay robust on a goto targeting
// a label inside a loop body (the parser accepts it; only the type
// checker rejects the scope jump), producing a connected graph rather
// than panicking — analyzers can run on ill-scoped code mid-edit.
func TestGotoIntoLoopBody(t *testing.T) {
	g, _ := build(t, `i := 0
	goto inside
	for i < 3 {
	inside:
		i++
	}
	_ = i`)
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("goto into loop body disconnects exit:\n%s", g.Dump(nil))
	}
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("loop entered via goto lost its back edge:\n%s", g.Dump(nil))
	}
}

// TestSelectWithDefault: a default arm makes select non-blocking — the
// header needs a successor per clause and the join must reach exit.
func TestSelectWithDefault(t *testing.T) {
	g, _ := build(t, "var a chan int\nselect {\ncase <-a:\n\t_ = 1\ndefault:\n\t_ = 2\n}\n_ = 3")
	if !reach(g.Entry, g.Exit) {
		t.Fatalf("select with default does not reach exit:\n%s", g.Dump(nil))
	}
	var header *cfg.Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 && blk != g.Exit && reach(blk, g.Exit) {
			header = blk
			break
		}
	}
	if header == nil {
		t.Fatalf("select header with comm+default successors not found:\n%s", g.Dump(nil))
	}
}

func TestRangeLoop(t *testing.T) {
	g, _ := build(t, "xs := []int{1, 2}\nfor _, x := range xs {\n\t_ = x\n}")
	if !reach(g.Entry, g.Exit) {
		t.Fatal("range exit unreachable")
	}
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("range loop has no back edge")
	}
}

func TestDefersRecorded(t *testing.T) {
	g, _ := build(t, "defer close(nil)\ndefer func() {}()\nreturn")
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
}

func TestReachableExcludesDeadBlocks(t *testing.T) {
	g, _ := build(t, "return\n_ = 1")
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				t.Errorf("dead assignment reachable: %v", as)
			}
		}
	}
}
