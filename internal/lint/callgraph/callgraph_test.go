package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const src = `package p

type ringer interface{ Ring() int }

type bell struct{}

func (bell) Ring() int { return 1 }

type gong struct{}

func (*gong) Ring() int { return 2 }

type silent struct{}

func helper() int { return 0 }

func other() int { return 1 }

func calls() {
	helper()            // static
	f := helper
	f()                 // funcvalue
	g := helper
	g = other
	g()                 // poisoned: rebound
	h := helper
	ptr := &h
	_ = ptr
	h()                 // poisoned: address taken
	var r ringer = bell{}
	r.Ring()            // interface
	b := bell{}
	b.Ring()            // static method
	var fld struct{ fn func() }
	fld.fn()            // dynamic field: unknown
	_ = int(0)          // conversion, not a call target
	println("builtin")
}
`

func load(t *testing.T, source string) (*types.Package, *types.Info, []*ast.File, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", source, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, info, []*ast.File{f}, fset
}

// TestResolution walks the calls() function and checks each call site's
// resolution kind and callees.
func TestResolution(t *testing.T) {
	pkg, info, files, _ := load(t, src)
	g := Build(pkg, info, files)

	var node *Node
	for _, n := range g.Nodes {
		if n.Func.Name() == "calls" {
			node = n
		}
	}
	if node == nil {
		t.Fatal("no node for calls()")
	}

	type want struct {
		kind    Kind
		callees []string
	}
	wants := []want{
		{KindStatic, []string{"p.helper"}},
		{KindFuncValue, []string{"p.helper"}},
		{KindUnknown, nil},                           // g rebound
		{KindUnknown, nil},                           // h address-taken
		{KindInterface, []string{"p.(bell).Ring", "p.(gong).Ring"}}, // r.Ring()
		{KindStatic, []string{"p.(bell).Ring"}},
		{KindUnknown, nil}, // fld.fn()
		{KindUnknown, nil}, // println builtin
	}
	if len(node.Calls) != len(wants) {
		var got []string
		for _, c := range node.Calls {
			got = append(got, c.Kind.String())
		}
		t.Fatalf("calls() has %d call sites (%s), want %d", len(node.Calls), strings.Join(got, ","), len(wants))
	}
	for i, w := range wants {
		c := node.Calls[i]
		if c.Kind != w.kind {
			t.Errorf("call %d: kind = %s, want %s", i, c.Kind, w.kind)
		}
		var got []string
		for _, fn := range c.Callees {
			got = append(got, funcID(fn))
		}
		if strings.Join(got, ",") != strings.Join(w.callees, ",") {
			t.Errorf("call %d: callees = %v, want %v", i, got, w.callees)
		}
	}
}

// TestGraphOrder pins that nodes appear in source order and NodeOf finds
// them.
func TestGraphOrder(t *testing.T) {
	pkg, info, files, _ := load(t, src)
	g := Build(pkg, info, files)
	var names []string
	for _, n := range g.Nodes {
		names = append(names, n.Func.Name())
		if g.NodeOf(n.Func) != n {
			t.Errorf("NodeOf(%s) does not round-trip", n.Func.Name())
		}
	}
	want := "Ring,Ring,helper,other,calls"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("node order = %s, want %s", got, want)
	}
}

// TestDisplayName covers plain functions and both receiver forms.
func TestDisplayName(t *testing.T) {
	pkg, info, files, _ := load(t, src)
	g := Build(pkg, info, files)
	var got []string
	for _, n := range g.Nodes {
		got = append(got, DisplayName(n.Func))
	}
	want := "(bell).Ring,(*gong).Ring,p.helper,p.other,p.calls"
	if s := strings.Join(got, ","); s != want {
		t.Errorf("display names = %s, want %s", s, want)
	}
}
