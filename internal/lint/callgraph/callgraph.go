// Package callgraph builds a type-driven call graph over one type-checked
// package, the resolution layer under the suite's interprocedural
// analyzers (taint propagation in nondetflow/errflow, callee summaries in
// goroutineleak and mutexguard). It answers the one question those
// analyzers share: "which function(s) can this call expression reach?" —
// with three resolution strategies, applied in order:
//
//  1. Static: the callee is a named function or a concrete method,
//     resolved directly through go/types (including qualified
//     identifiers, pkg.Fn).
//  2. Function value: the callee is a local variable bound exactly once
//     to a statically known function ("f := helper; ...; f(x)"). A
//     variable reassigned, address-taken, or bound to anything but a
//     plain function reference stays unresolved.
//  3. Method set: the callee is an interface method; the candidates are
//     every named type declared in this package or in an imported
//     module-local package whose method set satisfies the interface.
//     The result is the (deterministically ordered) set of concrete
//     methods, which is sound for module-local dispatch because the
//     linters only reason about module-local invariants.
//
// Everything else — builtins, conversions, calls of function-typed fields
// or parameters, immediately invoked literals — resolves to no callees
// with KindUnknown, and callers fall back to whatever conservative
// treatment their analysis needs. The graph itself (Build) lists every
// declared function in source order with its resolved call sites, which
// is the iteration order the taint engine's fixpoint uses.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Kind classifies how a call site was resolved.
type Kind int

const (
	// KindUnknown: no callee could be determined (dynamic call through a
	// parameter, field, builtin, conversion, or immediately invoked
	// literal).
	KindUnknown Kind = iota
	// KindStatic: a single statically resolved function or concrete
	// method.
	KindStatic
	// KindFuncValue: a single function reached through a local variable
	// bound exactly once to a known function.
	KindFuncValue
	// KindInterface: an interface method call resolved to the concrete
	// methods of every module-local type implementing the interface.
	KindInterface
)

func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindFuncValue:
		return "funcvalue"
	case KindInterface:
		return "interface"
	default:
		return "unknown"
	}
}

// A Call is one resolved call site.
type Call struct {
	Site    *ast.CallExpr
	Callees []*types.Func // nil for KindUnknown; sorted for KindInterface
	Kind    Kind
}

// A Node is one declared function with its outgoing calls, in source
// order (calls inside nested function literals included — the literal
// body belongs to the declaring function's node).
type Node struct {
	Func  *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// A Graph is the call graph of one package: every function declaration in
// file-then-position order.
type Graph struct {
	Nodes    []*Node
	Resolver *Resolver

	byFunc map[*types.Func]*Node
}

// NodeOf returns the node declaring fn, or nil for functions declared
// elsewhere (imported, or synthesized).
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// Build constructs the package's call graph.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	r := NewResolver(pkg, info, files)
	g := &Graph{Resolver: r, byFunc: map[*types.Func]*Node{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &Node{Func: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Conversions are not calls; keep them out of the graph.
				if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
					return true
				}
				callees, kind := r.Callees(call)
				node.Calls = append(node.Calls, Call{Site: call, Callees: callees, Kind: kind})
				return true
			})
			g.Nodes = append(g.Nodes, node)
			g.byFunc[fn] = node
		}
	}
	return g
}

// A Resolver resolves call expressions of one package to callee
// functions.
type Resolver struct {
	pkg  *types.Package
	info *types.Info

	// funcVals maps a local variable object to the single function it is
	// bound to, when that binding is unique and static.
	funcVals map[types.Object]*types.Func

	// implCandidates are the named types (from this package and imported
	// module-local packages) considered for interface method resolution,
	// in deterministic order.
	implCandidates []*types.Named

	// implCache memoizes interface-method resolution by interface method
	// object.
	implCache map[*types.Func][]*types.Func
}

// NewResolver indexes the package for call resolution.
func NewResolver(pkg *types.Package, info *types.Info, files []*ast.File) *Resolver {
	r := &Resolver{
		pkg:       pkg,
		info:      info,
		funcVals:  map[types.Object]*types.Func{},
		implCache: map[*types.Func][]*types.Func{},
	}
	r.indexFuncValues(files)
	r.indexImplCandidates()
	return r
}

// localPrefix returns the module prefix ("sympack") used to decide which
// imported packages take part in method-set resolution: the first path
// segment of the package under analysis.
func (r *Resolver) localPrefix() string {
	path := r.pkg.Path()
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// isLocal reports whether an import path belongs to the same module as
// the package under analysis.
func (r *Resolver) isLocal(path string) bool {
	prefix := r.localPrefix()
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// indexFuncValues records local variables bound exactly once to a static
// function reference. A second binding, or any binding to a non-function,
// poisons the variable.
func (r *Resolver) indexFuncValues(files []*ast.File) {
	poisoned := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := r.info.Defs[id]
		if obj == nil {
			obj = r.info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		fn := r.staticFuncRef(rhs)
		if fn == nil || poisoned[v] {
			poisoned[v] = true
			delete(r.funcVals, v)
			return
		}
		if prev, ok := r.funcVals[v]; ok && prev != fn {
			poisoned[v] = true
			delete(r.funcVals, v)
			return
		}
		r.funcVals[v] = fn
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(n.Names[i], n.Values[i])
					}
				}
			case *ast.UnaryExpr:
				// Address-taken variables can be rebound through the
				// pointer; drop them.
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := r.info.Uses[id].(*types.Var); ok {
						poisoned[v] = true
						delete(r.funcVals, v)
					}
				}
			}
			return true
		})
	}
}

// staticFuncRef resolves an expression to the function it references
// statically (an identifier or selector naming a func), or nil.
func (r *Resolver) staticFuncRef(e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := r.info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := r.info.Selections[e]; ok {
			// Method value or expression: only concrete methods resolve.
			if fn, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
				return fn
			}
			return nil
		}
		// Qualified identifier pkg.Fn.
		fn, _ := r.info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// indexImplCandidates gathers the named types eligible for interface
// resolution: every type name in this package's scope plus the scopes of
// directly imported module-local packages, in sorted (path, name) order.
func (r *Resolver) indexImplCandidates() {
	scopes := []*types.Package{r.pkg}
	imports := r.pkg.Imports()
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		if r.isLocal(imp.Path()) {
			scopes = append(scopes, imp)
		}
	}
	for _, p := range scopes {
		scope := p.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				r.implCandidates = append(r.implCandidates, named)
			}
		}
	}
}

// Callees resolves a call expression. For KindStatic and KindFuncValue
// the slice has exactly one element; for KindInterface zero or more, in
// deterministic order; for KindUnknown it is nil.
func (r *Resolver) Callees(call *ast.CallExpr) ([]*types.Func, Kind) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins never resolve.
	if tv, ok := r.info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil, KindUnknown
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := r.info.Uses[fun].(type) {
		case *types.Func:
			return []*types.Func{obj}, KindStatic
		case *types.Var:
			if fn, ok := r.funcVals[obj]; ok {
				return []*types.Func{fn}, KindFuncValue
			}
		}
		return nil, KindUnknown

	case *ast.SelectorExpr:
		if sel, ok := r.info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Function-typed field: dynamic.
				return nil, KindUnknown
			}
			if types.IsInterface(sel.Recv()) {
				return r.interfaceImpls(fn, sel.Recv()), KindInterface
			}
			return []*types.Func{fn}, KindStatic
		}
		// Qualified identifier pkg.Fn.
		if fn, ok := r.info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}, KindStatic
		}
		return nil, KindUnknown
	}
	return nil, KindUnknown
}

// Static returns the single statically resolved callee (KindStatic or
// KindFuncValue), or nil.
func (r *Resolver) Static(call *ast.CallExpr) *types.Func {
	callees, kind := r.Callees(call)
	if (kind == KindStatic || kind == KindFuncValue) && len(callees) == 1 {
		return callees[0]
	}
	return nil
}

// interfaceImpls resolves an interface method to the corresponding
// concrete methods of every candidate type implementing the interface.
func (r *Resolver) interfaceImpls(method *types.Func, recv types.Type) []*types.Func {
	if impls, ok := r.implCache[method]; ok {
		return impls
	}
	iface, _ := recv.Underlying().(*types.Interface)
	var impls []*types.Func
	if iface != nil && !iface.Empty() {
		seen := map[*types.Func]bool{}
		for _, named := range r.implCandidates {
			if types.IsInterface(named.Underlying()) {
				continue
			}
			var impl types.Type = named
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(named)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, method.Pkg(), method.Name())
			if fn, ok := obj.(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				impls = append(impls, fn)
			}
		}
		sort.Slice(impls, func(i, j int) bool { return funcID(impls[i]) < funcID(impls[j]) })
	}
	r.implCache[method] = impls
	return impls
}

// funcID renders a stable, human-readable identity for a function:
// "path.Fn" or "path.(Recv).Fn".
func funcID(fn *types.Func) string {
	var sb strings.Builder
	if p := fn.Pkg(); p != nil {
		sb.WriteString(p.Path())
		sb.WriteString(".")
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			sb.WriteString("(")
			sb.WriteString(named.Obj().Name())
			sb.WriteString(").")
		}
	}
	sb.WriteString(fn.Name())
	return sb.String()
}

// DisplayName renders a function for diagnostics: "pkg.Fn" or
// "(*Recv).Fn", using package names rather than full paths.
func DisplayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if p := fn.Pkg(); p != nil {
		return p.Name() + "." + fn.Name()
	}
	return fn.Name()
}
