// Package errflow implements the "errflow" analyzer: an interprocedural
// taint check proving that the fault taxonomy survives error plumbing.
// The degradation ladder (internal/faults, internal/server admission
// control, core's chaos recovery) keys every retry/abort/degrade decision
// on errors.Is against the taxonomy sentinels — ErrTransient,
// ErrLostSignal, ErrDeviceFailed, ErrStalled, ErrTransferFailed. An
// error that *derives* from a sentinel but no longer matches it under
// errors.Is silently demotes a retryable fault to a fatal one (or vice
// versa), which is exactly the class of bug the fault-injection battery
// can only catch if the schedule happens to trip it.
//
// Sources are reads of the sentinel variables. Taint follows assignments,
// %w wrapping (fmt.Errorf with a literal format), errors.Join, and
// Error()/Sprintf stringification; it crosses function and package
// boundaries through sympack/internal/lint/taint summaries exported as
// Facts. Sinks are the taxonomy-erasing operations:
//
//   - fmt.Errorf rewrapping a sentinel-derived error with %v/%s/%q
//     instead of %w — errors.Is can no longer see the sentinel;
//   - errors.New over sentinel-derived text (err.Error(), Sprintf);
//   - type assertions and type switches on sentinel-derived errors —
//     wrapping breaks them where errors.As would not;
//   - the swallow shape `if err != nil { return nil }` on a
//     sentinel-derived error with no errors.Is/errors.As consult — the
//     taxonomy verdict is dropped without being read.
//
// A justified erasure is audited with //lint:ignore errflow <reason>,
// which the engine consumes (counting for the unusedignore audit) when
// it kills the corresponding source or assignment.
package errflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/taint"
)

// Name is the analyzer name //lint:ignore directives must use.
const Name = "errflow"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "detects fault-taxonomy errors (ErrTransient, ErrLostSignal, ...) losing " +
		"errors.Is compatibility through %v rewraps, errors.New re-creation, type " +
		"assertions, or nil-swallowing, across call and package boundaries",
	Run:       run,
	FactTypes: []analysis.Fact{(*flowFact)(nil)},
}

// flowFact carries a function's taint summary plus its consulted error
// parameters — parameter indexes the function checks with errors.Is or
// errors.As — to importing packages. The consult set recognizes the
// classifier-helper shape (`func retryable(err error) bool`) so a branch
// that keys on the helper's verdict is not reported as a swallow even
// though the errors.Is lives one frame down.
type flowFact struct {
	S        taint.Summary
	Consults []int
}

func (*flowFact) AFact() {}

func (f *flowFact) String() string {
	return fmt.Sprintf("errflow(results=%d sinks=%d consults=%d)", len(f.S.Results), len(f.S.Sinks), len(f.Consults))
}

// sentinels are the taxonomy roots every degradation decision keys on.
var sentinels = map[string]bool{
	"ErrTransient":      true,
	"ErrLostSignal":     true,
	"ErrDeviceFailed":   true,
	"ErrStalled":        true,
	"ErrTransferFailed": true,
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// swallowSite records an `if <ident> != nil` whose taint must be checked
// at the condition's program point during replay.
type swallowSite struct {
	ifStmt *ast.IfStmt
	errVar ast.Expr // the nil-compared error expression
	fn     *ast.FuncDecl
}

func run(pass *analysis.Pass) (interface{}, error) {
	consults := consultedParams(pass)
	swallows := indexSwallowSites(pass)
	// reported dedups swallow findings: the same condition node can be
	// revisited when a loop header is shared between replayed blocks.
	reported := map[*ast.IfStmt]bool{}

	spec := taint.Spec{
		Analyzer: Name,
		SourceExpr: func(e ast.Expr) string {
			obj := sentinelObj(pass.TypesInfo, e)
			if obj == nil {
				return ""
			}
			return obj.Pkg().Name() + "." + obj.Name()
		},
		TransferCall: func(call *ast.CallExpr) ([][]ast.Expr, bool) {
			return transferCall(pass.TypesInfo, call)
		},
		Sinks: func(n ast.Node) []taint.SinkUse {
			switch n := n.(type) {
			case *ast.CallExpr:
				return callSinks(pass, n)
			case *ast.TypeAssertExpr:
				return assertSinks(pass, n)
			}
			return nil
		},
		Lookup: func(fn *types.Func) (taint.Summary, bool) {
			var f flowFact
			if pass.ImportObjectFact(fn, &f) {
				return f.S, true
			}
			return taint.Summary{}, false
		},
		Visit: func(n ast.Node, taintOf func(e ast.Expr) []string) {
			cond, ok := n.(ast.Expr)
			if !ok {
				return
			}
			site, ok := swallows[cond]
			if !ok || reported[site.ifStmt] {
				return
			}
			src := sourceOf(taintOf(site.errVar))
			if src == "" {
				return
			}
			ret := swallowReturn(pass, consults, site)
			if ret == nil {
				return
			}
			reported[site.ifStmt] = true
			pass.Reportf(ret.Pos(),
				"taxonomy error (%s) swallowed: checked against nil then discarded without "+
					"an errors.Is/errors.As consult; handle the class or propagate the error", src)
		},
	}

	res := taint.Run(pass, spec)

	for _, f := range res.Findings {
		msg := fmt.Sprintf("taxonomy error (%s) flows into %s", f.Source, f.Sink)
		if f.Via != "" {
			msg += " via " + f.Via
		}
		msg += "; preserve errors.Is (wrap with %w) or justify with //lint:ignore errflow"
		pass.Reportf(f.Pos, "%s", msg)
	}

	for _, node := range res.Graph.Nodes {
		sum := res.Summaries[node.Func]
		cp := consults[node.Func]
		if sum.Empty() && len(cp) == 0 {
			continue
		}
		fact := flowFact{S: sum, Consults: cp}
		pass.ExportObjectFact(node.Func, &fact)
	}
	return nil, nil
}

// sentinelObj resolves e to a package-level taxonomy sentinel variable.
func sentinelObj(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !sentinels[v.Name()] {
		return nil
	}
	// Package level: the variable's parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errIface) {
		return nil
	}
	return v
}

// sourceOf extracts the first source description from a label set.
func sourceOf(labels []string) string {
	for _, l := range labels {
		if desc, ok := strings.CutPrefix(l, "src:"); ok {
			return desc
		}
	}
	return ""
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func pkgPath(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

// transferCall models the stdlib error-plumbing calls the summaries
// cannot see into.
func transferCall(info *types.Info, call *ast.CallExpr) ([][]ast.Expr, bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return nil, false
	}
	path := pkgPath(fn)
	switch {
	case path == "fmt" && fn.Name() == "Errorf":
		verbs, ok := formatVerbs(call)
		if !ok {
			// Dynamic format: be conservative, everything may wrap.
			return [][]ast.Expr{call.Args[1:]}, true
		}
		var wrapped []ast.Expr
		for i, v := range verbs {
			if v == 'w' && 1+i < len(call.Args) {
				wrapped = append(wrapped, call.Args[1+i])
			}
		}
		return [][]ast.Expr{wrapped}, true
	case path == "fmt" && (fn.Name() == "Sprintf" || fn.Name() == "Sprint" || fn.Name() == "Sprintln"):
		// Stringification keeps taxonomy *content* flowing (the dangerous
		// ingredient of errors.New re-creation) even though identity dies.
		return [][]ast.Expr{call.Args}, true
	case path == "errors" && fn.Name() == "Join":
		return [][]ast.Expr{call.Args}, true
	case path == "errors" && (fn.Name() == "New" || fn.Name() == "Is" || fn.Name() == "As" || fn.Name() == "Unwrap"):
		// New severs identity (its argument is judged as a sink);
		// Is/As consume without producing a tainted value; Unwrap of a
		// tainted error stays in the taxonomy.
		if fn.Name() == "Unwrap" {
			return [][]ast.Expr{call.Args}, true
		}
		return nil, true
	case fn.Name() == "Error" && isErrorMethod(fn):
		// err.Error(): the string still carries the taxonomy text.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return [][]ast.Expr{{sel.X}}, true
		}
	}
	return nil, false
}

// isErrorMethod reports whether fn is the error interface's Error method
// shape: a niladic method returning exactly one string.
func isErrorMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// formatVerbs returns the arg-consuming verbs of a literal format string
// in order, or ok=false for dynamic or indexed ([n]) formats.
func formatVerbs(call *ast.CallExpr) ([]byte, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return nil, false
	}
	s := lit.Value
	var verbs []byte
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		if i < len(s) && s[i] == '%' {
			continue
		}
		for i < len(s) && strings.IndexByte("+-# 0123456789.", s[i]) >= 0 {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '[' {
			return nil, false // indexed args: give up, treat as dynamic
		}
		if s[i] == '*' {
			verbs = append(verbs, '*') // the width consumes an argument
			i++
			for i < len(s) && strings.IndexByte("0123456789.", s[i]) >= 0 {
				i++
			}
			if i >= len(s) {
				break
			}
		}
		verbs = append(verbs, s[i])
	}
	return verbs, true
}

// callSinks flags taxonomy-erasing call arguments.
func callSinks(pass *analysis.Pass, call *ast.CallExpr) []taint.SinkUse {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	path := pkgPath(fn)
	switch {
	case path == "fmt" && fn.Name() == "Errorf":
		verbs, ok := formatVerbs(call)
		if !ok {
			return nil
		}
		var uses []taint.SinkUse
		for i, v := range verbs {
			if v == 'w' || 1+i >= len(call.Args) {
				continue
			}
			arg := call.Args[1+i]
			if tv, ok := pass.TypesInfo.Types[arg]; ok && isErrorType(tv.Type) {
				uses = append(uses, taint.SinkUse{
					Value: arg,
					Desc:  fmt.Sprintf("a %%%c rewrap (severs errors.Is; use %%w)", v),
				})
			}
		}
		return uses
	case path == "errors" && fn.Name() == "New" && len(call.Args) == 1:
		return []taint.SinkUse{{
			Value: call.Args[0],
			Desc:  "errors.New over taxonomy-derived text (severs errors.Is)",
		}}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// assertSinks flags type assertions and type-switch guards on errors.
func assertSinks(pass *analysis.Pass, n *ast.TypeAssertExpr) []taint.SinkUse {
	tv, ok := pass.TypesInfo.Types[n.X]
	if !ok || !isErrorType(tv.Type) {
		return nil
	}
	desc := "a type assertion (wrapping breaks it; use errors.As)"
	if n.Type == nil {
		desc = "a type switch (wrapping breaks it; use errors.As)"
	}
	return []taint.SinkUse{{Value: n.X, Desc: desc}}
}

// indexSwallowSites maps `if <expr> != nil` conditions over error values
// to their enclosing statement, for the Visit hook to interrogate at the
// condition's program point.
func indexSwallowSites(pass *analysis.Pass) map[ast.Expr]*swallowSite {
	sites := map[ast.Expr]*swallowSite{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
				if !ok || bin.Op != token.NEQ {
					return true
				}
				errSide, nilSide := bin.X, bin.Y
				if isNil(pass.TypesInfo, errSide) {
					errSide, nilSide = nilSide, errSide
				}
				if !isNil(pass.TypesInfo, nilSide) {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[errSide]; !ok || !isErrorType(tv.Type) {
					return true
				}
				sites[ifs.Cond] = &swallowSite{ifStmt: ifs, errVar: errSide, fn: fd}
				return true
			})
		}
	}
	return sites
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// swallowReturn finds a `return ..., nil, ...` in the if body that drops
// the checked error (nil in the error result slot) while the whole
// statement never consults errors.Is/errors.As — directly or through a
// classifier helper. Nested function literals are their own scope and are
// skipped.
func swallowReturn(pass *analysis.Pass, consults map[*types.Func][]int, site *swallowSite) *ast.ReturnStmt {
	if consultsTaxonomy(pass, consults, site) {
		return nil
	}
	errPos := errorResultIndexes(site.fn)
	if len(errPos) == 0 {
		return nil
	}
	var found *ast.ReturnStmt
	ast.Inspect(site.ifStmt.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found != nil {
			return true
		}
		for _, i := range errPos {
			if i < len(ret.Results) {
				if id, ok := ast.Unparen(ret.Results[i]).(*ast.Ident); ok && id.Name == "nil" {
					found = ret
					return false
				}
			}
		}
		return true
	})
	return found
}

// consultsTaxonomy reports whether the if statement (condition, body, or
// else chain) consults the taxonomy on the checked error: a direct
// errors.Is/errors.As call, or passing the error to a function whose
// consulted-parameter fact covers that argument position.
func consultsTaxonomy(pass *analysis.Pass, local map[*types.Func][]int, site *swallowSite) bool {
	var errObj types.Object
	if id, ok := ast.Unparen(site.errVar).(*ast.Ident); ok {
		errObj = pass.TypesInfo.Uses[id]
	}
	consults := false
	ast.Inspect(site.ifStmt, func(n ast.Node) bool {
		if consults {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if pkg, ok := n.X.(*ast.Ident); ok && pkg.Name == "errors" &&
				(n.Sel.Name == "Is" || n.Sel.Name == "As") {
				consults = true
				return false
			}
		case *ast.CallExpr:
			if errObj == nil {
				return true
			}
			callee := calleeOf(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			for _, idx := range consultIndexes(pass, local, callee) {
				if idx >= len(n.Args) {
					continue
				}
				if id, ok := ast.Unparen(n.Args[idx]).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
					consults = true
					return false
				}
			}
		}
		return true
	})
	return consults
}

// consultIndexes resolves a callee's consulted error parameters: the
// in-package map for local functions, the exported fact otherwise.
func consultIndexes(pass *analysis.Pass, local map[*types.Func][]int, fn *types.Func) []int {
	if fn.Pkg() == pass.Pkg {
		return local[fn]
	}
	var f flowFact
	if pass.ImportObjectFact(fn, &f) {
		return f.Consults
	}
	return nil
}

// consultedParams maps each declared function to the sorted parameter
// indexes it checks with errors.Is or errors.As. Consults inside nested
// function literals are conditional on the closure running, so they do
// not count.
func consultedParams(pass *analysis.Pass) map[*types.Func][]int {
	out := map[*types.Func][]int{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			paramIdx := map[types.Object]int{}
			i := 0
			for _, field := range fd.Type.Params.List {
				if len(field.Names) == 0 {
					i++
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						paramIdx[obj] = i
					}
					i++
				}
			}
			seen := map[int]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				callee := calleeOf(pass.TypesInfo, call)
				if callee == nil || pkgPath(callee) != "errors" ||
					(callee.Name() != "Is" && callee.Name() != "As") {
					return true
				}
				id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if idx, ok := paramIdx[obj]; ok && !seen[idx] {
					seen[idx] = true
					out[fn] = append(out[fn], idx)
				}
				return true
			})
			sort.Ints(out[fn])
		}
	}
	return out
}

// errorResultIndexes lists the positions of error-typed results in fd's
// signature.
func errorResultIndexes(fd *ast.FuncDecl) []int {
	if fd.Type.Results == nil {
		return nil
	}
	var out []int
	i := 0
	for _, field := range fd.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		isErr := false
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			isErr = true
		}
		for j := 0; j < n; j++ {
			if isErr {
				out = append(out, i)
			}
			i++
		}
	}
	return out
}
