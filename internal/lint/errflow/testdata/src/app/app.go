// Package app exercises errflow end to end: direct erasures, the
// cross-package fact path through prod.Fetch's %w summary, local wrap
// helpers with via chains, swallows, and the consulted negatives.
package app

import (
	"errors"
	"fmt"

	"prod"
	"sympack/internal/faults"
)

type opErr struct{ msg string }

func (e *opErr) Error() string { return e.msg }

// rewrap demotes a cross-package taxonomy error with %v.
func rewrap() error {
	err := prod.Fetch(1)
	if err != nil {
		return fmt.Errorf("app: rewrap: %v", err) // want "taxonomy error \\(faults\\.ErrTransient\\) flows into a %v rewrap \\(severs errors\\.Is; use %w\\)"
	}
	return nil
}

// wrapOK keeps the chain intact; %w is the blessed shape.
func wrapOK() error {
	err := prod.Fetch(2)
	if err != nil {
		return fmt.Errorf("app: wrap: %w", err)
	}
	return nil
}

// recreate launders the sentinel through its message text.
func recreate() error {
	err := prod.Fetch(3)
	if err != nil {
		return errors.New(err.Error()) // want "taxonomy error \\(faults\\.ErrTransient\\) flows into errors\\.New over taxonomy-derived text \\(severs errors\\.Is\\)"
	}
	return nil
}

// swallow drops the taxonomy verdict without reading it.
func swallow() error {
	err := prod.Fetch(4)
	if err != nil {
		return nil // want "taxonomy error \\(faults\\.ErrTransient\\) swallowed: checked against nil then discarded"
	}
	return nil
}

// retryOK consults the taxonomy before discarding: transient faults are
// retryable by design, so the swallow is deliberate and visible.
func retryOK() error {
	err := prod.Fetch(5)
	if err != nil {
		if errors.Is(err, faults.ErrTransient) {
			return nil
		}
		return err
	}
	return nil
}

// transient is a local classifier helper.
func transient(err error) bool {
	return errors.Is(err, faults.ErrTransient)
}

// retryViaHelper consults the taxonomy through a same-package classifier:
// the verdict is read, so the discard is deliberate, not a swallow.
func retryViaHelper() error {
	err := prod.Fetch(9)
	if err != nil {
		if transient(err) {
			return nil
		}
		return err
	}
	return nil
}

// retryViaFact consults the taxonomy through prod.Retryable, whose
// consulted-parameter fact crossed the package boundary.
func retryViaFact() error {
	err := prod.Fetch(10)
	if err != nil {
		if prod.Retryable(err) {
			return nil
		}
		return err
	}
	return nil
}

// assert bypasses errors.As on a sentinel-derived error.
func assert() bool {
	err := prod.Fetch(6)
	_, ok := err.(*opErr) // want "taxonomy error \\(faults\\.ErrTransient\\) flows into a type assertion \\(wrapping breaks it; use errors\\.As\\)"
	return ok
}

// classify bypasses errors.As with a type switch.
func classify() string {
	err := prod.Fetch(7)
	switch err.(type) { // want "taxonomy error \\(faults\\.ErrTransient\\) flows into a type switch \\(wrapping breaks it; use errors\\.As\\)"
	case *opErr:
		return "op"
	default:
		return "other"
	}
}

// demote is a local helper whose parameter is erased; callers with
// taxonomy-tainted arguments are reported at the call site.
func demote(err error) error {
	return fmt.Errorf("app: demoted: %v", err)
}

func relabelLocal() error {
	err := prod.Fetch(8)
	return demote(err) // want "taxonomy error \\(faults\\.ErrTransient\\) flows into a %v rewrap \\(severs errors\\.Is; use %w\\) via app\\.demote"
}

// opaque shows the precision contract: an error of unknown provenance is
// not taxonomy-tainted, so erasing it is not errflow's business.
func opaque(err error) error {
	if err != nil {
		return nil
	}
	return errors.New("fresh")
}

func use() {
	_ = rewrap()
	_ = wrapOK()
	_ = recreate()
	_ = swallow()
	_ = retryOK()
	_ = retryViaHelper()
	_ = retryViaFact()
	_ = assert()
	_ = classify()
	_ = relabelLocal()
	_ = opaque(nil)
}
