// Package faults is a stand-in defining the taxonomy sentinels the
// analyzer treats as sources.
package faults

import "errors"

var (
	ErrTransient    = errors.New("faults: transient fault")
	ErrLostSignal   = errors.New("faults: lost signal")
	ErrDeviceFailed = errors.New("faults: device failed")
	ErrStalled      = errors.New("faults: stalled")
)
