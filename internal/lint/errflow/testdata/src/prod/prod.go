// Package prod produces taxonomy-derived errors behind a clean API; its
// result-flow summary must ride the exported fact into consumers.
package prod

import (
	"errors"
	"fmt"

	"sympack/internal/faults"
)

// Fetch wraps correctly (%w), so the result stays errors.Is-compatible —
// but it still *carries* the sentinel, and consumers that erase it must
// be flagged in their own package.
func Fetch(rank int) error {
	return fmt.Errorf("prod: fetch from rank %d: %w", rank, faults.ErrTransient)
}

// Retryable is a classifier helper: the errors.Is lives here, one frame
// below the branches that key on its verdict. Its consulted-parameter
// fact (param 0) must ride into consumers.
func Retryable(err error) bool {
	return errors.Is(err, faults.ErrTransient)
}

// Relabel erases the taxonomy at the source: a %v rewrap inside the
// producing package itself.
func Relabel(rank int) error {
	return fmt.Errorf("prod: rank %d: %v", rank, faults.ErrLostSignal) // want "taxonomy error \\(faults\\.ErrLostSignal\\) flows into a %v rewrap \\(severs errors\\.Is; use %w\\)"
}
