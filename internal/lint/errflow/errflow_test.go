package errflow_test

import (
	"testing"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/errflow"
)

// Packages are listed dependency-first so prod's %w result-flow summary
// fact is in the store by the time app's erasure sites are judged.
func TestErrFlow(t *testing.T) {
	analysistest.RunSuite(t, "testdata", []*analysis.Analyzer{errflow.Analyzer},
		"sympack/internal/faults", "prod", "app")
}
