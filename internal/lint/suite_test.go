package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"sympack/internal/lint"
)

// moduleRoot walks up from the test's working directory to the enclosing
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOnRepo is the dogfooding gate: the full analyzer suite
// must exit clean over this repository (every true positive fixed, every
// audited false positive suppressed with a reason). It is the test-shaped
// twin of `go run ./cmd/sympacklint ./...` exiting 0.
func TestSuiteCleanOnRepo(t *testing.T) {
	diags, fset, err := lint.RunModule(moduleRoot(t), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestSeededViolationTrips pins the acceptance criterion that the lint
// gate actually fails when a violation is introduced: a raw time.Now() in
// a package named internal/core must produce exactly one wallclock
// diagnostic.
func TestSeededViolationTrips(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sympack\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

// A schedule decision derived from the host clock: the exact violation
// the wallclock analyzer exists to stop.
var epoch = time.Now()
`)
	diags, _, err := lint.RunModule(root, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	if diags[0].Analyzer != "wallclock" {
		t.Errorf("diagnostic analyzer = %q, want wallclock", diags[0].Analyzer)
	}
}

// TestByName covers the driver's analyzer registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"atomicconsistency", "futureerr", "mapiterdeterminism", "wallclock"} {
		if a := lint.ByName(name); a == nil || a.Name != name {
			t.Errorf("ByName(%q) = %v", name, a)
		}
	}
	if a := lint.ByName("nope"); a != nil {
		t.Errorf("ByName(nope) = %v, want nil", a)
	}
}
