package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sympack/internal/lint"
)

// moduleRoot walks up from the test's working directory to the enclosing
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOnRepo is the dogfooding gate: the full analyzer suite
// must exit clean over this repository (every true positive fixed, every
// audited false positive suppressed with a reason). It is the test-shaped
// twin of `go run ./cmd/sympacklint ./...` exiting 0.
func TestSuiteCleanOnRepo(t *testing.T) {
	diags, fset, err := lint.RunModule(moduleRoot(t), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue // audited exceptions; unusedignore keeps them honest
		}
		t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestSeededViolationTrips pins the acceptance criterion that the lint
// gate actually fails when a violation is introduced: a raw time.Now() in
// a package named internal/core must produce exactly one wallclock
// diagnostic.
func TestSeededViolationTrips(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sympack\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

// A schedule decision derived from the host clock: the exact violation
// the wallclock analyzer exists to stop.
var epoch = time.Now()
`)
	diags, _, err := lint.RunModule(root, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	if diags[0].Analyzer != "wallclock" {
		t.Errorf("diagnostic analyzer = %q, want wallclock", diags[0].Analyzer)
	}
}

// TestCrossPackageFactFlow pins the tentpole: futureerr's consumption
// facts must flow from an analyzed dependency to its importer, so a
// future handed to a wrapper that provably ignores it is reported at the
// binding even though the blindness lives in another package.
func TestCrossPackageFactFlow(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sympack\n\ngo 1.22\n")
	write("internal/upcxx/upcxx.go", `package upcxx

type Future struct{ err error }

func (f Future) Err() error   { return f.err }
func (f Future) OK() bool     { return f.err == nil }
func (f Future) Wait() float64 { return 0 }

func Start() Future { return Future{} }
`)
	write("internal/wrap/wrap.go", `package wrap

import "sympack/internal/upcxx"

// Swallow drops the future's error on the floor.
func Swallow(f upcxx.Future) { _ = f.Wait() }

// Check consults it.
func Check(f upcxx.Future) error { return f.Err() }
`)
	write("internal/app/app.go", `package app

import (
	"sympack/internal/upcxx"
	"sympack/internal/wrap"
)

func run() error {
	bad := upcxx.Start()
	wrap.Swallow(bad)
	good := upcxx.Start()
	return wrap.Check(good)
}
`)
	diags, fset, err := lint.RunModule(root, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want exactly 1 (the bad binding in app)", len(diags))
	}
	d := diags[0]
	if d.Analyzer != "futureerr" || !strings.Contains(d.Message, "bad") {
		t.Errorf("diagnostic = [%s] %s, want futureerr on binding of bad", d.Analyzer, d.Message)
	}
	if pos := fset.Position(d.Pos); filepath.Base(pos.Filename) != "app.go" {
		t.Errorf("diagnostic at %s, want app.go", pos)
	}
}

// TestByName covers the driver's analyzer registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"atomicconsistency", "ctxflow", "errflow", "futureerr", "goroutineleak", "lockorder", "mapiterdeterminism", "mutexguard", "nondetflow", "unusedignore", "wallclock"} {
		if a := lint.ByName(name); a == nil || a.Name != name {
			t.Errorf("ByName(%q) = %v", name, a)
		}
	}
	if a := lint.ByName("nope"); a != nil {
		t.Errorf("ByName(nope) = %v, want nil", a)
	}
}
