// Package atomicconsistency flags variables that are accessed through
// sync/atomic in one place and by plain load or store in another — the
// class of torn-counter bug the worker-pool migration (PR 2, DESIGN.md §9)
// fixed by hand when the engine's clock, op counters, and demotion flag
// became shared between executor goroutines. A field that is atomic
// anywhere must be atomic everywhere: a single plain read can observe a
// torn or stale value, and a single plain write can lose a concurrent
// atomic increment.
//
// The analyzer collects every field or package-level variable whose
// address is passed to one of the old-style sync/atomic functions
// (atomic.AddInt64(&x.f, ...), atomic.LoadUint32(&x.g), ...), then reports
// every other syntactic use of the same object in the package. Typed
// atomics (atomic.Int64 et al.) are immune by construction — their value
// is unreachable except through methods — which is why the engine uses
// them; this check exists to keep the old style from creeping back in
// half-migrated form. Use //lint:ignore atomicconsistency <reason> for the
// rare single-goroutine initialization window that is provably unshared.
package atomicconsistency

import (
	"go/ast"
	"go/token"
	"go/types"

	"sympack/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicconsistency",
	Doc: "flags variables accessed both through sync/atomic and by plain " +
		"load/store, which can tear counters and lose updates",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: find objects whose address feeds a sync/atomic call, and
	// remember the identifiers that appear inside those calls so phase 2
	// does not report the atomic accesses themselves.
	atomicObjs := map[types.Object]token.Pos{}
	sanctioned := map[*ast.Ident]bool{}

	pass.Preorder(func(n ast.Node) {
		// Composite-literal keys construct a fresh, unshared value
		// (`counters{done: 0}`); treat them like declarations, not
		// accesses. Wholesale reset of a live struct is out of scope
		// for a syntactic pass and covered by the race detector.
		if cl, ok := n.(*ast.CompositeLit); ok {
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						sanctioned[id] = true
					}
				}
			}
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicFn(pass, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			id := baseIdent(un.X)
			if id == nil {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			if _, ok := obj.(*types.Var); !ok {
				continue
			}
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = id.Pos()
			}
			sanctioned[id] = true
		}
	})
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Phase 2: every other use of those objects is a plain access.
	pass.Preorder(func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || sanctioned[id] {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		if first, ok := atomicObjs[obj]; ok {
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic at %s but by plain load/store here; "+
					"every access must be atomic (or migrate the field to a typed atomic)",
				obj.Name(), pass.Fset.Position(first))
		}
	})
	return nil, nil
}

// isAtomicFn reports whether call invokes an old-style pointer-taking
// sync/atomic function.
func isAtomicFn(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch {
	case fn.Type().(*types.Signature).Recv() != nil:
		return false // methods of typed atomics take no raw pointers
	default:
		return true // AddT, LoadT, StoreT, SwapT, CompareAndSwapT
	}
}

// baseIdent peels selectors off an addressable expression and returns the
// identifier naming the field or variable whose address is taken:
// &s.f → f, &x → x, &s.a.b → b. Index expressions (&arr[i]) return nil —
// per-element atomicity over slices is tracked by element, which a purely
// syntactic pass cannot do soundly.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return baseIdent(e.X)
	}
	return nil
}
