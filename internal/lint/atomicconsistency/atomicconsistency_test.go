package atomicconsistency_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/atomicconsistency"
)

func TestAtomicConsistency(t *testing.T) {
	analysistest.Run(t, "testdata", atomicconsistency.Analyzer, "a")
}
