// Testdata for the atomicconsistency analyzer: fields and package vars
// that mix sync/atomic access with plain loads/stores are flagged; typed
// atomics and all-atomic or never-atomic fields are fine.
package a

import "sync/atomic"

type counters struct {
	done  int64        // accessed atomically AND plainly: every plain use flagged
	typed atomic.Int64 // typed atomic: immune by construction
	local int64        // never atomic: plain access is fine
}

func (c *counters) inc() { atomic.AddInt64(&c.done, 1) }

func (c *counters) read() int64 {
	return c.done // want "done is accessed with sync/atomic"
}

func (c *counters) reset() {
	c.done = 0 // want "done is accessed with sync/atomic"
}

func (c *counters) atomicRead() int64 { return atomic.LoadInt64(&c.done) }

func (c *counters) typedOK() int64 { return c.typed.Load() }

func (c *counters) localOK() int64 {
	c.local++
	return c.local
}

var ops uint32

func bump() { atomic.AddUint32(&ops, 1) }

func peek() uint32 {
	return ops // want "ops is accessed with sync/atomic"
}

// Composite-literal keys construct a fresh value; not an access.
func literal() counters {
	return counters{done: 0}
}

// Audited escape hatch: a construction-time store before the value is
// shared with any other goroutine.
func fresh() *counters {
	c := new(counters)
	//lint:ignore atomicconsistency construction-time store; c is not yet shared
	c.done = -1
	return c
}
