// Package goroutineleak flags goroutines that can block forever on a
// channel operation with no escape. The fan-out engine launches a
// goroutine per update batch and per RPC reply; each one that parks on
// an unbuffered channel whose other end is conditional leaks a stack and
// an OS-thread slot for the life of the process — the classic slow leak
// that only shows up as RSS creep under sustained load.
//
// The shape detected:
//
//	res := make(chan result)          // unbuffered, function-local
//	go func() { res <- compute() }()  // bare send: no select, no ctx
//	select {
//	case r := <-res:
//	    use(r)
//	case <-ctx.Done():                // this arm abandons the sender
//	    return ctx.Err()
//	}
//
// A goroutine-side send or receive is "bare" when it sits outside any
// select in the goroutine body: nothing can preempt it. For each bare
// operation on an unbuffered function-local channel, the enclosing
// function's control-flow graph (internal/lint/cfg) is checked with a
// backward must-dataflow (internal/lint/dataflow): on every path from
// the go statement to return, a matching consumer — a receive for a
// send; a send or close for a receive — must execute. Select arms are
// separate CFG blocks, so the ctx.Done() arm above is correctly seen as
// a consumer-free path and the launch is reported. Panic paths are
// excused (the process is unwinding).
//
// Conservative outs, never reported: buffered channels (the send
// completes regardless), channels that escape the function (returned,
// stored, aliased, or passed to a callee that leaks them onward —
// someone else may consume), channels the function also touches from
// another function literal (deferred drains), and goroutine-side
// operations wrapped in a select (assumed to have an escape arm).
//
// Passing a channel to a *summarized* callee is no longer an escape.
// Every function's per-parameter channel behavior (send/receive/close/
// escape, chased transitively through the internal/lint/callgraph call
// graph and exported as a Fact for cross-package callers) is summarized,
// so a call to an inert helper keeps the channel a candidate, a call to
// a draining helper counts as the consumer, and a helper that sends on
// the caller's behalf makes the launch `go func() { emit(res) }()`
// checkable two frames deep. Only a genuinely escaping or unresolvable
// callee still gives the channel up.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/callgraph"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// Name is the analyzer's registry name.
const Name = "goroutineleak"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flags goroutines whose bare channel send/receive on an unbuffered " +
		"function-local channel is not matched by a consumer on every CFG path " +
		"of the enclosing function — the goroutine blocks forever when the " +
		"consuming path is skipped",
	Run:       run,
	FactTypes: []analysis.Fact{(*chanUseFact)(nil)},
}

// Channel-use bits of one parameter, as seen from a caller.
const (
	useSend uint8 = 1 << iota // the callee may send on it
	useRecv                   // the callee may receive from it (or range)
	useClose                  // the callee may close it
	useEscape                 // the callee leaks the reference onward
)

// chanUseFact summarizes a function's per-parameter channel behavior for
// importing packages. Masks[i] is the use-bit union for parameter i
// (zero for non-channel parameters).
type chanUseFact struct{ Masks []uint8 }

func (*chanUseFact) AFact() {}

func (f *chanUseFact) String() string { return "chanuse" }

func run(pass *analysis.Pass) (interface{}, error) {
	graph := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	w := &walker{pass: pass, graph: graph}
	w.masks = w.computeMasks()
	for _, node := range graph.Nodes {
		if m, ok := w.masks[node.Func]; ok && anyNonzero(m) {
			fact := chanUseFact{Masks: m}
			pass.ExportObjectFact(node.Func, &fact)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.checkBody(fd.Name.Name, fd.Body)
			}
		}
	}
	return nil, nil
}

func anyNonzero(m []uint8) bool {
	for _, b := range m {
		if b != 0 {
			return true
		}
	}
	return false
}

type walker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	masks map[*types.Func][]uint8
}

// computeMasks runs the intra-package summary fixpoint: masks only gain
// bits, so iteration is monotone and bounded.
func (w *walker) computeMasks() map[*types.Func][]uint8 {
	masks := map[*types.Func][]uint8{}
	w.masks = masks
	for _, n := range w.graph.Nodes {
		sig, ok := n.Func.Type().(*types.Signature)
		if !ok {
			continue
		}
		masks[n.Func] = make([]uint8, sig.Params().Len())
	}
	for round := 0; round < 32; round++ {
		changed := false
		for _, n := range w.graph.Nodes {
			if w.updateMask(n, masks) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return masks
}

// updateMask recomputes one function's per-parameter mask from its body,
// reporting whether any bit was added.
func (w *walker) updateMask(node *callgraph.Node, masks map[*types.Func][]uint8) bool {
	sig, ok := node.Func.Type().(*types.Signature)
	if !ok || node.Decl.Body == nil {
		return false
	}
	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, isChan := p.Type().Underlying().(*types.Chan); isChan {
			paramIdx[p] = i
		}
	}
	if len(paramIdx) == 0 {
		return false
	}
	cur := masks[node.Func]
	next := append([]uint8(nil), cur...)

	// handled marks the exact ident nodes whose use is classified; every
	// other mention of a channel parameter is an escape.
	handled := map[*ast.Ident]bool{}
	mark := func(e ast.Expr, bits uint8) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		if i, ok := paramIdx[obj]; ok {
			handled[id] = true
			next[i] |= bits
		}
	}
	ast.Inspect(node.Decl.Body, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.SendStmt:
			mark(nn.Chan, useSend)
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				mark(nn.X, useRecv)
			}
		case *ast.RangeStmt:
			mark(nn.X, useRecv)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "close":
						if len(nn.Args) == 1 {
							mark(nn.Args[0], useClose)
						}
					case "len", "cap":
						for _, a := range nn.Args {
							mark(a, 0) // pure observation
						}
					}
					return true
				}
			}
			for ai, a := range nn.Args {
				id, ok := ast.Unparen(a).(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.pass.TypesInfo.Uses[id]
				if obj == nil {
					continue
				}
				if _, isParam := paramIdx[obj]; !isParam {
					continue
				}
				mark(a, w.argMask(nn, ai))
			}
		}
		return true
	})
	ast.Inspect(node.Decl.Body, func(nn ast.Node) bool {
		id, ok := nn.(*ast.Ident)
		if !ok || handled[id] {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if i, ok := paramIdx[obj]; ok {
			next[i] |= useEscape
		}
		return true
	})

	changed := false
	for i := range next {
		if next[i] != cur[i] {
			changed = true
		}
	}
	masks[node.Func] = next
	return changed
}

// masksFor returns a callee's per-parameter masks, from the in-package
// fixpoint or (cross-package) an imported fact.
func (w *walker) masksFor(fn *types.Func) ([]uint8, bool) {
	if m, ok := w.masks[fn]; ok {
		return m, true
	}
	var f chanUseFact
	if w.pass.ImportObjectFact(fn, &f) {
		return f.Masks, true
	}
	return nil, false
}

// argMask returns what the call may do to its i-th argument: the union
// over resolved callees' parameter masks, or useEscape when any callee
// is unknown, unsummarized, or takes the argument variadically.
func (w *walker) argMask(call *ast.CallExpr, i int) uint8 {
	callees, kind := w.graph.Resolver.Callees(call)
	if kind == callgraph.KindUnknown || len(callees) == 0 {
		return useEscape
	}
	var mask uint8
	for _, fn := range callees {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || i >= sig.Params().Len() {
			return useEscape
		}
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			return useEscape
		}
		m, ok := w.masksFor(fn)
		if !ok {
			return useEscape
		}
		if i < len(m) {
			mask |= m[i]
		}
	}
	return mask
}

// opKind distinguishes the two ways a goroutine can park on a channel.
type opKind int

const (
	opSend opKind = iota
	opRecv
)

func (k opKind) String() string {
	if k == opSend {
		return "sends on"
	}
	return "receives from"
}

// checkBody analyzes one function body: candidate channels, goroutine
// launches, and the all-paths consumer check.
func (w *walker) checkBody(fname string, body *ast.BlockStmt) {
	cands := w.localUnbuffered(body)
	if len(cands) == 0 {
		return
	}
	w.dropEscaping(body, cands)
	if len(cands) == 0 {
		return
	}

	g := cfg.New(body)
	for _, b := range g.Reachable() {
		for i, n := range b.Nodes {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				continue
			}
			w.checkLaunch(fname, g, b, i, gs, lit, cands)
		}
	}
}

// localUnbuffered returns the variables bound to `make(chan T)` with no
// buffer (or an explicit 0) directly in this body.
func (w *walker) localUnbuffered(body *ast.BlockStmt) map[types.Object]string {
	cands := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if _, isChan := obj.Type().(*types.Chan); !isChan {
				continue
			}
			if w.isUnbufferedMake(as.Rhs[i]) {
				cands[obj] = id.Name
			}
		}
		return true
	})
	return cands
}

func (w *walker) isUnbufferedMake(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) < 1 {
		return false
	}
	if _, isChan := w.pass.TypesInfo.Types[call.Args[0]].Type.(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	// make(chan T, n): unbuffered only when n is the constant 0.
	tv, ok := w.pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.ExactString() == "0"
}

// dropEscaping removes channels whose reference leaves the function:
// once another owner exists, someone else may unblock the goroutine.
// A call whose callee is summarized (in-package or via an imported
// chanUseFact) is not an escape unless the summary says so; its send/
// receive/close behavior is credited at the call site instead.
func (w *walker) dropEscaping(body *ast.BlockStmt, cands map[types.Object]string) {
	kill := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				delete(cands, obj)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "close", "len", "cap", "make":
						return true // builtins don't capture the channel
					}
				}
			}
			for i, a := range n.Args {
				if w.argMask(n, i)&useEscape != 0 {
					kill(a)
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if _, isMake := ast.Unparen(r).(*ast.CallExpr); !isMake {
					kill(r) // aliasing: ch2 := ch
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				kill(r)
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					kill(kv.Value)
				} else {
					kill(e)
				}
			}
		case *ast.SendStmt:
			kill(n.Value) // a channel sent over a channel escapes
		}
		return true
	})
}

// launchOp is one bare channel operation found in a goroutine body.
type launchOp struct {
	obj  types.Object
	name string
	kind opKind
}

// checkLaunch inspects one `go func(){...}()` and reports operations
// whose consumer is missing on some path from the launch to return.
func (w *walker) checkLaunch(fname string, g *cfg.Graph, goBlock *cfg.Block, goIdx int, gs *ast.GoStmt, lit *ast.FuncLit, cands map[types.Object]string) {
	ops := w.bareOps(lit, cands)
	if len(ops) == 0 {
		return
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].name < ops[j].name })

	reported := map[types.Object]bool{}
	for _, op := range ops {
		if reported[op.obj] {
			continue
		}
		if w.usedInOtherFuncLit(g, op.obj, lit) {
			continue // a deferred or sibling closure may drain it
		}
		if w.consumedOnAllPaths(g, goBlock, goIdx, op) {
			continue
		}
		reported[op.obj] = true
		need := "receive from"
		fix := "buffer the channel or select on ctx.Done() in the goroutine"
		if op.kind == opRecv {
			need = "send to or close"
			fix = "close the channel on every path or select on ctx.Done() in the goroutine"
		}
		w.pass.Reportf(gs.Pos(),
			"goroutine %s %s with no select escape, and %s does not %s %s on every path "+
				"to return — when the consuming path is skipped the goroutine blocks forever; %s",
			op.kind, op.name, fname, need, op.name, fix)
	}
}

// bareOps collects sends/receives on candidate channels in the goroutine
// body that sit outside any select (and outside nested funclits). A call
// handing a candidate to a summarized callee that sends or receives is a
// bare operation too: the goroutine parks inside the callee.
func (w *walker) bareOps(lit *ast.FuncLit, cands map[types.Object]string) []launchOp {
	var ops []launchOp
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(nn ast.Node) bool {
			switch nn := nn.(type) {
			case *ast.SelectStmt:
				return false // a select arm has an escape; not bare
			case *ast.FuncLit:
				if nn != lit {
					return false
				}
			case *ast.SendStmt:
				if obj, name, ok := w.candChan(nn.Chan, cands); ok {
					ops = append(ops, launchOp{obj, name, opSend})
				}
			case *ast.UnaryExpr:
				if nn.Op.String() == "<-" {
					if obj, name, ok := w.candChan(nn.X, cands); ok {
						ops = append(ops, launchOp{obj, name, opRecv})
					}
				}
			case *ast.RangeStmt:
				if obj, name, ok := w.candChan(nn.X, cands); ok {
					ops = append(ops, launchOp{obj, name, opRecv})
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
					if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true // close/len/cap never block
					}
				}
				for i, a := range nn.Args {
					obj, name, ok := w.candChan(a, cands)
					if !ok {
						continue
					}
					mask := w.argMask(nn, i)
					if mask&useEscape != 0 {
						continue // dropEscaping already disqualified it
					}
					if mask&useSend != 0 {
						ops = append(ops, launchOp{obj, name, opSend})
					}
					if mask&useRecv != 0 {
						ops = append(ops, launchOp{obj, name, opRecv})
					}
				}
			}
			return true
		})
	}
	walk(lit.Body)
	return ops
}

func (w *walker) candChan(e ast.Expr, cands map[types.Object]string) (types.Object, string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, "", false
	}
	name, ok := cands[obj]
	return obj, name, ok
}

// usedInOtherFuncLit reports whether the channel is touched inside a
// function literal other than the analyzed goroutine body anywhere in
// the graph — deferred drains and sibling workers make the all-paths
// check on the enclosing body meaningless.
func (w *walker) usedInOtherFuncLit(g *cfg.Graph, obj types.Object, lit *ast.FuncLit) bool {
	found := false
	seen := map[*ast.FuncLit]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(nn ast.Node) bool {
				other, ok := nn.(*ast.FuncLit)
				if !ok || other == lit || seen[other] {
					return true
				}
				seen[other] = true
				ast.Inspect(other.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
				return false
			})
		}
	}
	return found
}

// consumedOnAllPaths runs the backward must-dataflow: from the go
// statement, every path to the exit must pass a matching consumer.
func (w *walker) consumedOnAllPaths(g *cfg.Graph, goBlock *cfg.Block, goIdx int, op launchOp) bool {
	// A consumer later in the launch block settles it without dataflow.
	for _, n := range goBlock.Nodes[goIdx+1:] {
		if w.nodeConsumes(n, op) {
			return true
		}
	}
	consumes := map[*cfg.Block]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if w.nodeConsumes(n, op) {
				consumes[b] = true
				break
			}
		}
	}
	res := dataflow.Solve(g, dataflow.SetLattice{Intersect: true}, dataflow.Backward, dataflow.Set{},
		func(b *cfg.Block, in dataflow.Set) dataflow.Set {
			if consumes[b] || b.PanicExit {
				in["consumed"] = true
			}
			return in
		})
	in, ok := res.In[goBlock]
	if !ok {
		return true // no path from the launch to the exit at all
	}
	return in["consumed"]
}

// nodeConsumes reports whether a CFG node performs the operation that
// unblocks the goroutine: a receive for a send, a send or close for a
// receive. Function literals are skipped (handled by usedInOtherFuncLit)
// and a range header only contributes its channel expression.
func (w *walker) nodeConsumes(n ast.Node, op launchOp) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		if op.kind == opSend {
			if id, ok := ast.Unparen(r.X).(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == op.obj {
				return true // ranging over the channel receives
			}
		}
		return false // the body's statements live in their own blocks
	}
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		switch nn := nn.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if op.kind == opSend && nn.Op.String() == "<-" {
				if id, ok := ast.Unparen(nn.X).(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == op.obj {
					found = true
				}
			}
		case *ast.SendStmt:
			if op.kind == opRecv {
				if id, ok := ast.Unparen(nn.Chan).(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == op.obj {
					found = true
				}
			}
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if b, ok := w.pass.TypesInfo.Uses[fid].(*types.Builtin); ok {
					if op.kind == opRecv && b.Name() == "close" && len(nn.Args) == 1 {
						if id, ok := ast.Unparen(nn.Args[0]).(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == op.obj {
							found = true
						}
					}
					return !found
				}
			}
			// A summarized callee that performs the matching operation on
			// the passed channel unblocks the goroutine.
			for i, a := range nn.Args {
				id, ok := ast.Unparen(a).(*ast.Ident)
				if !ok || w.pass.TypesInfo.Uses[id] != op.obj {
					continue
				}
				mask := w.argMask(nn, i)
				if mask&useEscape != 0 {
					continue
				}
				if op.kind == opSend && mask&useRecv != 0 {
					found = true
				}
				if op.kind == opRecv && mask&(useSend|useClose) != 0 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
