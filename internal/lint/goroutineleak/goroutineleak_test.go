package goroutineleak_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/goroutineleak"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineleak.Analyzer, "a")
}
