// Package a exercises goroutineleak: bare sends/receives in launched
// goroutines checked against all-paths consumers in the enclosing body.
package a

import "context"

func compute() int { return 1 }
func use(int)      {}
func drain(ch chan int) {
	go func() { <-ch }()
}

// classicLeak is the PR-5 AllReduce staging shape: the ctx.Done arm
// abandons the sender forever.
func classicLeak(ctx context.Context) int {
	res := make(chan int)
	go func() { res <- compute() }() // want "goroutine sends on res"
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// buffered is the canonical fix: the send completes even when the
// receiver gave up.
func buffered(ctx context.Context) int {
	res := make(chan int, 1)
	go func() { res <- compute() }()
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// explicitZero spells the unbuffered capacity out; still a leak.
func explicitZero(ctx context.Context) int {
	res := make(chan int, 0)
	go func() { res <- compute() }() // want "goroutine sends on res"
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// unconditional receives on the only path: clean.
func unconditional() int {
	res := make(chan int)
	go func() { res <- compute() }()
	return <-res
}

// conditional consumes on one arm of an if only.
func conditional(cond bool) {
	res := make(chan int)
	go func() { res <- compute() }() // want "goroutine sends on res"
	if cond {
		use(<-res)
	}
}

// selectEscape: the goroutine itself can bail via ctx.Done, so the
// abandoning receiver is fine.
func selectEscape(ctx context.Context) int {
	res := make(chan int)
	go func() {
		select {
		case res <- compute():
		case <-ctx.Done():
		}
	}()
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// escapes hands the channel to another function: someone else may drain.
func escapes(cond bool) {
	res := make(chan int)
	go func() { res <- compute() }()
	drain(res)
}

// aliased copies the channel reference: the alias may be drained.
func aliased(cond bool) {
	res := make(chan int)
	ch2 := res
	go func() { res <- compute() }()
	if cond {
		use(<-ch2)
	}
}

// recvLeak launches a receiving goroutine but closes on one path only.
func recvLeak(cond bool) {
	done := make(chan int)
	go func() { use(<-done) }() // want "goroutine receives from done"
	if cond {
		close(done)
	}
}

// recvClosed closes on every path: clean.
func recvClosed(cond bool) {
	done := make(chan int)
	go func() { use(<-done) }()
	if cond {
		close(done)
		return
	}
	close(done)
}

// panicPath: the non-consuming path unwinds the process; excused.
func panicPath(cond bool) {
	res := make(chan int)
	go func() { res <- compute() }()
	if cond {
		panic("boom")
	}
	use(<-res)
}

// deferredDrain touches the channel from another function literal: the
// all-paths check on the enclosing body cannot see the deferred
// consumer, so the launch is conservatively accepted.
func deferredDrain(ctx context.Context) int {
	res := make(chan int)
	go func() { res <- compute() }()
	defer func() {
		select {
		case <-res:
		default:
		}
	}()
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// rangeDrain consumes via range-over-channel: the header receive counts.
func rangeDrain() {
	res := make(chan int)
	go func() { res <- compute() }()
	for v := range res {
		use(v)
	}
}

// loopConsume receives before the back edge on every iteration and falls
// through to a final receive; all paths consume.
func loopConsume(n int) {
	res := make(chan int)
	go func() { res <- compute() }()
	for i := 0; i < n; i++ {
		use(<-res)
		return
	}
	use(<-res)
}

// zeroIter consumes only inside a loop that may run zero times.
func zeroIter(n int) {
	res := make(chan int)
	go func() { res <- compute() }() // want "goroutine sends on res"
	for i := 0; i < n; i++ {
		use(<-res)
		return
	}
}

// note is inert: it observes the channel without touching it.
func note(ch chan int) { use(cap(ch)) }

// inertCallee: passing to an inert callee no longer launders candidacy
// away — the summarized call is not an escape, and the leak is reported.
func inertCallee(ctx context.Context) int {
	res := make(chan int)
	note(res)
	go func() { res <- compute() }() // want "goroutine sends on res"
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// drainOnce receives exactly once; calling it is a consumer.
func drainOnce(ch chan int) { use(<-ch) }

// consumingCallee: the unconditional drain call settles the launch.
func consumingCallee() {
	res := make(chan int)
	go func() { res <- compute() }()
	drainOnce(res)
}

// consumingCalleeConditional drains on one arm only; still a leak.
func consumingCalleeConditional(cond bool) {
	res := make(chan int)
	go func() { res <- compute() }() // want "goroutine sends on res"
	if cond {
		drainOnce(res)
	}
}

var published chan int

// stash leaks the reference onward; passing to it is still an escape.
func stash(ch chan int) { published = ch }

func escapingCallee(cond bool) {
	res := make(chan int)
	go func() { res <- compute() }()
	if cond {
		stash(res)
	}
}

// emit sends on the caller's behalf: the goroutine parks one frame deep.
func emit(ch chan int) { ch <- compute() }

func helperSend(ctx context.Context) int {
	res := make(chan int)
	go func() { emit(res) }() // want "goroutine sends on res"
	select {
	case r := <-res:
		return r
	case <-ctx.Done():
		return 0
	}
}

// closer/closeAll: the close capability propagates transitively through
// the in-package summary fixpoint.
func closer(ch chan int)   { close(ch) }
func closeAll(ch chan int) { closer(ch) }

func recvViaHelper() {
	done := make(chan int)
	go func() { use(<-done) }()
	closeAll(done)
}
