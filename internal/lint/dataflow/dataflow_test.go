package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// build parses one function body and returns its CFG.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// gen returns a transfer function that adds the name of every variable
// assigned in the block (x := / x =) to the set — a tiny "definitely
// assigned" analysis when run forward with intersection join.
func gen() func(b *cfg.Block, in dataflow.Set) dataflow.Set {
	return func(b *cfg.Block, in dataflow.Set) dataflow.Set {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					in[id.Name] = true
				}
			}
		}
		return in
	}
}

func TestForwardMustIntersectsAtJoin(t *testing.T) {
	// y is assigned only on the then-arm, z on both arms: at the join,
	// must-analysis keeps z but drops y.
	g := build(t, "x := 1\nif x > 0 {\n\ty := 1\n\tz := y\n\t_ = z\n} else {\n\tz := 2\n\t_ = z\n}\nreturn")
	lat := dataflow.SetLattice{Intersect: true}
	res := dataflow.Solve(g, lat, dataflow.Forward, dataflow.Set{}, gen())
	exitIn := res.In[g.Exit]
	if !exitIn["x"] || !exitIn["z"] {
		t.Fatalf("x and z must be definitely assigned at exit, got %v", exitIn)
	}
	if exitIn["y"] {
		t.Fatalf("y assigned on one arm only, must not survive the join: %v", exitIn)
	}
}

func TestForwardMayUnionsAtJoin(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\ty := 1\n\t_ = y\n} else {\n\tz := 2\n\t_ = z\n}\nreturn")
	lat := dataflow.SetLattice{}
	res := dataflow.Solve(g, lat, dataflow.Forward, dataflow.Set{}, gen())
	exitIn := res.In[g.Exit]
	for _, v := range []string{"x", "y", "z"} {
		if !exitIn[v] {
			t.Errorf("may-analysis must keep %s at exit, got %v", v, exitIn)
		}
	}
}

func TestLoopReachesFixpoint(t *testing.T) {
	// The loop body assigns y; the fact must propagate around the back
	// edge without looping forever.
	g := build(t, "x := 0\nfor i := 0; i < 3; i++ {\n\ty := i\n\t_ = y\n\tx = y\n}\nreturn")
	lat := dataflow.SetLattice{}
	res := dataflow.Solve(g, lat, dataflow.Forward, dataflow.Set{}, gen())
	exitIn := res.In[g.Exit]
	if !exitIn["x"] || !exitIn["y"] {
		t.Fatalf("loop facts missing at exit: %v", exitIn)
	}
}

func TestBackwardLiveness(t *testing.T) {
	// Backward may-analysis: a variable used in a block is "live" at
	// every point that can reach the use.
	g := build(t, "x := 1\nif x > 0 {\n\tprintln(x)\n}\nreturn")
	lat := dataflow.SetLattice{}
	transfer := func(b *cfg.Block, in dataflow.Set) dataflow.Set {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(nn ast.Node) bool {
				if call, ok := nn.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						in["use"] = true
					}
				}
				return true
			})
		}
		return in
	}
	res := dataflow.Solve(g, lat, dataflow.Backward, dataflow.Set{}, transfer)
	// In backward mode Out[b] is the state at block *entry*; the use
	// must be visible at the entry block's entry point.
	if !res.Out[g.Entry]["use"] {
		t.Fatalf("use not propagated backward to entry: out=%v", res.Out[g.Entry])
	}
}

func TestBackwardMustDropsOneArmFact(t *testing.T) {
	// "use" happens only on the then-arm; a backward must-analysis may
	// not claim it happens on every path from the condition onward.
	g := build(t, "x := 1\nif x > 0 {\n\tprintln(x)\n} else {\n\t_ = x\n}\nreturn")
	lat := dataflow.SetLattice{Intersect: true}
	transfer := func(b *cfg.Block, in dataflow.Set) dataflow.Set {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(nn ast.Node) bool {
				if call, ok := nn.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						in["use"] = true
					}
				}
				return true
			})
		}
		return in
	}
	res := dataflow.Solve(g, lat, dataflow.Backward, dataflow.Set{}, transfer)
	if res.Out[g.Entry]["use"] {
		t.Fatalf("one-arm use must not survive backward intersection: %v", res.Out[g.Entry])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	body := "x := 0\nfor i := 0; i < 3; i++ {\n\tif i == 1 {\n\t\tcontinue\n\t}\n\tx = i\n}\nswitch x {\ncase 1:\n\tx = 2\ndefault:\n\tx = 3\n}\nreturn"
	var prev string
	for run := 0; run < 5; run++ {
		g := build(t, body)
		res := dataflow.Solve(g, dataflow.SetLattice{Intersect: true}, dataflow.Forward, dataflow.Set{}, gen())
		// Serialize exit state in sorted order.
		exitIn := res.In[g.Exit]
		keys := make([]string, 0, len(exitIn))
		for k := range exitIn {
			keys = append(keys, k)
		}
		// insertion sort (tiny)
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		s := ""
		for _, k := range keys {
			s += k + ";"
		}
		if run > 0 && s != prev {
			t.Fatalf("run %d differs: %q vs %q", run, s, prev)
		}
		prev = s
	}
}
