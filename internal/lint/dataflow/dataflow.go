// Package dataflow is a generic worklist solver over internal/lint/cfg
// graphs: the one fixpoint loop every flow-sensitive analyzer in the
// suite shares, instead of each hand-rolling its own iteration (the
// source-order walks the v2 analyzers used, whose merge behavior was
// documented as unsound — see mutexguard's and futureerr's package docs).
//
// An analysis picks a direction, a lattice (join + equality + clone over
// its state type), a boundary state for the entry (forward) or exit
// (backward) block, and a transfer function mapping a block's in-state to
// its out-state. Solve iterates to fixpoint with the textbook optimistic
// worklist scheme: a block's in-state is the join of its processed
// predecessors' out-states, so unvisited predecessors behave as top —
// which makes must-analyses (intersection joins, like lock sets and
// context derivation) converge to the strongest provable answer, and
// may-analyses (union joins) to the weakest sound one. Everything is
// deterministic: blocks are processed in index order and the worklist is
// a FIFO with membership dedup, so diagnostics derived from the solution
// are stable run to run.
package dataflow

import (
	"sympack/internal/lint/cfg"
)

// A Lattice defines the state domain of one analysis over values of type
// T. Join must be commutative, associative and monotone (it is applied at
// control-flow merges); Clone must return a value the caller may mutate
// without aliasing its argument.
type Lattice[T any] interface {
	Join(a, b T) T
	Equal(a, b T) bool
	Clone(a T) T
}

// Direction selects forward (entry→exit) or backward (exit→entry)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Result holds the fixpoint solution. For Forward, In[b] is the state at
// block entry and Out[b] at block exit; for Backward, In[b] is the state
// at block *exit* (facts flowing in from successors) and Out[b] at block
// entry — i.e. In is always the transfer input, Out its output.
type Result[T any] struct {
	In, Out map[*cfg.Block]T
}

// Solve runs transfer to fixpoint over g's reachable blocks and returns
// the solution. boundary is the in-state of the entry block (Forward) or
// exit block (Backward). transfer receives a private clone of the
// in-state and may mutate it freely. Blocks unreachable in the chosen
// direction are absent from the result; analyzers that must still visit
// dead code handle it separately (it has no incoming facts to merge).
func Solve[T any](g *cfg.Graph, lat Lattice[T], dir Direction, boundary T, transfer func(b *cfg.Block, in T) T) Result[T] {
	res := Result[T]{In: map[*cfg.Block]T{}, Out: map[*cfg.Block]T{}}

	// Flow edges in the chosen direction.
	var start *cfg.Block
	preds := func(b *cfg.Block) []*cfg.Block { return b.Preds }
	succs := func(b *cfg.Block) []*cfg.Block { return b.Succs }
	if dir == Backward {
		start = g.Exit
		preds, succs = succs, preds
	} else {
		start = g.Entry
	}

	// Deterministic FIFO worklist seeded with the reachable blocks in
	// index order, starting from the boundary block.
	inQueue := make([]bool, len(g.Blocks))
	computed := make([]bool, len(g.Blocks))
	var queue []*cfg.Block
	push := func(b *cfg.Block) {
		if !inQueue[b.Index] {
			inQueue[b.Index] = true
			queue = append(queue, b)
		}
	}
	push(start)

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b.Index] = false

		var in T
		if b == start {
			in = lat.Clone(boundary)
		} else {
			first := true
			for _, p := range preds(b) {
				if !computed[p.Index] {
					continue // unvisited predecessor: behaves as top
				}
				if first {
					in = lat.Clone(res.Out[p])
					first = false
				} else {
					in = lat.Join(in, res.Out[p])
				}
			}
			if first {
				// No processed predecessor yet (can only happen for the
				// boundary block, handled above, or transiently before a
				// pred is computed); fall back to the boundary state.
				in = lat.Clone(boundary)
			}
		}
		out := transfer(b, lat.Clone(in))
		old, ok := res.Out[b]
		res.In[b] = in
		res.Out[b] = out
		if ok && lat.Equal(old, out) && computed[b.Index] {
			continue
		}
		computed[b.Index] = true
		for _, s := range succs(b) {
			push(s)
		}
	}
	return res
}

// SetLattice is the ready-made lattice over string-keyed sets, the domain
// every current analysis uses (lock identities, context-derived
// variables, consulted futures). Union joins express may-analyses,
// intersection joins must-analyses.
type SetLattice struct {
	// Intersect selects must-semantics (join = set intersection);
	// otherwise join is set union.
	Intersect bool
}

// Set is the state type: membership of abstract facts by key.
type Set map[string]bool

func (l SetLattice) Join(a, b Set) Set {
	if l.Intersect {
		out := Set{}
		//lint:ignore mapiterdeterminism set intersection: membership-only writes, result independent of visit order
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	out := make(Set, len(a)+len(b))
	//lint:ignore mapiterdeterminism set union: membership-only writes, result independent of visit order
	for k := range a {
		out[k] = true
	}
	//lint:ignore mapiterdeterminism set union: membership-only writes, result independent of visit order
	for k := range b {
		out[k] = true
	}
	return out
}

func (SetLattice) Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	//lint:ignore mapiterdeterminism subset test: boolean conjunction over members, order-insensitive
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (SetLattice) Clone(a Set) Set {
	out := make(Set, len(a))
	//lint:ignore mapiterdeterminism set copy: membership-only writes, result independent of visit order
	for k := range a {
		out[k] = true
	}
	return out
}
