// Package futureerr flags upcxx future chains whose result is discarded.
// Since the fault-injection work (PR 1, DESIGN.md §8), every
// communication future carries the completion state of its operation: a
// transfer whose retry budget ran out returns a Future with Err() wrapping
// faults.ErrTransient, and the paper's §3.4 signal/poll protocol is only
// resilient because consumers observe that state and re-request. A call
// like
//
//	r.Rget(src, dst)          // Future discarded
//	f.Then(func() { ... })    // chained Future discarded
//	_ = r.Copy(src, dst)      // explicitly discarded
//
// silently drops a possible transient-fault error, resurrecting the
// lost-completion bugs the fan-out/fan-both literature warns about
// (Jacquelin et al., arXiv:1608.00044). The analyzer reports any
// expression of type upcxx.Future that is discarded: used as a bare
// statement, assigned to the blank identifier, or launched via go/defer.
// Binding the future to a variable satisfies the check — the suite trusts
// a named future to be inspected (Err/OK/Wait), which keeps the rule
// syntactic and false-positive-poor.
package futureerr

import (
	"go/ast"
	"go/types"

	"sympack/internal/lint/analysis"
)

// futurePath/futureName identify the runtime's error-carrying future type.
const (
	futurePath = "sympack/internal/upcxx"
	futureName = "Future"
)

var Analyzer = &analysis.Analyzer{
	Name: "futureerr",
	Doc: "flags discarded upcxx.Future results, which would silently drop a " +
		"transient-fault error from the signal/poll protocol",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && returnsFuture(pass, call) {
				pass.Reportf(n.Pos(),
					"result of %s is discarded; a failed future's error would be dropped — "+
						"bind it and check Err/OK (or propagate it)", callName(call))
			}
		case *ast.GoStmt:
			if returnsFuture(pass, n.Call) {
				pass.Reportf(n.Pos(),
					"go statement discards the %s future; its error can never be observed",
					callName(n.Call))
			}
		case *ast.DeferStmt:
			if returnsFuture(pass, n.Call) {
				pass.Reportf(n.Pos(),
					"defer discards the %s future; its error can never be observed",
					callName(n.Call))
			}
		case *ast.AssignStmt:
			// _ = expr discarding a future is as lossy as a bare call.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" || i >= len(n.Rhs) {
					continue
				}
				if len(n.Lhs) != len(n.Rhs) {
					continue // multi-value unpacking; future-typed results handled above
				}
				if tv, ok := pass.TypesInfo.Types[n.Rhs[i]]; ok && isFuture(tv.Type) {
					pass.Reportf(lhs.Pos(),
						"upcxx.Future assigned to the blank identifier; its error is dropped — "+
							"bind it and check Err/OK")
				}
			}
		}
	})
	return nil, nil
}

func returnsFuture(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isFuture(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isFuture(tv.Type)
}

func isFuture(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == futurePath && obj.Name() == futureName
}

// callName renders the callee for diagnostics (r.Rget, f.Then, ...).
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
