// Package futureerr flags upcxx future chains whose completion state can
// never be observed. Since the fault-injection work (PR 1, DESIGN.md §8),
// every communication future carries the completion state of its
// operation: a transfer whose retry budget ran out returns a Future with
// Err() wrapping faults.ErrTransient, and the paper's §3.4 signal/poll
// protocol is only resilient because consumers observe that state and
// re-request. Dropping it resurrects the lost-completion bugs the
// fan-out/fan-both literature warns about (Jacquelin et al.,
// arXiv:1608.00044).
//
// The analyzer reports two shapes:
//
//   - Discarded futures (the original, syntactic check): a future-typed
//     expression used as a bare statement, assigned to the blank
//     identifier, or launched via go/defer.
//
//     r.Rget(src, dst)          // Future discarded
//     f.Then(func() { ... })    // chained Future discarded
//     _ = r.Copy(src, dst)      // explicitly discarded
//
//   - Bound-but-unconsulted futures (flow-sensitive): a future bound to a
//     local variable whose Err/OK result is never consulted on any path —
//     only Wait()ed, only rebound, or only passed to a function known to
//     ignore it. Binding used to satisfy the check on trust; now the uses
//     are actually traced.
//
//     f := r.Rget(src, dst)
//     _ = f.Wait()              // duration read, error dropped: reported
//
//   - Futures consulted on some but not all paths (CFG-based): when the
//     consulting uses exist but a path from the binding to return avoids
//     every one of them, the error is dropped exactly on that path. The
//     check runs a backward must-dataflow over the function's control-flow
//     graph (internal/lint/cfg + internal/lint/dataflow): "consulted" must
//     hold at the binding point under intersection join, i.e. on every
//     path to return. Panic paths are excused, and uses inside function
//     literals or deferred calls fall back to the any-use rule — closure
//     execution timing is outside the graph.
//
//     f := r.Rget(src, dst)
//     if cond {
//         return f.Err()        // the !cond path drops the error: reported
//     }
//
// Cross-package wrappers are chased through Facts: analyzing a package
// exports, for every function with future-typed parameters, which of
// those parameters the function (transitively) consults, plus a package
// "analyzed" marker. At a call site the analyzer then knows three states:
// the callee consults the future (silent), the callee was analyzed and
// provably ignores it (reported), or the callee is outside the analyzed
// world — stdlib, unanalyzed subset runs — where it stays conservative
// and silent. Escapes (returns, stores into fields/containers, channel
// sends, address-taking, aliasing) count as consultation: responsibility
// moved somewhere this function cannot see.
package futureerr

import (
	"go/ast"
	"go/types"
	"sort"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// futurePath/futureName identify the runtime's error-carrying future type.
const (
	futurePath = "sympack/internal/upcxx"
	futureName = "Future"
)

// consumesFuture is the exported object fact: the indices of a function's
// future-typed parameters whose Err/OK state the function (transitively)
// consults.
type consumesFuture struct{ Params []int }

func (*consumesFuture) AFact() {}

// analyzed marks a package this analyzer has processed, distinguishing
// "callee provably ignores the future" from "callee outside the analyzed
// world" at import time.
type analyzed struct{}

func (*analyzed) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "futureerr",
	Doc: "flags upcxx.Future results that are discarded or bound without " +
		"their Err/OK ever being consulted, which would silently drop a " +
		"transient-fault error from the signal/poll protocol",
	Run:       run,
	FactTypes: []analysis.Fact{(*consumesFuture)(nil), (*analyzed)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass.ExportPackageFact(&analyzed{})

	fns := collectFuncs(pass)
	consumes := computeConsumption(pass, fns)
	exportFacts(pass, consumes)
	reportDiscards(pass)
	reportUnconsulted(pass, fns, consumes)
	return nil, nil
}

// funcInfo is one function body under analysis, with a child→parent node
// map so a variable use can be classified by its syntactic context.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	parents map[ast.Node]ast.Node
	graph   *cfg.Graph // built lazily for the all-paths check
}

// cfgOf returns the function's control-flow graph, building it on first
// use.
func (fi *funcInfo) cfgOf() *cfg.Graph {
	if fi.graph == nil {
		fi.graph = cfg.New(fi.decl.Body)
	}
	return fi.graph
}

// enclosedBy reports whether n sits inside a node of the given kinds
// (function literal, defer) within fi's body.
func (fi *funcInfo) enclosedBy(n ast.Node, funcLit, deferStmt bool) bool {
	for p := fi.parents[n]; p != nil; p = fi.parents[p] {
		switch p.(type) {
		case *ast.FuncLit:
			if funcLit {
				return true
			}
		case *ast.DeferStmt:
			if deferStmt {
				return true
			}
		}
	}
	return false
}

func collectFuncs(pass *analysis.Pass) []*funcInfo {
	var fns []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fi := &funcInfo{decl: fd, obj: obj, parents: map[ast.Node]ast.Node{}}
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					fi.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
			fns = append(fns, fi)
		}
	}
	return fns
}

// computeConsumption decides, for every function with future-typed
// parameters, which of them the body consults. Intra-package transitive
// consumption (A passes its future to B, B checks it) needs a fixpoint:
// iterate until no call-site reclassification adds a parameter.
func computeConsumption(pass *analysis.Pass, fns []*funcInfo) map[*types.Func]map[int]bool {
	consumes := map[*types.Func]map[int]bool{}
	type param struct {
		fi  *funcInfo
		obj *types.Var
		idx int
	}
	var params []param
	for _, fi := range fns {
		if fi.obj == nil {
			continue
		}
		sig := fi.obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if p := sig.Params().At(i); isFuture(p.Type()) {
				params = append(params, param{fi, p, i})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range params {
			if consumes[p.fi.obj][p.idx] {
				continue
			}
			if consultsObject(pass, p.fi, p.obj, consumes) {
				if consumes[p.fi.obj] == nil {
					consumes[p.fi.obj] = map[int]bool{}
				}
				consumes[p.fi.obj][p.idx] = true
				changed = true
			}
		}
	}
	return consumes
}

func exportFacts(pass *analysis.Pass, consumes map[*types.Func]map[int]bool) {
	for fn, set := range consumes {
		if len(set) == 0 {
			continue
		}
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		pass.ExportObjectFact(fn, &consumesFuture{Params: idxs})
	}
}

// reportDiscards is the original syntactic check: future-typed results
// used as bare statements, blank-assigned, or launched via go/defer.
func reportDiscards(pass *analysis.Pass) {
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && returnsFuture(pass, call) {
				pass.Reportf(n.Pos(),
					"result of %s is discarded; a failed future's error would be dropped — "+
						"bind it and check Err/OK (or propagate it)", callName(call))
			}
		case *ast.GoStmt:
			if returnsFuture(pass, n.Call) {
				pass.Reportf(n.Pos(),
					"go statement discards the %s future; its error can never be observed",
					callName(n.Call))
			}
		case *ast.DeferStmt:
			if returnsFuture(pass, n.Call) {
				pass.Reportf(n.Pos(),
					"defer discards the %s future; its error can never be observed",
					callName(n.Call))
			}
		case *ast.AssignStmt:
			// _ = expr discarding a future is as lossy as a bare call.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" || i >= len(n.Rhs) {
					continue
				}
				if len(n.Lhs) != len(n.Rhs) {
					continue // multi-value unpacking; future-typed results handled above
				}
				if tv, ok := pass.TypesInfo.Types[n.Rhs[i]]; ok && isFuture(tv.Type) {
					pass.Reportf(lhs.Pos(),
						"upcxx.Future assigned to the blank identifier; its error is dropped — "+
							"bind it and check Err/OK")
				}
			}
		}
	})
}

// reportUnconsulted flags local variables bound to futures whose Err/OK
// is never consulted anywhere in the enclosing function.
func reportUnconsulted(pass *analysis.Pass, fns []*funcInfo, consumes map[*types.Func]map[int]bool) {
	for _, fi := range fns {
		// Bindings: idents defined by := / var inside the body. Params and
		// named results never appear as such definitions; a wrapper that
		// ignores its future parameter is handled at its call sites via
		// the absent consumption fact, not here.
		type binding struct {
			id  *ast.Ident
			obj *types.Var
		}
		var bindings []binding
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			var idents []*ast.Ident
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						idents = append(idents, id)
					}
				}
			case *ast.ValueSpec:
				idents = n.Names
			default:
				return true
			}
			for _, id := range idents {
				if obj, ok := pass.TypesInfo.Defs[id].(*types.Var); ok && obj != nil && isFuture(obj.Type()) {
					bindings = append(bindings, binding{id, obj})
				}
			}
			return true
		})
		for _, b := range bindings {
			uses := consultingUses(pass, fi, b.obj, consumes)
			if len(uses) == 0 {
				pass.Reportf(b.id.Pos(),
					"future bound to %s but its Err/OK result is never consulted — "+
						"check it, return it, or pass it to a consuming function", b.obj.Name())
				continue
			}
			// All-paths check. Bindings inside function literals live in a
			// different graph, and uses inside literals or defers execute
			// at times the graph does not model: both fall back to the
			// any-use rule that just passed.
			if fi.enclosedBy(b.id, true, false) {
				continue
			}
			deferredUse := false
			for _, u := range uses {
				if fi.enclosedBy(u, true, true) {
					deferredUse = true
					break
				}
			}
			if deferredUse {
				continue
			}
			if !consultedOnAllPaths(fi, b.id, uses) {
				pass.Reportf(b.id.Pos(),
					"future bound to %s but its Err/OK result is not consulted on every "+
						"path to return — a path that skips the check drops a transient-fault error",
					b.obj.Name())
			}
		}
	}
}

// consultedOnAllPaths runs the backward must-dataflow: "consulted" must
// hold at the binding's program point on every path to the function exit.
// Panic-terminated paths are excused.
func consultedOnAllPaths(fi *funcInfo, bindID *ast.Ident, uses []*ast.Ident) bool {
	g := fi.cfgOf()

	// Locate the binding's block and node. The innermost (last-matching)
	// containing node wins, so a binding inside a range header maps to the
	// header block, not the loop's span.
	var bindBlock *cfg.Block
	bindIdx := -1
	nodeContains := func(n ast.Node, id *ast.Ident) bool {
		return n.Pos() <= id.Pos() && id.Pos() < n.End()
	}
	for _, blk := range g.Reachable() {
		for i, n := range blk.Nodes {
			if nodeContains(n, bindID) {
				bindBlock, bindIdx = blk, i
			}
		}
	}
	if bindBlock == nil {
		return true // dead code: no path to return exists, nothing to drop
	}

	// A consulting use later in the binding's own block settles it.
	for _, u := range uses {
		for i := bindIdx + 1; i < len(bindBlock.Nodes); i++ {
			if nodeContains(bindBlock.Nodes[i], u) {
				return true
			}
		}
	}

	// Which blocks consult? (Uses inside funclits/defers were already
	// filtered out by the caller's fallback.)
	consults := map[*cfg.Block]bool{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, u := range uses {
				if nodeContains(n, u) {
					consults[blk] = true
				}
			}
		}
	}

	res := dataflow.Solve(g, dataflow.SetLattice{Intersect: true}, dataflow.Backward, dataflow.Set{},
		func(blk *cfg.Block, in dataflow.Set) dataflow.Set {
			if blk.PanicExit || consults[blk] {
				in["consulted"] = true
			}
			return in
		})
	exitState, ok := res.In[bindBlock]
	if !ok {
		return true // block cannot reach the exit (e.g. infinite loop)
	}
	return exitState["consulted"]
}

// consultingUses returns every use of obj inside fi's body that consults
// the future's completion state (or escapes it).
func consultingUses(pass *analysis.Pass, fi *funcInfo, obj *types.Var, consumes map[*types.Func]map[int]bool) []*ast.Ident {
	var uses []*ast.Ident
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if consultingUse(pass, fi, id, consumes) {
			uses = append(uses, id)
		}
		return true
	})
	return uses
}

// consultsObject reports whether any use of obj inside fi's body consults
// the future's completion state (or escapes it beyond this function's
// sight, which counts as handing responsibility on).
func consultsObject(pass *analysis.Pass, fi *funcInfo, obj *types.Var, consumes map[*types.Func]map[int]bool) bool {
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if consultingUse(pass, fi, id, consumes) {
			found = true
		}
		return true
	})
	return found
}

// futureMethodsSilent are Future methods whose call observes nothing about
// the completion state: Wait/Seconds read the modeled duration, Then's
// chained result is tracked on its own.
var futureMethodsSilent = map[string]bool{"Wait": true, "Seconds": true, "Then": true}

// consultingUse classifies one use of a future-typed variable by its
// immediate syntactic context. Unknown contexts count as consulting: the
// check must be false-positive-poor, so only provably-blind uses stay
// non-consulting.
func consultingUse(pass *analysis.Pass, fi *funcInfo, id *ast.Ident, consumes map[*types.Func]map[int]bool) bool {
	parent := fi.parents[id]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = fi.parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return true // id is the Sel of an outer selector; not a future use
		}
		// Err/OK consult; Wait/Seconds/Then provably do not.
		return !futureMethodsSilent[p.Sel.Name]
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				// A write to the variable observes nothing.
				return false
			}
		}
		// RHS use: aliased into another variable or a field; the alias
		// may be consulted — stay conservative.
		return true
	case *ast.CallExpr:
		if p.Fun == id {
			return true // not possible for a Future; conservative anyway
		}
		return callConsumesArg(pass, p, id, consumes)
	default:
		// Returns, composite literals, channel sends, address-taking,
		// index stores, comparisons: escaped or observed.
		return true
	}
}

// callConsumesArg decides whether passing the future as an argument hands
// its error to somebody who looks at it.
func callConsumesArg(pass *analysis.Pass, call *ast.CallExpr, id *ast.Ident, consumes map[*types.Func]map[int]bool) bool {
	argIdx := -1
	for i, a := range call.Args {
		if a == id {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return true // nested deeper inside an argument expression
	}
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return true // func value or builtin: unknown, conservative
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return true
	}
	paramIdx := argIdx
	if sig.Variadic() && paramIdx >= sig.Params().Len()-1 {
		paramIdx = sig.Params().Len() - 1
	}
	if callee.Pkg() == pass.Pkg {
		// Same package: the fixpoint table is authoritative for every
		// function we saw a body for; bodiless declarations stay unknown.
		if set, ok := consumes[callee]; ok {
			return set[paramIdx]
		}
		if hasLocalBody(pass, callee) {
			return false
		}
		return true
	}
	// Cross-package: authoritative only if the callee's package was
	// analyzed (its facts are in the store); otherwise conservative.
	if !pass.ImportPackageFact(callee.Pkg(), &analyzed{}) {
		return true
	}
	var cf consumesFuture
	if !pass.ImportObjectFact(callee, &cf) {
		return false // analyzed and exported no consumption: provably blind
	}
	for _, i := range cf.Params {
		if i == paramIdx {
			return true
		}
	}
	return false
}

// hasLocalBody reports whether the package declares a body for fn.
func hasLocalBody(pass *analysis.Pass, fn *types.Func) bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj == fn {
					return true
				}
			}
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func returnsFuture(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isFuture(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isFuture(tv.Type)
}

func isFuture(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == futurePath && obj.Name() == futureName
}

// callName renders the callee for diagnostics (r.Rget, f.Then, ...).
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
