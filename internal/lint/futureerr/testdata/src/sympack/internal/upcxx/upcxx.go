// Package upcxx is a minimal stand-in for the real runtime, just enough
// surface for the futureerr analyzer to resolve the error-carrying
// Future type at its production import path.
package upcxx

type Future struct {
	seconds float64
	err     error
}

func (f Future) Wait() float64         { return f.seconds }
func (f Future) Seconds() float64      { return f.seconds }
func (f Future) Err() error            { return f.err }
func (f Future) OK() bool              { return f.err == nil }
func (f Future) Then(fn func()) Future { return f }

type Rank struct{}

func (r *Rank) Rget(dst []float64) Future { return Future{} }
func (r *Rank) Rput(src []float64) Future { return Future{} }
func (r *Rank) Copy() Future              { return Future{} }
