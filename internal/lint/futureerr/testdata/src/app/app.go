// Testdata for the futureerr analyzer: discarded upcxx.Future results are
// flagged wherever they occur; bound futures must have their Err/OK
// consulted on some use, possibly through a wrapper the consumption facts
// know about.
package app

import (
	"sympack/internal/upcxx"
	"wrap"
)

func discarded(r *upcxx.Rank, buf []float64) {
	r.Rget(buf) // want "result of r.Rget is discarded"
	f := r.Rput(buf)
	f.Then(func() {}) // want "result of f.Then is discarded"
	_ = r.Copy()      // want "blank identifier"
	go r.Rput(buf)    // want "go statement discards the r.Rput future"
	defer r.Rget(buf) // want "defer discards the r.Rget future"
	_ = f.Err()
}

func checked(r *upcxx.Rank, buf []float64) error {
	f := r.Rget(buf)
	if !f.OK() {
		return f.Err()
	}
	g := r.Rput(buf).Then(func() {})
	_ = g.Wait() // Wait returns modeled seconds (float64), not a Future
	return g.Err()
}

// Audited escape hatch: deliberate fire-and-forget, with the recovery
// story written down.
func audited(r *upcxx.Rank, buf []float64) {
	//lint:ignore futureerr prefetch hint only; consumer re-requests on loss
	r.Rput(buf)
}

// Bound futures whose only uses are blind: reported at the binding.
func bound(r *upcxx.Rank, buf []float64) {
	f := r.Rget(buf) // want "bound to f but its Err/OK result is never consulted"
	_ = f.Wait()

	var g upcxx.Future // want "bound to g"
	g = r.Rput(buf)
	_ = g.Seconds()
}

type holder struct{ fut upcxx.Future }

// Escapes hand responsibility on: not this function's problem anymore.
func escapes(r *upcxx.Rank, buf []float64, ch chan upcxx.Future) upcxx.Future {
	a := r.Rget(buf)
	ch <- a
	b := r.Rget(buf)
	_ = holder{fut: b}
	c := r.Rget(buf)
	return c
}

// localSwallow ignores its future; call sites know via the intra-package
// fixpoint.
func localSwallow(f upcxx.Future) { _ = f.Wait() }

func localWrap(r *upcxx.Rank, buf []float64) {
	d := r.Rget(buf) // want "bound to d"
	localSwallow(d)
}

// Cross-package wrappers, judged by imported consumption facts.
func crosspkg(r *upcxx.Rank, buf []float64) error {
	a := r.Rget(buf)
	b := r.Rget(buf) // want "bound to b"
	wrap.Swallow(b)
	c := r.Rget(buf)
	if err := wrap.Forward(c); err != nil {
		return err
	}
	return wrap.Check(a)
}
