// Testdata for the futureerr analyzer: discarded upcxx.Future results are
// flagged wherever they occur; bound-and-checked futures are not.
package app

import "sympack/internal/upcxx"

func discarded(r *upcxx.Rank, buf []float64) {
	r.Rget(buf) // want "result of r.Rget is discarded"
	f := r.Rput(buf)
	f.Then(func() {}) // want "result of f.Then is discarded"
	_ = r.Copy()      // want "blank identifier"
	go r.Rput(buf)    // want "go statement discards the r.Rput future"
	defer r.Rget(buf) // want "defer discards the r.Rget future"
	_ = f.Err()
}

func checked(r *upcxx.Rank, buf []float64) error {
	f := r.Rget(buf)
	if !f.OK() {
		return f.Err()
	}
	g := r.Rput(buf).Then(func() {})
	_ = g.Wait() // Wait returns modeled seconds (float64), not a Future
	return g.Err()
}

// Audited escape hatch: deliberate fire-and-forget, with the recovery
// story written down.
func audited(r *upcxx.Rank, buf []float64) {
	//lint:ignore futureerr prefetch hint only; consumer re-requests on loss
	r.Rput(buf)
}
