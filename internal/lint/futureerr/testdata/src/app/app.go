// Testdata for the futureerr analyzer: discarded upcxx.Future results are
// flagged wherever they occur; bound futures must have their Err/OK
// consulted on some use, possibly through a wrapper the consumption facts
// know about.
package app

import (
	"sympack/internal/upcxx"
	"wrap"
)

func discarded(r *upcxx.Rank, buf []float64) {
	r.Rget(buf) // want "result of r.Rget is discarded"
	f := r.Rput(buf)
	f.Then(func() {}) // want "result of f.Then is discarded"
	_ = r.Copy()      // want "blank identifier"
	go r.Rput(buf)    // want "go statement discards the r.Rput future"
	defer r.Rget(buf) // want "defer discards the r.Rget future"
	_ = f.Err()
}

func checked(r *upcxx.Rank, buf []float64) error {
	f := r.Rget(buf)
	if !f.OK() {
		return f.Err()
	}
	g := r.Rput(buf).Then(func() {})
	_ = g.Wait() // Wait returns modeled seconds (float64), not a Future
	return g.Err()
}

// Audited escape hatch: deliberate fire-and-forget, with the recovery
// story written down.
func audited(r *upcxx.Rank, buf []float64) {
	//lint:ignore futureerr prefetch hint only; consumer re-requests on loss
	r.Rput(buf)
}

// Bound futures whose only uses are blind: reported at the binding.
func bound(r *upcxx.Rank, buf []float64) {
	f := r.Rget(buf) // want "bound to f but its Err/OK result is never consulted"
	_ = f.Wait()

	var g upcxx.Future // want "bound to g"
	g = r.Rput(buf)
	_ = g.Seconds()
}

type holder struct{ fut upcxx.Future }

// Escapes hand responsibility on: not this function's problem anymore.
func escapes(r *upcxx.Rank, buf []float64, ch chan upcxx.Future) upcxx.Future {
	a := r.Rget(buf)
	ch <- a
	b := r.Rget(buf)
	_ = holder{fut: b}
	c := r.Rget(buf)
	return c
}

// localSwallow ignores its future; call sites know via the intra-package
// fixpoint.
func localSwallow(f upcxx.Future) { _ = f.Wait() }

func localWrap(r *upcxx.Rank, buf []float64) {
	d := r.Rget(buf) // want "bound to d"
	localSwallow(d)
}

// Cross-package wrappers, judged by imported consumption facts. The
// early return on Forward's error is a path that never consults a — the
// CFG-based all-paths check sees through the final wrap.Check(a).
func crosspkg(r *upcxx.Rank, buf []float64) error {
	a := r.Rget(buf) // want "not consulted on every path"
	b := r.Rget(buf) // want "bound to b"
	wrap.Swallow(b)
	c := r.Rget(buf)
	if err := wrap.Forward(c); err != nil {
		return err
	}
	return wrap.Check(a)
}

// All-paths coverage: consulted on one arm only is a dropped error on
// the other arm.
func partial(r *upcxx.Rank, buf []float64, c bool) {
	f := r.Rget(buf) // want "not consulted on every path"
	if c {
		_ = f.Err()
	}
}

// Consulted on every arm: clean.
func allArms(r *upcxx.Rank, buf []float64, c bool) error {
	f := r.Rget(buf)
	if c {
		return f.Err()
	}
	return f.Err()
}

// Panic paths are excused: the error is not "dropped" by crashing.
func panicPath(r *upcxx.Rank, buf []float64, c bool) error {
	f := r.Rget(buf)
	if c {
		panic("unreachable")
	}
	return f.Err()
}

// A per-iteration future consulted before the back edge is clean.
func loopConsult(r *upcxx.Rank, bufs [][]float64) error {
	for _, buf := range bufs {
		f := r.Rget(buf)
		if err := f.Err(); err != nil {
			return err
		}
	}
	return nil
}

// A consult that only happens inside the loop does not cover the
// zero-iteration path.
func loopSkip(r *upcxx.Rank, buf []float64, n int) {
	f := r.Rget(buf) // want "not consulted on every path"
	for i := 0; i < n; i++ {
		_ = f.Err()
	}
}

// Uses inside deferred calls fall back to the any-use rule: the defer
// runs on every return, the graph just cannot order it.
func deferredConsult(r *upcxx.Rank, buf []float64, c bool) {
	f := r.Rget(buf)
	defer func() { _ = f.Err() }()
	if c {
		return
	}
}
