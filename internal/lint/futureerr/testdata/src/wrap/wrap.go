// Package wrap holds sympack-local future helpers for the cross-package
// fact tests: the analyzer must learn which parameters each function
// consults and judge call sites in importing packages accordingly.
package wrap

import "sympack/internal/upcxx"

// Check consults the future's error.
func Check(f upcxx.Future) error { return f.Err() }

// Swallow provably ignores the future's completion state.
func Swallow(f upcxx.Future) { _ = f.Wait() }

// Forward consults transitively, through Check.
func Forward(f upcxx.Future) error { return Check(f) }
