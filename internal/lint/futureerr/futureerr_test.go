package futureerr_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/futureerr"
)

func TestFutureErr(t *testing.T) {
	analysistest.Run(t, "testdata", futureerr.Analyzer, "app")
}
