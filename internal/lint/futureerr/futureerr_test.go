package futureerr_test

import (
	"testing"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/futureerr"
)

// Packages are listed dependency-first so wrap's consumption facts are in
// the store by the time app's call sites are judged.
func TestFutureErr(t *testing.T) {
	analysistest.RunSuite(t, "testdata", []*analysis.Analyzer{futureerr.Analyzer},
		"sympack/internal/upcxx", "wrap", "app")
}
