// Package unusedignore reports //lint:ignore directives that suppress no
// diagnostic, following staticcheck's behavior for its own ignore
// directives. A suppression is an audited exception: it exists to silence
// one concrete finding with a written reason. When the code it excused is
// fixed or deleted the directive becomes dead weight — worse, a stale
// wildcard or analyzer-list directive can silently swallow the *next*
// genuine finding on that line. Keeping the table live means every
// directive in the tree is load-bearing.
//
// Mechanically the check is a post-run pass over the suppression table,
// not an AST walk: the runner (analysis.Audit) applies every directive to
// the run's diagnostic stream, records which ones matched, and reports
// the rest under this analyzer's name. The Analyzer value exists so the
// check is registered, listable, and suppressible (a directive can be
// excused with //lint:ignore unusedignore <reason> while a flaky finding
// stabilizes) like any other; its Run contributes no diagnostics of its
// own. A directive is only judged when every analyzer it names actually
// ran, so partial runs (analysistest, RunDirs subsets, CI variant-matrix
// shards) cannot flag directives that are doing their job in the full
// suite — but they no longer stay silent either: each unjudgeable
// directive produces an informational note ("audit skipped: analyzers X
// did not run") that shows in the report without gating the build.
package unusedignore

import (
	"sympack/internal/lint/analysis"
)

// Name is the analyzer name the runner keys the audit on.
const Name = "unusedignore"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "flags //lint:ignore directives that suppress no diagnostic, so " +
		"stale escape hatches cannot linger (implemented by the runner's " +
		"suppression audit)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		// The work happens in analysis.Audit after all analyzers ran;
		// registering this analyzer switches that audit on.
		return nil, nil
	},
}
