package unusedignore_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sympack/internal/lint"
)

// TestUnusedIgnore runs the full suite over a small module with one live
// and one stale //lint:ignore directive. The live one suppresses a real
// futureerr finding (which must stay out of the unsuppressed stream); the
// stale one must come back as an unusedignore finding at its own line.
func TestUnusedIgnore(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sympack\n\ngo 1.22\n")
	write("internal/upcxx/upcxx.go", `package upcxx

type Future struct{ err error }

func (f Future) Err() error { return f.err }

func Start() Future { return Future{} }
`)
	write("internal/app/app.go", `package app

import "sympack/internal/upcxx"

func live() error {
	//lint:ignore futureerr deliberate fire-and-forget prefetch
	upcxx.Start()
	f := upcxx.Start()
	return f.Err()
}

func stale() error {
	//lint:ignore futureerr nothing on the next line needs ignoring
	g := upcxx.Start()
	return g.Err()
}
`)
	diags, fset, err := lint.RunModule(root, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, unused int
	for _, d := range diags {
		switch {
		case d.Suppressed:
			if d.Analyzer != "futureerr" {
				t.Errorf("suppressed diagnostic from %s, want futureerr", d.Analyzer)
			}
			suppressed++
		case d.Analyzer == "unusedignore":
			if !strings.Contains(d.Message, "suppresses no diagnostic") {
				t.Errorf("unusedignore message = %q", d.Message)
			}
			if line := fset.Position(d.Pos).Line; line != 13 {
				t.Errorf("unusedignore reported at line %d, want 13 (the stale directive)", line)
			}
			unused++
		default:
			t.Errorf("unexpected diagnostic: %s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if suppressed != 1 || unused != 1 {
		t.Errorf("got %d suppressed + %d unusedignore findings, want 1 + 1", suppressed, unused)
	}
}
