package nondetflow_test

import (
	"testing"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/nondetflow"
	"sympack/internal/lint/unusedignore"
)

// Packages are listed dependency-first so route's parameter-to-sink
// summary fact is in the store by the time app's call sites are judged.
// unusedignore rides along to pin the taint-kill contract: the audited
// directive in core must count as consumed, not stale.
func TestNondetFlow(t *testing.T) {
	analysistest.RunSuite(t, "testdata",
		[]*analysis.Analyzer{nondetflow.Analyzer, unusedignore.Analyzer},
		"sympack/internal/upcxx", "sympack/internal/core", "route", "app")
}
