// Package app exercises nondetflow end to end: direct source→sink flows,
// sort kills, same-package summaries (via a local helper), and the
// cross-package fact path through route.Publish.
package app

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"route"
	"sympack/internal/upcxx"
)

// gather launders map iteration order into an AllReduce payload.
func gather(r *upcxx.Rank, parts map[int][]float64) {
	var buf []float64
	for _, p := range parts {
		buf = append(buf, p...)
	}
	r.AllReduce(0, buf) // want "map iteration order\\) flows into an AllReduce staging buffer"
}

// gatherSorted is the blessed shape: the key order is made explicit
// before the payload is assembled, so the taint dies at the sort.
func gatherSorted(r *upcxx.Rank, parts map[int][]float64) {
	var keys []int
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var buf []float64
	for _, k := range keys {
		buf = append(buf, parts[k]...)
	}
	r.AllReduce(0, buf)
}

// stamp puts a wall-clock-derived value on the wire.
func stamp(r *upcxx.Rank) {
	jitter := float64(time.Now().UnixNano() % 3)
	r.Rput([]float64{jitter}, 1) // want "wall clock \\(time\\.Now\\)\\) flows into an Rput wire payload"
}

// scatter seeds a wire-visible array from the global rand stream.
func scatter() []float64 {
	v := rand.Float64()
	return upcxx.NewArrayFrom([]float64{v}) // want "unseeded math/rand \\(Float64\\)\\) flows into a wire-visible array initialization"
}

type pq []string

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i] < q[j] }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)         { *q = append(*q, x.(string)) }
func (q *pq) Pop() any           { old := *q; x := old[len(old)-1]; *q = old[:len(old)-1]; return x }

// enqueue keys a scheduling queue on a pointer address.
func enqueue(q *pq, r *upcxx.Rank) {
	key := fmt.Sprintf("%p", r)
	heap.Push(q, key) // want "pointer formatting \\(%p\\)\\) flows into a scheduling-queue element"
}

// send is a local helper whose parameter reaches the wire; callers with
// tainted arguments are reported at the call site with a via chain.
func send(r *upcxx.Rank, xs []float64) {
	r.Rput(xs, 0)
}

func relay(r *upcxx.Rank, parts map[int][]float64) {
	var buf []float64
	for _, p := range parts {
		buf = append(buf, p...)
	}
	send(r, buf) // want "map iteration order\\) flows into an Rput wire payload via app\\.send"
}

// broadcast reaches the sink only through route.Publish's exported
// summary: the flow spans a package boundary.
func broadcast(r *upcxx.Rank, weights map[string]float64) {
	var vals []float64
	for _, w := range weights {
		vals = append(vals, w)
	}
	route.Publish(r, vals) // want "map iteration order\\) flows into an AllReduce staging buffer via route\\.Publish"
}

// pick routes an RPC to a map-order-dependent rank.
func pick(r *upcxx.Rank, owners map[int]bool) {
	target := 0
	for o := range owners {
		target = o
		break
	}
	r.RPC(target, func(peer *upcxx.Rank) { _ = peer }) // want "map iteration order\\) flows into an RPC target rank"
}

// seeded shows the constructor exclusion: an explicitly seeded generator
// is reproducible, so nothing fires.
func seeded(r *upcxx.Rank) {
	rng := rand.New(rand.NewSource(7))
	r.Rput([]float64{rng.NormFloat64()}, 2)
}

// reseeded launders the clock through a generator seed: the wall-clock
// taint rides through NewSource and New into every draw.
func reseeded(r *upcxx.Rank) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	r.Rput([]float64{rng.NormFloat64()}, 3) // want "wall clock \\(time\\.Now\\)\\) flows into an Rput wire payload"
}

// clean shows a kill on a parameter: after the sort the slice order is
// explicit, so not even a conditional (summary) sink survives.
func clean(r *upcxx.Rank, data []float64) error {
	sort.Float64s(data)
	return r.AllReduce(0, data)
}

func use(r *upcxx.Rank, q *pq) {
	gather(r, nil)
	gatherSorted(r, nil)
	stamp(r)
	_ = scatter()
	seeded(r)
	reseeded(r)
	enqueue(q, r)
	relay(r, nil)
	broadcast(r, nil)
	pick(r, nil)
	_ = clean(r, nil)
}
