// Package route wraps wire emission behind a helper; its parameter-to-sink
// flow must ride the exported summary fact into importing packages.
package route

import "sympack/internal/upcxx"

func Publish(r *upcxx.Rank, data []float64) {
	r.AllReduce(0, data)
}
