// Package core is a stand-in defining the RTQ comparator fields the
// analyzer treats as ordering sinks.
package core

import "time"

type task struct {
	seq   uint64
	depth uint64
	id    int
}

func renumber(t *task) {
	t.seq = uint64(time.Now().UnixNano()) // want "wall clock \\(time\\.Now\\)\\) flows into the RTQ comparator key task\\.seq"
}

func fresh() task {
	return task{seq: uint64(time.Now().UnixNano())} // want "wall clock \\(time\\.Now\\)\\) flows into the RTQ comparator key task\\.seq"
}

// renumberAudited proves the taint-kill path: the directive is consumed
// by the engine (no diagnostic below), and the unusedignore audit must
// still count it as used rather than stale.
func renumberAudited(t *task) {
	//lint:ignore nondetflow tie-breaker only; relative order fixed upstream by the seq ceiling
	t.seq = uint64(time.Now().UnixNano())
}

// reseed keeps the helpers referenced so the package type-checks without
// unused warnings under stricter vet configurations.
func reseed(t *task) {
	renumber(t)
	renumberAudited(t)
	_ = fresh()
	_ = t.depth
	_ = t.id
}
