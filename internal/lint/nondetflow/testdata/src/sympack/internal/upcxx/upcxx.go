// Package upcxx is a minimal stand-in exposing the wire-payload surface
// nondetflow gates on, at its production import path.
package upcxx

type Rank struct{}

func (r *Rank) AllReduce(op int, data []float64) error { return nil }
func (r *Rank) Rput(src []float64, dst int)            {}
func (r *Rank) RPC(target int, fn func(*Rank))         {}

func NewArrayFrom(vals []float64) []float64 { return vals }
