// Package nondetflow implements the "nondetflow" analyzer: an
// interprocedural taint check proving that no nondeterministic value
// reaches a schedule- or numerics-critical sink. The paper's fan-out
// solver is correct only because update application follows a strict
// deterministic order regardless of message arrival; the conformance
// battery checks that dynamically, and the intraprocedural suite
// (mapiterdeterminism, wallclock) polices the sources one function at a
// time — but a map-ordered slice laundered through two helper calls into
// the RTQ comparator or an AllReduce payload was invisible until now.
//
// Sources: map iteration order, wall clock readings (time.Now/Since and
// the machine facade's WallNow/WallSince — any wall reading is
// machine-local and therefore rank-nondeterministic), unseeded math/rand,
// and %p pointer formatting. Sinks: RTQ comparator keys (writes to
// core's task ordering fields), wire/signal payloads in internal/upcxx
// (RPC targets, Rput payloads, AllReduce staging buffers, NewArrayFrom
// initializers), scheduling-queue elements (container/heap.Push), trace
// ordering fields, and factor values entering internal/blas kernels.
//
// Taint dies only two ways: an explicit sort (sort.* / slices.Sort*) of
// the carrying slice, or an audited "//lint:ignore nondetflow <reason>"
// on the source or the assignment — which the engine records as consumed
// so the unusedignore audit treats the directive as live.
//
// Flows are chased across function and package boundaries through
// sympack/internal/lint/taint summaries exported as Facts (flowFact), so
// `go vet -vettool` units compose: a helper whose parameter reaches an
// AllReduce in package A is reported at its call site in package B.
package nondetflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/taint"
)

// Name is the analyzer name //lint:ignore directives must use.
const Name = "nondetflow"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "detects nondeterministic values (map order, wall clock, math/rand, %p) " +
		"flowing into schedule-critical sinks (RTQ keys, wire payloads, AllReduce " +
		"buffers, trace ordering, factor values), across call and package boundaries",
	Run:       run,
	FactTypes: []analysis.Fact{(*flowFact)(nil)},
}

// flowFact carries a function's taint summary to importing packages.
type flowFact struct{ S taint.Summary }

func (*flowFact) AFact() {}

func (f *flowFact) String() string {
	return fmt.Sprintf("nondetflow(results=%d sinks=%d)", len(f.S.Results), len(f.S.Sinks))
}

func run(pass *analysis.Pass) (interface{}, error) {
	inMachine := strings.HasSuffix(pass.Pkg.Path(), "internal/machine")

	spec := taint.Spec{
		Analyzer:         Name,
		PropagateUnknown: true,
		SourceExpr: func(e ast.Expr) string {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return ""
			}
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil {
				return ""
			}
			path := pkgPath(fn)
			switch {
			case path == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				return "wall clock (time." + fn.Name() + ")"
			case strings.HasSuffix(path, "internal/machine") && !inMachine &&
				(fn.Name() == "WallNow" || fn.Name() == "WallSince"):
				// The facade virtualizes the clock for tests, but a wall
				// reading is still machine-local: rank-nondeterministic.
				return "wall clock (machine." + fn.Name() + ")"
			case (path == "math/rand" || path == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil &&
				fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8":
				// Constructors are not sources: rand.New(rand.NewSource(7))
				// is explicitly seeded and reproducible. A generator seeded
				// from the clock still taints — the wall-clock label rides
				// through NewSource and New into the *Rand's method results
				// (PropagateUnknown carries receiver taint into results).
				return "unseeded math/rand (" + fn.Name() + ")"
			case path == "fmt" && fn.Name() == "Sprintf" && formatHasPointerVerb(call):
				return "pointer formatting (%p)"
			}
			return ""
		},
		RangeSource: func(rs *ast.RangeStmt) string {
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return ""
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return "map iteration order"
			}
			return ""
		},
		Sinks: func(n ast.Node) []taint.SinkUse {
			switch n := n.(type) {
			case *ast.CallExpr:
				return callSinks(pass, n)
			case *ast.AssignStmt:
				return assignSinks(pass, n)
			case *ast.CompositeLit:
				return compositeSinks(pass, n)
			}
			return nil
		},
		Kills: func(call *ast.CallExpr) []ast.Expr {
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil || len(call.Args) == 0 {
				return nil
			}
			path := pkgPath(fn)
			if path != "sort" && path != "slices" {
				return nil
			}
			switch fn.Name() {
			case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints",
				"Float64s", "SortFunc", "SortStableFunc":
				return []ast.Expr{call.Args[0]}
			}
			return nil
		},
		Lookup: func(fn *types.Func) (taint.Summary, bool) {
			var f flowFact
			if pass.ImportObjectFact(fn, &f) {
				return f.S, true
			}
			return taint.Summary{}, false
		},
	}

	res := taint.Run(pass, spec)

	for _, f := range res.Findings {
		msg := fmt.Sprintf("nondeterministic value (%s) flows into %s", f.Source, f.Sink)
		if f.Via != "" {
			msg += " via " + f.Via
		}
		msg += "; order explicitly (sort) or justify with //lint:ignore nondetflow"
		pass.Reportf(f.Pos, "%s", msg)
	}

	// Export summaries in deterministic (source) order.
	for _, node := range res.Graph.Nodes {
		if sum, ok := res.Summaries[node.Func]; ok && !sum.Empty() {
			fact := flowFact{S: sum}
			pass.ExportObjectFact(node.Func, &fact)
		}
	}
	return nil, nil
}

// calleeOf statically resolves a call's target function, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func pkgPath(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

// formatHasPointerVerb reports whether a call's first argument is a string
// literal containing a %p verb.
func formatHasPointerVerb(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return false
	}
	for i := 0; i+1 < len(lit.Value); i++ {
		if lit.Value[i] == '%' {
			if lit.Value[i+1] == '%' {
				i++
				continue
			}
			// Skip flags/width between % and the verb.
			j := i + 1
			for j < len(lit.Value) && strings.ContainsRune("+-# 0123456789.[]*", rune(lit.Value[j])) {
				j++
			}
			if j < len(lit.Value) && lit.Value[j] == 'p' {
				return true
			}
		}
	}
	return false
}

// callSinks classifies call arguments that feed wire payloads, scheduling
// queues, or factor kernels.
func callSinks(pass *analysis.Pass, call *ast.CallExpr) []taint.SinkUse {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	path := pkgPath(fn)
	arg := func(i int) (ast.Expr, bool) {
		if i < len(call.Args) {
			return call.Args[i], true
		}
		return nil, false
	}
	switch {
	case strings.HasSuffix(path, "internal/upcxx"):
		switch fn.Name() {
		case "AllReduce":
			if a, ok := arg(1); ok {
				return []taint.SinkUse{{Value: a, Desc: "an AllReduce staging buffer"}}
			}
		case "Rput":
			if a, ok := arg(0); ok {
				return []taint.SinkUse{{Value: a, Desc: "an Rput wire payload"}}
			}
		case "NewArrayFrom":
			if a, ok := arg(0); ok {
				return []taint.SinkUse{{Value: a, Desc: "a wire-visible array initialization"}}
			}
		case "RPC":
			if a, ok := arg(0); ok {
				return []taint.SinkUse{{Value: a, Desc: "an RPC target rank"}}
			}
		}
	case path == "container/heap" && fn.Name() == "Push":
		if a, ok := arg(1); ok {
			return []taint.SinkUse{{Value: a, Desc: "a scheduling-queue element"}}
		}
	case strings.HasSuffix(path, "internal/blas") && fn.Exported():
		var uses []taint.SinkUse
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if isFloatSlice(sig.Params().At(i).Type()) {
				uses = append(uses, taint.SinkUse{
					Value: call.Args[i],
					Desc:  "a factor-kernel input (blas." + fn.Name() + ")",
				})
			}
		}
		return uses
	case strings.HasSuffix(path, "internal/krylov") &&
		(fn.Name() == "Dot" || fn.Name() == "Norm2"):
		// The pairwise reductions behind every CG/PCG residual trajectory:
		// a nondeterministic value feeding Dot or Norm2 breaks the
		// bit-identical-trajectory contract the iter battery pins.
		var uses []taint.SinkUse
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if isFloatSlice(sig.Params().At(i).Type()) {
				uses = append(uses, taint.SinkUse{
					Value: call.Args[i],
					Desc:  "a Krylov reduction input (krylov." + fn.Name() + ")",
				})
			}
		}
		return uses
	}
	return nil
}

func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// orderFields lists, per sink-carrying type, the fields whose values
// decide scheduling or trace order.
var orderFields = map[string]map[string]string{
	"internal/core|task": {
		"seq":   "the RTQ comparator key task.seq",
		"depth": "the RTQ comparator key task.depth",
		"kind":  "the RTQ comparator key task.kind",
		"id":    "the RTQ comparator key task.id",
	},
	"internal/trace|Event": {
		"Start": "the trace-ordering field Event.Start",
		"End":   "the trace-ordering field Event.End",
	},
}

// fieldSinkDesc reports whether assigning the named field of type t is a
// sink.
func fieldSinkDesc(t types.Type, field string) string {
	for t != nil {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	path := named.Obj().Pkg().Path()
	for key, fields := range orderFields {
		pkgSuffix, typeName, _ := strings.Cut(key, "|")
		if typeName == named.Obj().Name() && strings.HasSuffix(path, pkgSuffix) {
			return fields[field]
		}
	}
	return ""
}

// assignSinks flags writes to ordering fields: t.seq = v, ev.Start = w.
func assignSinks(pass *analysis.Pass, n *ast.AssignStmt) []taint.SinkUse {
	if len(n.Lhs) != len(n.Rhs) {
		return nil
	}
	var uses []taint.SinkUse
	for i, lhs := range n.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			continue
		}
		if desc := fieldSinkDesc(tv.Type, sel.Sel.Name); desc != "" {
			uses = append(uses, taint.SinkUse{Value: n.Rhs[i], Desc: desc})
		}
	}
	return uses
}

// compositeSinks flags ordering fields initialized in composite literals:
// task{seq: v}, Event{Start: w}.
func compositeSinks(pass *analysis.Pass, n *ast.CompositeLit) []taint.SinkUse {
	tv, ok := pass.TypesInfo.Types[n]
	if !ok {
		return nil
	}
	var uses []taint.SinkUse
	for _, elt := range n.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if desc := fieldSinkDesc(tv.Type, key.Name); desc != "" {
			uses = append(uses, taint.SinkUse{Value: kv.Value, Desc: desc})
		}
	}
	return uses
}
