// Package analysis is a self-contained reimplementation of the public API
// surface of golang.org/x/tools/go/analysis that the sympacklint suite
// needs. The build environment vendors no third-party modules (the repo is
// stdlib-only by policy, see DESIGN.md §2), so rather than depending on
// x/tools this package provides the same Analyzer/Pass/Diagnostic contract
// on top of go/ast and go/types. Analyzers written against it follow the
// upstream conventions — a Run function receiving a type-checked package
// and reporting position-anchored diagnostics — and could be ported to the
// real framework by changing only the import path.
//
// The deliberate subset: no Requires graph (the analyzers are
// independent) and no SSA. Facts — exportable per-object/per-package
// state serialized between passes, which the flow-sensitive futureerr
// analyzer uses to chase futures through sympack-local wrappers
// cross-package — follow the upstream contract (see facts.go).
// Suppression via "//lint:ignore" comments is handled by the runner, not
// by individual analyzers (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Name is the identifier used in
// diagnostics and in //lint:ignore directives; Doc is the human
// description printed by `sympacklint help`.
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the analyzer to a single type-checked package and
	// reports findings through pass.Report. The interface{} result and
	// error mirror the upstream signature; the suite's analyzers return
	// (nil, nil) and communicate only through diagnostics.
	Run func(pass *Pass) (interface{}, error)

	// FactTypes declares the concrete fact types this analyzer exports
	// or imports (see facts.go). Exporting an undeclared type panics.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The runner installs it; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)

	// Fact accessors, installed by the runner from its FactStore
	// (FactStore.Bind). Object facts attach to exported objects and
	// travel to passes over importing packages; package facts attach to
	// the package as a whole. Import functions copy the stored value
	// into the argument and report whether a fact was found.
	ExportObjectFact  func(obj types.Object, fact Fact)
	ImportObjectFact  func(obj types.Object, fact Fact) bool
	ExportPackageFact func(fact Fact)
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// MarkIgnoreUsed, installed by the runner, records that an
	// //lint:ignore directive covering pos was consumed by the analyzer
	// mid-analysis — e.g. a taint engine killing a flow at the directive's
	// line — rather than by suppressing a reported diagnostic. The audit
	// counts such directives as live, so unusedignore does not flag an
	// escape hatch whose entire effect was to stop a finding from ever
	// being produced. Nil when the runner does not audit suppressions.
	MarkIgnoreUsed func(pos token.Pos, analyzer string)
}

// ConsumeIgnore is the nil-safe form of MarkIgnoreUsed.
func (p *Pass) ConsumeIgnore(pos token.Pos, analyzer string) {
	if p.MarkIgnoreUsed != nil {
		p.MarkIgnoreUsed(pos, analyzer)
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the runner

	// Suppressed marks a finding silenced by an audited //lint:ignore
	// directive. The audit keeps suppressed findings in the stream (the
	// -json report shows them; the exit code ignores them) so a
	// suppression is always visible, never a silent deletion.
	Suppressed bool

	// Note marks an informational diagnostic that never gates the build:
	// the suppression audit emits one when a sharded run leaves it unable
	// to judge a directive ("audit skipped: analyzers X did not run"), so
	// partial CI shards say so out loud instead of silently passing.
	Note bool
}

// Unsuppressed filters a diagnostic stream down to the findings that
// gate the build: suppressed findings and informational notes drop out.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed && !d.Note {
			out = append(out, d)
		}
	}
	return out
}
