// Package analysis is a self-contained reimplementation of the public API
// surface of golang.org/x/tools/go/analysis that the sympacklint suite
// needs. The build environment vendors no third-party modules (the repo is
// stdlib-only by policy, see DESIGN.md §2), so rather than depending on
// x/tools this package provides the same Analyzer/Pass/Diagnostic contract
// on top of go/ast and go/types. Analyzers written against it follow the
// upstream conventions — a Run function receiving a type-checked package
// and reporting position-anchored diagnostics — and could be ported to the
// real framework by changing only the import path.
//
// The deliberate subset: no Facts (none of the suite's invariants need
// cross-package state), no Requires graph (the four analyzers are
// independent), and no SSA. Suppression via "//lint:ignore" comments is
// handled by the runner, not by individual analyzers (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Name is the identifier used in
// diagnostics and in //lint:ignore directives; Doc is the human
// description printed by `sympacklint help`.
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the analyzer to a single type-checked package and
	// reports findings through pass.Report. The interface{} result and
	// error mirror the upstream signature; the suite's analyzers return
	// (nil, nil) and communicate only through diagnostics.
	Run func(pass *Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The runner installs it; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the runner
}
