package analysis

import "go/ast"

// Preorder walks every file in the pass in depth-first preorder, calling fn
// for each node. It is the moral equivalent of the upstream inspect pass's
// Preorder, without the node-type filter (the suite's packages are small
// enough that a full walk costs nothing measurable).
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}
