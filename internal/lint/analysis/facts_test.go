package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// markFact is a minimal gob-serializable fact for the round-trip tests.
type markFact struct{ N int }

func (*markFact) AFact() {}

var factTestAnalyzer = &Analyzer{
	Name:      "facttest",
	Doc:       "test analyzer",
	Run:       func(*Pass) (interface{}, error) { return nil, nil },
	FactTypes: []Fact{(*markFact)(nil)},
}

func checkFactPkg(t *testing.T) (*types.Package, *token.FileSet) {
	t.Helper()
	const src = `package a

type T struct{}

func (T) M() {}

func F() {}

func hidden() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("a", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, fset
}

func bind(t *testing.T, s *FactStore, pkg *types.Package) *Pass {
	t.Helper()
	pass := &Pass{Analyzer: factTestAnalyzer, Pkg: pkg}
	s.Bind(pass)
	return pass
}

// TestFactRoundTrip exercises the vetx path: facts exported on one side of
// a serialization boundary must import on the other, with unexported
// objects dropped (they are unreachable cross-package).
func TestFactRoundTrip(t *testing.T) {
	pkg, _ := checkFactPkg(t)
	lookup := func(name string) types.Object {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no object %q", name)
		}
		return obj
	}
	fobj := lookup("F")
	hobj := lookup("hidden")
	tobj := lookup("T")
	mobj := tobj.Type().(*types.Named).Method(0)

	producer := NewFactStore([]*Analyzer{factTestAnalyzer})
	p := bind(t, producer, pkg)
	p.ExportObjectFact(fobj, &markFact{N: 1})
	p.ExportObjectFact(mobj, &markFact{N: 2})
	p.ExportObjectFact(hobj, &markFact{N: 3})
	p.ExportPackageFact(&markFact{N: 4})

	data, err := producer.EncodeVetx(pkg)
	if err != nil {
		t.Fatal(err)
	}

	consumer := NewFactStore([]*Analyzer{factTestAnalyzer})
	consumer.AddVetx("a", data)
	c := bind(t, consumer, pkg)

	var got markFact
	if !c.ImportObjectFact(fobj, &got) || got.N != 1 {
		t.Errorf("fact on F: got %+v, want {N:1}", got)
	}
	if !c.ImportObjectFact(mobj, &got) || got.N != 2 {
		t.Errorf("fact on T.M: got %+v, want {N:2}", got)
	}
	if c.ImportObjectFact(hobj, &got) {
		t.Error("fact on unexported object survived serialization; want dropped")
	}
	if !c.ImportPackageFact(pkg, &got) || got.N != 4 {
		t.Errorf("package fact: got %+v, want {N:4}", got)
	}
}

// TestFactInProcess covers the shared-store path the module driver uses:
// no serialization, object identity carries the fact.
func TestFactInProcess(t *testing.T) {
	pkg, _ := checkFactPkg(t)
	store := NewFactStore([]*Analyzer{factTestAnalyzer})
	p := bind(t, store, pkg)
	obj := pkg.Scope().Lookup("F")
	var got markFact
	if p.ImportObjectFact(obj, &got) {
		t.Error("ImportObjectFact before export; want miss")
	}
	p.ExportObjectFact(obj, &markFact{N: 7})
	if !p.ImportObjectFact(obj, &got) || got.N != 7 {
		t.Errorf("in-process fact: got %+v, want {N:7}", got)
	}
}

// TestFactBadVetx: an undecodable dependency payload must degrade to
// "no facts", not fail the run.
func TestFactBadVetx(t *testing.T) {
	pkg, _ := checkFactPkg(t)
	store := NewFactStore([]*Analyzer{factTestAnalyzer})
	store.AddVetx("a", []byte("sympacklint\n")) // legacy placeholder payload
	p := bind(t, store, pkg)
	var got markFact
	if p.ImportPackageFact(pkg, &got) {
		t.Error("fact decoded from garbage payload")
	}
}
