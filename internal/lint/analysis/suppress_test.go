package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//lint:ignore check1 audited: reason recorded here
	use()       // line 5: suppressed for check1 only
	use()       // line 6: out of the directive's reach
}

func b() {
	use() //lint:ignore check1,check2 trailing same-line form
}

//lint:ignore check1
func c() { use() }

func use() {}
`

const suppressEdgeSrc = `package p

func a() {
	//	lint:ignore check1 tab-indented directive body still parses
	use()       // line 5: suppressed
	//   lint:ignore check1 run-of-spaces form also parses
	use()       // line 7: suppressed
}

func b() {
	//lint:ignore check1 separated from the code by a blank line

	use() // line 13: NOT suppressed (non-adjacent)
}

func use() {}
`

func TestApplySuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: file.LineStart(line), Message: "finding", Analyzer: analyzer}
	}

	got := ApplySuppressions(fset, []*ast.File{f}, []Diagnostic{
		at(5, "check1"),  // next-line suppression
		at(5, "check2"),  // same line, different analyzer: kept
		at(6, "check1"),  // beyond the one-line reach: kept
		at(10, "check1"), // trailing same-line, first of the list
		at(10, "check2"), // trailing same-line, second of the list
	})

	var kept, malformed []Diagnostic
	for _, d := range got {
		if d.Analyzer == "lint" {
			malformed = append(malformed, d)
		} else {
			kept = append(kept, d)
		}
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	for i, want := range []struct {
		line     int
		analyzer string
	}{{5, "check2"}, {6, "check1"}} {
		pos := fset.Position(kept[i].Pos)
		if pos.Line != want.line || kept[i].Analyzer != want.analyzer {
			t.Errorf("kept[%d] = %s at line %d, want %s at line %d",
				i, kept[i].Analyzer, pos.Line, want.analyzer, want.line)
		}
	}
	// The reason-less directive above func c must surface as its own
	// "lint" diagnostic so justifications can never silently vanish.
	if len(malformed) != 1 {
		t.Fatalf("malformed directives reported %d times, want 1: %+v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "lint:ignore") {
		t.Errorf("malformed message = %q", malformed[0].Message)
	}
}

// TestSuppressionWhitespaceAndAdjacency pins two directive-matching rules:
// leading tabs or runs of spaces between "//" and "lint:ignore" must not
// defeat the directive, and a directive separated from the code by a blank
// line must not suppress it.
func TestSuppressionWhitespaceAndAdjacency(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "edge.go", suppressEdgeSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	at := func(line int) Diagnostic {
		return Diagnostic{Pos: file.LineStart(line), Message: "finding", Analyzer: "check1"}
	}
	got := ApplySuppressions(fset, []*ast.File{f}, []Diagnostic{
		at(5),  // under a tab-indented directive: suppressed
		at(7),  // under a space-indented directive: suppressed
		at(13), // blank line between directive and code: kept
	})
	if len(got) != 1 {
		t.Fatalf("kept %d diagnostics, want 1 (the non-adjacent line): %+v", len(got), got)
	}
	if pos := fset.Position(got[0].Pos); pos.Line != 13 {
		t.Errorf("kept diagnostic at line %d, want 13", pos.Line)
	}
}

// TestAuditUnusedDirectives covers the unusedignore audit: a directive
// that suppresses nothing is reported, one that matched is not, and a
// directive naming an analyzer outside the run is left unjudged.
func TestAuditUnusedDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	// Only a check1 finding on line 5: the directive on line 4 is used,
	// the check1,check2 directive on line 10 and the malformed one stay
	// unused; check2 did not run, so the line-10 directive is unjudged —
	// which must now surface as an explicit audit-skipped note, not
	// silence, and never as a gating unusedignore finding.
	got := Audit(fset, []*ast.File{f}, []Diagnostic{
		{Pos: file.LineStart(5), Message: "finding", Analyzer: "check1"},
	}, []string{"check1"}, true, nil)
	var unused, notes []Diagnostic
	for _, d := range got {
		if d.Analyzer != "unusedignore" {
			continue
		}
		if d.Note {
			notes = append(notes, d)
		} else {
			unused = append(unused, d)
		}
	}
	if len(unused) != 0 {
		t.Fatalf("unused directives with partial run = %d, want 0 (check2 did not run): %+v", len(unused), unused)
	}
	if len(notes) != 1 {
		t.Fatalf("audit-skipped notes with partial run = %d, want 1: %+v", len(notes), notes)
	}
	if !strings.Contains(notes[0].Message, "audit skipped: analyzers check2 did not run") {
		t.Errorf("note message = %q, want the missing analyzer named", notes[0].Message)
	}
	if pos := fset.Position(notes[0].Pos); pos.Line != 10 {
		t.Errorf("note reported at line %d, want 10 (the unjudgeable directive)", pos.Line)
	}
	if len(Unsuppressed(notes)) != 0 {
		t.Errorf("notes must not gate the build, but Unsuppressed kept %d", len(Unsuppressed(notes)))
	}
	// With both analyzers in the run, the line-10 directive is judgeable
	// and unused.
	got = Audit(fset, []*ast.File{f}, []Diagnostic{
		{Pos: file.LineStart(5), Message: "finding", Analyzer: "check1"},
	}, []string{"check1", "check2"}, true, nil)
	unused = nil
	for _, d := range got {
		if d.Analyzer == "unusedignore" {
			unused = append(unused, d)
		}
	}
	if len(unused) != 1 {
		t.Fatalf("unused directives = %d, want 1: %+v", len(unused), unused)
	}
	if pos := fset.Position(unused[0].Pos); pos.Line != 10 {
		t.Errorf("unused directive reported at line %d, want 10", pos.Line)
	}
	if !strings.Contains(unused[0].Message, "suppresses no diagnostic") {
		t.Errorf("unused message = %q", unused[0].Message)
	}
	// The suppressed finding must survive in the stream, marked.
	var suppressed int
	for _, d := range got {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed-but-kept findings = %d, want 1", suppressed)
	}
}

// TestAuditConsumedIgnores pins the mid-analysis consumption path: a
// directive that suppressed no diagnostic but was honored by an engine
// (Pass.MarkIgnoreUsed — e.g. a taint kill) counts as used, while the
// same directive with no consumption record is flagged stale. The
// consumption position follows the diagnostic rule: the code's line, with
// the directive on that line or the one above.
func TestAuditConsumedIgnores(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	// No diagnostics at all; both analyzers ran. Without consumption the
	// line-4 and line-10 directives are stale.
	got := Audit(fset, []*ast.File{f}, nil, []string{"check1", "check2"}, true, nil)
	if n := countUnused(got); n != 2 {
		t.Fatalf("unused with no consumption = %d, want 2: %+v", n, got)
	}
	// Consuming at line 5 (the code under the line-4 directive) for check1
	// marks that directive live; the trailing line-10 one stays stale.
	got = Audit(fset, []*ast.File{f}, nil, []string{"check1", "check2"}, true,
		[]ConsumedIgnore{{Pos: file.LineStart(5), Analyzer: "check1"}})
	if n := countUnused(got); n != 1 {
		t.Fatalf("unused after consumption = %d, want 1: %+v", n, got)
	}
	// A consumption for an analyzer the directive does not name changes
	// nothing.
	got = Audit(fset, []*ast.File{f}, nil, []string{"check1", "check2"}, true,
		[]ConsumedIgnore{{Pos: file.LineStart(5), Analyzer: "check2"}})
	if n := countUnused(got); n != 2 {
		t.Fatalf("unused after mismatched consumption = %d, want 2: %+v", n, got)
	}
}

func countUnused(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Analyzer == "unusedignore" && !d.Note {
			n++
		}
	}
	return n
}

// TestIgnoreIndex pins the engine-facing query: Covers mirrors diagnostic
// suppression reach (directive line and the line below, same file, named
// analyzer or wildcard).
func TestIgnoreIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	ix := NewIgnoreIndex(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{5, "check1", true},  // line under the directive
		{4, "check1", true},  // the directive's own line
		{6, "check1", false}, // out of reach
		{5, "check2", false}, // analyzer not named
		{10, "check2", true}, // trailing same-line list form
	}
	for _, c := range cases {
		if got := ix.Covers(file.LineStart(c.line), c.analyzer); got != c.want {
			t.Errorf("Covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
