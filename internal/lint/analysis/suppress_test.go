package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//lint:ignore check1 audited: reason recorded here
	use()       // line 5: suppressed for check1 only
	use()       // line 6: out of the directive's reach
}

func b() {
	use() //lint:ignore check1,check2 trailing same-line form
}

//lint:ignore check1
func c() { use() }

func use() {}
`

func TestApplySuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	file := fset.File(f.Pos())
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: file.LineStart(line), Message: "finding", Analyzer: analyzer}
	}

	got := ApplySuppressions(fset, []*ast.File{f}, []Diagnostic{
		at(5, "check1"),  // next-line suppression
		at(5, "check2"),  // same line, different analyzer: kept
		at(6, "check1"),  // beyond the one-line reach: kept
		at(10, "check1"), // trailing same-line, first of the list
		at(10, "check2"), // trailing same-line, second of the list
	})

	var kept, malformed []Diagnostic
	for _, d := range got {
		if d.Analyzer == "lint" {
			malformed = append(malformed, d)
		} else {
			kept = append(kept, d)
		}
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	for i, want := range []struct {
		line     int
		analyzer string
	}{{5, "check2"}, {6, "check1"}} {
		pos := fset.Position(kept[i].Pos)
		if pos.Line != want.line || kept[i].Analyzer != want.analyzer {
			t.Errorf("kept[%d] = %s at line %d, want %s at line %d",
				i, kept[i].Analyzer, pos.Line, want.analyzer, want.line)
		}
	}
	// The reason-less directive above func c must surface as its own
	// "lint" diagnostic so justifications can never silently vanish.
	if len(malformed) != 1 {
		t.Fatalf("malformed directives reported %d times, want 1: %+v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "lint:ignore") {
		t.Errorf("malformed message = %q", malformed[0].Message)
	}
}
