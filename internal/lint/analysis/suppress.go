package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression implements the audited escape hatch:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive silences matching diagnostics reported on its own line or
// on the line immediately below it (covering both trailing comments and the
// conventional comment-above-the-statement placement). The reason is
// mandatory: an //lint:ignore with no reason is itself reported, under the
// pseudo-analyzer name "lint", so a suppression can never silently lose its
// justification. The analyzer list may be the wildcard "*" only in
// testdata; production code must name the check it overrides.

type ignoreDirective struct {
	line      int
	analyzers []string
}

const ignorePrefix = "//lint:ignore "

// collectIgnores scans all comments of all files for lint:ignore
// directives. Malformed directives (missing analyzer list or reason) are
// returned as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) (byFile map[string][]ignoreDirective, malformed []Diagnostic) {
	byFile = map[string][]ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
						Analyzer: "lint",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byFile[pos.Filename] = append(byFile[pos.Filename], ignoreDirective{
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return byFile, malformed
}

func (d ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "*" {
			return true
		}
	}
	return false
}

// ApplySuppressions filters diags through the files' lint:ignore
// directives and appends a diagnostic for every malformed directive.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ignores, malformed := collectIgnores(fset, files)
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range ignores[pos.Filename] {
			if dir.matches(d.Analyzer, pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return append(kept, malformed...)
}
