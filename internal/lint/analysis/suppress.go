package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression implements the audited escape hatch:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive silences matching diagnostics reported on its own line or
// on the line immediately below it (covering both trailing comments and the
// conventional comment-above-the-statement placement); a directive
// separated from the code by a blank line suppresses nothing. The reason is
// mandatory: an //lint:ignore with no reason is itself reported, under the
// pseudo-analyzer name "lint", so a suppression can never silently lose its
// justification. The analyzer list may be the wildcard "*" only in
// testdata; production code must name the check it overrides.
//
// The audit keeps the whole suppression table: Audit marks suppressed
// diagnostics instead of deleting them, and — when the unusedignore
// analyzer is in the run — reports every directive that suppressed
// nothing, staticcheck-style, so stale escape hatches cannot linger after
// the finding they once justified is gone.

type ignoreDirective struct {
	pos       token.Pos
	line      int
	analyzers []string
	used      bool
}

// directiveRe tolerates leading tabs and runs of spaces between the
// comment marker and the directive keyword ("//  lint:ignore", "//\t..."),
// which gofmt-preserved alignment can introduce.
var directiveRe = regexp.MustCompile(`^//[ \t]*lint:ignore([ \t]+(.*))?$`)

// parseIgnore extracts a lint:ignore directive from one comment, if
// present. ok reports whether the comment is a directive at all; a
// directive with a missing analyzer list or reason yields rest == "".
func parseIgnore(text string) (rest string, ok bool) {
	m := directiveRe.FindStringSubmatch(text)
	if m == nil {
		return "", false
	}
	return strings.TrimSpace(m[2]), true
}

// collectIgnores scans all comments of all files for lint:ignore
// directives. Malformed directives (missing analyzer list or reason) are
// returned as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) (byFile map[string][]*ignoreDirective, malformed []Diagnostic) {
	byFile = map[string][]*ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
						Analyzer: "lint",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byFile[pos.Filename] = append(byFile[pos.Filename], &ignoreDirective{
					pos:       c.Pos(),
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return byFile, malformed
}

// A ConsumedIgnore records an //lint:ignore directive consumed by an
// analyzer mid-analysis (through Pass.MarkIgnoreUsed) rather than by
// suppressing a reported diagnostic: pos is the position of the code the
// directive acted on, analyzer the check that honored it. Audit treats a
// matching directive as used.
type ConsumedIgnore struct {
	Pos      token.Pos
	Analyzer string
}

// An IgnoreIndex answers, for analyzers that honor suppressions inside
// their own propagation (taint kills) instead of at report time, whether
// an //lint:ignore directive for a given analyzer covers a position. The
// coverage rule is identical to diagnostic suppression: the directive's
// own line or the line immediately below it. Analyzers that kill work
// through a covering directive must also call Pass.MarkIgnoreUsed (or
// ConsumeIgnore) so the audit sees the directive as live.
type IgnoreIndex struct {
	fset   *token.FileSet
	byFile map[string][]*ignoreDirective
}

// NewIgnoreIndex scans the files' comments once and builds the index.
// Malformed directives are dropped here; the audit reports them.
func NewIgnoreIndex(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	byFile, _ := collectIgnores(fset, files)
	return &IgnoreIndex{fset: fset, byFile: byFile}
}

// Covers reports whether an //lint:ignore directive naming analyzer (or
// the wildcard) covers pos.
func (ix *IgnoreIndex) Covers(pos token.Pos, analyzer string) bool {
	p := ix.fset.Position(pos)
	for _, dir := range ix.byFile[p.Filename] {
		if dir.matches(analyzer, p.Line) {
			return true
		}
	}
	return false
}

func (d *ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "*" {
			return true
		}
	}
	return false
}

// Audit applies the files' lint:ignore directives to diags: matching
// diagnostics are marked Suppressed (not removed), every malformed
// directive is appended as a "lint" finding, and — when auditUnused is
// set — every directive that suppressed nothing is appended as an
// "unusedignore" finding. ran lists the analyzers that actually executed:
// a directive is only judged unused when every analyzer it names ran (or
// it is the wildcard), since a directive for an analyzer outside the run
// may be doing its job invisibly. An unjudgeable directive yields an
// informational note ("audit skipped: ...") rather than nothing, so
// sharded runs cannot silently drop the audit. consumed lists directives
// analyzers honored mid-analysis (Pass.MarkIgnoreUsed) — a taint kill
// produces no diagnostic to suppress, yet its directive is live, not
// stale.
func Audit(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran []string, auditUnused bool, consumed []ConsumedIgnore) []Diagnostic {
	ignores, malformed := collectIgnores(fset, files)
	for _, c := range consumed {
		pos := fset.Position(c.Pos)
		for _, dir := range ignores[pos.Filename] {
			if dir.matches(c.Analyzer, pos.Line) {
				dir.used = true
			}
		}
	}
	out := make([]Diagnostic, 0, len(diags)+len(malformed))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, dir := range ignores[pos.Filename] {
			if dir.matches(d.Analyzer, pos.Line) {
				d.Suppressed = true
				dir.used = true
				break
			}
		}
		out = append(out, d)
	}
	out = append(out, malformed...)
	if auditUnused {
		ranSet := map[string]bool{"*": true}
		for _, name := range ran {
			ranSet[name] = true
		}
		for _, dirs := range ignores {
			for _, dir := range dirs {
				if dir.used {
					continue
				}
				var missing []string
				for _, a := range dir.analyzers {
					if !ranSet[a] {
						missing = append(missing, a)
					}
				}
				if len(missing) > 0 {
					// Sharded runs (CI variant matrices, RunDirs subsets)
					// cannot judge this directive; say so instead of
					// silently skipping the audit.
					out = append(out, Diagnostic{
						Pos: dir.pos,
						Message: "audit skipped: analyzers " + strings.Join(missing, ",") +
							" did not run — this //lint:ignore cannot be judged stale or live in this shard",
						Analyzer: "unusedignore",
						Note:     true,
					})
					continue
				}
				out = append(out, Diagnostic{
					Pos: dir.pos,
					Message: "//lint:ignore " + strings.Join(dir.analyzers, ",") +
						" suppresses no diagnostic; remove the stale directive",
					Analyzer: "unusedignore",
				})
			}
		}
	}
	return out
}

// ApplySuppressions filters diags through the files' lint:ignore
// directives and appends a diagnostic for every malformed directive. It is
// the pre-audit interface, kept for callers that only need the surviving
// findings.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range Audit(fset, files, diags, nil, false, nil) {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
