package analysis

// Facts: serializable per-object and per-package state that one analyzer
// pass exports for passes over downstream packages to import, mirroring
// the Fact mechanism of golang.org/x/tools/go/analysis. An analyzer
// declares the concrete fact types it uses in Analyzer.FactTypes; at run
// time the driver installs the Export/Import functions on each Pass,
// backed by a FactStore shared across the whole run.
//
// In-process drivers (lint.RunModule, analysistest) analyze packages in
// dependency order against one shared store, so facts flow by object
// identity with no serialization. The vet-tool driver (cmd/sympacklint in
// unitchecker mode) runs one process per package: there the store
// round-trips through the .vetx files cmd/go threads between units —
// EncodeVetx serializes this package's facts with gob, keyed by a
// minimal object path (package-level name, or "Type.Method"), and
// AddVetx/resolve decode dependency files against the type-checker's
// imported package objects on first use. Facts on unexported or
// function-local objects are never serialized; they cannot be referenced
// across package boundaries.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is analyzer-private state attached to a package or to one of its
// exported objects. Concrete fact types must be pointers to structs, be
// gob-serializable, and carry the AFact marker method.
type Fact interface {
	AFact() // dummy marker method
}

// A FactStore accumulates facts across the packages of one lint run and
// round-trips them through vetx files in vet-tool mode. It is not safe
// for concurrent use; the drivers run single-threaded.
type FactStore struct {
	obj     map[objFactKey]Fact
	pkg     map[pkgFactKey]Fact
	pending map[string][]byte // package path → undecoded vetx payload
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

// NewFactStore returns an empty store and registers every fact type the
// given analyzers declare with gob, so vetx payloads can name them.
func NewFactStore(analyzers []*Analyzer) *FactStore {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
	return &FactStore{
		obj:     map[objFactKey]Fact{},
		pkg:     map[pkgFactKey]Fact{},
		pending: map[string][]byte{},
	}
}

// Bind installs the fact accessors on a pass. The pass's analyzer must
// have declared its fact types; exporting an undeclared type panics, like
// upstream.
func (s *FactStore) Bind(pass *Pass) {
	declared := func(f Fact) bool {
		t := reflect.TypeOf(f)
		for _, ft := range pass.Analyzer.FactTypes {
			if reflect.TypeOf(ft) == t {
				return true
			}
		}
		return false
	}
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		if !declared(fact) {
			panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", pass.Analyzer.Name, fact))
		}
		if obj == nil {
			panic(pass.Analyzer.Name + ": ExportObjectFact(nil, ...)")
		}
		s.obj[objFactKey{obj, reflect.TypeOf(fact)}] = fact
	}
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		if obj == nil {
			return false
		}
		if pkg := obj.Pkg(); pkg != nil {
			s.resolve(pkg)
		}
		stored, ok := s.obj[objFactKey{obj, reflect.TypeOf(fact)}]
		if !ok {
			return false
		}
		copyFact(fact, stored)
		return true
	}
	pass.ExportPackageFact = func(fact Fact) {
		if !declared(fact) {
			panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", pass.Analyzer.Name, fact))
		}
		s.pkg[pkgFactKey{pass.Pkg, reflect.TypeOf(fact)}] = fact
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact Fact) bool {
		if pkg == nil {
			return false
		}
		s.resolve(pkg)
		stored, ok := s.pkg[pkgFactKey{pkg, reflect.TypeOf(fact)}]
		if !ok {
			return false
		}
		copyFact(fact, stored)
		return true
	}
}

// copyFact copies the stored fact's value into the caller's pointer.
func copyFact(dst, src Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("fact types must be pointers: %T, %T", dst, src))
	}
	dv.Elem().Set(sv.Elem())
}

// wireFact is one serialized fact: Object is the intra-package object
// path ("" for a package-level fact) and Fact the registered concrete
// value.
type wireFact struct {
	Object string
	Fact   Fact
}

// EncodeVetx serializes the facts attached to pkg and to its exported
// package-level objects, for handoff through a vet .vetx file. A nil pkg
// (or one with no facts) encodes an empty, still-decodable payload.
func (s *FactStore) EncodeVetx(pkg *types.Package) ([]byte, error) {
	var wire []wireFact
	if pkg != nil {
		for k, f := range s.pkg {
			if k.pkg == pkg {
				wire = append(wire, wireFact{Object: "", Fact: f})
			}
		}
		for k, f := range s.obj {
			if k.obj.Pkg() != pkg {
				continue
			}
			path, ok := objectPath(k.obj)
			if !ok {
				continue // local or unexported: unreachable cross-package
			}
			wire = append(wire, wireFact{Object: path, Fact: f})
		}
	}
	// Deterministic payloads keep vet's content-addressed cache stable.
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].Object != wire[j].Object {
			return wire[i].Object < wire[j].Object
		}
		return fmt.Sprintf("%T", wire[i].Fact) < fmt.Sprintf("%T", wire[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// AddVetx registers a dependency's raw vetx payload for lazy decoding the
// first time a fact of that package is imported.
func (s *FactStore) AddVetx(pkgPath string, data []byte) {
	if len(data) > 0 {
		s.pending[pkgPath] = data
	}
}

// resolve decodes any pending vetx payload for pkg against its object
// graph. Undecodable payloads (e.g. written by an older tool version) are
// dropped: a missing fact only makes dependent analyzers more
// conservative, never wrong.
func (s *FactStore) resolve(pkg *types.Package) {
	data, ok := s.pending[pkg.Path()]
	if !ok {
		return
	}
	delete(s.pending, pkg.Path())
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return
	}
	for _, w := range wire {
		if w.Fact == nil {
			continue
		}
		if w.Object == "" {
			s.pkg[pkgFactKey{pkg, reflect.TypeOf(w.Fact)}] = w.Fact
			continue
		}
		if obj := lookupObjectPath(pkg, w.Object); obj != nil {
			s.obj[objFactKey{obj, reflect.TypeOf(w.Fact)}] = w.Fact
		}
	}
}

// objectPath renders the minimal cross-package address of an object: its
// package-level name, or "Type.Method" for a method. Only exported
// objects (with exported receivers, for methods) are addressable.
func objectPath(obj types.Object) (string, bool) {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !named.Obj().Exported() || !fn.Exported() {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() || !obj.Exported() {
		return "", false
	}
	return obj.Name(), true
}

// lookupObjectPath inverts objectPath against an imported package.
func lookupObjectPath(pkg *types.Package, path string) types.Object {
	if tname, mname, ok := strings.Cut(path, "."); ok {
		tobj := pkg.Scope().Lookup(tname)
		if tobj == nil {
			return nil
		}
		named, ok := tobj.Type().(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == mname {
				return m
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(path)
}

// AllObjectFacts returns every object fact currently in the store, for
// debugging and tests.
func (s *FactStore) AllObjectFacts() map[types.Object][]Fact {
	out := map[types.Object][]Fact{}
	for k, f := range s.obj {
		out[k.obj] = append(out[k.obj], f)
	}
	return out
}
