package a

import "sync"

type eng struct {
	mu    sync.Mutex
	queue []int // guarded by e.mu
	n     int   // guarded by e.mu
	done  bool
}

func (e *eng) locked() {
	e.mu.Lock()
	e.queue = append(e.queue, 1)
	e.mu.Unlock()
}

func (e *eng) deferred() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

func (e *eng) bare() {
	e.queue = nil // want "guarded by e.mu"
	e.done = true // unguarded field: fine
}

// pop removes the head entry. Callers hold e.mu.
func (e *eng) pop() int {
	v := e.queue[0]
	e.queue = e.queue[1:]
	return v
}

func (e *eng) seededInBody() int {
	// callers hold e.mu
	return e.n
}

func (e *eng) earlyExit() {
	e.mu.Lock()
	if len(e.queue) == 0 {
		e.mu.Unlock()
		return
	}
	e.n++
	e.mu.Unlock()
}

func fresh() *eng {
	e := &eng{}
	e.queue = []int{1}
	return e
}

func (e *eng) closure() {
	e.mu.Lock()
	go func() {
		e.n++ // want "guarded by e.mu"
	}()
	e.mu.Unlock()
}

func (e *eng) deferredCleanup() {
	e.mu.Lock()
	defer func() {
		e.queue = nil
		e.mu.Unlock()
	}()
	e.n++
}

func (e *eng) wrongLock(other *eng) {
	other.mu.Lock()
	e.n++ // want "guarded by e.mu"
	other.mu.Unlock()
}

// Merge soundness: an unlock on one branch arm means the lock is NOT
// provably held after the join — the v2 source-order walk missed this.
func (e *eng) unlockOneArm(c bool) {
	e.mu.Lock()
	if c {
		e.mu.Unlock()
	}
	e.n++ // want "guarded by e.mu"
	if !c {
		e.mu.Unlock()
	}
}

// Merge soundness, the other direction: locked on every arm IS held
// after the join — the v2 walk reported this as a false positive.
func (e *eng) lockBothArms(c bool) {
	if c {
		e.mu.Lock()
	} else {
		e.mu.Lock()
	}
	e.n++
	e.mu.Unlock()
}

// A loop that releases inside its body must not leak "held" to the
// statement after the back-edge join.
func (e *eng) loopRelease(xs []int) {
	for range xs {
		e.mu.Lock()
		e.queue = append(e.queue, 1)
		e.mu.Unlock()
	}
	e.n++ // want "guarded by e.mu"
}

// An early-exit arm that returns does not poison the fallthrough path:
// the join only merges paths that actually reach it.
func (e *eng) earlyReturnKeepsHeld() {
	e.mu.Lock()
	if len(e.queue) == 0 {
		e.mu.Unlock()
		return
	}
	e.n++
	e.mu.Unlock()
}

// Unlock inside a switch case drops the lock at the merge.
func (e *eng) switchRelease(k int) {
	e.mu.Lock()
	switch k {
	case 0:
		e.mu.Unlock()
	default:
		e.queue = nil
	}
	e.n++ // want "guarded by e.mu"
}

type rw struct {
	mu   sync.RWMutex
	view []int // guarded by r.mu
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.view[0]
}

type typo struct {
	lk sync.Mutex
	// guarded by t.lock
	x int // want "unknown mutex"
}

func use(t *typo) int { return t.x }

// --- call-graph lock summaries ---

// lockUp acquires on the caller's behalf (the lockAndX idiom).
func (e *eng) lockUp() { e.mu.Lock() }

// release unlocks a mutex it did not take.
func (e *eng) release() { e.mu.Unlock() }

// drainLocked documents its contract; callers hold e.mu.
func (e *eng) drainLocked() {
	e.queue = nil
	e.n = 0
}

// summaryAcquire: the helper's Acquires summary marks the lock held, so
// the access after the call is clean — and the release summary drops it.
func (e *eng) summaryAcquire() {
	e.lockUp()
	e.n++
	e.release()
	e.n++ // want "guarded by e.mu"
}

// requiresHeld: calling a callers-hold method with the lock held is the
// documented contract.
func (e *eng) requiresHeld() {
	e.mu.Lock()
	e.drainLocked()
	e.mu.Unlock()
}

// requiresMissing: the same call without the lock is the other half of
// the convention, previously unchecked.
func (e *eng) requiresMissing() {
	e.drainLocked() // want "documents 'callers hold e.mu' but the mutex is not held"
}

// requiresViaSummary: an Acquires helper satisfies a Requires callee.
func (e *eng) requiresViaSummary() {
	e.lockUp()
	e.drainLocked()
	e.release()
}

// freshRequires: a constructor touching its unpublished value is exempt
// from the callers-hold contract like any guarded access.
func newEng() *eng {
	e := &eng{}
	e.drainLocked()
	return e
}
