// Package mutexguard enforces `// guarded by <recv>.<mu>` field
// annotations with a lightweight lockset walk. The engine's scheduler
// state (dependency counters, ready queue, retry bookkeeping) is a
// classic fan-out hazard: it is mutated from worker goroutines, the
// progress goroutine, and remote-signal callbacks, and the paper's
// bit-identical-factors claim (§3.2) only holds if every such mutation
// happens under the engine mutex. PR 2 established the discipline in
// prose; this analyzer makes the prose checkable.
//
// A struct field carrying a doc or trailing comment of the form
//
//	queue []task // guarded by e.mu
//
// declares that every access to the field must happen while the same
// instance's named mutex (here: the struct's own `mu` field) is held.
// The walk is syntactic and source-ordered, not a heap analysis — it
// tracks, per function body, the set of (base variable, mutex field)
// pairs locked via base.mu.Lock()/RLock() and not yet released, and
// reports any guarded-field access through a base variable whose pair is
// absent. Three escape valves keep it false-positive-poor:
//
//   - A function documented "callers hold <name>.<mu>" (doc comment or a
//     comment before the first statement) starts with that pair seeded,
//     matching the repo's existing convention for internal helpers.
//   - A variable bound to a fresh composite literal (e := &engine{...})
//     is unshared until published; its guarded fields may be initialized
//     without the lock, as constructors do.
//   - defer base.mu.Unlock() does not release: the pair stays held for
//     the remainder of the body, which is exactly the deferred-unlock
//     idiom's semantics.
//
// Function literals are walked with an empty lockset (a closure may run
// long after the enclosing critical section ends — precisely the worker
// goroutine bug this exists to catch), except a deferred literal, which
// runs at return and inherits the current set. Branch bodies get a copy
// of the lockset, so the common `mu.Lock(); if bad { mu.Unlock(); return }`
// early-exit shape does not poison the fallthrough path.
//
// An annotation naming a mutex field the struct does not have is itself
// reported: a typo'd guard is a guard that never fires.
package mutexguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sympack/internal/lint/analysis"
)

// Name is the analyzer's registry name.
const Name = "mutexguard"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "checks that fields annotated `guarded by <recv>.<mu>` are only " +
		"accessed while the instance's mutex is provably held (lockset walk " +
		"with callers-hold seeding and fresh-object exemption)",
	Run: run,
}

var (
	guardRe = regexp.MustCompile(`(?i)guarded\s+by\s+(\w+)\.(\w+)`)
	holdRe  = regexp.MustCompile(`(?i)callers?\s+holds?\s+(\w+)\.(\w+)`)
)

// lockKey is one provably-held mutex: the base variable it is reached
// through and the mutex field's name. Keying on the variable's object
// (not its name) keeps aliases distinct.
type lockKey struct {
	obj   types.Object
	field string
}

type lockset map[lockKey]bool

func (ls lockset) clone() lockset {
	out := make(lockset, len(ls))
	for k := range ls {
		out[k] = true
	}
	return out
}

func run(pass *analysis.Pass) (interface{}, error) {
	w := &walker{
		pass:   pass,
		guards: map[*types.Var]string{},
		fresh:  map[types.Object]bool{},
	}
	w.collectGuards()
	if len(w.guards) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.fresh = map[types.Object]bool{}
			ls := w.seed(fd, f)
			w.stmts(fd.Body.List, ls)
		}
	}
	return nil, nil
}

type walker struct {
	pass   *analysis.Pass
	guards map[*types.Var]string // annotated field -> mutex field name
	fresh  map[types.Object]bool // locals bound to fresh composite literals
}

// collectGuards reads the annotations off struct fields, validating that
// the named mutex is a sibling field.
func (w *walker) collectGuards() {
	for _, f := range w.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					names[nm.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				if !names[mu] {
					w.pass.Reportf(fld.Pos(),
						"guarded-by annotation names unknown mutex %q; the guard can never be checked", mu)
					continue
				}
				for _, nm := range fld.Names {
					if v, ok := w.pass.TypesInfo.Defs[nm].(*types.Var); ok && v != nil {
						w.guards[v] = mu
					}
				}
			}
			return true
		})
	}
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[2]
		}
	}
	return ""
}

// seed builds the entry lockset from "callers hold x.mu" claims in the
// function's doc comment or in comments before its first statement.
func (w *walker) seed(fd *ast.FuncDecl, file *ast.File) lockset {
	scope := map[string]types.Object{}
	addNames := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, nm := range f.Names {
				if obj := w.pass.TypesInfo.Defs[nm]; obj != nil {
					scope[nm.Name] = obj
				}
			}
		}
	}
	addNames(fd.Recv)
	addNames(fd.Type.Params)

	ls := lockset{}
	seedFrom := func(text string) {
		for _, m := range holdRe.FindAllStringSubmatch(text, -1) {
			if obj, ok := scope[m[1]]; ok {
				ls[lockKey{obj, m[2]}] = true
			}
		}
	}
	if fd.Doc != nil {
		seedFrom(fd.Doc.Text())
	}
	limit := fd.Body.Rbrace
	if len(fd.Body.List) > 0 {
		limit = fd.Body.List[0].Pos()
	}
	for _, cg := range file.Comments {
		if cg.Pos() > fd.Body.Lbrace && cg.End() < limit {
			seedFrom(cg.Text())
		}
	}
	return ls
}

// stmts walks a statement list, mutating ls in source order.
func (w *walker) stmts(list []ast.Stmt, ls lockset) {
	for _, s := range list {
		w.stmt(s, ls)
	}
}

func (w *walker) stmt(s ast.Stmt, ls lockset) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if k, locks, ok := w.lockOp(call); ok {
				if locks {
					ls[k] = true
				} else {
					delete(ls, k)
				}
				return
			}
		}
		w.expr(s.X, ls)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, ls)
		}
		for _, l := range s.Lhs {
			w.expr(l, ls)
		}
		if s.Tok == token.DEFINE {
			w.markFresh(s)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, ls)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, ls)
		}
		w.expr(s.Cond, ls)
		w.stmts(s.Body.List, ls.clone())
		if s.Else != nil {
			w.stmt(s.Else, ls.clone())
		}
	case *ast.BlockStmt:
		w.stmts(s.List, ls)
	case *ast.ForStmt:
		inner := ls.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, ls)
		w.stmts(s.Body.List, ls.clone())
	case *ast.SwitchStmt:
		inner := ls.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Tag != nil {
			w.expr(s.Tag, inner)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			w.stmts(cc.Body, inner.clone())
		}
	case *ast.TypeSwitchStmt:
		inner := ls.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		w.stmt(s.Assign, inner)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, inner.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := ls.clone()
			if cc.Comm != nil {
				w.stmt(cc.Comm, inner)
			}
			w.stmts(cc.Body, inner)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, ls)
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() releases at return; the lock stays held
		// for the remainder of the body.
		if _, locks, ok := w.lockOp(s.Call); ok && !locks {
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a, ls)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Runs at return, when the current critical section (if
			// still open) is typically the one it cleans up.
			w.stmts(fl.Body.List, ls.clone())
		} else {
			w.expr(s.Call.Fun, ls)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, ls)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, lockset{})
		} else {
			w.expr(s.Call.Fun, ls)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, ls)
		w.expr(s.Value, ls)
	case *ast.IncDecStmt:
		w.expr(s.X, ls)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, ls)
	}
}

// expr checks every guarded-field access inside e against ls. Function
// literals are concurrency boundaries: their bodies start with nothing
// held.
func (w *walker) expr(e ast.Expr, ls lockset) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, lockset{})
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, ls)
		}
		return true
	})
}

func (w *walker) checkAccess(sel *ast.SelectorExpr, ls lockset) {
	fieldVar, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	mu, ok := w.guards[fieldVar]
	if !ok {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return // multi-step path; the lock instance cannot be named
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil || w.fresh[obj] || ls[lockKey{obj, mu}] {
		return
	}
	w.pass.Reportf(sel.Pos(),
		"%s.%s is guarded by %s.%s but the mutex is not held here — lock it, "+
			"or document the invariant with a 'callers hold %s.%s' comment",
		base.Name, sel.Sel.Name, base.Name, mu, base.Name, mu)
}

// lockOp recognizes base.mu.Lock/RLock/Unlock/RUnlock() on a sync mutex
// field, returning the lockset key and whether the op acquires.
func (w *walker) lockOp(call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return lockKey{}, false, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	base, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok {
		return lockKey{}, false, false
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil || !isSyncLock(w.pass.TypesInfo.Types[inner.X], w.pass, inner) {
		return lockKey{}, false, false
	}
	return lockKey{obj, inner.Sel.Name}, locks, true
}

// isSyncLock reports whether the selected mutex field has a sync lock
// type, so an unrelated Lock() method cannot alias into the lockset.
func isSyncLock(_ types.TypeAndValue, pass *analysis.Pass, inner *ast.SelectorExpr) bool {
	v, ok := pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !ok {
		return false
	}
	named, ok := v.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// markFresh records variables bound to fresh composite literals: until
// published they are unshared and their guarded fields are free.
func (w *walker) markFresh(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(s.Rhs) {
			continue
		}
		rhs := ast.Unparen(s.Rhs[i])
		if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			rhs = ast.Unparen(ue.X)
		}
		if _, ok := rhs.(*ast.CompositeLit); !ok {
			continue
		}
		if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
			w.fresh[obj] = true
		}
	}
}
