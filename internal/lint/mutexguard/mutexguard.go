// Package mutexguard enforces `// guarded by <recv>.<mu>` field
// annotations with a flow-sensitive lockset analysis. The engine's
// scheduler state (dependency counters, ready queue, retry bookkeeping)
// is a classic fan-out hazard: it is mutated from worker goroutines, the
// progress goroutine, and remote-signal callbacks, and the paper's
// bit-identical-factors claim (§3.2) only holds if every such mutation
// happens under the engine mutex. PR 2 established the discipline in
// prose; this analyzer makes the prose checkable.
//
// A struct field carrying a doc or trailing comment of the form
//
//	queue []task // guarded by e.mu
//
// declares that every access to the field must happen while the same
// instance's named mutex (here: the struct's own `mu` field) is held.
// The analysis runs a forward must-dataflow over the function's control-
// flow graph (internal/lint/cfg + internal/lint/dataflow): the state is
// the set of (base variable, mutex field) pairs provably held, the
// transfer function applies base.mu.Lock()/Unlock() calls, and the join
// at merge points is set intersection — a lock is held after a merge only
// if it is held on *every* incoming path. That fixes both documented
// unsoundness classes of the v2 source-order walk: an unlock on one arm
// of a branch no longer leaves the fallthrough path marked held (false
// negative), and a lock acquired on all arms is now known held after the
// join (false positive). Three escape valves keep it false-positive-poor:
//
//   - A function documented "callers hold <name>.<mu>" (doc comment or a
//     comment before the first statement) starts with that pair seeded,
//     matching the repo's existing convention for internal helpers.
//   - A variable bound to a fresh composite literal (e := &engine{...})
//     is unshared until published; its guarded fields may be initialized
//     without the lock, as constructors do.
//   - defer base.mu.Unlock() does not release: the pair stays held for
//     the remainder of the body, which is exactly the deferred-unlock
//     idiom's semantics.
//
// Function literals are analyzed as their own graphs with an empty entry
// lockset (a closure may run long after the enclosing critical section
// ends — precisely the worker goroutine bug this exists to catch), except
// a deferred literal, which runs at return and inherits the lockset at
// the defer point.
//
// An annotation naming a mutex field the struct does not have is itself
// reported: a typo'd guard is a guard that never fires.
//
// Callee handling rides the internal/lint/callgraph summaries: every
// method gets a lockFact describing what it does to its receiver's sync
// mutexes — Requires (a documented callers-hold contract), Acquires (it
// locks and leaves the mutex held, the lockAndX idiom), and Releases (it
// unlocks a mutex it did not take). Facts are exported for cross-package
// callers. At a call site `e.helper()`, Acquires/Releases update the
// lockset exactly like an inline Lock/Unlock, and a call to a Requires
// method while the mutex is not provably held is itself reported — the
// half of the callers-hold convention that used to be unchecked.
package mutexguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/callgraph"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// Name is the analyzer's registry name.
const Name = "mutexguard"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "checks that fields annotated `guarded by <recv>.<mu>` are only " +
		"accessed while the instance's mutex is provably held (CFG-based " +
		"lockset must-analysis with callers-hold seeding, fresh-object " +
		"exemption, and call-graph lock summaries applied at call sites)",
	Run:       run,
	FactTypes: []analysis.Fact{(*lockFact)(nil)},
}

// lockFact summarizes a method's net effect on its receiver's mutexes,
// by mutex field name.
type lockFact struct {
	Requires []string // documented callers-hold contract
	Acquires []string // locked on behalf of the caller, still held at return
	Releases []string // unlocked on behalf of the caller
}

func (*lockFact) AFact() {}

func (f *lockFact) String() string { return "locks" }

var (
	guardRe = regexp.MustCompile(`(?i)guarded\s+by\s+(\w+)\.(\w+)`)
	holdRe  = regexp.MustCompile(`(?i)callers?\s+holds?\s+(\w+)\.(\w+)`)
)

// lockKey is one provably-held mutex: the base variable it is reached
// through and the mutex field's name. Keying on the variable's object
// (not its name) keeps aliases distinct.
type lockKey struct {
	obj   types.Object
	field string
}

type lockset map[lockKey]bool

func (ls lockset) clone() lockset {
	out := make(lockset, len(ls))
	for k := range ls {
		out[k] = true
	}
	return out
}

// lockLattice is the must-analysis lattice over locksets: the join at a
// control-flow merge keeps only locks held on every incoming path.
type lockLattice struct{}

func (lockLattice) Join(a, b lockset) lockset {
	out := lockset{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (lockLattice) Equal(a, b lockset) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (lockLattice) Clone(a lockset) lockset { return a.clone() }

func run(pass *analysis.Pass) (interface{}, error) {
	w := &walker{
		pass:   pass,
		graph:  callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files),
		guards: map[*types.Var]string{},
		fresh:  map[types.Object]bool{},
		facts:  map[*types.Func]*lockFact{},
	}
	w.collectGuards()
	w.collectLockFacts()
	for fn, f := range w.facts {
		if len(f.Requires)+len(f.Acquires)+len(f.Releases) > 0 {
			pass.ExportObjectFact(fn, f)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.fresh = map[types.Object]bool{}
			w.collectFresh(fd.Body)
			w.analyzeBody(fd.Body, w.seed(fd, f))
		}
	}
	return nil, nil
}

type walker struct {
	pass   *analysis.Pass
	graph  *callgraph.Graph
	guards map[*types.Var]string // annotated field -> mutex field name
	fresh  map[types.Object]bool // locals bound to fresh composite literals
	facts  map[*types.Func]*lockFact
}

// collectLockFacts computes the per-method summaries: Requires from
// callers-hold docs, Acquires/Releases from the syntactic Lock/Unlock
// balance on receiver mutexes. Only clear-cut shapes summarize — a
// method with mixed lock/unlock traffic on the same mutex has no net
// effect a caller could rely on.
func (w *walker) collectLockFacts() {
	for _, node := range w.graph.Nodes {
		fd := node.Decl
		if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
			continue
		}
		recvName := fd.Recv.List[0].Names[0].Name
		recvObj := w.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
		if recvObj == nil {
			continue
		}
		f := &lockFact{}
		if fd.Doc != nil {
			for _, m := range holdRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
				if m[1] == recvName {
					f.Requires = append(f.Requires, m[2])
				}
			}
		}
		if fd.Body != nil {
			type balance struct{ lock, unlock, deferUnlock int }
			counts := map[string]*balance{}
			tally := func(call *ast.CallExpr, deferred bool) {
				k, locks, ok := w.lockOp(call)
				if !ok || k.obj != recvObj {
					return
				}
				b := counts[k.field]
				if b == nil {
					b = &balance{}
					counts[k.field] = b
				}
				switch {
				case locks:
					b.lock++
				case deferred:
					b.deferUnlock++
				default:
					b.unlock++
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // its lock traffic is not the method's
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						tally(call, false)
					}
				case *ast.DeferStmt:
					tally(n.Call, true)
				}
				return true
			})
			var fields []string
			for mu := range counts {
				fields = append(fields, mu)
			}
			sort.Strings(fields)
			for _, mu := range fields {
				b := counts[mu]
				switch {
				case b.lock > 0 && b.unlock == 0 && b.deferUnlock == 0:
					f.Acquires = append(f.Acquires, mu)
				case b.unlock > 0 && b.lock == 0 && b.deferUnlock == 0:
					f.Releases = append(f.Releases, mu)
				}
			}
		}
		w.facts[node.Func] = f
	}
}

// factOf returns a callee's lock summary, in-package or imported.
func (w *walker) factOf(fn *types.Func) (*lockFact, bool) {
	if f, ok := w.facts[fn]; ok {
		return f, true
	}
	var f lockFact
	if w.pass.ImportObjectFact(fn, &f) {
		return &f, true
	}
	return nil, false
}

// callSummary resolves an ExprStmt-level method call `base.m()` to its
// base object and lock summary.
func (w *walker) callSummary(call *ast.CallExpr) (types.Object, *lockFact, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil {
		return nil, nil, false
	}
	callees, kind := w.graph.Resolver.Callees(call)
	if kind != callgraph.KindStatic || len(callees) != 1 {
		return nil, nil, false
	}
	f, ok := w.factOf(callees[0])
	if !ok {
		return nil, nil, false
	}
	return obj, f, true
}

// collectGuards reads the annotations off struct fields, validating that
// the named mutex is a sibling field.
func (w *walker) collectGuards() {
	for _, f := range w.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					names[nm.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				if !names[mu] {
					w.pass.Reportf(fld.Pos(),
						"guarded-by annotation names unknown mutex %q; the guard can never be checked", mu)
					continue
				}
				for _, nm := range fld.Names {
					if v, ok := w.pass.TypesInfo.Defs[nm].(*types.Var); ok && v != nil {
						w.guards[v] = mu
					}
				}
			}
			return true
		})
	}
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[2]
		}
	}
	return ""
}

// seed builds the entry lockset from "callers hold x.mu" claims in the
// function's doc comment or in comments before its first statement.
func (w *walker) seed(fd *ast.FuncDecl, file *ast.File) lockset {
	scope := map[string]types.Object{}
	addNames := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, nm := range f.Names {
				if obj := w.pass.TypesInfo.Defs[nm]; obj != nil {
					scope[nm.Name] = obj
				}
			}
		}
	}
	addNames(fd.Recv)
	addNames(fd.Type.Params)

	ls := lockset{}
	seedFrom := func(text string) {
		for _, m := range holdRe.FindAllStringSubmatch(text, -1) {
			if obj, ok := scope[m[1]]; ok {
				ls[lockKey{obj, m[2]}] = true
			}
		}
	}
	if fd.Doc != nil {
		seedFrom(fd.Doc.Text())
	}
	limit := fd.Body.Rbrace
	if len(fd.Body.List) > 0 {
		limit = fd.Body.List[0].Pos()
	}
	for _, cg := range file.Comments {
		if cg.Pos() > fd.Body.Lbrace && cg.End() < limit {
			seedFrom(cg.Text())
		}
	}
	return ls
}

// collectFresh records variables bound to fresh composite literals
// anywhere in the body: until published they are unshared and their
// guarded fields are free.
func (w *walker) collectFresh(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(s.Rhs) {
				continue
			}
			rhs := ast.Unparen(s.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ast.Unparen(ue.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
				w.fresh[obj] = true
			}
		}
		return true
	})
}

// analyzeBody runs the two-pass CFG analysis over one function or
// function-literal body: first solve the lockset fixpoint (transfer
// applies lock operations only — no reporting, since the solver may visit
// a block several times), then replay each reachable block once from its
// solved entry state, checking guarded accesses and descending into
// nested function literals with the lockset their execution context
// implies.
func (w *walker) analyzeBody(body *ast.BlockStmt, seed lockset) {
	g := cfg.New(body)
	res := dataflow.Solve(g, lockLattice{}, dataflow.Forward, seed,
		func(b *cfg.Block, in lockset) lockset {
			for _, n := range b.Nodes {
				w.applyNode(n, in)
			}
			return in
		})
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		ls := in.clone()
		for _, n := range b.Nodes {
			w.checkNode(n, ls)
			w.applyNode(n, ls)
		}
	}
}

// applyNode mutates ls with the lock operations a node performs: direct
// base.mu.Lock/Unlock statement calls, and statement calls to methods
// whose lock summary acquires or releases on the caller's behalf. A
// deferred Unlock releases at return, so it keeps the lock held for the
// rest of the body.
func (w *walker) applyNode(n ast.Node, ls lockset) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if k, locks, ok := w.lockOp(call); ok {
		if locks {
			ls[k] = true
		} else {
			delete(ls, k)
		}
		return
	}
	if base, f, ok := w.callSummary(call); ok {
		for _, mu := range f.Acquires {
			ls[lockKey{base, mu}] = true
		}
		for _, mu := range f.Releases {
			delete(ls, lockKey{base, mu})
		}
	}
}

// checkNode checks every guarded-field access inside n against ls and
// analyzes nested function literals: a go'd or plainly-called literal
// starts empty (concurrency boundary), a deferred literal inherits the
// lockset at the defer point (it runs at return, cleaning up the critical
// section that is still open there).
func (w *walker) checkNode(n ast.Node, ls lockset) {
	switch s := n.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if _, _, ok := w.lockOp(call); ok {
				return // the lock operation itself is not a guarded access
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.checkExpr(a, ls)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.analyzeBody(fl.Body, lockset{})
		} else {
			w.checkExpr(s.Call.Fun, ls)
		}
		return
	case *ast.DeferStmt:
		if _, locks, ok := w.lockOp(s.Call); ok && !locks {
			return // defer x.mu.Unlock(): no access, no release
		}
		for _, a := range s.Call.Args {
			w.checkExpr(a, ls)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.analyzeBody(fl.Body, ls.clone())
		} else {
			w.checkExpr(s.Call.Fun, ls)
		}
		return
	case *ast.RangeStmt:
		// The range header node contains the whole loop; the body's
		// statements live in their own blocks — check only the
		// per-iteration assignment here.
		w.checkExpr(s.Key, ls)
		w.checkExpr(s.Value, ls)
		return
	}
	if e, ok := n.(ast.Expr); ok {
		w.checkExpr(e, ls)
		return
	}
	// Statements: check their non-funclit expressions without descending
	// into nested statements (those are separate CFG nodes already —
	// except for statements the builder keeps whole, which Inspect below
	// covers since their sub-statements were not split out).
	w.checkExpr(n, ls)
}

// checkExpr checks guarded accesses under n, treating nested function
// literals as concurrency boundaries (fresh empty lockset).
func (w *walker) checkExpr(n ast.Node, ls lockset) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit:
			w.analyzeBody(nn.Body, lockset{})
			return false
		case *ast.CallExpr:
			w.checkRequires(nn, ls)
		case *ast.SelectorExpr:
			w.checkAccess(nn, ls)
		}
		return true
	})
}

// checkRequires enforces the callee's callers-hold contract at the call
// site: calling a method documented "callers hold r.mu" without the
// base's mutex provably held is the other half of the bug checkAccess
// catches inside the callee's own package.
func (w *walker) checkRequires(call *ast.CallExpr, ls lockset) {
	base, f, ok := w.callSummary(call)
	if !ok || len(f.Requires) == 0 || w.fresh[base] {
		return
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	baseName := ast.Unparen(sel.X).(*ast.Ident).Name
	for _, mu := range f.Requires {
		if !ls[lockKey{base, mu}] {
			w.pass.Reportf(call.Pos(),
				"%s.%s documents 'callers hold %s.%s' but the mutex is not held at this call — "+
					"lock it first, or propagate the callers-hold contract",
				baseName, sel.Sel.Name, baseName, mu)
		}
	}
}

func (w *walker) checkAccess(sel *ast.SelectorExpr, ls lockset) {
	fieldVar, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	mu, ok := w.guards[fieldVar]
	if !ok {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return // multi-step path; the lock instance cannot be named
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil || w.fresh[obj] || ls[lockKey{obj, mu}] {
		return
	}
	w.pass.Reportf(sel.Pos(),
		"%s.%s is guarded by %s.%s but the mutex is not held here — lock it, "+
			"or document the invariant with a 'callers hold %s.%s' comment",
		base.Name, sel.Sel.Name, base.Name, mu, base.Name, mu)
}

// lockOp recognizes base.mu.Lock/RLock/Unlock/RUnlock() on a sync mutex
// field, returning the lockset key and whether the op acquires.
func (w *walker) lockOp(call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return lockKey{}, false, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	base, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok {
		return lockKey{}, false, false
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil || !isSyncLock(w.pass, inner) {
		return lockKey{}, false, false
	}
	return lockKey{obj, inner.Sel.Name}, locks, true
}

// isSyncLock reports whether the selected mutex field has a sync lock
// type, so an unrelated Lock() method cannot alias into the lockset.
func isSyncLock(pass *analysis.Pass, inner *ast.SelectorExpr) bool {
	v, ok := pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !ok {
		return false
	}
	named, ok := v.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
