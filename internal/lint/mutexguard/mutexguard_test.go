package mutexguard_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/mutexguard"
)

func TestMutexGuard(t *testing.T) {
	analysistest.Run(t, "testdata", mutexguard.Analyzer, "a")
}
