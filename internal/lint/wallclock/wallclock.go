// Package wallclock flags direct wall-clock and unseeded-randomness use in
// the solver's deterministic packages. The factorization's bit-identity
// guarantee (same factor bits for any worker/rank count, DESIGN.md §9)
// requires that no numeric or scheduling decision depend on real time or
// on ambient randomness: modeled time lives in internal/machine's virtual
// Clock, PRNGs are seeded explicitly (internal/gen), and the few places
// that legitimately touch the host clock — watchdog pacing, idle backoff,
// wall-time statistics — must route through internal/machine's wall-time
// facade (machine.WallNow / machine.WallSince / machine.Backoff) so that
// every wall-clock touchpoint is enumerable in one file and auditable as
// "pacing only, never feeds factor bits".
//
// The analyzer reports, inside the deterministic package set:
//
//   - references to time.Now, time.Since, time.Sleep, time.After,
//     time.Tick, time.NewTimer, time.NewTicker, and
//   - calls of math/rand's global-state (unseeded) top-level functions;
//     rand.New(rand.NewSource(seed)) and methods of an explicit *rand.Rand
//     remain allowed.
//
// Genuinely wall-clock components (the trace recorder's timestamps) carry
// an audited //lint:ignore wallclock <reason>.
package wallclock

import (
	"go/ast"
	"go/types"

	"sympack/internal/lint/analysis"
)

// deterministicPackages must not consult the host clock directly. The set
// covers the numeric/scheduling core plus the runtime layers whose
// behavior the chaos and property harnesses replay deterministically.
var deterministicPackages = map[string]bool{
	"sympack/internal/core":     true,
	"sympack/internal/symbolic": true,
	"sympack/internal/blas":     true,
	"sympack/internal/des":      true,
	"sympack/internal/upcxx":    true,
	"sympack/internal/gpu":      true,
	"sympack/internal/trace":    true,
	"sympack/internal/metrics":  true,
	// The iterative-solve subsystem times preconditioner application and
	// convergence through the machine facade only; a direct clock read
	// would desynchronize the replayed chaos harness from the solver.
	"sympack/internal/krylov":  true,
	"sympack/internal/precond": true,
	// The service layer is wall-clock-adjacent by nature (latency rings,
	// breaker cooldowns, backoff), which is exactly why it sits in scope:
	// every host-clock touchpoint must go through the machine facade so
	// the pacing/measurement surface stays enumerable and auditable.
	"sympack/internal/server": true,
	"sympack/cmd/sympackd":    true,
	"sympack/cmd/loadgen":     true,
	// benchfig regenerates committed benchmark artifacts from the
	// deterministic performance model; the report timestamp is its only
	// legitimate wall-clock read and routes through machine.WallNow.
	"sympack/cmd/benchfig": true,
	// The lint suite lints itself: graph construction and fixpoint
	// solving are pure functions of the AST and must never consult the
	// host clock (a time-bounded solver would make diagnostics flap).
	"sympack/internal/lint/cfg":      true,
	"sympack/internal/lint/dataflow": true,
}

// bannedTime are the time functions that read or wait on the host clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRand are the math/rand entry points that construct explicitly
// seeded state and are therefore allowed; every other top-level rand
// function draws from the global, nondeterministically-seeded source.
var seededRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flags direct time.Now/time.Sleep and unseeded math/rand in " +
		"deterministic packages; wall-clock access must route through " +
		"internal/machine's facade",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods (t.Sub, rng.Intn, ...) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTime[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"direct time.%s in deterministic package %s; modeled time must use "+
						"machine.Clock, and real pacing/stats must route through the "+
						"machine wall-time facade (machine.WallNow/WallSince/Backoff)",
					fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !seededRand[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"unseeded rand.%s in deterministic package %s; construct an explicitly "+
						"seeded generator (rand.New(rand.NewSource(seed))) so runs replay",
					fn.Name(), pass.Pkg.Path())
			}
		}
	})
	return nil, nil
}
