package wallclock_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"sympack/internal/core",     // deterministic: positives, idioms, suppression
		"sympack/internal/ordering", // outside the set: silent
	)
}
