// Package ordering is outside the wallclock set (fill-reducing orderings
// run once, before the deterministic replay region), so host-clock use
// here is not flagged.
package ordering

import "time"

func stamp() time.Time { return time.Now() }
