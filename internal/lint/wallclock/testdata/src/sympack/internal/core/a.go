// Testdata for the wallclock analyzer: direct host-clock and unseeded
// randomness use inside a deterministic package.
package core

import (
	"math/rand"
	"time"
)

func timings() time.Duration {
	t0 := time.Now()                  // want "direct time.Now"
	time.Sleep(20 * time.Microsecond) // want "direct time.Sleep"
	return time.Since(t0)             // want "direct time.Since"
}

func jitter() int {
	return rand.Intn(16) // want "unseeded rand.Intn"
}

func shuffleTasks(tasks []int) {
	rand.Shuffle(len(tasks), func(i, j int) { // want "unseeded rand.Shuffle"
		tasks[i], tasks[j] = tasks[j], tasks[i]
	})
}

// A function value reference leaks the clock just as a call does.
var clockFn = time.Now // want "direct time.Now"

// Explicitly seeded generators replay deterministically and are allowed;
// rand.Rand methods are not global-state draws.
func seeded(seed int64, tasks []int) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(tasks), func(i, j int) {
		tasks[i], tasks[j] = tasks[j], tasks[i]
	})
	return rng.Intn(4)
}

// Pure duration arithmetic never reads the clock.
func budget(d time.Duration) time.Duration { return 3 * d / 2 }

// Audited escape hatch.
func pacing() {
	//lint:ignore wallclock idle backoff paces the host scheduler only; never feeds factor bits
	time.Sleep(time.Microsecond)
}
