package mapiterdeterminism_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/mapiterdeterminism"
)

func TestMapIterDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", mapiterdeterminism.Analyzer,
		"sympack/internal/core",   // in the deterministic set: positives + idioms
		"sympack/internal/matrix", // outside the set: must stay silent
	)
}
