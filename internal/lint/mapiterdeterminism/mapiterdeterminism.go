// Package mapiterdeterminism flags `for range` over maps in the solver's
// numeric and scheduling packages. Go randomizes map iteration order, so
// any map-ordered loop in code that touches factor values, task schedules,
// or RPC emission leaks nondeterminism straight into the bits of L — the
// exact class of schedule-order bug the fan-out solver's bit-identical
// factor guarantee (DESIGN.md §9, property harness prop_test.go) exists to
// exclude. Kim et al. (arXiv:1601.05871) identify schedule-order leaks as
// the dominant correctness hazard of task-parallel Cholesky on 2D block
// layouts; this analyzer makes the discipline mechanical.
//
// The analyzer permits two shapes without annotation:
//
//   - `for range m` with no iteration variables (order unobservable), and
//   - the canonical key-collection idiom, a single-statement body
//     `keys = append(keys, k)`, whose result the caller is expected to
//     sort before use (pair it with sort.Slice / slices.Sort).
//
// Every other map range in a deterministic package needs either a sort of
// the keys first or an audited `//lint:ignore mapiterdeterminism <reason>`
// explaining why the body is order-insensitive.
package mapiterdeterminism

import (
	"go/ast"
	"go/types"

	"sympack/internal/lint/analysis"
)

// deterministicPackages are the packages whose schedules or numerics feed
// factor bits (ISSUE: internal/core, internal/symbolic, internal/blas,
// internal/des).
var deterministicPackages = map[string]bool{
	"sympack/internal/core":     true,
	"sympack/internal/symbolic": true,
	"sympack/internal/blas":     true,
	"sympack/internal/des":      true,
	"sympack/internal/metrics":  true,
	// The iterative-solve subsystem promises bit-identical residual
	// trajectories across worker and rank counts; a map-ordered traversal
	// anywhere in the CG/PCG drivers or the IC(k) preconditioner build
	// would break that contract silently.
	"sympack/internal/krylov":  true,
	"sympack/internal/precond": true,
	// The PGAS runtime delivers the announcements whose arrival order the
	// engine's ordered-apply machinery must be immune to; map-ordered RPC
	// emission would hide exactly the schedule-order leaks the conformance
	// battery (internal/core/conformance_test.go) exists to exclude.
	"sympack/internal/upcxx": true,
	// benchfig emits the committed BENCH_scaling.json artifact; its series
	// order must be stable across runs for diffable reports.
	"sympack/cmd/benchfig": true,
	// The service layer: cache iteration order must never decide what is
	// evicted or reported, and loadgen's taxonomy output must be stable
	// across runs for diffable reports.
	"sympack/internal/server": true,
	"sympack/cmd/sympackd":    true,
	"sympack/cmd/loadgen":     true,
	// The lint suite lints itself: CFG block layout and dataflow fixpoint
	// results must be identical run to run, or analyzer diagnostics (and
	// the // want tests pinning them) would flap with map order.
	"sympack/internal/lint/cfg":      true,
	"sympack/internal/lint/dataflow": true,
	// The interprocedural layer doubly so: callgraph resolution order and
	// taint label propagation decide which diagnostics exist at all.
	"sympack/internal/lint/callgraph": true,
	"sympack/internal/lint/taint":     true,
}

var Analyzer = &analysis.Analyzer{
	Name: "mapiterdeterminism",
	Doc: "flags map iteration in deterministic packages, where Go's randomized " +
		"map order would leak into factor bits or RPC schedules",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		if rs.Key == nil && rs.Value == nil {
			return // `for range m {}`: iteration order is unobservable
		}
		if isKeyCollection(rs) {
			return
		}
		pass.Reportf(rs.For,
			"map iteration order is randomized and would leak into deterministic state; "+
				"sort the keys first (collect + sort.Slice) or annotate the loop with "+
				"//lint:ignore mapiterdeterminism <why the body is order-insensitive>")
	})
	return nil, nil
}

// isKeyCollection recognizes the blessed pre-sort idiom:
//
//	for k := range m { keys = append(keys, k) }
//
// (single statement, appending exactly the key to one slice).
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
