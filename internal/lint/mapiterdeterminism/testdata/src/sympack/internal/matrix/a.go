// Package matrix is outside the deterministic set, so map iteration here
// is not the analyzer's business (I/O and assembly layers re-sort their
// outputs explicitly).
package matrix

func histogram(entries map[int]float64) float64 {
	total := 0.0
	for _, v := range entries {
		total += v
	}
	return total
}
