// Testdata for the mapiterdeterminism analyzer: package path matches the
// deterministic set, so map ranges here are flagged unless they follow a
// blessed idiom or carry an audited suppression.
package core

import "sort"

var sink int32

func send(b int32) { sink = b }

// Plain map iteration driving side effects: RPC emission order would
// follow Go's randomized map order.
func reRequest(wanted map[int32]bool) {
	for bid := range wanted { // want "map iteration order is randomized"
		send(bid)
	}
}

// Floating-point accumulation in map order: addition is not associative,
// so the sum's bits depend on the schedule.
func accumulate(contrib map[string]float64) float64 {
	sum := 0.0
	for _, v := range contrib { // want "map iteration order is randomized"
		sum += v
	}
	return sum
}

// Key+value iteration is flagged even when only the value is used.
func drain(parked map[int32][]float64, apply func([]float64)) {
	for _, upd := range parked { // want "map iteration order is randomized"
		apply(upd)
	}
}

// Blessed idiom: collect the keys, sort, then iterate deterministically.
func sortedKeys(wanted map[int32]bool) []int32 {
	var keys []int32
	for k := range wanted {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// `for range m` binds no variables, so iteration order is unobservable.
func count(wanted map[int32]bool) int {
	n := 0
	for range wanted {
		n++
	}
	return n
}

// Audited escape hatch: writes land in disjoint slots, so order cannot
// matter; the suppression records the reasoning.
func scatter(blocks map[int32]float64, out []float64) {
	//lint:ignore mapiterdeterminism writes to disjoint out[i] slots; order-insensitive
	for i, v := range blocks {
		out[i] = v
	}
}
