// Package analysistest runs analyzers over a testdata source tree and
// checks their diagnostics against `// want "regexp"` annotations,
// following the conventions of golang.org/x/tools/go/analysis/analysistest
// (which the stdlib-only build cannot vendor). A want comment asserts that
// an analyzer reports on its line with a message matching each quoted
// regular expression; lines without a want must stay silent. Suppression
// directives (//lint:ignore) are honored exactly as in the production
// runner, so testdata can pin the escape hatch's behavior too.
//
// Layout mirrors upstream: <testdata>/src/<importpath>/*.go, loaded
// GOPATH-style, so testdata packages can use the real import paths the
// analyzers gate on ("sympack/internal/core") against small fake
// dependencies ("sympack/internal/upcxx").
//
// RunSuite runs several analyzers together over packages analyzed in the
// order given, sharing one fact store — list a dependency before its
// importer and cross-package facts flow exactly as in the module runner.
// The unusedignore audit is active when that analyzer is in the suite.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/load"
)

// Run loads each import path from testdata/src and applies the analyzer,
// reporting mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, importPaths...)
}

// RunSuite applies a set of analyzers to each import path in order, with
// facts shared across packages and analyzers.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, importPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	loader := load.NewTreeLoader(srcRoot)
	store := analysis.NewFactStore(analyzers)
	for _, path := range importPaths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		pkg, err := loader.LoadDir(path, dir)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags := runSuite(t, analyzers, pkg, store)
		check(t, pkg, diags)
	}
}

func runSuite(t *testing.T, analyzers []*analysis.Analyzer, pkg *load.Package, store *analysis.FactStore) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	var consumed []analysis.ConsumedIgnore
	ran := make([]string, 0, len(analyzers))
	auditUnused := false
	for _, a := range analyzers {
		ran = append(ran, a.Name)
		if a.Name == "unusedignore" {
			auditUnused = true
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		store.Bind(pass)
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		pass.MarkIgnoreUsed = func(pos token.Pos, analyzer string) {
			consumed = append(consumed, analysis.ConsumedIgnore{Pos: pos, Analyzer: analyzer})
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	// Suppressed findings are invisible to want annotations, exactly as
	// they are invisible to the production exit code.
	return analysis.Unsuppressed(analysis.Audit(pkg.Fset, pkg.Files, diags, ran, auditUnused, consumed))
}

// expectation is one unmatched want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func check(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWants(pkg.Fset.Position(c.Pos()), c.Text)
				if err != nil {
					t.Error(err)
					continue
				}
				wants = append(wants, ws...)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmatched want on pos's line whose regexp
// matches msg, returning false if none does.
func consume(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.re != nil && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.re = nil
			return true
		}
	}
	return false
}

// parseWants extracts the quoted regexps of a `// want "..." "..."`
// comment, if any.
func parseWants(pos token.Position, comment string) ([]*expectation, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var out []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("%s: malformed want: expected quoted regexp at %q", pos, rest)
		}
		// Find the end of the Go-quoted string (respecting escapes).
		end := 1
		for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
			end++
		}
		if end == len(rest) {
			return nil, fmt.Errorf("%s: malformed want: unterminated string", pos)
		}
		quoted := rest[:end+1]
		s, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("%s: malformed want %s: %v", pos, quoted, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, s, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: s})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out, nil
}
