package lockorder_test

import (
	"testing"

	"sympack/internal/lint/analysistest"
	"sympack/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a")
}

// TestCrossPackage pins the fact flow: the acquisition of lockdep's
// cache mutex inside Fill must be visible at lockuse's call site, where
// it closes the cycle with the directly-witnessed reverse edge.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockdep", "lockuse")
}
