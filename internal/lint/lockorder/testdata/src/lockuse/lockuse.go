// Package lockuse closes a lock cycle across a package boundary: the
// Server→Cache edge is only visible through lockdep's exported
// acquisition fact on Fill, and the reverse edge is witnessed directly.
package lockuse

import (
	"sync"

	"lockdep"
)

type Server struct{ mu sync.Mutex }

func refresh(s *Server, c *lockdep.Cache) {
	s.mu.Lock()
	c.Fill() // want "lock order cycle"
	s.mu.Unlock()
}

func evict(s *Server, c *lockdep.Cache) {
	c.Mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	c.Mu.Unlock()
}
