// Testdata for the lockorder analyzer: opposite acquisition orders of
// the same two type-level locks form a cycle, reported once at the
// first-witnessed edge; consistent orders, self-pairs and released locks
// stay silent.
package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // same cycle, already reported at the first witness
	a.mu.Unlock()
	b.mu.Unlock()
}

// Consistent order everywhere: no cycle.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func cdOne(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdTwo(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// Sequential (released before the next acquire): no ordering edge at all.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// Two instances of one type in a deliberate order: the type-level
// abstraction cannot rank them, so self-pairs are skipped.
func twoInstances(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Transitive acquisition through a same-package callee.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func ef(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want "lock order cycle"
	e.mu.Unlock()
}

func fe(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

// A goroutine is its own execution context: locks held at the go
// statement order nothing inside the literal.
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

func spawn(g *G, h *H) {
	g.mu.Lock()
	go func() {
		h.mu.Lock()
		h.mu.Unlock()
	}()
	g.mu.Unlock()
}

func reverse(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}
