// Package lockdep is the dependency half of the cross-package lockorder
// test: Fill's acquisition is exported as an object fact, and the
// package's (empty-cycle) edge graph as a package fact.
package lockdep

import "sync"

type Cache struct{ Mu sync.Mutex }

// Fill acquires the cache lock; importers learn that through the
// acquires fact.
func (c *Cache) Fill() {
	c.Mu.Lock()
	c.Mu.Unlock()
}
