// Package lockorder detects potential deadlocks by building a global
// lock-acquisition order graph and reporting its cycles. The fan-out
// engine holds several mutexes with disjoint jobs (engine scheduler
// state, the sympackd cache, admission bookkeeping, metrics registries);
// a deadlock needs no misuse of any single one — only two code paths
// acquiring two of them in opposite orders. That property is invisible
// to per-function checks like mutexguard, so this analyzer lifts the
// locksets to a cross-package graph via Facts.
//
// Locks are identified at the type level: base.mu.Lock() on a variable
// of (pointer to) named type pkg.T contributes the lock id "pkg.T.mu".
// Within one function, a forward may-dataflow over the control-flow
// graph (internal/lint/cfg + internal/lint/dataflow) tracks which ids
// are held on some path; acquiring B while holding A records the edge
// A→B. Calls made while holding A add edges A→L for every lock L the
// callee may (transitively) acquire — known for same-package callees
// from a local fixpoint and for imported sympack packages from exported
// object Facts. Each package exports its merged edge set as a package
// Fact, so the graph accumulates along the import DAG and a cycle whose
// halves live in different packages is still caught, with both witness
// paths reported.
//
// Self-edges (T.mu → T.mu) are skipped: acquiring two instances of the
// same type in a deliberate order (by index, by address) is a standard
// idiom the type-level abstraction cannot distinguish from a deadlock,
// and flagging it would bury the real findings. Function literals are
// analyzed as separate bodies with an empty held set — a closure runs on
// its own goroutine or schedule, so it witnesses no ordering with its
// creator's held locks.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/cfg"
	"sympack/internal/lint/dataflow"
)

// Name is the analyzer's registry name.
const Name = "lockorder"

// Edge is one observed acquisition order: To was acquired (possibly
// inside a callee) while From was held, witnessed at Pos ("file:line").
type Edge struct {
	From, To string
	Pos      string
}

// lockGraph is the package fact: every acquisition-order edge visible at
// this package — its own plus everything inherited from its imports.
type lockGraph struct{ Edges []Edge }

func (*lockGraph) AFact() {}

// acquires is the object fact on a function: the type-level lock ids the
// function may acquire, directly or transitively.
type acquires struct{ Locks []string }

func (*acquires) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: "builds the cross-package lock-acquisition order graph from " +
		"sync.Mutex/RWMutex operations (type-level ids, CFG-based held-set " +
		"tracking, transitive acquisition Facts) and reports cycles — two " +
		"paths locking the same pair in opposite orders can deadlock",
	Run:       run,
	FactTypes: []analysis.Fact{(*lockGraph)(nil), (*acquires)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	w := &walker{
		pass:     pass,
		acquired: map[*types.Func]map[string]bool{},
	}
	fns := w.collectFuncs()
	w.solveAcquires(fns)
	for _, fi := range fns {
		w.collectEdges(fi.decl.Body)
	}
	w.exportFacts(fns)
	w.reportCycles()
	return nil, nil
}

type walker struct {
	pass     *analysis.Pass
	acquired map[*types.Func]map[string]bool // transitive acquire sets (local fixpoint)
	edges    []localEdge                     // edges witnessed in this package
}

type localEdge struct {
	Edge
	pos token.Pos
}

type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func (w *walker) collectFuncs() []*fnInfo {
	var fns []*fnInfo
	for _, f := range w.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := w.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fns = append(fns, &fnInfo{decl: fd, obj: obj})
		}
	}
	return fns
}

// solveAcquires computes, for every local function, the set of lock ids
// it may acquire — direct operations plus everything its callees acquire,
// iterated to fixpoint so intra-package call chains resolve in any order.
// Function literals contribute to their enclosing declaration: a helper
// that locks inside a closure still "may acquire" that lock.
func (w *walker) solveAcquires(fns []*fnInfo) {
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.obj == nil {
				continue
			}
			set := w.acquired[fi.obj]
			if set == nil {
				set = map[string]bool{}
				w.acquired[fi.obj] = set
			}
			before := len(set)
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, locks, ok := w.lockOp(call); ok && locks {
					set[id] = true
					return true
				}
				for l := range w.calleeAcquires(call) {
					set[l] = true
				}
				return true
			})
			if len(set) != before {
				changed = true
			}
		}
	}
}

// calleeAcquires resolves the acquire set of a call's static callee:
// the local fixpoint table for same-package functions, imported Facts
// for cross-package ones, empty (conservatively silent) otherwise.
func (w *walker) calleeAcquires(call *ast.CallExpr) map[string]bool {
	fn := w.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg() == w.pass.Pkg {
		return w.acquired[fn]
	}
	var fact acquires
	if !w.pass.ImportObjectFact(fn, &fact) {
		return nil
	}
	set := make(map[string]bool, len(fact.Locks))
	for _, l := range fact.Locks {
		set[l] = true
	}
	return set
}

func (w *walker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := w.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectEdges runs the held-set may-analysis over one body and records
// an edge for every acquisition (direct or via a callee) made while
// another lock is held. Two passes, as everywhere in the suite: solve the
// fixpoint with a side-effect-free transfer, then replay each reachable
// block once from its solved entry state.
func (w *walker) collectEdges(body *ast.BlockStmt) {
	g := cfg.New(body)
	transfer := func(b *cfg.Block, in dataflow.Set) dataflow.Set {
		for _, n := range b.Nodes {
			w.applyNode(n, in, false)
		}
		return in
	}
	res := dataflow.Solve(g, dataflow.SetLattice{}, dataflow.Forward, dataflow.Set{}, transfer)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := dataflow.Set{}
		for k := range in {
			held[k] = true
		}
		for _, n := range b.Nodes {
			w.applyNode(n, held, true)
		}
	}
}

// applyNode updates the held set with a node's lock operations; when
// record is set it also emits order edges for acquisitions and calls made
// under held locks, and descends into function literals (fresh empty held
// set — a separate execution context).
func (w *walker) applyNode(n ast.Node, held dataflow.Set, record bool) {
	if n == nil {
		return
	}
	// The range header node contains the whole loop; its body statements
	// have their own blocks.
	if r, ok := n.(*ast.RangeStmt); ok {
		w.applyExpr(r.X, held, record)
		return
	}
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, locks, ok := w.lockOp(call); ok {
				if locks {
					if record {
						w.recordAcquire(held, id, call.Pos())
					}
					held[id] = true
				} else {
					delete(held, id)
				}
				return
			}
		}
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		// defer x.mu.Unlock() keeps the lock held for the rest of the
		// body; any other deferred call is analyzed as a separate context.
		if _, locks, ok := w.lockOp(ds.Call); ok && !locks {
			return
		}
		if record {
			if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				w.collectEdges(fl.Body)
			}
		}
		return
	}
	if gs, ok := n.(*ast.GoStmt); ok {
		if record {
			if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				w.collectEdges(fl.Body)
			}
		}
		return
	}
	w.applyExpr(n, held, record)
}

// applyExpr scans an expression tree for calls: lock operations mutate
// the held set, other calls contribute their callee's transitive
// acquisitions as edges. Function literals get their own analysis.
func (w *walker) applyExpr(n ast.Node, held dataflow.Set, record bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit:
			if record {
				w.collectEdges(nn.Body)
			}
			return false
		case *ast.CallExpr:
			if id, locks, ok := w.lockOp(nn); ok {
				if locks {
					if record {
						w.recordAcquire(held, id, nn.Pos())
					}
					held[id] = true
				} else {
					delete(held, id)
				}
				return false
			}
			if record && len(held) > 0 {
				for l := range w.calleeAcquires(nn) {
					w.recordAcquire(held, l, nn.Pos())
				}
			}
		}
		return true
	})
}

// recordAcquire emits one edge per held lock (skipping self-edges) for an
// acquisition of id at pos.
func (w *walker) recordAcquire(held dataflow.Set, id string, pos token.Pos) {
	froms := make([]string, 0, len(held))
	for f := range held {
		if f != id {
			froms = append(froms, f)
		}
	}
	sort.Strings(froms)
	p := w.pass.Fset.Position(pos)
	ps := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	for _, f := range froms {
		w.edges = append(w.edges, localEdge{Edge: Edge{From: f, To: id, Pos: ps}, pos: pos})
	}
}

// lockOp recognizes base.field.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex/RWMutex field of a named type, returning the type-level lock
// id and whether the call acquires.
func (w *walker) lockOp(call *ast.CallExpr) (string, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	muVar, ok := w.pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !ok || !isSyncLock(muVar) {
		return "", false, false
	}
	tv, ok := w.pass.TypesInfo.Types[inner.X]
	if !ok {
		return "", false, false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", false, false
	}
	id := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + inner.Sel.Name
	return id, locks, true
}

func isSyncLock(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// exportFacts publishes the per-function acquire sets (exported symbols
// only survive the vetx round-trip, which is exactly the set callable
// cross-package) and the package's merged edge graph.
func (w *walker) exportFacts(fns []*fnInfo) {
	for _, fi := range fns {
		if fi.obj == nil {
			continue
		}
		set := w.acquired[fi.obj]
		if len(set) == 0 {
			continue
		}
		locks := make([]string, 0, len(set))
		for l := range set {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		w.pass.ExportObjectFact(fi.obj, &acquires{Locks: locks})
	}
	w.pass.ExportPackageFact(&lockGraph{Edges: w.mergedEdges()})
}

// mergedEdges deduplicates this package's own edges with every imported
// package's graph fact, keeping the first-seen witness position per
// (From, To) pair, in sorted order.
func (w *walker) mergedEdges() []Edge {
	type key struct{ from, to string }
	seen := map[key]Edge{}
	addEdge := func(e Edge) {
		k := key{e.From, e.To}
		if _, ok := seen[k]; !ok {
			seen[k] = e
		}
	}
	for _, le := range w.edges {
		addEdge(le.Edge)
	}
	// Imports() is sorted by path, keeping the merge deterministic.
	for _, imp := range w.pass.Pkg.Imports() {
		var g lockGraph
		if w.pass.ImportPackageFact(imp, &g) {
			for _, e := range g.Edges {
				addEdge(e)
			}
		}
	}
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	out := make([]Edge, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// reportCycles looks for a path To→…→From in the merged graph for every
// locally-witnessed edge From→To: together they close a cycle, i.e. two
// executions can each hold one lock while waiting for the other. Each
// cycle is reported once, at the local witness.
func (w *walker) reportCycles() {
	if len(w.edges) == 0 {
		return
	}
	merged := w.mergedEdges()
	adj := map[string][]Edge{}
	for _, e := range merged {
		adj[e.From] = append(adj[e.From], e)
	}
	reported := map[string]bool{}
	for _, le := range w.edges {
		path := shortestPath(adj, le.To, le.From)
		if path == nil {
			continue
		}
		// Canonical cycle key: the sorted set of lock ids involved.
		idSet := map[string]bool{le.From: true, le.To: true}
		for _, e := range path {
			idSet[e.To] = true
		}
		ids := make([]string, 0, len(idSet))
		for id := range idSet {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		key := strings.Join(ids, "|")
		if reported[key] {
			continue
		}
		reported[key] = true

		var back []string
		for _, e := range path {
			back = append(back, fmt.Sprintf("%s→%s at %s", e.From, e.To, e.Pos))
		}
		w.pass.Reportf(le.pos,
			"lock order cycle: %s is acquired while holding %s here, but the "+
				"opposite order exists (%s) — two goroutines taking these paths "+
				"concurrently can deadlock; pick one global order",
			le.To, le.From, strings.Join(back, ", "))
	}
}

// shortestPath BFSes from src to dst over the merged edges, returning the
// edge sequence or nil. Adjacency lists come from mergedEdges and are
// therefore already sorted, keeping the witness deterministic.
func shortestPath(adj map[string][]Edge, src, dst string) []Edge {
	type item struct {
		node string
		path []Edge
	}
	visited := map[string]bool{src: true}
	queue := []item{{node: src}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range adj[it.node] {
			if visited[e.To] {
				continue
			}
			p := append(append([]Edge{}, it.path...), e)
			if e.To == dst {
				return p
			}
			visited[e.To] = true
			queue = append(queue, item{node: e.To, path: p})
		}
	}
	return nil
}
