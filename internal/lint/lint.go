// Package lint assembles the sympacklint analyzer suite and runs it over
// type-checked packages. The suite mechanically enforces the solver's
// headline invariants — deterministic schedules, atomic-only shared
// counters, never-dropped future errors, virtualized wall clocks — that
// PRs 1–2 established by hand (see DESIGN.md §10 for the mapping from each
// analyzer to the paper invariant it guards).
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/atomicconsistency"
	"sympack/internal/lint/futureerr"
	"sympack/internal/lint/load"
	"sympack/internal/lint/mapiterdeterminism"
	"sympack/internal/lint/wallclock"
)

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicconsistency.Analyzer,
		futureerr.Analyzer,
		mapiterdeterminism.Analyzer,
		wallclock.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the analyzers to one package, honors //lint:ignore
// suppressions, and returns diagnostics in deterministic position order.
func RunPackage(p *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = analysis.ApplySuppressions(p.Fset, p.Files, diags)
	sortDiagnostics(p.Fset, diags)
	return diags, nil
}

// RunModule loads every buildable package under modRoot and applies the
// analyzers to each. It returns all surviving diagnostics plus the file
// set for rendering positions.
func RunModule(modRoot string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	loader, err := load.NewModuleLoader(modRoot)
	if err != nil {
		return nil, nil, err
	}
	paths, dirs, err := load.ModulePackages(modRoot)
	if err != nil {
		return nil, nil, err
	}
	var all []analysis.Diagnostic
	for i, path := range paths {
		p, err := loader.LoadDir(path, dirs[i])
		if err != nil {
			return nil, nil, err
		}
		ds, err := RunPackage(p, analyzers)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(loader.Fset, all)
	return all, loader.Fset, nil
}

// RunDirs lints only the packages in the given directories (which must
// lie inside the module rooted at modRoot).
func RunDirs(modRoot string, dirs []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	loader, err := load.NewModuleLoader(modRoot)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := load.ModulePath(modRoot)
	if err != nil {
		return nil, nil, err
	}
	var all []analysis.Diagnostic
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, nil, err
		}
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, nil, fmt.Errorf("lint: %s is outside module %s", dir, modRoot)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.LoadDir(ip, abs)
		if err != nil {
			return nil, nil, err
		}
		ds, err := RunPackage(p, analyzers)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(loader.Fset, all)
	return all, loader.Fset, nil
}

func sortDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
