// Package lint assembles the sympacklint analyzer suite and runs it over
// type-checked packages. The suite mechanically enforces the solver's
// headline invariants — deterministic schedules, atomic-only shared
// counters, never-dropped future errors, virtualized wall clocks,
// mutex-guarded scheduler state, and live suppressions — that PRs 1–2
// established by hand (see DESIGN.md §10 for the mapping from each
// analyzer to the paper invariant it guards).
//
// Packages are analyzed in dependency order against one shared
// analysis.FactStore, so facts exported by a pass over an imported
// package (e.g. futureerr's consumption facts) are visible to passes
// over its importers.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"sympack/internal/lint/analysis"
	"sympack/internal/lint/atomicconsistency"
	"sympack/internal/lint/ctxflow"
	"sympack/internal/lint/errflow"
	"sympack/internal/lint/futureerr"
	"sympack/internal/lint/goroutineleak"
	"sympack/internal/lint/load"
	"sympack/internal/lint/lockorder"
	"sympack/internal/lint/mapiterdeterminism"
	"sympack/internal/lint/mutexguard"
	"sympack/internal/lint/nondetflow"
	"sympack/internal/lint/unusedignore"
	"sympack/internal/lint/wallclock"
)

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicconsistency.Analyzer,
		ctxflow.Analyzer,
		errflow.Analyzer,
		futureerr.Analyzer,
		goroutineleak.Analyzer,
		lockorder.Analyzer,
		mapiterdeterminism.Analyzer,
		mutexguard.Analyzer,
		nondetflow.Analyzer,
		unusedignore.Analyzer,
		wallclock.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the analyzers to one package with a private fact
// store (no cross-package facts), honors //lint:ignore suppressions, and
// returns diagnostics — suppressed ones marked, not removed — in
// deterministic position order. Single-package drivers (vet mode seeds
// its store from vetx files first) use RunPackageFacts directly.
func RunPackage(p *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return RunPackageFacts(p, analyzers, analysis.NewFactStore(analyzers))
}

// RunPackageFacts is RunPackage against a caller-owned fact store, which
// both receives this package's exported facts and answers imports from
// previously analyzed (or vetx-decoded) dependencies.
func RunPackageFacts(p *load.Package, analyzers []*analysis.Analyzer, store *analysis.FactStore) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	var consumed []analysis.ConsumedIgnore
	ran := make([]string, 0, len(analyzers))
	auditUnused := false
	for _, a := range analyzers {
		ran = append(ran, a.Name)
		if a.Name == unusedignore.Name {
			auditUnused = true
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		store.Bind(pass)
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		pass.MarkIgnoreUsed = func(pos token.Pos, analyzer string) {
			consumed = append(consumed, analysis.ConsumedIgnore{Pos: pos, Analyzer: analyzer})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = analysis.Audit(p.Fset, p.Files, diags, ran, auditUnused, consumed)
	sortDiagnostics(p.Fset, diags)
	return diags, nil
}

// RunModule loads every buildable package under modRoot and applies the
// analyzers to each, in dependency order so facts flow from imported
// packages to their importers. It returns all diagnostics (suppressed
// ones marked) plus the file set for rendering positions.
func RunModule(modRoot string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	loader, err := load.NewModuleLoader(modRoot)
	if err != nil {
		return nil, nil, err
	}
	paths, dirs, err := load.ModulePackages(modRoot)
	if err != nil {
		return nil, nil, err
	}
	pkgs := make([]*load.Package, 0, len(paths))
	for i, path := range paths {
		p, err := loader.LoadDir(path, dirs[i])
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	store := analysis.NewFactStore(analyzers)
	var all []analysis.Diagnostic
	for _, p := range dependencyOrder(pkgs) {
		ds, err := RunPackageFacts(p, analyzers, store)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(loader.Fset, all)
	return all, loader.Fset, nil
}

// dependencyOrder sorts packages so every package follows its in-set
// imports (imports cannot cycle, so the DFS terminates). The input is
// already path-sorted, which makes the output deterministic.
func dependencyOrder(pkgs []*load.Package) []*load.Package {
	byTypes := make(map[*types.Package]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byTypes[p.Types] = p
	}
	seen := map[*load.Package]bool{}
	out := make([]*load.Package, 0, len(pkgs))
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// RunDirs lints only the packages in the given directories (which must
// lie inside the module rooted at modRoot). Dependencies outside the
// listed set are type-checked but not analyzed, so cross-package facts
// are absent and fact-dependent analyzers fall back to their conservative
// (quieter) behavior; the whole-module RunModule has no such gap.
func RunDirs(modRoot string, dirs []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	loader, err := load.NewModuleLoader(modRoot)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := load.ModulePath(modRoot)
	if err != nil {
		return nil, nil, err
	}
	pkgs := make([]*load.Package, 0, len(dirs))
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, nil, err
		}
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, nil, fmt.Errorf("lint: %s is outside module %s", dir, modRoot)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.LoadDir(ip, abs)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	store := analysis.NewFactStore(analyzers)
	var all []analysis.Diagnostic
	for _, p := range dependencyOrder(pkgs) {
		ds, err := RunPackageFacts(p, analyzers, store)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(loader.Fset, all)
	return all, loader.Fset, nil
}

func sortDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
