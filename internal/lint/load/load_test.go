package load_test

import (
	"path/filepath"
	"strings"
	"testing"

	"os"

	"sympack/internal/lint/load"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// A syntax error must surface as an error naming the package and the
// file, not as a panic or a bare scanner message.
func TestLoadDirSyntaxError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/bad.go": "package p\n\nfunc broken( {\n",
	})
	loader := load.NewTreeLoader(root)
	_, err := loader.LoadDir("p", filepath.Join(root, "p"))
	if err == nil {
		t.Fatal("LoadDir on a syntax-error file: got nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "load p") || !strings.Contains(msg, "bad.go") {
		t.Errorf("error %q should name the package (load p) and the file (bad.go)", msg)
	}
}

// An empty directory is "no buildable Go files", attributed to the
// import path.
func TestLoadDirEmpty(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/README.txt": "not a Go file\n",
	})
	loader := load.NewTreeLoader(root)
	_, err := loader.LoadDir("p", filepath.Join(root, "p"))
	if err == nil {
		t.Fatal("LoadDir on an empty package dir: got nil error")
	}
	if msg := err.Error(); !strings.Contains(msg, "load p") {
		t.Errorf("error %q should be attributed to the package path", msg)
	}
}

// Build-tagged files outside the active configuration are excluded by
// go/build, so a file that would not even type-check must not poison the
// load; a package whose files are all excluded errors cleanly.
func TestLoadDirBuildTags(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/ok.go": "package p\n\nfunc A() int { return 1 }\n",
		"p/tagged.go": "//go:build sympack_never_enabled\n\npackage p\n\n" +
			"func B() { undefinedSymbol() }\n",
		"q/only_tagged.go": "//go:build sympack_never_enabled\n\npackage q\n\nfunc C() {}\n",
	})
	loader := load.NewTreeLoader(root)
	p, err := loader.LoadDir("p", filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("LoadDir with an excluded tagged file: %v", err)
	}
	if len(p.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (tagged.go excluded)", len(p.Files))
	}
	if _, err := loader.LoadDir("q", filepath.Join(root, "q")); err == nil {
		t.Error("LoadDir on an all-excluded package: got nil error")
	} else if !strings.Contains(err.Error(), "load q") {
		t.Errorf("error %q should be attributed to the package path", err)
	}
}

// A module loader over a directory with no go.mod fails up front.
func TestModuleLoaderMissingGoMod(t *testing.T) {
	if _, err := load.NewModuleLoader(t.TempDir()); err == nil {
		t.Error("NewModuleLoader without go.mod: got nil error")
	}
}

// ModulePackages skips testdata and hidden trees, and the walk order is
// deterministic.
func TestModulePackagesSkipsTestdata(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module example.com/m\n\ngo 1.22\n",
		"a/a.go":                "package a\n",
		"b/b.go":                "package b\n",
		"b/testdata/src/x/x.go": "package x\n",
		".hidden/h.go":          "package h\n",
		"_underscore/u.go":      "package u\n",
		"a/vendor/v/v.go":       "package v\n",
		"c/README.md":           "no go files\n",
		"b/inner/deep.go":       "package inner\n",
	})
	paths, dirs, err := load.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example.com/m/a", "example.com/m/b", "example.com/m/b/inner"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v (dirs %v)", paths, want, dirs)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("paths[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}
