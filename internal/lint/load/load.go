// Package load type-checks packages of this module (and of analysistest
// trees) for the sympacklint analyzers, using only the standard library:
// go/build selects files under the active build tags, go/parser parses
// them, and go/types checks them. Imports are resolved through a small
// vendor-free importer: module-local paths are loaded recursively from the
// repository tree, everything else is delegated to the standard library's
// from-source importer (importer.ForCompiler "source"), which compiles
// GOROOT packages on demand. This is the piece x/tools/go/packages would
// normally provide; the repo is stdlib-only by policy (DESIGN.md §2), so
// the loader is ~200 lines of the same idea, sized to this module.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package, ready for analysis.
type Package struct {
	Path  string // import path ("sympack/internal/core")
	Dir   string // directory holding the sources
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves and caches packages. It is not safe for concurrent
// use; the lint driver runs single-threaded.
type Loader struct {
	Fset *token.FileSet

	// local maps an import path to a source directory, or reports
	// !ok to fall through to the standard-library importer.
	local func(path string) (dir string, ok bool)

	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool
	ctx     build.Context
}

func newLoader(local func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	ctx := build.Default
	l := &Loader{
		Fset:    fset,
		local:   local,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
		ctx:     ctx,
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// NewModuleLoader returns a loader rooted at a Go module directory. The
// module path is read from go.mod; imports below it resolve into the tree.
func NewModuleLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	return newLoader(func(path string) (string, bool) {
		if path == modPath {
			return modRoot, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(modRoot, filepath.FromSlash(rest)), true
		}
		return "", false
	}), nil
}

// NewTreeLoader returns a GOPATH-style loader for analysistest trees: the
// import path "a/b" resolves to <srcRoot>/a/b if that directory exists.
func NewTreeLoader(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// ModulePath returns the module path declared by modRoot's go.mod.
func ModulePath(modRoot string) (string, error) {
	return modulePath(filepath.Join(modRoot, "go.mod"))
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("load: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.Types, nil
	}
	if ldir, ok := l.local(path); ok {
		p, err := l.loadDir(path, ldir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir loads and type-checks the package in dir under the given import
// path (non-test files only — the invariants the suite guards are runtime
// properties; tests are free to use wall clocks and unordered maps).
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	return l.loadDir(path, dir)
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			// The scanner's error already carries file:line:col; prefix
			// the package so multi-package runs say which unit died.
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(l.ctx.Compiler, l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// ModulePackages walks a module tree and returns the import paths and
// directories of every buildable non-test package, in deterministic
// (sorted) order. Hidden directories, testdata trees, and vendor are
// skipped, matching the meaning of "./..." for go vet.
func ModulePackages(modRoot string) (paths, dirs []string, err error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	err = filepath.WalkDir(modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if _, err := build.Default.ImportDir(p, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		dirs = append(dirs, p)
		return nil
	})
	return paths, dirs, err
}
