package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sympack/internal/blas"
	"sympack/internal/gen"
	"sympack/internal/matrix"
)

// denseInverse inverts a small SPD matrix via dense Cholesky solves.
func denseInverse(t *testing.T, a *matrix.SparseSym) []float64 {
	t.Helper()
	n := a.N
	d := a.Dense()
	if err := blas.Potrf(blas.Lower, n, d, n); err != nil {
		t.Fatal(err)
	}
	inv := make([]float64, n*n)
	for j := 0; j < n; j++ {
		col := inv[j*n : j*n+n]
		col[j] = 1
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, n, 1, 1, d, n, col, n)
		blas.Trsm(blas.Left, blas.Lower, blas.Transpose, n, 1, 1, d, n, col, n)
	}
	return inv
}

func TestSelectedInverseDiagonal(t *testing.T) {
	for name, a := range map[string]*matrix.SparseSym{
		"laplace": gen.Laplace2D(7, 6),
		"flan":    gen.Flan3D(2, 2, 2, 1),
		"thermal": gen.Thermal2D(9, 9, 2, 3),
		"random":  gen.RandomSPD(25, 0.2, 4),
		"dense":   gen.RandomSPD(12, 1.0, 5),
		"tiny":    gen.Laplace2D(1, 1),
	} {
		f, err := Factorize(a, Options{Ranks: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		si, err := f.SelectedInverse()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := denseInverse(t, a)
		got := si.Diag()
		for i := 0; i < a.N; i++ {
			if d := math.Abs(got[i] - want[i+i*a.N]); d > 1e-8*(1+math.Abs(want[i+i*a.N])) {
				t.Fatalf("%s: diag[%d] = %g, want %g", name, i, got[i], want[i+i*a.N])
			}
		}
	}
}

func TestSelectedInverseEntries(t *testing.T) {
	a := gen.Laplace2D(5, 5)
	f, err := Factorize(a, Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	si, err := f.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	if si.Nnz() < int64(a.N) {
		t.Fatal("selected set smaller than the diagonal")
	}
	want := denseInverse(t, a)
	found := 0
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			v, ok := si.At(i, j)
			if !ok {
				continue
			}
			found++
			if d := math.Abs(v - want[i+j*a.N]); d > 1e-8*(1+math.Abs(want[i+j*a.N])) {
				t.Fatalf("Z(%d,%d) = %g, want %g", i, j, v, want[i+j*a.N])
			}
			// Symmetry of access.
			v2, ok2 := si.At(j, i)
			if !ok2 || v2 != v {
				t.Fatalf("asymmetric access at (%d,%d)", i, j)
			}
		}
	}
	if found < a.N {
		t.Fatalf("only %d selected entries found", found)
	}
}

// Property: the selected diagonal matches the dense inverse for random SPD
// matrices across rank counts.
func TestSelectedInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%18) + 1
		p := int(pRaw%4) + 1
		a := gen.RandomSPD(n, 0.3, seed)
		fac, err := Factorize(a, Options{Ranks: p})
		if err != nil {
			return false
		}
		si, err := fac.SelectedInverse()
		if err != nil {
			return false
		}
		// Spot-check: x = A⁻¹ e_i via solve; compare diagonal element.
		rng := rand.New(rand.NewSource(seed))
		i := rng.Intn(n)
		e := make([]float64, n)
		e[i] = 1
		x, err := fac.Solve(e)
		if err != nil {
			return false
		}
		return math.Abs(si.Diag()[i]-x[i]) < 1e-7*(1+math.Abs(x[i]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRefined(t *testing.T) {
	a := gen.Laplace2D(12, 12)
	f, err := Factorize(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, rel, iters, err := f.SolveRefined(a, b, 1e-15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-12 {
		t.Fatalf("refined residual %g", rel)
	}
	if iters < 0 || iters > 5 {
		t.Fatalf("iters = %d", iters)
	}
	if r := ResidualNorm(a, x, b); r > 1e-12 {
		t.Fatalf("recomputed residual %g", r)
	}
	// Zero refinement budget must still produce a direct solve.
	if _, _, iters, err := f.SolveRefined(a, b, 1e-30, 0); err != nil || iters != 0 {
		t.Fatalf("zero-budget refine: iters=%d err=%v", iters, err)
	}
}
