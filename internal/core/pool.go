// Intra-rank worker-pool execution. A rank with Options.Workers > 1 splits
// into N executor goroutines (workerLoop) that pull ready tasks from the
// RTQ and one dedicated progress goroutine (progressLoop, the rank's own
// goroutine) that owns the communication side: upcxx.Progress, inbox
// draining, health mirroring and the lost-signal re-request protocol. The
// split mirrors real symPACK's progress-thread configuration: computation
// never blocks the network, and RPC handlers are serialized on one
// goroutine per rank.
package core

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sympack/internal/machine"
)

// run executes this rank's share of the factorization: the sequential
// Fig. 3 loop when the pool is trivial, otherwise the worker pool plus the
// progress goroutine.
func (e *engine) run() {
	if e.workers <= 1 {
		e.factorLoop()
		return
	}
	rt := e.r.Runtime()
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(lane int32) {
			defer wg.Done()
			defer func() {
				// A panicking kernel must fail the job like it does on the
				// sequential path (where the rank goroutine's recover
				// catches it), not crash the process.
				if p := recover(); p != nil {
					rt.Fail(fmt.Errorf("%w: rank %d worker %d panic: %v", ErrInternal, e.r.ID, lane, p))
					e.cond.Broadcast()
				}
			}()
			e.workerLoop(lane)
		}(int32(w))
	}
	e.progressLoop()
	e.mu.Lock()
	e.stopped = true
	e.cond.Broadcast()
	e.mu.Unlock()
	wg.Wait()
}

// workerLoop pulls tasks until the rank's share is done or the job stops.
// Kernels run outside e.mu; only queue operations and completion accounting
// hold it. Idle workers park on cond and are woken by push (new ready
// task), by the last completion, or by run's shutdown broadcast.
func (e *engine) workerLoop(lane int32) {
	rt := e.r.Runtime()
	e.mu.Lock()
	for {
		if e.stopped || e.doneTasks >= e.totalTasks || rt.ShouldAbort() {
			e.mu.Unlock()
			return
		}
		t, ok := e.pop()
		if !ok {
			e.met.workerWaits.Inc()
			e.cond.Wait()
			continue
		}
		e.inflight++
		e.mu.Unlock()

		// Task-pull boundary: a canceled context stops the worker before
		// the kernel starts, not after.
		if e.checkCanceled() {
			e.mu.Lock()
			e.inflight--
			e.mu.Unlock()
			return
		}
		e.execute(t, lane)

		e.mu.Lock()
		e.inflight--
		e.doneTasks++
		if e.doneTasks >= e.totalTasks {
			e.cond.Broadcast() // release siblings parked on an empty queue
		}
		e.mu.Unlock()
		if e.progress != nil {
			e.progress.Add(1)
		}
		e.mu.Lock()
	}
}

// progressLoop is the communication half of the pool: it drives the
// simulated UPC++ progress engine (executing incoming RPC handlers), drains
// announced blocks into dependency decrements, refreshes the watchdog's
// health mirrors, and — when the rank is starved (no ready tasks AND no
// worker mid-task) with source blocks still outstanding — runs the
// re-request protocol against suspected lost announcements.
func (e *engine) progressLoop() {
	rt := e.r.Runtime()
	idle := 0
	for {
		if rt.ShouldAbort() {
			return
		}
		if e.checkCanceled() {
			return
		}
		e.poll()
		e.mu.Lock()
		e.mirrorHealth()
		done := e.doneTasks >= e.totalTasks
		starved := e.rtq.Len() == 0 && e.inflight == 0
		e.mu.Unlock()
		if done {
			return
		}
		if starved {
			idle++
			if idle > 256 {
				if idle%64 == 0 {
					e.mu.Lock()
					e.reRequestLost()
					e.mu.Unlock()
				}
				e.met.backoffWaits.Inc()
				machine.Backoff(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		} else {
			idle = 0
			runtime.Gosched()
		}
	}
}

// readyQueue is the RTQ as a binary heap ordered by the scheduling policy.
// Priorities (seq, depth) are cached in the task at push time, so Less is
// pure and the heap never reaches back into mutable engine state.
type readyQueue struct {
	e     *engine
	items []task
}

func (q *readyQueue) Len() int           { return len(q.items) }
func (q *readyQueue) Less(i, j int) bool { return q.e.before(q.items[i], q.items[j]) }
func (q *readyQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *readyQueue) Push(x any) { q.items = append(q.items, x.(task)) }

func (q *readyQueue) Pop() any {
	old := q.items
	n := len(old)
	t := old[n-1]
	q.items = old[:n-1]
	return t
}

// before is the strict total priority order between two ready tasks:
//
//	FIFO          — push order (seq ascending)
//	LIFO          — reverse push order (seq descending)
//	CriticalPath  — longer remaining ancestor chain first, ties broken by
//	                task kind (diag before factor before update: finishing
//	                a panel unblocks more than starting another update)
//	                and then by id, so equal-depth tasks pop in a fixed
//	                order instead of whatever the queue's memory layout
//	                yielded.
//
// seq is unique per rank and (kind, id) identifies a task, so every branch
// is a total order: two distinct tasks never compare equal, which makes the
// pop sequence deterministic for a given push sequence.
func (e *engine) before(a, b task) bool {
	switch e.opt.Scheduling {
	case SchedLIFO:
		return a.seq > b.seq
	case SchedCriticalPath:
		if a.depth != b.depth {
			return a.depth > b.depth
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.id < b.id
	default: // SchedFIFO
		return a.seq < b.seq
	}
}

// Assert the heap contract at compile time.
var _ heap.Interface = (*readyQueue)(nil)
