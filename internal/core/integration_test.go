package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/matrix"
)

// TestOptionMatrix sweeps the full option space — mapping × scheduling ×
// GPU × rank layout — on one problem per structural regime, asserting
// numeric correctness everywhere. This is the compatibility contract: any
// combination of knobs must factor and solve.
func TestOptionMatrix(t *testing.T) {
	mats := map[string]*matrix.SparseSym{
		"flan":    gen.Flan3D(2, 2, 3, 1),
		"thermal": gen.Thermal2D(12, 12, 2, 3),
	}
	th := gpu.Thresholds{Potrf: 64, Trsm: 128, Syrk: 96, Gemm: 96}
	cfgID := 0
	for name, a := range mats {
		for _, mapping := range []MappingKind{Map2DCyclic, Map1DCols} {
			for _, sched := range []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath} {
				for _, layout := range []struct{ ranks, rpn, gpus int }{
					{1, 0, 0}, {4, 2, 1}, {6, 3, 2},
				} {
					cfgID++
					label := fmt.Sprintf("%s/%v/%v/r%d-n%d-g%d",
						name, mapping, sched, layout.ranks, layout.rpn, layout.gpus)
					opt := Options{
						Ranks: layout.ranks, RanksPerNode: layout.rpn,
						GPUsPerNode: layout.gpus, Mapping: mapping,
						Scheduling: sched,
					}
					if layout.gpus > 0 {
						opt.Thresholds = &th
					}
					f, err := Factorize(a, opt)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					rng := rand.New(rand.NewSource(int64(cfgID)))
					b := make([]float64, a.N)
					for i := range b {
						b[i] = rng.NormFloat64()
					}
					x, err := f.SolveDistributed(b)
					if err != nil {
						t.Fatalf("%s: solve: %v", label, err)
					}
					if r := ResidualNorm(a, x, b); r > 1e-10 {
						t.Fatalf("%s: residual %g", label, r)
					}
				}
			}
		}
	}
	if cfgID != 2*2*3*3 {
		t.Fatalf("covered %d configurations, want 36", cfgID)
	}
}
