package core

import (
	"context"
	"fmt"
	"math"

	"sympack/internal/blas"
)

// Solve solves A·x = b for the original (unpermuted) right-hand side b,
// returning x in the original ordering. It runs the supernodal forward and
// backward substitutions over the factor blocks.
func (f *Factor) Solve(b []float64) ([]float64, error) {
	x, err := f.SolveMulti([][]float64{b})
	if err != nil {
		return nil, err
	}
	return x[0], nil
}

// SolveMulti solves A·X = B for multiple right-hand sides.
func (f *Factor) SolveMulti(bs [][]float64) ([][]float64, error) {
	return f.SolveMultiCtx(nil, bs)
}

// SolveCtx is Solve bounded by a context: between the substitution phases
// (and between right-hand sides in the batched form) the context is
// consulted, and a canceled or expired one aborts the solve with an error
// wrapping ErrCanceled. A nil context means no bound.
func (f *Factor) SolveCtx(ctx context.Context, b []float64) ([]float64, error) {
	x, err := f.SolveMultiCtx(ctx, [][]float64{b})
	if err != nil {
		return nil, err
	}
	return x[0], nil
}

// SolveMultiCtx solves A·X = B for multiple right-hand sides under a
// context; see SolveCtx for the cancellation contract.
func (f *Factor) SolveMultiCtx(ctx context.Context, bs [][]float64) ([][]float64, error) {
	st := f.St
	n := st.N
	canceled := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrCanceled, err)
		}
		return nil
	}
	out := make([][]float64, len(bs))
	for ri, b := range bs {
		if len(b) != n {
			return nil, fmt.Errorf("core: rhs %d has length %d, want %d", ri, len(b), n)
		}
		if err := canceled(); err != nil {
			return nil, err
		}
		// Permute into factor ordering: y[k] = b[perm[k]].
		y := make([]float64, n)
		for k := 0; k < n; k++ {
			y[k] = b[st.Perm[k]]
		}
		f.forward(y)
		if err := canceled(); err != nil {
			return nil, err
		}
		f.backward(y)
		// Permute back.
		x := make([]float64, n)
		for k := 0; k < n; k++ {
			x[st.Perm[k]] = y[k]
		}
		out[ri] = x
	}
	return out, nil
}

// forward solves L·y = b in place over the supernodal blocks.
func (f *Factor) forward(y []float64) {
	st := f.St
	for k := 0; k < st.NumSupernodes(); k++ {
		sn := &st.Snodes[k]
		nc := sn.NCols()
		blks := st.SnodeBlocks(int32(k))
		diag := f.Data[blks[0].ID]
		// y_k ← L_kk⁻¹ y_k (dense forward substitution).
		yk := y[sn.FirstCol : int(sn.FirstCol)+nc]
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, nc, 1, 1, diag, nc, yk, nc)
		// Panel updates: y_rows ← y_rows − L_{i,k} · y_k.
		for bi := 1; bi < len(blks); bi++ {
			blk := &blks[bi]
			data := f.Data[blk.ID]
			m := int(blk.NRows)
			rows := sn.Rows[blk.RowOff : blk.RowOff+blk.NRows]
			for c := 0; c < nc; c++ {
				t := yk[c]
				if t == 0 {
					continue
				}
				col := data[c*m : c*m+m]
				for x := 0; x < m; x++ {
					y[rows[x]] -= col[x] * t
				}
			}
		}
	}
}

// backward solves Lᵀ·x = y in place over the supernodal blocks.
func (f *Factor) backward(y []float64) {
	st := f.St
	for k := st.NumSupernodes() - 1; k >= 0; k-- {
		sn := &st.Snodes[k]
		nc := sn.NCols()
		blks := st.SnodeBlocks(int32(k))
		yk := y[sn.FirstCol : int(sn.FirstCol)+nc]
		// Gather panel contributions: y_k ← y_k − Σ L_{i,k}ᵀ x_rows.
		for bi := 1; bi < len(blks); bi++ {
			blk := &blks[bi]
			data := f.Data[blk.ID]
			m := int(blk.NRows)
			rows := sn.Rows[blk.RowOff : blk.RowOff+blk.NRows]
			for c := 0; c < nc; c++ {
				col := data[c*m : c*m+m]
				var s float64
				for x := 0; x < m; x++ {
					s += col[x] * y[rows[x]]
				}
				yk[c] -= s
			}
		}
		// x_k ← L_kk⁻ᵀ y_k (dense backward substitution).
		diag := f.Data[blks[0].ID]
		blas.Trsm(blas.Left, blas.Lower, blas.Transpose, nc, 1, 1, diag, nc, yk, nc)
	}
}

// ResidualNorm returns ‖b − A·x‖₂ / ‖b‖₂ for the original matrix a, a
// convenience for examples and tests.
func ResidualNorm(a interface{ MulVecTo(y, x []float64) }, x, b []float64) float64 {
	ax := make([]float64, len(x))
	a.MulVecTo(ax, x)
	var rr, bb float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	if bb == 0 {
		return math.Sqrt(rr)
	}
	return math.Sqrt(rr / bb)
}
