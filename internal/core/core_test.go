package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sympack/internal/blas"
	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

// reconstructError returns max |(L·Lᵀ − PAPᵀ)(i,j)| over the lower triangle
// for small matrices, via dense reconstruction.
func reconstructError(t *testing.T, f *Factor, a *matrix.SparseSym) float64 {
	t.Helper()
	n := a.N
	if n > 400 {
		t.Fatalf("reconstructError for small n only")
	}
	pa, err := a.Permute(f.St.Perm)
	if err != nil {
		t.Fatal(err)
	}
	l := make([]float64, n*n)
	for j := int32(0); j < int32(n); j++ {
		for i := j; i < int32(n); i++ {
			l[i+j*int32(n)] = f.L(i, j)
		}
	}
	rec := make([]float64, n*n)
	blas.RefGemm(blas.NoTrans, blas.Transpose, n, n, n, 1, l, n, l, n, 0, rec, n)
	var worst float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			d := math.Abs(rec[i+j*n] - pa.At(i, j))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func solveCheck(t *testing.T, a *matrix.SparseSym, f *Factor, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	return ResidualNorm(a, x, b)
}

func testProblems() map[string]*matrix.SparseSym {
	return map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(9, 8),
		"laplace3d": gen.Laplace3D(4, 4, 3),
		"flan":      gen.Flan3D(2, 2, 2, 1),
		"bone":      gen.Bone3D(4, 4, 4, 0.3, 2),
		"thermal":   gen.Thermal2D(11, 11, 2, 3),
		"random":    gen.RandomSPD(50, 0.1, 4),
		"dense":     gen.RandomSPD(20, 1.0, 5),
		"tiny":      gen.Laplace2D(1, 1),
		"diag":      gen.RandomSPD(7, 0, 6),
	}
}

func TestFactorizeSequentialCorrect(t *testing.T) {
	for name, a := range testProblems() {
		f, err := Factorize(a, Options{Ranks: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := reconstructError(t, f, a); e > 1e-8 {
			t.Fatalf("%s: reconstruction error %g", name, e)
		}
		if r := solveCheck(t, a, f, 1); r > 1e-10 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

func TestFactorizeMultiRankMatchesSequential(t *testing.T) {
	for name, a := range testProblems() {
		ref, err := Factorize(a, Options{Ranks: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range []int{2, 3, 4, 7} {
			f, err := Factorize(a, Options{Ranks: p})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			// Same ordering options ⇒ identical structure; factors must
			// agree to rounding.
			if len(f.Data) != len(ref.Data) {
				t.Fatalf("%s p=%d: block count differs", name, p)
			}
			for bid := range f.Data {
				for i := range f.Data[bid] {
					if d := math.Abs(f.Data[bid][i] - ref.Data[bid][i]); d > 1e-9 {
						t.Fatalf("%s p=%d: block %d entry %d differs by %g", name, p, bid, i, d)
					}
				}
			}
			if r := solveCheck(t, a, f, 2); r > 1e-10 {
				t.Fatalf("%s p=%d: residual %g", name, p, r)
			}
		}
	}
}

func TestFactorizeWithGPU(t *testing.T) {
	for name, a := range testProblems() {
		f, err := Factorize(a, Options{
			Ranks: 4, RanksPerNode: 4, GPUsPerNode: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := reconstructError(t, f, a); e > 1e-8 {
			t.Fatalf("%s: reconstruction error %g", name, e)
		}
		if r := solveCheck(t, a, f, 3); r > 1e-10 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

func TestGPUOffloadSplit(t *testing.T) {
	// A problem with large supernodes must offload some ops while keeping
	// small ones on the CPU (the Fig. 6 behaviour): thresholds low enough
	// to trigger, structure irregular enough to keep small blocks around.
	a := gen.Flan3D(3, 3, 3, 1)
	th := gpu.Thresholds{Potrf: 64, Trsm: 256, Syrk: 128, Gemm: 128}
	f, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 2, Thresholds: &th,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tot OpStats
	for _, s := range f.Stats.PerRank {
		tot.Add(s)
	}
	var cpu, gpuOps int64
	for i := range tot.CPU {
		cpu += tot.CPU[i]
		gpuOps += tot.GPU[i]
	}
	if gpuOps == 0 {
		t.Fatal("no operations offloaded despite low thresholds")
	}
	if cpu == 0 {
		t.Fatal("no operations stayed on CPU")
	}
	if e := reconstructError(t, f, a); e > 1e-8 {
		t.Fatalf("reconstruction error %g", e)
	}
}

func TestDeviceOOMFallbackCPU(t *testing.T) {
	a := gen.Flan3D(2, 2, 3, 1)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1} // offload everything
	f, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
		DeviceCapacity: 8, // essentially nothing fits
		Thresholds:     &th,
		Fallback:       gpu.FallbackCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.FallbacksOOM == 0 {
		t.Fatal("expected OOM fallbacks")
	}
	if e := reconstructError(t, f, a); e > 1e-8 {
		t.Fatalf("reconstruction error %g after fallbacks", e)
	}
}

func TestDeviceOOMFallbackError(t *testing.T) {
	a := gen.Flan3D(2, 2, 3, 1)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	_, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
		DeviceCapacity: 8,
		Thresholds:     &th,
		Fallback:       gpu.FallbackError,
	})
	if err == nil {
		t.Fatal("expected factorization to abort on OOM with fallback=error")
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	// An indefinite matrix must abort cleanly on every rank count.
	coo := matrix.NewCOO(4)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(2, 2, 1)
	coo.Add(3, 3, 1)
	coo.Add(1, 0, 5) // breaks positive definiteness
	a, _ := coo.ToSym()
	for _, p := range []int{1, 3} {
		_, err := Factorize(a, Options{Ranks: p})
		if err == nil {
			t.Fatalf("p=%d: expected failure", p)
		}
		if !errors.Is(err, ErrNotPositiveDefinite) {
			t.Fatalf("p=%d: got %v", p, err)
		}
	}
}

func TestFactorizeAnalyzedReuse(t *testing.T) {
	// PEXSI-style repeated factorization: one analysis, several shifted
	// factorizations.
	a := gen.Laplace2D(10, 10)
	opt := Options{Ranks: 2}.withDefaults()
	st, _, err := symbolic.Analyze(a, opt.Ordering, *opt.Symbolic)
	if err != nil {
		t.Fatal(err)
	}
	for _, sigma := range []float64{0, 0.5, 2.0} {
		sh, err := a.ShiftDiag(sigma)
		if err != nil {
			t.Fatal(err)
		}
		psh, err := sh.Permute(st.Perm)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FactorizeAnalyzed(st, psh, opt)
		if err != nil {
			t.Fatalf("sigma=%g: %v", sigma, err)
		}
		if r := solveCheck(t, sh, f, 7); r > 1e-10 {
			t.Fatalf("sigma=%g: residual %g", sigma, r)
		}
	}
}

func TestSolveMulti(t *testing.T) {
	a := gen.Laplace2D(8, 8)
	f, err := Factorize(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	bs := make([][]float64, 3)
	for i := range bs {
		bs[i] = make([]float64, a.N)
		for j := range bs[i] {
			bs[i][j] = rng.NormFloat64()
		}
	}
	xs, err := f.SolveMulti(bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if r := ResidualNorm(a, xs[i], bs[i]); r > 1e-10 {
			t.Fatalf("rhs %d residual %g", i, r)
		}
	}
	if _, err := f.SolveMulti([][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestStatsPopulated(t *testing.T) {
	a := gen.Laplace3D(4, 4, 4)
	f, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := &f.Stats
	if s.Supernodes <= 0 || s.Blocks < s.Supernodes || s.NnzL <= 0 || s.FactorFlop <= 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if s.ModelSeconds <= 0 {
		t.Fatal("model time not accumulated")
	}
	if len(s.PerRank) != 4 {
		t.Fatal("per-rank stats missing")
	}
	var potrf int64
	for _, r := range s.PerRank {
		potrf += r.CPU[0] + r.GPU[0]
	}
	if potrf != int64(s.Supernodes) {
		t.Fatalf("POTRF count %d != supernodes %d", potrf, s.Supernodes)
	}
}

func TestOrderingsAllWork(t *testing.T) {
	a := gen.Laplace2D(9, 9)
	for _, ord := range []ordering.Kind{ordering.Natural, ordering.RCM, ordering.MinDegree, ordering.NestedDissection} {
		f, err := Factorize(a, Options{Ranks: 2, Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if r := solveCheck(t, a, f, 11); r > 1e-10 {
			t.Fatalf("%v: residual %g", ord, r)
		}
	}
}

// Property: random SPD matrices factor and solve correctly at random rank
// counts with and without GPU.
func TestFactorizeProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw, pRaw uint8, useGPU bool) bool {
		n := int(nRaw%30) + 1
		p := int(pRaw%5) + 1
		a := gen.RandomSPD(n, float64(dRaw%10)/15, seed)
		opt := Options{Ranks: p}
		if useGPU {
			opt.GPUsPerNode = 1
			th := gpu.Thresholds{Potrf: 16, Trsm: 64, Syrk: 32, Gemm: 32}
			opt.Thresholds = &th
		}
		fac, err := Factorize(a, opt)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		xT := make([]float64, n)
		for i := range xT {
			xT[i] = rng.NormFloat64()
		}
		b := a.MulVec(xT)
		x, err := fac.Solve(b)
		if err != nil {
			return false
		}
		return ResidualNorm(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLAccessor(t *testing.T) {
	a := gen.Laplace2D(6, 6)
	f, err := Factorize(a, Options{Ranks: 1, Ordering: ordering.Natural})
	if err != nil {
		t.Fatal(err)
	}
	// Upper triangle reads as zero.
	if f.L(0, 5) != 0 {
		t.Fatal("upper triangle should read 0")
	}
	// Diagonal entries are positive.
	for j := int32(0); j < int32(a.N); j++ {
		if f.L(j, j) <= 0 {
			t.Fatalf("diagonal %d not positive", j)
		}
	}
}

// Edge layouts: more ranks than blocks, tiny matrices, odd node shapes —
// idle ranks must terminate cleanly and results stay correct.
func TestOversubscribedRanks(t *testing.T) {
	for _, tc := range []struct {
		name  string
		a     *matrix.SparseSym
		ranks int
		rpn   int
		gpus  int
	}{
		{"1x16", gen.Laplace2D(1, 1), 16, 4, 2},
		{"4x12", gen.Laplace2D(2, 2), 12, 5, 1},
		{"diag-many", gen.RandomSPD(3, 0, 1), 9, 2, 0},
		{"prime-ranks", gen.Laplace2D(6, 6), 13, 3, 2},
	} {
		f, err := Factorize(tc.a, Options{
			Ranks: tc.ranks, RanksPerNode: tc.rpn, GPUsPerNode: tc.gpus,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r := solveCheck(t, tc.a, f, 13); r > 1e-10 {
			t.Fatalf("%s: residual %g", tc.name, r)
		}
		x, err := f.SolveDistributed(make([]float64, tc.a.N))
		if err != nil {
			t.Fatalf("%s: distributed solve: %v", tc.name, err)
		}
		for _, v := range x {
			if v != 0 {
				t.Fatalf("%s: zero rhs must give zero solution", tc.name)
			}
		}
	}
}

// The refinement helper must converge on an ill-conditioned system where a
// single direct solve leaves a measurable residual.
func TestRefinementImprovesIllConditioned(t *testing.T) {
	// A Laplacian with a tiny diagonal shift has condition ~1/h² but is
	// still well within double precision; scale values to stress rounding.
	a := gen.Laplace2D(30, 30)
	sc := a.Scale(1e8)
	f, err := Factorize(sc, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	b := make([]float64, sc.N)
	for i := range b {
		b[i] = rng.NormFloat64() * 1e8
	}
	_, rel, _, err := f.SolveRefined(sc, b, 1e-15, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-13 {
		t.Fatalf("refined residual %g", rel)
	}
}
