package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/matrix"
)

// chaosSeeds returns the seed set of the chaos suite. CI's chaos matrix job
// widens it through CHAOS_EXTRA_SEED without a code change.
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("CHAOS_EXTRA_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_EXTRA_SEED=%q: %v", s, err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// planWith builds a plan injecting a single fault class.
func planWith(seed int64, c faults.Class, rate float64) *faults.Plan {
	p := &faults.Plan{Seed: seed}
	p.Rate[c] = rate
	return p
}

// distSolveCheck runs the distributed solve (which shares the factor's
// fault plan through a restricted injector) and returns the residual.
func distSolveCheck(t *testing.T, a *matrix.SparseSym, f *Factor, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, err := f.SolveDistributed(b)
	if err != nil {
		t.Fatal(err)
	}
	return ResidualNorm(a, x, b)
}

// TestChaosMatrix is the acceptance grid: every fault class, injected at an
// aggressive rate, across seeds and rank counts, must leave both the factor
// and the distributed solve numerically exact. Transient faults never
// hard-abort; recovery is the protocol's job, not the caller's.
func TestChaosMatrix(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	cases := []struct {
		name string
		c    faults.Class
		rate float64
		gpus int
	}{
		{"drop", faults.DropSignal, 0.3, 0},
		{"dup", faults.DupSignal, 0.3, 0},
		{"delay", faults.DelaySignal, 0.4, 0},
		{"transfer", faults.TransientTransfer, 0.3, 0},
		{"oom", faults.TransientOOM, 0.5, 1},
		{"stall", faults.RankStall, 0.02, 0},
	}
	// The workers axis crosses every fault class with the intra-rank pool:
	// recovery must hold when the progress goroutine races executor
	// workers, not just on the sequential loop.
	for _, tc := range cases {
		for _, seed := range chaosSeeds(t) {
			for _, ranks := range []int{1, 4, 8} {
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/seed%d/p%d/w%d", tc.name, seed, ranks, workers), func(t *testing.T) {
						opt := Options{
							Ranks:        ranks,
							Workers:      workers,
							Faults:       planWith(seed, tc.c, tc.rate),
							StallTimeout: 20 * time.Second,
						}
						if tc.gpus > 0 {
							opt.GPUsPerNode = tc.gpus
							opt.Thresholds = &th
						}
						f, err := Factorize(a, opt)
						if err != nil {
							t.Fatalf("factorize under %s faults: %v", tc.name, err)
						}
						if r := distSolveCheck(t, a, f, seed); r > 1e-10 {
							t.Fatalf("residual %g under %s faults", r, tc.name)
						}
					})
				}
			}
		}
	}
}

// TestChaosFormulationMatrix crosses the chaos grid with the task
// formulation axis: the contribution-delivering formulations route extra
// payloads (per-update contribution buffers) through the same resilient
// announce/poll/re-request protocol, so a faulted run must land on exactly
// the clean run's factor bits at every rank count — including ranks=1,
// where self-delivery bypasses the wire entirely.
func TestChaosFormulationMatrix(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	classes := []struct {
		name string
		c    faults.Class
		rate float64
	}{
		{"drop", faults.DropSignal, 0.3},
		{"dup", faults.DupSignal, 0.3},
		{"delay", faults.DelaySignal, 0.4},
		{"transfer", faults.TransientTransfer, 0.3},
	}
	for _, form := range []Formulation{FanOut, FanBoth} {
		form := form
		t.Run(form.String(), func(t *testing.T) {
			t.Parallel()
			for _, ranks := range []int{1, 4} {
				clean, err := Factorize(a, Options{
					Ranks: ranks, Workers: 2, Formulation: form,
				})
				if err != nil {
					t.Fatalf("p%d: clean run: %v", ranks, err)
				}
				for _, tc := range classes {
					for _, seed := range chaosSeeds(t) {
						f, err := Factorize(a, Options{
							Ranks:        ranks,
							Workers:      2,
							Formulation:  form,
							Faults:       planWith(seed, tc.c, tc.rate),
							StallTimeout: 20 * time.Second,
						})
						if err != nil {
							t.Fatalf("%s/p%d/seed%d: %v", tc.name, ranks, seed, err)
						}
						requireSameFactor(t, clean, f,
							fmt.Sprintf("%s faults, p%d seed %d vs clean run", tc.name, ranks, seed))
						if r := distSolveCheck(t, a, f, seed); r > 1e-10 {
							t.Fatalf("%s/p%d/seed%d: residual %g", tc.name, ranks, seed, r)
						}
					}
				}
			}
		})
	}
}

// TestChaosAllClassesCombined piles every recoverable class into one plan,
// on a four-worker pool so every recovery path also runs concurrently.
func TestChaosAllClassesCombined(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	for _, seed := range chaosSeeds(t) {
		p := faults.DefaultChaos(seed)
		f, err := Factorize(a, Options{
			Ranks: 4, Workers: 4, GPUsPerNode: 1, Thresholds: &th,
			Faults:       &p,
			StallTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r := distSolveCheck(t, a, f, seed); r > 1e-10 {
			t.Fatalf("seed %d: residual %g", seed, r)
		}
	}
}

// TestChaosLostSignalRecovery drops the majority of announcements on a
// multi-rank run and requires the job to finish through the re-request
// protocol — observable retries, not a watchdog abort.
func TestChaosLostSignalRecovery(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	var sawReRequest bool
	for _, seed := range chaosSeeds(t) {
		f, err := Factorize(a, Options{
			Ranks:        4,
			Faults:       planWith(seed, faults.DropSignal, 0.6),
			StallTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f.Stats.Faults.DroppedSignals == 0 {
			t.Fatalf("seed %d: 0.6 drop rate injected nothing", seed)
		}
		if f.Stats.Faults.ReRequests > 0 {
			sawReRequest = true
			if f.Stats.Faults.Redeliveries == 0 {
				t.Fatalf("seed %d: re-requests without redeliveries: %s",
					seed, f.Stats.Faults)
			}
		}
		if r := distSolveCheck(t, a, f, seed); r > 1e-10 {
			t.Fatalf("seed %d: residual %g", seed, r)
		}
	}
	if !sawReRequest {
		t.Fatal("no seed exercised the re-request protocol at 0.6 drop rate")
	}
}

// TestChaosWatchdogLostSignalTaxonomy makes loss genuinely irrecoverable
// (every RPC dropped, including re-requests) and checks the watchdog's
// structured diagnosis: ErrStalled for the abort class, ErrLostSignal for
// the cause, and a health report naming the waiting ranks.
func TestChaosWatchdogLostSignalTaxonomy(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	_, err := Factorize(a, Options{
		Ranks:        4,
		Faults:       planWith(1, faults.DropSignal, 1.0),
		StallTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("total signal loss must stall the factorization")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled in chain", err)
	}
	if !errors.Is(err, ErrLostSignal) {
		t.Fatalf("err = %v, want ErrLostSignal in chain", err)
	}
	if !strings.Contains(err.Error(), "deps=") {
		t.Fatalf("diagnosis lacks the per-rank health report: %v", err)
	}
}

// TestChaosDeviceFailureDemotesToCPU kills every device at first touch; the
// job must finish on CPU kernels — even under FallbackError, which only
// guards genuine capacity OOM — and count the demotion.
func TestChaosDeviceFailureDemotesToCPU(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	for _, fb := range []gpu.FallbackPolicy{gpu.FallbackCPU, gpu.FallbackError} {
		f, err := Factorize(a, Options{
			Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
			Thresholds:   &th,
			Fallback:     fb,
			Faults:       planWith(5, faults.DeviceFail, 1.0),
			StallTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatalf("fallback=%v: mid-run device death must demote, got %v", fb, err)
		}
		if f.Stats.Faults.DeviceDemotions == 0 {
			t.Fatalf("fallback=%v: no demotion recorded: %s", fb, f.Stats.Faults)
		}
		if e := reconstructError(t, f, a); e > 1e-8 {
			t.Fatalf("fallback=%v: reconstruction error %g after demotion", fb, e)
		}
	}
}

// TestChaosTransientOOMNeverAborts injects transient allocation failures at
// rate 1 — every attempt fails, exhausting the retry budget — under
// FallbackError. Transient faults must fall back to the CPU silently; only
// genuine capacity OOM may abort.
func TestChaosTransientOOMNeverAborts(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	f, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
		Thresholds:   &th,
		Fallback:     gpu.FallbackError,
		Faults:       planWith(9, faults.TransientOOM, 1.0),
		StallTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("transient OOM must not abort under FallbackError: %v", err)
	}
	if f.Stats.Faults.AllocRetries == 0 {
		t.Fatalf("no alloc retries recorded: %s", f.Stats.Faults)
	}
	if e := reconstructError(t, f, a); e > 1e-8 {
		t.Fatalf("reconstruction error %g", e)
	}
}

// TestChaosGenuineOOMStillAborts guards the other side of the policy: with
// injection active but a truly undersized device, FallbackError must still
// abort — resilience must not swallow real capacity errors.
func TestChaosGenuineOOMStillAborts(t *testing.T) {
	a := gen.Flan3D(2, 2, 3, 1)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	_, err := Factorize(a, Options{
		Ranks: 2, RanksPerNode: 2, GPUsPerNode: 1,
		DeviceCapacity: 8,
		Thresholds:     &th,
		Fallback:       gpu.FallbackError,
		Faults:         planWith(3, faults.DelaySignal, 0.2),
		StallTimeout:   20 * time.Second,
	})
	if err == nil {
		t.Fatal("genuine OOM under FallbackError must abort even with chaos on")
	}
	if errors.Is(err, ErrTransient) {
		t.Fatalf("genuine OOM misclassified as transient: %v", err)
	}
}

// TestChaosDeterministicCounters runs the same seeded single-rank plan
// twice; with one rank and one worker the decision stream is fully ordered,
// so the injection counters must match exactly. (Workers is pinned to 1:
// the factor itself is deterministic under any pool size, but the *order*
// in which concurrent workers consult the injector is not, so counter
// equality is only guaranteed sequentially.)
func TestChaosDeterministicCounters(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	th := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	run := func() FaultStats {
		f, err := Factorize(a, Options{
			Ranks: 1, Workers: 1, GPUsPerNode: 1, Thresholds: &th,
			Faults:       planWith(11, faults.TransientOOM, 0.3),
			StallTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f.Stats.Faults
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed diverged: %s vs %s", s1, s2)
	}
	if s1.AllocRetries == 0 {
		t.Fatalf("0.3 OOM rate injected nothing: %s", s1)
	}
}

// TestChaosStatsStringAndAny covers the FaultStats presentation helpers.
func TestChaosStatsStringAndAny(t *testing.T) {
	var s FaultStats
	if s.Any() || s.String() != "no faults" {
		t.Fatalf("zero stats: Any=%v String=%q", s.Any(), s.String())
	}
	s.DroppedSignals = 2
	s.ReRequests = 1
	if !s.Any() {
		t.Fatal("non-zero stats must report Any")
	}
	var sum FaultStats
	sum.Add(s)
	sum.Add(s)
	if sum.DroppedSignals != 4 || sum.ReRequests != 2 {
		t.Fatalf("Add: %+v", sum)
	}
	if sum.String() == "no faults" {
		t.Fatal("non-zero stats must render counters")
	}
}
