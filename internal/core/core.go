// Package core implements symPACK's numeric phase: the asynchronous
// fan-out supernodal Cholesky factorization of paper §3 and the supernodal
// triangular solves, executed over the UPC++-style runtime in
// internal/upcxx with the GPU-offload behaviour of §4.
//
// Each rank owns the blocks the 2D block-cyclic map assigns to it, holds a
// local task queue (LTQ) of those blocks' tasks with dependency counters,
// and a ready task queue (RTQ). Completed diagonal and panel factorizations
// notify consumer ranks with an RPC carrying a global pointer; consumers
// poll, pull the data with a one-sided get, decrement dependencies, and
// move newly satisfied tasks to the RTQ — the protocol of paper Figs. 3–4.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sympack/internal/faults"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
	"sympack/internal/trace"
	"sympack/internal/upcxx"
)

// Options configures a factorization.
type Options struct {
	// Ranks is the number of UPC++ processes to simulate (default 1).
	Ranks int
	// Workers is the size of each rank's intra-rank worker pool: the
	// number of executor goroutines concurrently running ready tasks while
	// a dedicated progress goroutine serves communication. 1 selects the
	// sequential loop of paper Fig. 3. 0 means the default: the
	// SYMPACK_WORKERS environment variable if set, otherwise
	// GOMAXPROCS/Ranks (at least 1). The factor is bit-identical across
	// worker counts — update contributions are applied in a canonical
	// order regardless of completion interleaving.
	Workers int
	// RanksPerNode controls node locality in the communication model
	// (default: all ranks on one node).
	RanksPerNode int
	// GPUsPerNode enables GPU offload when > 0.
	GPUsPerNode int
	// DeviceCapacity bounds each device's memory in float64 elements
	// (0 = unbounded). Exercises the paper's fallback options.
	DeviceCapacity int64
	// Fallback selects the behaviour on device OOM (§4.2).
	Fallback gpu.FallbackPolicy
	// Thresholds are the per-operation GPU offload sizes; zero value
	// means gpu.DefaultThresholds.
	Thresholds *gpu.Thresholds
	// Machine is the platform cost model; zero value means Perlmutter.
	Machine *machine.Machine
	// Ordering selects the fill-reducing ordering (default: nested
	// dissection, the Scotch stand-in).
	Ordering ordering.Kind
	// Symbolic tunes supernode detection; zero value means
	// symbolic.DefaultOptions.
	Symbolic *symbolic.Options
	// Precision selects the kernel arithmetic: PrecFP64 (default) or
	// PrecFP32, the mixed-precision mode — single-precision POTRF / TRSM /
	// SYRK / GEMM on the CPU with fp64 storage and half the modeled wire
	// bytes, intended to be paired with SolveRefined's fp64 refinement.
	// When the fp32 pivots break down on a matrix that is SPD in fp64,
	// FactorizeAnalyzed transparently retries in fp64.
	Precision Precision
	// Scheduling selects the RTQ policy (paper §3.4 leaves this open:
	// "the next task ... is whichever one is at the top of the queue";
	// evaluating policies was flagged as future work, so all three are
	// provided). Default is FIFO.
	Scheduling SchedulingPolicy
	// Formulation selects the task formulation: which block's owner
	// computes each update (fan-out — the paper's choice and the default —
	// fan-in, or fan-both). All formulations produce bit-identical factors
	// for a given mapping because contributions are delivered per update
	// and applied in the canonical order; they differ in what travels on
	// the wire and where the update flops land.
	Formulation Formulation
	// Mapping selects the block→process distribution. The default 2D
	// block-cyclic map is the paper's choice (§3.3); the 1D column map is
	// provided to demonstrate the serial bottleneck it avoids, and the
	// subtree map assigns proportional process ranges over the
	// supernodal elimination tree.
	Mapping MappingKind
	// Trace, when non-nil, records every executed task for timeline and
	// load-balance analysis (Chrome trace-event export).
	Trace *trace.Recorder
	// StallTimeout aborts the factorization when no rank completes a task
	// for this long — a watchdog against scheduling deadlocks. Zero means
	// the 30s default; negative disables the watchdog.
	StallTimeout time.Duration
	// Faults, when non-nil and active, enables deterministic fault
	// injection: the plan's seed fixes every drop/dup/delay/transfer/OOM
	// decision, so chaos runs are reproducible. The solve phase reuses the
	// plan through a restricted injector (see SolveDistributed).
	Faults *faults.Plan
	// Context, when non-nil, bounds the factorization (and context-aware
	// solves): when it is canceled or its deadline expires, every rank
	// stops pulling new tasks and the call returns an error wrapping
	// ErrCanceled. Checks happen at task-pull boundaries, so the latency
	// from cancellation to return is one task execution, not one job.
	// Nil means no externally imposed bound (the stall watchdog still
	// applies). The context is consulted only during the call it
	// configures; long-lived holders of Options (caches, servers) should
	// clear it before reuse.
	Context context.Context
	// MetricsAddr, when non-empty, serves the live metrics registry over
	// HTTP for the duration of the factorization and afterwards (until
	// Factor.CloseMetrics): GET /metrics returns the Prometheus text
	// exposition of the merged per-rank registries, GET /healthz the JSON
	// health report the stall watchdog would print. Use "127.0.0.1:0" to
	// bind an ephemeral port (see Factor.MetricsAddr).
	MetricsAddr string
}

// MappingKind selects the block distribution; the kinds themselves live in
// internal/symbolic so the DES model shares them.
type MappingKind = symbolic.MappingKind

const (
	// Map2DCyclic is the paper's 2D block-cyclic distribution (default).
	Map2DCyclic = symbolic.Map2DCyclic
	// Map1DCols assigns whole supernode columns cyclically.
	Map1DCols = symbolic.Map1DCols
	// MapSubtree is the proportional subtree-to-process-range mapping.
	MapSubtree = symbolic.MapSubtree
)

// Formulation selects the task formulation (fan-out / fan-in / fan-both);
// shared with internal/symbolic and internal/des.
type Formulation = symbolic.Formulation

const (
	// FanOut computes updates at the target's owner (the paper's §3.2).
	FanOut = symbolic.FanOut
	// FanIn computes updates at the left source operand's owner and ships
	// the contribution to the target.
	FanIn = symbolic.FanIn
	// FanBoth computes updates at the transposed source operand's owner;
	// sources fan out to it and contributions fan in to the target.
	FanBoth = symbolic.FanBoth
)

// blockMapFor constructs the configured distribution (the subtree map
// consults the supernodal tree, hence the structure parameter).
func blockMapFor(kind MappingKind, p int, st *symbolic.Structure) symbolic.BlockMap {
	return symbolic.NewBlockMap(kind, p, st)
}

// SchedulingPolicy orders the ready task queue.
type SchedulingPolicy uint8

const (
	// SchedFIFO runs ready tasks oldest-first (the paper's default
	// top-of-queue behaviour).
	SchedFIFO SchedulingPolicy = iota
	// SchedLIFO runs the most recently readied task first, improving
	// cache locality at the cost of fairness.
	SchedLIFO
	// SchedCriticalPath runs the task whose supernode has the longest
	// remaining ancestor chain first, prioritizing the DAG's critical
	// path.
	SchedCriticalPath
)

func (p SchedulingPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedLIFO:
		return "lifo"
	case SchedCriticalPath:
		return "critical-path"
	default:
		return "policy?"
	}
}

func (o Options) withDefaults() Options {
	if o.Ranks < 1 {
		o.Ranks = 1
	}
	if o.Workers == 0 {
		if s := os.Getenv("SYMPACK_WORKERS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				o.Workers = v
			}
		}
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0) / o.Ranks
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Thresholds == nil {
		t := gpu.DefaultThresholds()
		o.Thresholds = &t
	}
	if o.Machine == nil {
		m := machine.Perlmutter()
		o.Machine = &m
	}
	if o.Symbolic == nil {
		s := symbolic.DefaultOptions()
		o.Symbolic = &s
	}
	if o.Ordering == 0 {
		o.Ordering = ordering.NestedDissection
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 30 * time.Second
	}
	return o
}

// OpStats counts kernel invocations split by execution target, the data of
// the paper's Fig. 6.
type OpStats struct {
	CPU [machine.NumOps]int64
	GPU [machine.NumOps]int64
}

// Add accumulates another counter set.
func (s *OpStats) Add(o OpStats) {
	for i := range s.CPU {
		s.CPU[i] += o.CPU[i]
		s.GPU[i] += o.GPU[i]
	}
}

// Total returns the total op count.
func (s *OpStats) Total() int64 {
	var t int64
	for i := range s.CPU {
		t += s.CPU[i] + s.GPU[i]
	}
	return t
}

// Stats reports what a factorization did.
type Stats struct {
	PerRank []OpStats // kernel counts per rank (Fig. 6 plots rank 0)

	// Workers is the per-rank executor pool size the run used (after
	// defaulting), for reports and the workers-scaling experiments.
	Workers int

	Wall         time.Duration // actual wall-clock time of the numeric phase
	ModelSeconds float64       // max over ranks of modeled virtual time

	NnzL       int64
	FactorFlop int64
	Supernodes int
	Blocks     int
	Updates    int

	FallbacksOOM int64 // device-OOM events that fell back to the CPU

	Faults FaultStats // injected faults and the recovery work they caused
}

// Factor is a completed Cholesky factorization PAPᵀ = LLᵀ.
type Factor struct {
	St   *symbolic.Structure
	Opt  Options
	Data [][]float64 // per global block ID, column-major, ld = block rows

	Stats      Stats
	SolveStats Stats // filled by Solve

	// Metrics is the merged job-wide metric registry: every rank's
	// instrumentation bundle reduced across ranks (counters and histogram
	// buckets summed, peak gauges maxed), plus the runtime, device, fault
	// and trace projections. Nil only when the factorization failed.
	Metrics *metrics.Registry

	msrv *metrics.Server // live /metrics endpoint; nil unless MetricsAddr was set
}

// MetricsAddr returns the bound address of the metrics endpoint ("" when
// Options.MetricsAddr was empty), with ephemeral ports resolved.
func (f *Factor) MetricsAddr() string {
	if f.msrv == nil {
		return ""
	}
	return f.msrv.Addr()
}

// CloseMetrics shuts down the metrics endpoint, if one is serving.
func (f *Factor) CloseMetrics() error {
	if f.msrv == nil {
		return nil
	}
	err := f.msrv.Close()
	f.msrv = nil
	return err
}

// ErrNotPositiveDefinite is re-exported for callers that only import core.
var ErrNotPositiveDefinite = errors.New("core: matrix is not positive definite")

// Factorize computes the sparse Cholesky factorization of the SPD matrix a
// using the fan-out distributed algorithm.
func Factorize(a *matrix.SparseSym, opt Options) (*Factor, error) {
	opt = opt.withDefaults()
	st, pa, err := symbolic.Analyze(a, opt.Ordering, *opt.Symbolic)
	if err != nil {
		return nil, err
	}
	return FactorizeAnalyzed(st, pa, opt)
}

// FactorizeAnalyzed factors a matrix whose symbolic analysis is already
// available (pa must be the permuted matrix returned by symbolic.Analyze).
// Reusing the analysis across factorizations of same-structure matrices is
// the pattern of the paper's PEXSI use case (§5.3).
//
// Under Options.Precision == PrecFP32, a breakdown of the single-precision
// pivots (ErrNotPositiveDefinite on a matrix that may well be SPD in fp64)
// triggers one transparent retry at full precision; the fallback is counted
// on the returned factor's registry as sympack_iter_fp32_fallbacks_total.
func FactorizeAnalyzed(st *symbolic.Structure, pa *matrix.SparseSym, opt Options) (*Factor, error) {
	f, err := factorizeAnalyzedOnce(st, pa, opt)
	if err != nil && opt.Precision == PrecFP32 && errors.Is(err, ErrNotPositiveDefinite) {
		opt.Precision = PrecFP64
		f, err = factorizeAnalyzedOnce(st, pa, opt)
		if err == nil && f.Metrics != nil {
			f.Metrics.Counter("sympack_iter_fp32_fallbacks_total",
				"factorizations retried in fp64 after fp32 pivot breakdown").Inc()
		}
	}
	return f, err
}

func factorizeAnalyzedOnce(st *symbolic.Structure, pa *matrix.SparseSym, opt Options) (*Factor, error) {
	opt = opt.withDefaults()
	if ctx := opt.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
		}
	}
	tg := symbolic.BuildTaskGraph(st)
	m2d := blockMapFor(opt.Mapping, opt.Ranks, st)

	inj := newInjector(opt)
	rt, err := upcxx.NewRuntime(upcxx.Config{
		Ranks:          opt.Ranks,
		RanksPerNode:   opt.RanksPerNode,
		GPUsPerNode:    opt.GPUsPerNode,
		Machine:        *opt.Machine,
		DeviceCapacity: opt.DeviceCapacity,
		Faults:         inj,
		Trace:          opt.Trace,
		ElemBytes:      opt.Precision.elemBytes(),
	})
	if err != nil {
		return nil, err
	}

	f := &Factor{St: st, Opt: opt, Data: make([][]float64, len(st.Blocks))}
	f.Stats.PerRank = make([]OpStats, opt.Ranks)
	f.Stats.Workers = opt.Workers
	f.Stats.NnzL = st.NnzL
	f.Stats.FactorFlop = st.FactorFlop
	f.Stats.Supernodes = st.NumSupernodes()
	f.Stats.Blocks = st.NumBlocks()
	f.Stats.Updates = len(tg.Updates)

	// The item directory covers blocks and — under contribution-delivering
	// formulations — one slot per update for the computed contribution
	// (item id = nBlocks + update index). Both ride the same signal / poll
	// / Rget / re-request protocol.
	dir := make([]upcxx.GlobalPtr, len(st.Blocks)+len(tg.Updates))
	engines := make([]*engine, opt.Ranks)
	// engMu orders engine-slot publication against the watchdog's health
	// snapshots; the slots themselves are written once, before the first
	// barrier.
	var engMu sync.Mutex

	var progress atomic.Int64
	stopWatch := startWatchdog(rt, &progress, opt.StallTimeout, func() error {
		engMu.Lock()
		rep := snapshotHealth(engines, rt)
		engMu.Unlock()
		err := fmt.Errorf("no task completed for %v; %s", opt.StallTimeout, rep)
		if rep.Waiting() && rep.ReRequested() {
			// Ranks still owe source blocks after exercising the
			// re-request protocol: announcements are irrecoverably lost.
			err = fmt.Errorf("%w: %w", ErrLostSignal, err)
		}
		return err
	})
	defer stopWatch()

	// The opt-in observability endpoint serves the live merged view while
	// the factorization runs; it survives the run (gatherLive stays valid)
	// until the caller invokes Factor.CloseMetrics.
	var msrv *metrics.Server
	if opt.MetricsAddr != "" {
		msrv, err = metrics.Serve(opt.MetricsAddr,
			func() metrics.Snapshot {
				return gatherLive(&engMu, engines, rt, inj, opt.Trace)
			},
			func() (any, bool) {
				engMu.Lock()
				rep := snapshotHealth(engines, rt)
				engMu.Unlock()
				// An aborting job is not healthy: probes see 503 with
				// the diagnosis body as soon as the first rank fails.
				return rep, !rt.ShouldAbort()
			})
		if err != nil {
			return nil, fmt.Errorf("core: metrics endpoint: %w", err)
		}
	}

	// merged is the cross-rank reduction of the per-rank registries,
	// captured on rank 0 inside the run (the reduction is a collective
	// over the runtime's AllReduce, so it must happen while all ranks are
	// still executing). Zero-valued when the job aborted.
	var mergedMu sync.Mutex
	var merged metrics.Snapshot

	start := machine.WallNow()
	totalTasks := int64(opt.Formulation.TaskCount(tg))
	err = rt.Run(func(r *upcxx.Rank) {
		e := newEngine(r, st, tg, pa, m2d, &opt, dir, engines)
		e.progress = &progress
		engMu.Lock()
		engines[r.ID] = e
		engMu.Unlock()
		e.setup()
		if err := r.Barrier(); err != nil {
			return
		}
		e.run()
		// A rank that finishes early must keep serving RPCs until every
		// rank is done: consumers whose announcements were lost direct
		// re-requests at this rank, and the barrier does not drain queues.
		e.drainUntil(&progress, totalTasks)
		if snap, rerr := r.ReduceSnapshot(e.met.reg.Snapshot()); rerr == nil && r.ID == 0 {
			mergedMu.Lock()
			merged = snap
			mergedMu.Unlock()
		}
		_ = r.Barrier()
	})
	f.Stats.Wall = machine.WallSince(start)
	f.Stats.Faults = runtimeFaultStats(rt)
	for _, e := range engines {
		if e == nil {
			continue
		}
		f.Stats.Faults.AllocRetries += int64(e.met.allocRetries.Value())
		f.Stats.Faults.DeviceDemotions += int64(e.met.gpuDemotions.Value())
	}
	if err != nil {
		if msrv != nil {
			msrv.Close()
		}
		return nil, err
	}
	// Assemble the job-wide registry: the reduced per-rank view, the
	// runtime's live series, and the export-time projections (runtime
	// stats, devices, faults, trace). Stats.Faults is then re-read out of
	// the registry — the metric names are the single source of truth.
	f.Metrics = metrics.NewRegistry()
	mergedMu.Lock()
	f.Metrics.Import(merged)
	mergedMu.Unlock()
	f.Metrics.Import(rt.Metrics().Snapshot())
	exportJob(f.Metrics, rt, inj, opt.Trace)
	f.Stats.Faults = faultStatsFrom(f.Metrics)
	f.msrv = msrv
	for _, e := range engines {
		f.Stats.PerRank[e.r.ID] = e.opStats()
		f.Stats.FallbacksOOM += int64(e.met.oomFallbacks.Value())
		if s := e.r.Elapsed(); s > f.Stats.ModelSeconds {
			f.Stats.ModelSeconds = s
		}
		for bid, data := range e.owned {
			if data != nil {
				f.Data[bid] = data
			}
		}
	}
	// Every block must have been produced.
	for bid := range f.Data {
		if f.Data[bid] == nil {
			f.CloseMetrics()
			return nil, fmt.Errorf("core: internal: block %d never factored", bid)
		}
	}
	return f, nil
}

// startWatchdog monitors a progress counter and fails the runtime when it
// stalls for longer than `timeout`. It returns a stop function; a
// non-positive timeout disables the watchdog entirely. The diag callback
// builds the diagnosis error at trip time; it is wrapped in ErrStalled, so
// a diag may add further sentinel errors (ErrLostSignal) for callers to
// branch on. Engines publish health through atomic mirrors, so the snapshot
// is race-free even mid-run.
func startWatchdog(rt *upcxx.Runtime, progress *atomic.Int64, timeout time.Duration, diag func() error) func() {
	if timeout <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		last := progress.Load()
		ticker := machine.NewWallTicker(timeout)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				cur := progress.Load()
				if cur == last {
					rt.Fail(fmt.Errorf("%w: %w", ErrStalled, diag()))
					return
				}
				last = cur
			}
		}
	}()
	return func() { close(done) }
}

// newInjector builds the factorization's fault injector, or nil when the
// plan is absent or inactive. The actor count covers both ranks and devices
// so every decision stream is independent.
func newInjector(opt Options) *faults.Injector {
	if opt.Faults == nil || !opt.Faults.Active() {
		return nil
	}
	rpn := opt.RanksPerNode
	if rpn <= 0 {
		rpn = opt.Ranks
	}
	nodes := (opt.Ranks + rpn - 1) / rpn
	actors := opt.Ranks
	if d := nodes * opt.GPUsPerNode; d > actors {
		actors = d
	}
	return faults.New(*opt.Faults, actors)
}

// snapshotHealth builds a HealthReport from the engines' metric gauges and
// the runtime's fault counters. Gauge reads are single atomic loads, so
// this is safe from the watchdog goroutine and the /healthz handler
// mid-run; unpublished engine slots (nil) are skipped.
func snapshotHealth(engines []*engine, rt *upcxx.Runtime) *HealthReport {
	rep := &HealthReport{Faults: runtimeFaultStats(rt)}
	for _, e := range engines {
		if e == nil {
			continue
		}
		rep.Faults.AllocRetries += int64(e.met.allocRetries.Value())
		rep.Faults.DeviceDemotions += int64(e.met.gpuDemotions.Value())
		rep.Ranks = append(rep.Ranks, RankHealth{
			Rank:            e.r.ID,
			Done:            int(e.met.tasksDone.Value()),
			Total:           int(e.met.tasksTotal.Value()),
			RTQDepth:        int(e.met.rtqDepth.Value()),
			Inbox:           int(e.met.inboxDepth.Value()),
			PendingRPCs:     e.r.PendingRPCs(),
			OutstandingDeps: int(e.met.wantedBlocks.Value()),
			ReRequests:      int64(e.met.reRequests.Value()),
		})
	}
	return rep
}

// ErrStalled is returned when the watchdog detects a scheduling deadlock.
var ErrStalled = errors.New("core: factorization stalled")

// blockDims returns (rows, cols) of a block's dense storage.
func blockDims(st *symbolic.Structure, b *symbolic.Block) (int, int) {
	return int(b.NRows), st.Snodes[b.Snode].NCols()
}

// L returns the factor value at global (permuted) position (i, j), for
// tests and diagnostics; O(log) lookups.
func (f *Factor) L(i, j int32) float64 {
	if i < j {
		return 0
	}
	st := f.St
	k := st.SnOf[j]
	rsn := st.SnOf[i]
	bid := st.FindBlock(rsn, k)
	if bid < 0 {
		return 0
	}
	b := &st.Blocks[bid]
	sn := &st.Snodes[k]
	rows := sn.Rows[b.RowOff : b.RowOff+b.NRows]
	// binary search row i
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(rows) || rows[lo] != i {
		return 0
	}
	col := int(j - sn.FirstCol)
	return f.Data[bid][lo+col*int(b.NRows)]
}
