package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"sympack/internal/des"
	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

// This file is the conformance battery pinning the scheduling-variant space
// (DESIGN.md §13): every (formulation × mapping) pair is driven through the
// randomized SPD property grid, the chaos grid, and the DES sweep, and must
// hold the guarantees the fan-out/2D baseline earned. CI's variant-matrix
// job shards the battery by exporting CONFORMANCE_FORMULATION and/or
// CONFORMANCE_MAPPING; locally the full grid runs.

// conformanceVariants returns the variant grid, narrowed by the
// CONFORMANCE_FORMULATION / CONFORMANCE_MAPPING environment variables when
// set (CI shards the battery per formulation without a code change).
func conformanceVariants(t *testing.T) []Variant {
	t.Helper()
	vs := Variants()
	if s := os.Getenv("CONFORMANCE_FORMULATION"); s != "" {
		f, err := symbolic.ParseFormulation(s)
		if err != nil {
			t.Fatalf("CONFORMANCE_FORMULATION=%q: %v", s, err)
		}
		keep := vs[:0]
		for _, v := range vs {
			if v.Formulation == f {
				keep = append(keep, v)
			}
		}
		vs = keep
	}
	if s := os.Getenv("CONFORMANCE_MAPPING"); s != "" {
		m, err := symbolic.ParseMapping(s)
		if err != nil {
			t.Fatalf("CONFORMANCE_MAPPING=%q: %v", s, err)
		}
		keep := vs[:0]
		for _, v := range vs {
			if v.Mapping == m {
				keep = append(keep, v)
			}
		}
		vs = keep
	}
	if len(vs) == 0 {
		t.Fatal("variant filter selected nothing")
	}
	return vs
}

// TestConformanceGridShape pins the variant space itself: three
// formulations × three mappings, every pair present exactly once, with
// stable parseable names — the contract the CI matrix and the CLI flags
// are built on.
func TestConformanceGridShape(t *testing.T) {
	vs := Variants()
	if len(vs) != 9 {
		t.Fatalf("Variants() = %d points, want 9", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.String()] {
			t.Fatalf("duplicate variant %s", v)
		}
		seen[v.String()] = true
		f, err := symbolic.ParseFormulation(v.Formulation.String())
		if err != nil || f != v.Formulation {
			t.Fatalf("formulation %q does not round-trip: %v", v.Formulation, err)
		}
		m, err := symbolic.ParseMapping(v.Mapping.String())
		if err != nil || m != v.Mapping {
			t.Fatalf("mapping %q does not round-trip: %v", v.Mapping, err)
		}
	}
}

// TestConformanceProperty is the centerpiece: a randomized SPD grid factored
// by every variant at workers {1,2,4} × ranks {1,4}. Each grid point must
// solve to 1e-10 and be bit-identical to the variant's own sequential
// reference (ConformanceCheck), and that reference must in turn be
// bit-identical to the fan-out/2D baseline factor — the strongest no
// schedule-order-leak statement available: not merely reproducible per
// variant, but the same bytes no matter which formulation computed each
// update or which process owned each block.
func TestConformanceProperty(t *testing.T) {
	cases := propCases(6, 20260808)

	// Baselines are computed once, before the parallel variant subtests
	// fork: the canonical fan-out/2D sequential factor per case.
	baselines := make([]*Factor, len(cases))
	for ci, c := range cases {
		a := gen.RandomSPD(c.n, c.density, c.seed)
		f, err := Factorize(a, Variant{FanOut, Map2DCyclic}.Apply(c.options(1, 1)))
		if err != nil {
			t.Fatalf("case %d baseline: %v", ci, err)
		}
		baselines[ci] = f
	}

	for _, v := range conformanceVariants(t) {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			for ci, c := range cases {
				a := gen.RandomSPD(c.n, c.density, c.seed)
				ref, err := ConformanceCheck(a, c.options(1, 1), v, ConformanceGrid{Seed: c.seed})
				if err != nil {
					t.Fatalf("case %d (n=%d d=%g sn=%d %s): %v", ci, c.n, c.density, c.maxSn, c.sched, err)
				}
				if err := SameFactor(baselines[ci], ref); err != nil {
					t.Fatalf("case %d: %s diverged from the fan-out/2d baseline: %v", ci, v, err)
				}
			}
		})
	}
}

// TestConformanceChaos crosses every variant with the signal-fault classes
// on a four-rank pool: the faulted run must recover to a factor that is
// bit-identical to the same variant's clean run — chaos may cost retries,
// never bits. The plans must actually fire (FaultStats.Any()), so a
// formulation that quietly stopped exercising the signal protocol would
// fail here rather than vacuously pass.
func TestConformanceChaos(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	classes := []struct {
		name string
		c    faults.Class
		rate float64
	}{
		{"drop", faults.DropSignal, 0.3},
		{"dup", faults.DupSignal, 0.3},
		{"delay", faults.DelaySignal, 0.4},
	}
	for _, v := range conformanceVariants(t) {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			clean, err := Factorize(a, v.Apply(Options{Ranks: 4, Workers: 2}))
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			for _, tc := range classes {
				for _, seed := range []int64{1, 2} {
					f, err := Factorize(a, v.Apply(Options{
						Ranks:        4,
						Workers:      2,
						Faults:       planWith(seed, tc.c, tc.rate),
						StallTimeout: 20 * time.Second,
					}))
					if err != nil {
						t.Fatalf("%s seed %d: %v", tc.name, seed, err)
					}
					if !f.Stats.Faults.Any() {
						t.Fatalf("%s seed %d: plan injected nothing", tc.name, seed)
					}
					if err := SameFactor(clean, f); err != nil {
						t.Fatalf("%s seed %d: faulted run diverged from clean run: %v", tc.name, seed, err)
					}
					if r := distSolveCheck(t, a, f, seed); r > 1e-10 {
						t.Fatalf("%s seed %d: residual %g", tc.name, seed, r)
					}
				}
			}
		})
	}
}

// TestConformanceDES drives every variant through the discrete-event
// simulator: each variant must simulate to finite positive times, be
// bit-deterministic across repeated runs, and sweep cleanly through the
// strong-scaling grid. The formulation axis must be visible to the model —
// delivering formulations ship per-update contributions, so their modeled
// communication volume must differ from fan-out's on a multi-rank layout.
func TestConformanceDES(t *testing.T) {
	a := gen.Laplace2D(16, 16)
	st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := symbolic.BuildTaskGraph(st)

	simulate := func(v Variant) des.Result {
		t.Helper()
		res, err := des.Simulate(st, tg, des.Config{
			Solver:       des.SymPACK,
			Nodes:        2,
			RanksPerNode: 4,
			GPUsPerNode:  2,
			Machine:      machine.Perlmutter(),
			Thresholds:   gpu.DefaultThresholds(),
			Formulation:  v.Formulation,
			Mapping:      v.Mapping,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		return res
	}

	fanOutBytes := map[MappingKind]int64{}
	for _, v := range conformanceVariants(t) {
		r1 := simulate(v)
		r2 := simulate(v)
		if r1.FactorSeconds <= 0 || r1.SolveSeconds <= 0 {
			t.Fatalf("%s: non-positive modeled times %+v", v, r1)
		}
		if r1 != r2 {
			t.Fatalf("%s: simulation not deterministic:\n  %+v\n  %+v", v, r1, r2)
		}
		if r1.CommBytes <= 0 {
			t.Fatalf("%s: no modeled communication on an 8-rank layout", v)
		}
		if v.Formulation == FanOut {
			fanOutBytes[v.Mapping] = r1.CommBytes
		} else if r1.CommBytes == fanOutBytes[v.Mapping] {
			t.Fatalf("%s: CommBytes %d identical to fan-out on the same mapping — contribution traffic not modeled",
				v, r1.CommBytes)
		}
	}

	// The sweep itself: a small strong-scaling grid per variant must
	// produce positive, reproducible points.
	for _, v := range conformanceVariants(t) {
		sweep := des.SweepConfig{
			Solver:      des.SymPACK,
			NodeCounts:  []int{1, 2},
			RPNChoices:  []int{2, 4},
			GPUsPerNode: 2,
			Machine:     machine.Perlmutter(),
			Thresholds:  gpu.DefaultThresholds(),
			Formulation: v.Formulation,
			Mapping:     v.Mapping,
		}
		p1, err := des.StrongScaling(st, tg, sweep)
		if err != nil {
			t.Fatalf("%s: sweep: %v", v, err)
		}
		p2, err := des.StrongScaling(st, tg, sweep)
		if err != nil {
			t.Fatalf("%s: sweep rerun: %v", v, err)
		}
		for i := range p1 {
			if p1[i].FactorSeconds <= 0 || p1[i].SolveSeconds <= 0 {
				t.Fatalf("%s nodes=%d: non-positive sweep point %+v", v, p1[i].Nodes, p1[i])
			}
			if p1[i] != p2[i] {
				t.Fatalf("%s nodes=%d: sweep not reproducible: %+v vs %+v", v, p1[i].Nodes, p1[i], p2[i])
			}
		}
	}
}

// TestConformanceTaskAccounting ties Options.Formulation to the engine's
// task ledger: the modeled task count (Formulation.TaskCount) must match
// what a real run executes, per formulation, on a problem with a known
// block census.
func TestConformanceTaskAccounting(t *testing.T) {
	a := gen.Laplace2D(9, 8)
	st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := symbolic.BuildTaskGraph(st)
	for _, form := range symbolic.Formulations() {
		want := len(st.Blocks) + len(tg.Updates)
		if form.DeliversContributions() {
			want += len(tg.Updates)
		}
		if got := form.TaskCount(tg); got != want {
			t.Fatalf("%s: TaskCount = %d, want %d", form, got, want)
		}
	}
	if fmt.Sprint(symbolic.Formulations()) != "[fan-out fan-in fan-both]" {
		t.Fatalf("Formulations() = %v", symbolic.Formulations())
	}
}
