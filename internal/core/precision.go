package core

import (
	"fmt"
	"strings"

	"sympack/internal/blas"
)

// Precision selects the arithmetic the factorization kernels run in.
type Precision uint8

const (
	// PrecFP64 is the default: double-precision kernels throughout.
	PrecFP64 Precision = iota
	// PrecFP32 runs POTRF/TRSM/SYRK/GEMM in single precision — every
	// product, sum and square root rounded to float32 — while keeping fp64
	// block storage and wire formats (values are fp32-rounded at each
	// kernel boundary, and the communication model charges 4 bytes per
	// element instead of 8). A factor computed this way carries ~1e-7
	// relative error; pair it with Factor.SolveRefined, whose fp64
	// residual loop restores double-precision accuracy — the classic
	// mixed-precision factor-then-refine scheme. If the fp32 pivots break
	// down on a matrix that is SPD in fp64, FactorizeAnalyzed retries the
	// whole factorization in fp64 (counted by
	// sympack_iter_fp32_fallbacks_total).
	PrecFP32
)

func (p Precision) String() string {
	switch p {
	case PrecFP64:
		return "fp64"
	case PrecFP32:
		return "fp32"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// ParsePrecision converts a command-line style name into a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(s) {
	case "", "fp64", "double", "f64":
		return PrecFP64, nil
	case "fp32", "single", "f32", "mixed":
		return PrecFP32, nil
	default:
		return PrecFP64, fmt.Errorf("core: unknown precision %q (want fp64 or fp32)", s)
	}
}

// elemBytes is the modeled wire width per element for the upcxx config.
func (p Precision) elemBytes() int {
	if p == PrecFP32 {
		return 4
	}
	return 0 // default: 8
}

// fp32 reports whether this engine runs single-precision kernels.
func (e *engine) fp32() bool { return e.opt.Precision == PrecFP32 }

// The four fp32 kernel adapters: demote the fp64 staging buffers to
// float32, run the single-precision kernel, promote the result back. The
// conversion points ARE the precision semantics — values between kernels
// live as fp32-rounded float64s, so the arithmetic matches an all-float32
// implementation at every kernel boundary while the engine's storage,
// scatter and wire formats stay unchanged. Conversions are deterministic
// (round-to-nearest-even, element-wise), so the fp32 factor inherits the
// engine's bit-identity across workers, ranks and schedules.

func potrf32(n int, data []float64) error {
	buf := make([]float32, len(data))
	blas.To32(buf, data)
	if err := blas.Potrf32(blas.Lower, n, buf, n); err != nil {
		return err
	}
	blas.From32(data, buf)
	return nil
}

func trsm32(m, n int, diag, data []float64) {
	d32 := make([]float32, len(diag))
	b32 := make([]float32, len(data))
	blas.To32(d32, diag)
	blas.To32(b32, data)
	blas.Trsm32(blas.Right, blas.Lower, blas.Transpose, m, n, 1, d32, n, b32, m)
	blas.From32(data, b32)
}

func syrk32(n, k int, a, scratch []float64) {
	a32 := make([]float32, len(a))
	c32 := make([]float32, len(scratch))
	blas.To32(a32, a)
	blas.Syrk32(blas.Lower, blas.NoTrans, n, k, 1, a32, n, 0, c32, n)
	blas.From32(scratch, c32)
}

func gemm32(m, n, k int, b, a, scratch []float64) {
	b32 := make([]float32, len(b))
	a32 := make([]float32, len(a))
	c32 := make([]float32, len(scratch))
	blas.To32(b32, b)
	blas.To32(a32, a)
	blas.Gemm32(blas.NoTrans, blas.Transpose, m, n, k, 1, b32, m, a32, n, 0, c32, m)
	blas.From32(scratch, c32)
}
