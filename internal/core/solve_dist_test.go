package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sympack/internal/gen"
)

func TestSolveDistributedMatchesSequential(t *testing.T) {
	for name, a := range testProblems() {
		for _, p := range []int{1, 2, 4, 7} {
			f, err := Factorize(a, Options{Ranks: p})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			rng := rand.New(rand.NewSource(3))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			seq, err := f.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := f.SolveDistributed(b)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			for i := range seq {
				if d := math.Abs(seq[i] - dist[i]); d > 1e-10*(1+math.Abs(seq[i])) {
					t.Fatalf("%s p=%d: x[%d] differs by %g", name, p, i, d)
				}
			}
			if r := ResidualNorm(a, dist, b); r > 1e-10 {
				t.Fatalf("%s p=%d: residual %g", name, p, r)
			}
		}
	}
}

func TestSolveDistributedStats(t *testing.T) {
	a := gen.Laplace3D(4, 4, 4)
	f, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if _, err := f.SolveDistributed(b); err != nil {
		t.Fatal(err)
	}
	if f.SolveStats.Wall <= 0 || f.SolveStats.ModelSeconds <= 0 {
		t.Fatalf("solve stats not populated: %+v", f.SolveStats)
	}
}

func TestSolveDistributedRHSLength(t *testing.T) {
	a := gen.Laplace2D(5, 5)
	f, err := Factorize(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveDistributed(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

// Property: distributed and sequential solves agree for random systems and
// rank counts.
func TestSolveDistributedProperty(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%25) + 1
		p := int(pRaw%6) + 1
		a := gen.RandomSPD(n, 0.25, seed)
		fac, err := Factorize(a, Options{Ranks: p})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 5))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := fac.SolveDistributed(b)
		if err != nil {
			return false
		}
		return ResidualNorm(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDistributedMulti(t *testing.T) {
	a := gen.Laplace2D(7, 7)
	f, err := Factorize(a, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	bs := make([][]float64, 3)
	for i := range bs {
		bs[i] = make([]float64, a.N)
		for j := range bs[i] {
			bs[i][j] = rng.NormFloat64()
		}
	}
	xs, err := f.SolveDistributedMulti(bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if r := ResidualNorm(a, xs[i], bs[i]); r > 1e-10 {
			t.Fatalf("rhs %d: residual %g", i, r)
		}
	}
	if _, err := f.SolveDistributedMulti([][]float64{make([]float64, 2)}); err == nil {
		t.Fatal("expected length error")
	}
}
