package core

import (
	"math"

	"sympack/internal/matrix"
	"sympack/internal/metrics"
)

// SolveRefined solves A·x = b and applies iterative refinement until the
// relative residual falls below tol or maxIter refinement steps have run.
// (The paper's PaStiX baseline ships refinement in its driver; symPACK
// leaves it to the application — this helper provides it for both.) It
// returns the solution, the final relative residual, and the number of
// refinement iterations performed.
func (f *Factor) SolveRefined(a *matrix.SparseSym, b []float64, tol float64, maxIter int) ([]float64, float64, int, error) {
	if tol <= 0 {
		tol = 1e-14
	}
	if maxIter < 0 {
		maxIter = 0
	}
	x, err := f.Solve(b)
	if err != nil {
		return nil, 0, 0, err
	}
	n := len(b)
	r := make([]float64, n)
	ax := make([]float64, n)
	res := func() float64 {
		a.MulVecTo(ax, x)
		var rr, bb float64
		for i := range b {
			r[i] = b[i] - ax[i]
			rr += r[i] * r[i]
			bb += b[i] * b[i]
		}
		if bb == 0 {
			return math.Sqrt(rr)
		}
		return math.Sqrt(rr / bb)
	}
	var sweeps *metrics.Counter
	if f.Metrics != nil {
		sweeps = f.Metrics.Counter("sympack_iter_refine_sweeps_total",
			"iterative-refinement sweeps performed by SolveRefined")
	}
	rel := res()
	iters := 0
	for ; iters < maxIter && rel > tol; iters++ {
		d, err := f.Solve(r)
		if err != nil {
			return nil, 0, iters, err
		}
		if sweeps != nil {
			sweeps.Inc()
		}
		for i := range x {
			x[i] += d[i]
		}
		prev := rel
		rel = res()
		if rel >= prev {
			// No further progress (already at working precision).
			break
		}
	}
	return x, rel, iters, nil
}
