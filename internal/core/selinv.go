package core

import (
	"fmt"
	"math"
)

// SelInv holds the selected inverse of a factored matrix: the entries of
// A⁻¹ at the positions of the Cholesky factor's sparsity pattern. This is
// the computation at the heart of PEXSI (paper §5.3: "evaluating specific
// elements of a matrix inverse without explicitly inverting the matrix");
// notably it includes the full diagonal of A⁻¹.
type SelInv struct {
	f *Factor
	// Scalar CSC pattern of L (permuted ordering) carrying Z = A⁻¹ values.
	colPtr []int64
	rowInd []int32
	z      []float64
	inv    []int32 // original → permuted index
}

// SelectedInverse computes A⁻¹ on the pattern of L using the
// Takahashi/Erisman–Tinney recurrence over the supernodal factor: with
// A = L₁·D·L₁ᵀ (unit lower L₁, D = diag(L)²),
//
//	Z[i,j] = −Σ_k L₁[k,j]·Z(max(i,k), min(i,k))        (i > j)
//	Z[j,j] = 1/D[j] − Σ_k L₁[k,j]·Z[k,j]
//
// where k ranges over the off-diagonal pattern of column j. Every Z entry
// the recurrence touches lies inside L's pattern (the same fill closure the
// factorization relies on), so the computation never leaves the selected
// set.
func (f *Factor) SelectedInverse() (*SelInv, error) {
	st := f.St
	n := st.N
	s := &SelInv{f: f, colPtr: make([]int64, n+1), inv: make([]int32, n)}
	for k := 0; k < n; k++ {
		s.inv[st.Perm[k]] = int32(k)
	}
	// Scalar pattern from the supernodal structure: column j's rows are
	// its supernode's rows from j down.
	for j := 0; j < n; j++ {
		sn := &st.Snodes[st.SnOf[j]]
		local := int(int32(j) - sn.FirstCol)
		s.colPtr[j+1] = s.colPtr[j] + int64(sn.NRows()-local)
	}
	nnz := s.colPtr[n]
	s.rowInd = make([]int32, nnz)
	s.z = make([]float64, nnz)
	l1 := make([]float64, nnz) // unit-lower factor values
	dinv := make([]float64, n) // 1/D[j]
	for j := 0; j < n; j++ {
		sn := &st.Snodes[st.SnOf[j]]
		local := int(int32(j) - sn.FirstCol)
		base := s.colPtr[j]
		blks := st.SnodeBlocks(st.SnOf[j])
		pos := base
		var diag float64
		for bi := range blks {
			b := &blks[bi]
			data := f.Data[b.ID]
			m := int(b.NRows)
			rows := sn.Rows[b.RowOff : b.RowOff+b.NRows]
			for x := 0; x < m; x++ {
				if rows[x] < int32(j) {
					continue
				}
				v := data[x+local*m]
				if rows[x] == int32(j) {
					diag = v
				}
				s.rowInd[pos] = rows[x]
				l1[pos] = v
				pos++
			}
		}
		if diag <= 0 || math.IsNaN(diag) {
			return nil, fmt.Errorf("core: selected inverse: bad pivot %g at column %d", diag, j)
		}
		dinv[j] = 1 / (diag * diag)
		inv := 1 / diag
		for p := base; p < pos; p++ {
			l1[p] *= inv // L₁ = L·diag(L)⁻¹; the diagonal becomes 1
		}
	}

	// zAt returns Z(i,k) with i ≥ k via binary search in column k.
	zAt := func(i, k int32) float64 {
		lo, hi := s.colPtr[k], s.colPtr[k+1]
		for lo < hi {
			mid := (lo + hi) / 2
			switch {
			case s.rowInd[mid] < i:
				lo = mid + 1
			case s.rowInd[mid] > i:
				hi = mid
			default:
				return s.z[mid]
			}
		}
		return 0 // structurally absent (cannot happen for in-pattern queries)
	}

	for j := n - 1; j >= 0; j-- {
		lo, hi := s.colPtr[j], s.colPtr[j+1]
		// Off-diagonal entries first (any order); each needs columns > j.
		for p := lo + 1; p < hi; p++ {
			i := s.rowInd[p]
			var sum float64
			for q := lo + 1; q < hi; q++ {
				k := s.rowInd[q]
				a, b := i, k
				if a < b {
					a, b = b, a
				}
				sum += l1[q] * zAt(a, b)
			}
			s.z[p] = -sum
		}
		// Diagonal, using this column's freshly computed entries.
		var sum float64
		for q := lo + 1; q < hi; q++ {
			sum += l1[q] * s.z[q]
		}
		s.z[lo] = dinv[j] - sum
	}
	return s, nil
}

// Diag returns the diagonal of A⁻¹ in the original (unpermuted) ordering —
// the quantity PEXSI extracts for electronic-structure calculations.
func (s *SelInv) Diag() []float64 {
	st := s.f.St
	d := make([]float64, st.N)
	for k := 0; k < st.N; k++ {
		d[st.Perm[k]] = s.z[s.colPtr[k]]
	}
	return d
}

// At returns the (i, j) entry of A⁻¹ in the original ordering, provided
// the (permuted) position lies in the factor's pattern; the second return
// reports whether it does. Entries outside the pattern are generally
// nonzero in A⁻¹ but are not part of the selected set.
func (s *SelInv) At(i, j int) (float64, bool) {
	st := s.f.St
	if i < 0 || i >= st.N || j < 0 || j >= st.N {
		return 0, false
	}
	pi, pj := int(s.inv[i]), int(s.inv[j])
	if pi < pj {
		pi, pj = pj, pi
	}
	lo, hi := s.colPtr[pj], s.colPtr[pj+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(s.rowInd[mid]) < pi:
			lo = mid + 1
		case int(s.rowInd[mid]) > pi:
			hi = mid
		default:
			return s.z[mid], true
		}
	}
	return 0, false
}

// Nnz returns the number of selected entries (lower triangle).
func (s *SelInv) Nnz() int64 { return s.colPtr[len(s.colPtr)-1] }
