package core

import (
	"fmt"
	"math"
	"math/rand"

	"sympack/internal/matrix"
)

// This file is the conformance contract of the scheduling-variant space
// (DESIGN.md §13): before a (formulation × mapping) pair may be raced in
// benchmarks it must hold the same guarantees the fan-out/2D baseline
// earned — bit-identical factors across worker and rank counts, residuals
// at direct-solver accuracy, and no schedule-order leak into the numerics.
// The helpers are exported so the conformance test battery, the CI
// variant-matrix job and cmd/benchfig all drive the same checks.

// Variant names one point in the scheduling-variant space.
type Variant struct {
	Formulation Formulation
	Mapping     MappingKind
}

func (v Variant) String() string {
	return v.Formulation.String() + "/" + v.Mapping.String()
}

// Apply returns opt with the variant's formulation and mapping selected.
func (v Variant) Apply(opt Options) Options {
	opt.Formulation = v.Formulation
	opt.Mapping = v.Mapping
	return opt
}

// Variants returns the full formulation × mapping grid, in deterministic
// order.
func Variants() []Variant {
	fs := []Formulation{FanOut, FanIn, FanBoth}
	ms := []MappingKind{Map2DCyclic, Map1DCols, MapSubtree}
	out := make([]Variant, 0, len(fs)*len(ms))
	for _, f := range fs {
		for _, m := range ms {
			out = append(out, Variant{Formulation: f, Mapping: m})
		}
	}
	return out
}

// ConformanceGrid is the execution grid a variant is checked over.
type ConformanceGrid struct {
	Workers     []int   // worker-pool sizes; nil means {1, 2, 4}
	Ranks       []int   // rank counts; nil means {1, 4}
	MaxResidual float64 // per-run ‖Ax−b‖/‖b‖ ceiling; 0 means 1e-10
	Seed        int64   // rhs seed for the residual checks; 0 means 1
}

func (g ConformanceGrid) withDefaults() ConformanceGrid {
	if g.Workers == nil {
		g.Workers = []int{1, 2, 4}
	}
	if g.Ranks == nil {
		g.Ranks = []int{1, 4}
	}
	if g.MaxResidual == 0 {
		g.MaxResidual = 1e-10
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	return g
}

// SameFactor reports whether two factors are identical at the IEEE-754 bit
// level, block by block. Plain == would conflate 0 and -0; the determinism
// contract is about reproducible bytes, not numeric closeness.
func SameFactor(ref, f *Factor) error {
	if len(ref.Data) != len(f.Data) {
		return fmt.Errorf("factor shape: %d vs %d blocks", len(ref.Data), len(f.Data))
	}
	for bid := range ref.Data {
		a, b := ref.Data[bid], f.Data[bid]
		if len(a) != len(b) {
			return fmt.Errorf("block %d: %d vs %d elements", bid, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return fmt.Errorf("block %d elem %d: %v vs %v (bits %x vs %x)",
					bid, i, a[i], b[i], math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
	return nil
}

// conformanceResidual factors nothing — it solves A·x = b for a seeded
// random exact solution and returns the relative residual.
func conformanceResidual(a *matrix.SparseSym, f *Factor, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, err := f.Solve(b)
	if err != nil {
		return math.Inf(1), err
	}
	return ResidualNorm(a, x, b), nil
}

// ConformanceCheck verifies the conformance contract for one variant on
// one matrix: the matrix is factored at every (workers × ranks) point of
// the grid, every run must solve to the residual ceiling, and every factor
// must be bit-identical to the grid's first point (the reference, normally
// workers=1 ranks=1 — the sequential schedule). The returned reference
// factor lets callers make cross-variant assertions on top. Any violation
// returns a descriptive error naming the offending grid point.
func ConformanceCheck(a *matrix.SparseSym, base Options, v Variant, grid ConformanceGrid) (*Factor, error) {
	grid = grid.withDefaults()
	opt := v.Apply(base)
	var ref *Factor
	for _, ranks := range grid.Ranks {
		for _, workers := range grid.Workers {
			o := opt
			o.Ranks = ranks
			o.Workers = workers
			f, err := Factorize(a, o)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d ranks=%d: %w", v, workers, ranks, err)
			}
			r, err := conformanceResidual(a, f, grid.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d ranks=%d: solve: %w", v, workers, ranks, err)
			}
			if r > grid.MaxResidual {
				return nil, fmt.Errorf("%s workers=%d ranks=%d: residual %g > %g",
					v, workers, ranks, r, grid.MaxResidual)
			}
			if ref == nil {
				ref = f
				continue
			}
			if err := SameFactor(ref, f); err != nil {
				return nil, fmt.Errorf("%s workers=%d ranks=%d diverged from reference: %w",
					v, workers, ranks, err)
			}
		}
	}
	return ref, nil
}
