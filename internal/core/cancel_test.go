package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/machine"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

func TestFactorizeCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := gen.Laplace2D(6, 6)
	f, err := Factorize(a, Options{Context: ctx})
	if f != nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("Factorize with pre-canceled context: f=%v err=%v, want ErrCanceled", f, err)
	}
}

// TestFactorizeDeadlineMidRun cancels a deliberately slowed factorization
// mid-flight: every loop must stop at its next task-pull boundary, so the
// call returns ErrCanceled long before the stall-injected run would have
// finished. The worker-pool and sequential paths both carry checks, so both
// are exercised, as is a multi-rank job where only one rank needs to detect
// the cancellation for the abort to fan out.
func TestFactorizeDeadlineMidRun(t *testing.T) {
	a := gen.Laplace2D(16, 16)
	// Rate-1 stalls of 2ms on every runtime operation make the full run
	// take tens of seconds — if cancellation failed, the generous elapsed
	// bound below would still trip.
	plan := planWith(1, faults.RankStall, 1)
	plan.StallWindow = 2 * time.Millisecond
	// Stalls are injected in Progress(), so the sequential loop (which
	// polls between tasks) and multi-rank pools (whose dependencies flow
	// through the stalled progress goroutines) are slowed; a single-rank
	// pool would not be, and is covered by the r2 cases' workerLoops.
	for _, tc := range []struct{ ranks, workers int }{
		{1, 1}, {2, 2}, {2, 4},
	} {
		t.Run(fmt.Sprintf("r%dw%d", tc.ranks, tc.workers), func(t *testing.T) {
			// The deadline expires before the first cross-rank
			// announcement can be delivered (delivery rides a Progress
			// call, which the plan stalls for 2ms), so no variant can
			// outrun it to completion.
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			start := machine.WallNow()
			f, err := Factorize(a, Options{
				Ranks:   tc.ranks,
				Workers: tc.workers,
				Faults:  plan,
				Context: ctx,
			})
			elapsed := machine.WallSince(start)
			if f != nil || !errors.Is(err, ErrCanceled) {
				t.Fatalf("f=%v err=%v, want ErrCanceled", f, err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v, want prompt return after the 1ms deadline", elapsed)
			}
		})
	}
}

// TestCanceledRunLeavesAnalysisReusable pins the cache-consistency contract
// sympackd relies on: a factorization aborted by its context must leave the
// symbolic analysis untouched, so a follow-up factorization from the same
// analysis succeeds and solves correctly.
func TestCanceledRunLeavesAnalysisReusable(t *testing.T) {
	a := gen.Laplace2D(12, 12)
	st, pa, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := planWith(2, faults.RankStall, 1)
	plan.StallWindow = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := FactorizeAnalyzed(st, pa, Options{Faults: plan, Context: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("slowed run: err=%v, want ErrCanceled", err)
	}
	f, err := FactorizeAnalyzed(st, pa, Options{})
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if res := ResidualNorm(a, x, b); res > 1e-10 {
		t.Fatalf("residual after retried factorization = %g", res)
	}
}

func TestSolveCtxCanceled(t *testing.T) {
	a := gen.Laplace2D(8, 8)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.SolveCtx(ctx, b); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveCtx with canceled context: err=%v, want ErrCanceled", err)
	}
	if _, err := f.SolveMultiCtx(ctx, [][]float64{b, b}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveMultiCtx with canceled context: err=%v, want ErrCanceled", err)
	}
	// A nil context means no bound; a live context solves normally.
	x, err := f.SolveCtx(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res := ResidualNorm(a, x, b); res > 1e-10 {
		t.Fatalf("residual = %g", res)
	}
}
