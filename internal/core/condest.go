package core

import (
	"math"

	"sympack/internal/matrix"
)

// CondEst1 estimates the 1-norm condition number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁ of the
// factored matrix using Hager's algorithm (as refined by Higham, the LAPACK
// xLACON approach): ‖A⁻¹‖₁ is estimated from a few applications of A⁻¹ —
// i.e., solves against the factor — without ever forming the inverse.
// The estimate is a lower bound that is almost always within a small factor
// of the truth; it is the standard way to assess solvability after a
// factorization.
func (f *Factor) CondEst1(a *matrix.SparseSym) (float64, error) {
	normA := onesNorm(a)
	normInv, err := f.invNormEst1(a.N)
	if err != nil {
		return 0, err
	}
	return normA * normInv, nil
}

// onesNorm computes ‖A‖₁ = max column sum of absolute values for the
// symmetric operator.
func onesNorm(a *matrix.SparseSym) float64 {
	sums := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := int(a.RowInd[p])
			v := math.Abs(a.Val[p])
			sums[j] += v
			if i != j {
				sums[i] += v
			}
		}
	}
	var m float64
	for _, s := range sums {
		if s > m {
			m = s
		}
	}
	return m
}

// invNormEst1 runs Hager's iteration for ‖A⁻¹‖₁. A is symmetric, so the
// transpose solves of the general algorithm collapse onto Solve.
func (f *Factor) invNormEst1(n int) (float64, error) {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		y, err := f.Solve(x) // y = A⁻¹x
		if err != nil {
			return 0, err
		}
		newEst := norm1Vec(y)
		// ξ = sign(y); z = A⁻ᵀξ = A⁻¹ξ by symmetry.
		xi := make([]float64, n)
		for i, v := range y {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		z, err := f.Solve(xi)
		if err != nil {
			return 0, err
		}
		// Pick the most promising unit vector for the next sweep.
		jBest, zBest := 0, math.Abs(z[0])
		for i := 1; i < n; i++ {
			if av := math.Abs(z[i]); av > zBest {
				jBest, zBest = i, av
			}
		}
		if newEst <= est || zBest <= dot1(z, x) {
			if newEst > est {
				est = newEst
			}
			break
		}
		est = newEst
		for i := range x {
			x[i] = 0
		}
		x[jBest] = 1
	}
	// Higham's final safeguard: an alternating "staircase" probe catches
	// adversarial cases the iteration misses.
	v := make([]float64, n)
	for i := range v {
		s := 1.0
		if i%2 == 1 {
			s = -1
		}
		v[i] = s * (1 + float64(i)/float64(max(n-1, 1)))
	}
	w, err := f.Solve(v)
	if err != nil {
		return 0, err
	}
	if alt := 2 * norm1Vec(w) / (3 * float64(n)); alt > est {
		est = alt
	}
	return est, nil
}

func norm1Vec(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

func dot1(z, x []float64) float64 {
	var s float64
	for i := range z {
		s += z[i] * x[i]
	}
	return math.Abs(s)
}
