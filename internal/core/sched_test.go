package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sympack/internal/gen"
	"sympack/internal/machine"
	"sympack/internal/symbolic"
	"sympack/internal/trace"
	"sympack/internal/upcxx"
)

// All scheduling policies must produce bit-identical factors: the policy
// changes execution order, never the mathematics — and the ordered-apply
// machinery pins the floating-point summation order, so "identical" here is
// exact, not within a tolerance.
func TestSchedulingPoliciesAgree(t *testing.T) {
	a := gen.Bone3D(6, 6, 6, 0.3, 4)
	var ref *Factor
	for _, pol := range []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath} {
		f, err := Factorize(a, Options{Ranks: 4, Scheduling: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if ref == nil {
			ref = f
			continue
		}
		for bid := range f.Data {
			for i := range f.Data[bid] {
				if math.Float64bits(f.Data[bid][i]) != math.Float64bits(ref.Data[bid][i]) {
					t.Fatalf("%v: block %d elem %d differs: %v vs %v",
						pol, bid, i, f.Data[bid][i], ref.Data[bid][i])
				}
			}
		}
	}
}

// TestPopOrdering exercises engine.pop directly, under every task
// formulation: for each policy, tasks pushed in a known order must pop in
// the policy's order, and — the historical bug this pins down — the
// critical-path order must be a strict total order independent of push
// order, not a first-max scan whose tie-break leaked the queue's memory
// layout. The delivering formulations add the apply kind to the ready set,
// so the tie-break chain (depth, kind, id) is checked over all four task
// kinds, not just the fan-out three.
func TestPopOrdering(t *testing.T) {
	a := gen.Laplace2D(6, 5)
	base := Options{}.withDefaults()
	sym := *base.Symbolic
	sym.MaxSupernodeSize = 3 // several supernodes at equal chain depth
	st, _, err := symbolic.Analyze(a, base.Ordering, sym)
	if err != nil {
		t.Fatal(err)
	}
	tg := symbolic.BuildTaskGraph(st)

	for _, form := range symbolic.Formulations() {
		form := form
		t.Run(form.String(), func(t *testing.T) {
			var all []task
			for bi := range st.Blocks {
				b := &st.Blocks[bi]
				all = append(all, task{kind: taskFor(b), id: b.ID})
			}
			for ui := range tg.Updates {
				all = append(all, task{kind: taskUpdate, id: int32(ui)})
			}
			if form.DeliversContributions() {
				for ui := range tg.Updates {
					all = append(all, task{kind: taskApply, id: int32(ui)})
				}
			}
			if len(all) < 10 {
				t.Fatalf("problem too small to exercise ordering: %d tasks", len(all))
			}

			drain := func(pol SchedulingPolicy, reversed bool) ([]task, *engine) {
				o := Options{Scheduling: pol, Workers: 1, Formulation: form}
				e := newEngine(nil, st, tg, nil, symbolic.NewMap2D(1), &o, nil, nil)
				if pol == SchedCriticalPath {
					e.chainDepth = chainDepths(st)
				}
				for i := range all {
					k := i
					if reversed {
						k = len(all) - 1 - i
					}
					e.push(all[k].kind, all[k].id)
				}
				out := make([]task, 0, len(all))
				for {
					tk, ok := e.pop()
					if !ok {
						break
					}
					out = append(out, tk)
				}
				return out, e
			}

			sameTask := func(x, y task) bool { return x.kind == y.kind && x.id == y.id }

			// FIFO pops in push order; LIFO in reverse push order.
			fifo, _ := drain(SchedFIFO, false)
			for i := range fifo {
				if !sameTask(fifo[i], all[i]) {
					t.Fatalf("FIFO pop %d = %+v, want %+v", i, fifo[i], all[i])
				}
			}
			lifo, _ := drain(SchedLIFO, false)
			for i := range lifo {
				want := all[len(all)-1-i]
				if !sameTask(lifo[i], want) {
					t.Fatalf("LIFO pop %d = %+v, want %+v", i, lifo[i], want)
				}
			}

			// Critical path: nonincreasing priority under the comparator —
			// depth descending, ties broken by kind (diag < factor < update
			// < apply) then id.
			cp, e := drain(SchedCriticalPath, false)
			for i := 1; i < len(cp); i++ {
				prev, cur := cp[i-1], cp[i]
				if e.before(cur, prev) {
					t.Fatalf("critical-path pop %d out of order: %+v before %+v", i, cur, prev)
				}
				if prev.depth == cur.depth && prev.kind == cur.kind && prev.id >= cur.id {
					t.Fatalf("tie-break violated at pop %d: %+v then %+v", i, prev, cur)
				}
			}
			// ... and the same total order no matter how tasks were pushed.
			cpRev, _ := drain(SchedCriticalPath, true)
			for i := range cp {
				if !sameTask(cp[i], cpRev[i]) {
					t.Fatalf("critical-path order depends on push order at %d: %+v vs %+v",
						i, cp[i], cpRev[i])
				}
			}
		})
	}
}

func TestSchedulingPoliciesSolve(t *testing.T) {
	a := gen.Thermal2D(20, 20, 2, 5)
	rng := rand.New(rand.NewSource(6))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, pol := range []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath} {
		f, err := Factorize(a, Options{Ranks: 3, Scheduling: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		x, err := f.SolveDistributed(b)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if r := ResidualNorm(a, x, b); r > 1e-10 {
			t.Fatalf("%v: residual %g", pol, r)
		}
	}
}

func TestChainDepths(t *testing.T) {
	a := gen.Laplace2D(8, 8)
	opt := Options{}.withDefaults()
	st, _, err := symbolic.Analyze(a, opt.Ordering, *opt.Symbolic)
	if err != nil {
		t.Fatal(err)
	}
	depth := chainDepths(st)
	for k := range st.Snodes {
		p := st.SnParent[k]
		if p == -1 {
			if depth[k] != 0 {
				t.Fatalf("root supernode %d has depth %d", k, depth[k])
			}
		} else if depth[k] != depth[p]+1 {
			t.Fatalf("supernode %d depth %d, parent %d depth %d", k, depth[k], p, depth[p])
		}
	}
}

func TestSchedulingPolicyString(t *testing.T) {
	for _, pol := range []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath} {
		if pol.String() == "policy?" {
			t.Fatalf("missing name for %d", pol)
		}
	}
}

// Both mappings must produce identical factors and working solves; the 1D
// map exists only as the performance comparison of §3.3.
func TestMappingKindsAgree(t *testing.T) {
	a := gen.Flan3D(2, 2, 3, 4)
	ref, err := Factorize(a, Options{Ranks: 4, Mapping: Map2DCyclic})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(a, Options{Ranks: 4, Mapping: Map1DCols})
	if err != nil {
		t.Fatal(err)
	}
	for bid := range f.Data {
		for i := range f.Data[bid] {
			if d := math.Abs(f.Data[bid][i] - ref.Data[bid][i]); d > 1e-9 {
				t.Fatalf("mapping changed numerics: block %d differs by %g", bid, d)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := f.SolveDistributed(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, x, b); r > 1e-10 {
		t.Fatalf("1d-mapped solve residual %g", r)
	}
}

func TestMappingKindString(t *testing.T) {
	if Map2DCyclic.String() == "" || Map1DCols.String() == "" {
		t.Fatal("mapping names")
	}
}

func TestFactorizationTracing(t *testing.T) {
	rec := trace.New()
	a := gen.Laplace2D(10, 10)
	f, err := Factorize(a, Options{Ranks: 3, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	// One event per task: D per supernode, F per off-diagonal block, U per
	// update.
	want := f.Stats.Supernodes + (f.Stats.Blocks - f.Stats.Supernodes) + f.Stats.Updates
	if rec.Len() != want {
		t.Fatalf("trace has %d events, want %d", rec.Len(), want)
	}
	sum := rec.Summary()
	kinds := map[string]bool{}
	for _, s := range sum {
		kinds[s.Kind] = true
	}
	for _, k := range []string{"D", "F", "U"} {
		if !kinds[k] {
			t.Fatalf("missing kind %s in %v", k, sum)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace output")
	}
	if len(rec.RankUtilization()) == 0 {
		t.Fatal("no utilization data")
	}
}

// The watchdog must trip on a stalled runtime and stay quiet on a live one.
func TestWatchdog(t *testing.T) {
	rt, err := upcxx.NewRuntime(upcxx.Config{Ranks: 1, Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	var progress atomic.Int64
	stop := startWatchdog(rt, &progress, 10*time.Millisecond, func() error { return errors.New("diag") })
	defer stop()
	time.Sleep(40 * time.Millisecond)
	if !rt.ShouldAbort() {
		t.Fatal("watchdog did not trip on stalled progress")
	}
	if !errors.Is(rt.Err(), ErrStalled) {
		t.Fatalf("err = %v", rt.Err())
	}

	// A progressing counter must not trip.
	rt2, _ := upcxx.NewRuntime(upcxx.Config{Ranks: 1, Machine: machine.Perlmutter()})
	var p2 atomic.Int64
	stop2 := startWatchdog(rt2, &p2, 15*time.Millisecond, func() error { return nil })
	for i := 0; i < 6; i++ {
		p2.Add(1)
		time.Sleep(8 * time.Millisecond)
	}
	stop2()
	if rt2.ShouldAbort() {
		t.Fatal("watchdog tripped despite progress")
	}

	// Disabled watchdog is a no-op.
	rt3, _ := upcxx.NewRuntime(upcxx.Config{Ranks: 1, Machine: machine.Perlmutter()})
	stop3 := startWatchdog(rt3, &p2, -1, func() error { return nil })
	stop3()
	if rt3.ShouldAbort() {
		t.Fatal("disabled watchdog aborted")
	}
}
