package core

import (
	"fmt"
	"runtime"
	"time"

	"sympack/internal/blas"
	"sympack/internal/faults"
	"sympack/internal/machine"
	"sympack/internal/metrics"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
	"sympack/internal/upcxx"
)

// SolveDistributed solves A·x = b with the supernodal triangular solves
// executed across the factorization's rank layout: forward substitution
// fans each solved supernode segment out to its panel-block owners, whose
// contributions fan in (as aggregate vectors, §2.3's second message kind)
// to the diagonal owners of the target supernodes; the backward pass runs
// the mirror-image dataflow. Communication uses the same RPC-notification
// machinery as the factorization.
func (f *Factor) SolveDistributed(b []float64) ([]float64, error) {
	st := f.St
	n := st.N
	if len(b) != n {
		return nil, fmt.Errorf("core: rhs length %d, want %d", len(b), n)
	}
	opt := f.Opt
	// The solve's one-shot aggregate-vector RPCs are not idempotent the way
	// the factorization's announcements are, so only generic faults (delays,
	// failing transfers, rank stalls) are injected; drop/dup target the
	// factor-announcement protocol and would wedge or corrupt a solve.
	inj := newInjector(opt).Restrict(
		faults.DelaySignal, faults.TransientTransfer, faults.RankStall)
	rt, err := upcxx.NewRuntime(upcxx.Config{
		Ranks:        opt.Ranks,
		RanksPerNode: opt.RanksPerNode,
		GPUsPerNode:  opt.GPUsPerNode,
		Machine:      *opt.Machine,
		Faults:       inj,
		Trace:        opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	m2d := blockMapFor(opt.Mapping, opt.Ranks, st)

	// Permute the RHS into factor ordering (read-only shared).
	bp := make([]float64, n)
	for k := 0; k < n; k++ {
		bp[k] = b[st.Perm[k]]
	}
	// Output in factor ordering; each position written by exactly one
	// diagonal owner, read after the final barrier.
	xp := make([]float64, n)

	// Global reverse index: blocks grouped by their row supernode,
	// excluding diagonal blocks (needed by the backward fan-out).
	blocksByRowSn := make([][]int32, st.NumSupernodes())
	for bi := range st.Blocks {
		bl := &st.Blocks[bi]
		if !bl.IsDiag() {
			blocksByRowSn[bl.RowSn] = append(blocksByRowSn[bl.RowSn], bl.ID)
		}
	}

	engines := make([]*solveEngine, opt.Ranks)
	start := machine.WallNow()
	err = rt.Run(func(r *upcxx.Rank) {
		e := newSolveEngine(r, f, m2d, bp, xp, blocksByRowSn, engines)
		engines[r.ID] = e
		e.setup()
		if err := r.Barrier(); err != nil {
			return
		}
		e.loop()
		_ = r.Barrier()
	})
	if err != nil {
		return nil, err
	}
	f.SolveStats.Wall = machine.WallSince(start)
	f.SolveStats.ModelSeconds = 0
	f.SolveStats.Faults.Add(runtimeFaultStats(rt))
	// Fold the solve phase's communication into the job-wide registry.
	// The projection goes through a scratch registry so Import's merge
	// semantics apply (counters add, peak gauges take the max) instead of
	// ExportStats clobbering the factorization's device gauges.
	if f.Metrics != nil {
		scratch := metrics.NewRegistry()
		rt.ExportStats(scratch)
		f.Metrics.Import(scratch.Snapshot())
		f.Metrics.Import(rt.Metrics().Snapshot())
	}
	for _, e := range engines {
		if s := e.r.Elapsed(); s > f.SolveStats.ModelSeconds {
			f.SolveStats.ModelSeconds = s
		}
	}
	// Permute back to the original ordering.
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[st.Perm[k]] = xp[k]
	}
	return x, nil
}

// SolveDistributedMulti runs the distributed solve for several right-hand
// sides in sequence, reusing the factor.
func (f *Factor) SolveDistributedMulti(bs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		x, err := f.SolveDistributed(b)
		if err != nil {
			return nil, fmt.Errorf("core: rhs %d: %w", i, err)
		}
		out[i] = x
	}
	return out, nil
}

// solveTask identifies one unit of solve work on a rank.
type solveTask struct {
	kind solveTaskKind
	id   int32 // supernode for diag tasks, block id for panel tasks
}

type solveTaskKind uint8

const (
	fwdDiag solveTaskKind = iota // y_k = L_kk⁻¹ b_k
	fwdBlk                       // contribution L_{i,k}·y_k → supernode i
	bwdDiag                      // x_k = L_kkᵀ⁻¹ (y_k − Σ contributions)
	bwdBlk                       // contribution L_{i,k}ᵀ·x_i → supernode k
)

type solveEngine struct {
	r     *upcxx.Rank
	f     *Factor
	st    *symbolic.Structure
	m2d   symbolic.BlockMap
	bp    []float64 // shared read-only permuted RHS
	xp    []float64 // shared output (disjoint writes per diag owner)
	byRow [][]int32
	peers []*solveEngine

	// Diagonal-owner state, keyed by supernode.
	bk       map[int32][]float64 // accumulating RHS segment
	yk       map[int32][]float64 // forward solution segment
	xk       map[int32][]float64 // backward solution segment
	fwdCount map[int32]int32     // remaining incoming forward contributions
	bwdCount map[int32]int32     // remaining contributions + own forward

	// Panel-owner state: solved segments received for consumption.
	ySeg map[int32][]float64 // supernode → y_k (for fwdBlk of column k)
	xSeg map[int32][]float64 // supernode → x_i (for bwdBlk with RowSn i)

	rtq   []solveTask
	total int
	done  int
}

// segOwner returns the rank owning supernode k's RHS segment. Segments are
// distributed 1D-cyclically: the 2D block map would place every diagonal
// block on the process grid's diagonal (few distinct ranks), serializing
// the solve's diagonal chain.
func (e *solveEngine) segOwner(k int32) int { return int(k) % len(e.peers) }

func newSolveEngine(r *upcxx.Rank, f *Factor, m2d symbolic.BlockMap, bp, xp []float64, byRow [][]int32, peers []*solveEngine) *solveEngine {
	return &solveEngine{
		r: r, f: f, st: f.St, m2d: m2d, bp: bp, xp: xp, byRow: byRow, peers: peers,
		bk: map[int32][]float64{}, yk: map[int32][]float64{}, xk: map[int32][]float64{},
		fwdCount: map[int32]int32{}, bwdCount: map[int32]int32{},
		ySeg: map[int32][]float64{}, xSeg: map[int32][]float64{},
	}
}

// setup initializes counters and seeds ready tasks.
func (e *solveEngine) setup() {
	st := e.st
	for k := 0; k < st.NumSupernodes(); k++ {
		kk := int32(k)
		ownDiag := e.segOwner(kk) == e.r.ID
		nOff := len(st.SnodeBlocks(kk)) - 1
		if ownDiag {
			sn := &st.Snodes[k]
			seg := make([]float64, sn.NCols())
			copy(seg, e.bp[sn.FirstCol:int(sn.FirstCol)+sn.NCols()])
			e.bk[kk] = seg
			e.fwdCount[kk] = int32(len(e.byRow[k])) // blocks feeding this supernode
			e.bwdCount[kk] = int32(nOff) + 1        // column blocks + own forward
			e.total += 2                            // fwdDiag + bwdDiag
			if e.fwdCount[kk] == 0 {
				e.push(fwdDiag, kk)
			}
		}
	}
	for bi := range st.Blocks {
		bl := &st.Blocks[bi]
		if bl.IsDiag() || symbolic.OwnerOfBlock(e.m2d, bl) != e.r.ID {
			continue
		}
		e.total += 2 // fwdBlk + bwdBlk
	}
}

func (e *solveEngine) push(kind solveTaskKind, id int32) {
	e.rtq = append(e.rtq, solveTask{kind: kind, id: id})
}

func (e *solveEngine) loop() {
	rt := e.r.Runtime()
	idle := 0
	for e.done < e.total {
		if rt.ShouldAbort() {
			return
		}
		e.r.Progress()
		if len(e.rtq) == 0 {
			idle++
			if idle > 256 {
				machine.Backoff(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		t := e.rtq[0]
		e.rtq = e.rtq[1:]
		e.execute(t)
		e.done++
	}
}

func (e *solveEngine) execute(t solveTask) {
	switch t.kind {
	case fwdDiag:
		e.runFwdDiag(t.id)
	case fwdBlk:
		e.runFwdBlk(t.id)
	case bwdDiag:
		e.runBwdDiag(t.id)
	case bwdBlk:
		e.runBwdBlk(t.id)
	}
}

// runFwdDiag solves y_k = L_kk⁻¹ b_k and fans y_k out to the owners of the
// supernode's panel blocks.
func (e *solveEngine) runFwdDiag(k int32) {
	st := e.st
	sn := &st.Snodes[k]
	nc := sn.NCols()
	diag := e.f.Data[st.DiagBlock(k).ID]
	seg := e.bk[k]
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, nc, 1, 1, diag, nc, seg, nc)
	e.r.Charge(e.f.Opt.Machine.CPUTime(int64(nc) * int64(nc)))
	e.yk[k] = seg
	// Local backward dependency: y_k is one of bwdDiag's inputs.
	e.decBwd(k)
	// Fan out to panel owners (dedup ranks; deliver locally without RPC).
	blks := st.SnodeBlocks(k)
	sent := map[int]bool{}
	for bi := 1; bi < len(blks); bi++ {
		owner := symbolic.OwnerOfBlock(e.m2d, &blks[bi])
		if sent[owner] {
			continue
		}
		sent[owner] = true
		seg := seg
		kk := k
		if owner == e.r.ID {
			e.deliverY(kk, seg)
			continue
		}
		peers := e.peers
		e.r.RPC(owner, func(tr *upcxx.Rank) {
			peers[tr.ID].deliverY(kk, seg)
		})
		chargeMsg(e.r, owner, int64(nc)*8)
	}
}

// deliverY records a received forward segment and releases the local panel
// blocks of column supernode k.
func (e *solveEngine) deliverY(k int32, seg []float64) {
	e.ySeg[k] = seg
	blks := e.st.SnodeBlocks(k)
	for bi := 1; bi < len(blks); bi++ {
		if symbolic.OwnerOfBlock(e.m2d, &blks[bi]) == e.r.ID {
			e.push(fwdBlk, blks[bi].ID)
		}
	}
}

// runFwdBlk computes c = L_{i,k}·y_k and sends it to supernode i's
// diagonal owner as an aggregate vector.
func (e *solveEngine) runFwdBlk(bid int32) {
	st := e.st
	bl := &st.Blocks[bid]
	sn := &st.Snodes[bl.Snode]
	nc := sn.NCols()
	m := int(bl.NRows)
	data := e.f.Data[bid]
	y := e.ySeg[bl.Snode]
	c := make([]float64, m)
	for col := 0; col < nc; col++ {
		t := y[col]
		if t == 0 {
			continue
		}
		colv := data[col*m : col*m+m]
		for x := 0; x < m; x++ {
			c[x] += colv[x] * t
		}
	}
	e.r.Charge(e.f.Opt.Machine.CPUTime(2 * int64(m) * int64(nc)))
	// Rows of the block relative to the target supernode's columns.
	rows := sn.Rows[bl.RowOff : bl.RowOff+bl.NRows]
	tgt := bl.RowSn
	fcT := st.Snodes[tgt].FirstCol
	pos := make([]int32, m)
	for x, r := range rows {
		pos[x] = r - fcT
	}
	owner := e.segOwner(tgt)
	if owner == e.r.ID {
		e.applyFwd(tgt, pos, c)
		return
	}
	peers := e.peers
	e.r.RPC(owner, func(tr *upcxx.Rank) {
		peers[tr.ID].applyFwd(tgt, pos, c)
	})
	chargeMsg(e.r, owner, int64(m)*8)
}

// applyFwd folds a forward contribution into b_k and schedules the
// diagonal solve when all contributions have arrived.
func (e *solveEngine) applyFwd(k int32, pos []int32, c []float64) {
	seg := e.bk[k]
	for x := range c {
		seg[pos[x]] -= c[x]
	}
	e.fwdCount[k]--
	if e.fwdCount[k] == 0 {
		e.push(fwdDiag, k)
	}
}

// runBwdDiag computes x_k = L_kk⁻ᵀ y_k (contributions already folded in),
// publishes it, and fans x_k out to the owners of every block whose rows
// live in supernode k.
func (e *solveEngine) runBwdDiag(k int32) {
	st := e.st
	sn := &st.Snodes[k]
	nc := sn.NCols()
	diag := e.f.Data[st.DiagBlock(k).ID]
	seg := e.yk[k]
	blas.Trsm(blas.Left, blas.Lower, blas.Transpose, nc, 1, 1, diag, nc, seg, nc)
	e.r.Charge(e.f.Opt.Machine.CPUTime(int64(nc) * int64(nc)))
	e.xk[k] = seg
	copy(e.xp[sn.FirstCol:int(sn.FirstCol)+nc], seg)
	// Fan out to the owners of blocks with RowSn == k.
	sent := map[int]bool{}
	for _, bid := range e.byRow[k] {
		owner := symbolic.OwnerOfBlock(e.m2d, &st.Blocks[bid])
		if sent[owner] {
			continue
		}
		sent[owner] = true
		kk := k
		if owner == e.r.ID {
			e.deliverX(kk, seg)
			continue
		}
		peers := e.peers
		e.r.RPC(owner, func(tr *upcxx.Rank) {
			peers[tr.ID].deliverX(kk, seg)
		})
		chargeMsg(e.r, owner, int64(nc)*8)
	}
}

// deliverX records a received backward segment and releases the local
// blocks whose rows live in supernode i.
func (e *solveEngine) deliverX(i int32, seg []float64) {
	e.xSeg[i] = seg
	for _, bid := range e.byRow[i] {
		if symbolic.OwnerOfBlock(e.m2d, &e.st.Blocks[bid]) == e.r.ID {
			e.push(bwdBlk, bid)
		}
	}
}

// runBwdBlk computes c = L_{i,k}ᵀ·x_i and sends it to column supernode k's
// diagonal owner.
func (e *solveEngine) runBwdBlk(bid int32) {
	st := e.st
	bl := &st.Blocks[bid]
	sn := &st.Snodes[bl.Snode]
	nc := sn.NCols()
	m := int(bl.NRows)
	data := e.f.Data[bid]
	rows := sn.Rows[bl.RowOff : bl.RowOff+bl.NRows]
	fcI := st.Snodes[bl.RowSn].FirstCol
	xi := e.xSeg[bl.RowSn]
	c := make([]float64, nc)
	for col := 0; col < nc; col++ {
		colv := data[col*m : col*m+m]
		var s float64
		for x := 0; x < m; x++ {
			s += colv[x] * xi[rows[x]-fcI]
		}
		c[col] = s
	}
	e.r.Charge(e.f.Opt.Machine.CPUTime(2 * int64(m) * int64(nc)))
	tgt := bl.Snode
	owner := e.segOwner(tgt)
	if owner == e.r.ID {
		e.applyBwd(tgt, c)
		return
	}
	peers := e.peers
	e.r.RPC(owner, func(tr *upcxx.Rank) {
		peers[tr.ID].applyBwd(tgt, c)
	})
	chargeMsg(e.r, owner, int64(nc)*8)
}

// applyBwd folds a backward contribution into y_k and schedules the
// diagonal backsolve when everything has arrived.
func (e *solveEngine) applyBwd(k int32, c []float64) {
	seg := e.yk[k]
	for i := range c {
		seg[i] -= c[i]
	}
	e.decBwd(k)
}

func (e *solveEngine) decBwd(k int32) {
	e.bwdCount[k]--
	if e.bwdCount[k] == 0 {
		e.push(bwdDiag, k)
	}
}

// chargeMsg accounts the modeled cost of an aggregate-vector message on
// the sending rank (host-resident payloads move on the host-host path).
func chargeMsg(r *upcxx.Rank, owner int, bytes int64) {
	rt := r.Runtime()
	r.Charge(rt.Network().Time(simnet.PathHostHost, bytes, rt.Node(r.ID) == rt.Node(owner)))
}
