//go:build race

// Race-detector stress for the intra-rank worker pool. The build tag keeps
// it out of ordinary runs: the configurations below are chosen to maximize
// concurrent scheduler traffic (tiny supernodes → many tasks, high update
// fan-in, more workers than cores are likely to serve), which is slow and
// uninteresting without the race runtime watching the interleavings. CI's
// -race job picks it up automatically.
package core

import (
	"testing"

	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/symbolic"
)

// TestRaceStressWorkerPool hammers the pool with the worst scheduler shape:
// width-2 supernodes over a 3D Laplacian produce thousands of tiny tasks
// whose updates fan into shared target blocks, so workers continuously
// contend on the RTQ heap, the per-block apply locks and the dependency
// counters while the progress goroutine races them with RPC deliveries.
func TestRaceStressWorkerPool(t *testing.T) {
	a := gen.Laplace3D(6, 6, 6)
	sym := symbolic.DefaultOptions()
	sym.MaxSupernodeSize = 2
	sym.RelaxRatio = 0
	for _, ranks := range []int{1, 2} {
		f, err := Factorize(a, Options{Ranks: ranks, Workers: 8, Symbolic: &sym})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if r := solveCheck(t, a, f, 1); r > 1e-10 {
			t.Fatalf("ranks=%d: residual %g > 1e-10", ranks, r)
		}
	}
}

// TestRaceStressGPUAdmission adds the device to the contended surface: a
// tiny capacity plus zero offload thresholds force every worker through the
// admission semaphore, the allocator, and the OOM-fallback path at once.
func TestRaceStressGPUAdmission(t *testing.T) {
	a := gen.Laplace3D(5, 5, 5)
	sym := symbolic.DefaultOptions()
	sym.MaxSupernodeSize = 4
	thr := gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
	f, err := Factorize(a, Options{
		Ranks:          2,
		Workers:        8,
		GPUsPerNode:    1,
		DeviceCapacity: 600,
		Thresholds:     &thr,
		Symbolic:       &sym,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := solveCheck(t, a, f, 2); r > 1e-10 {
		t.Fatalf("residual %g > 1e-10", r)
	}
}
