package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sympack/internal/etree"
	"sympack/internal/symbolic"
)

// Factor serialization: a versioned little-endian binary format carrying
// everything Solve, SolveDistributed and SelectedInverse need — the
// permutation, the supernode partition with its row structures, the block
// layout and the numeric block data. Applications that factor once and
// solve many times across process lifetimes (the PEXSI pattern) persist
// the factor instead of recomputing it.

const (
	factorMagic   = uint32(0x53504b46) // "SPKF"
	factorVersion = uint32(1)
)

// Save writes the factor to w.
func (f *Factor) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	st := f.St
	put := func(vs ...uint64) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(uint64(factorMagic), uint64(factorVersion), uint64(st.N),
		uint64(len(st.Snodes)), uint64(len(st.Blocks))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, st.Perm); err != nil {
		return err
	}
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		if err := put(uint64(sn.FirstCol), uint64(sn.LastCol), uint64(len(sn.Rows))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, sn.Rows); err != nil {
			return err
		}
	}
	for bi := range st.Blocks {
		b := &st.Blocks[bi]
		if err := binary.Write(bw, binary.LittleEndian,
			[4]int32{b.Snode, b.RowSn, b.RowOff, b.NRows}); err != nil {
			return err
		}
	}
	for bid := range f.Data {
		if err := put(uint64(len(f.Data[bid]))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, f.Data[bid]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFactor reads a factor previously written by Save. The returned
// factor solves and computes selected inverses; refactorization state
// (Opt, Stats) is reset to defaults.
func LoadFactor(r io.Reader) (*Factor, error) {
	br := bufio.NewReader(r)
	var header [5]uint64
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("core: factor header: %w", err)
	}
	if uint32(header[0]) != factorMagic {
		return nil, fmt.Errorf("core: not a factor file (magic %x)", header[0])
	}
	if uint32(header[1]) != factorVersion {
		return nil, fmt.Errorf("core: unsupported factor version %d", header[1])
	}
	n := int(header[2])
	nsn := int(header[3])
	nblk := int(header[4])
	// Indices are int32 throughout the format, so anything larger is not a
	// size a valid writer can have produced — reject before allocating.
	const maxDim = int(^uint32(0) >> 1)
	if n < 0 || n > maxDim || nsn < 0 || nsn > n || nblk < nsn || nblk > maxDim {
		return nil, fmt.Errorf("core: corrupt factor sizes n=%d nsn=%d nblk=%d", n, nsn, nblk)
	}
	st := &symbolic.Structure{N: n, Perm: make([]int32, n)}
	if err := binary.Read(br, binary.LittleEndian, st.Perm); err != nil {
		return nil, fmt.Errorf("core: factor perm: %w", err)
	}
	// Perm must be a permutation of 0..n-1: the solve indexes right-hand
	// sides through it unguarded.
	seen := make([]bool, n)
	for i, p := range st.Perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("core: factor perm entry %d corrupt (%d)", i, p)
		}
		seen[p] = true
	}
	st.Snodes = make([]symbolic.Supernode, nsn)
	st.SnOf = make([]int32, n)
	for k := 0; k < nsn; k++ {
		var dims [3]uint64
		if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
			return nil, fmt.Errorf("core: supernode %d: %w", k, err)
		}
		sn := &st.Snodes[k]
		sn.ID = int32(k)
		sn.FirstCol = int32(dims[0])
		sn.LastCol = int32(dims[1])
		if sn.FirstCol < 0 || sn.LastCol < sn.FirstCol || int(sn.LastCol) >= n {
			return nil, fmt.Errorf("core: supernode %d range corrupt", k)
		}
		// A supernode's row list starts with its own columns (so at least
		// NCols entries) and indexes global rows (so at most n entries);
		// anything else would panic the tree rebuild or the solve.
		if dims[2] > uint64(n) || int(dims[2]) < sn.NCols() {
			return nil, fmt.Errorf("core: supernode %d row count %d corrupt", k, dims[2])
		}
		sn.Rows = make([]int32, dims[2])
		if err := binary.Read(br, binary.LittleEndian, sn.Rows); err != nil {
			return nil, fmt.Errorf("core: supernode %d rows: %w", k, err)
		}
		for _, r := range sn.Rows {
			if r < 0 || int(r) >= n {
				return nil, fmt.Errorf("core: supernode %d row %d out of range", k, r)
			}
		}
		for c := sn.FirstCol; c <= sn.LastCol; c++ {
			st.SnOf[c] = int32(k)
		}
	}
	st.Blocks = make([]symbolic.Block, nblk)
	st.BlockPtr = make([]int32, nsn+1)
	prevSn := int32(-1)
	for bi := 0; bi < nblk; bi++ {
		var vals [4]int32
		if err := binary.Read(br, binary.LittleEndian, &vals); err != nil {
			return nil, fmt.Errorf("core: block %d: %w", bi, err)
		}
		b := &st.Blocks[bi]
		b.ID = int32(bi)
		b.Snode, b.RowSn, b.RowOff, b.NRows = vals[0], vals[1], vals[2], vals[3]
		if b.Snode < prevSn || int(b.Snode) >= nsn {
			return nil, fmt.Errorf("core: block %d owner order corrupt", bi)
		}
		// The block's row window must lie inside its supernode's row list
		// (the solve slices Rows[RowOff:RowOff+NRows]) and its row-owner
		// supernode must exist.
		if b.RowSn < 0 || int(b.RowSn) >= nsn || b.RowOff < 0 || b.NRows < 0 ||
			int(b.RowOff)+int(b.NRows) > len(st.Snodes[b.Snode].Rows) {
			return nil, fmt.Errorf("core: block %d extents corrupt", bi)
		}
		for sn := prevSn + 1; sn <= b.Snode; sn++ {
			st.BlockPtr[sn] = int32(bi)
		}
		prevSn = b.Snode
	}
	for sn := prevSn + 1; sn <= int32(nsn); sn++ {
		st.BlockPtr[sn] = int32(nblk)
	}
	// Rebuild the supernodal tree from the structures.
	st.SnParent = make([]int32, nsn)
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		if sn.NRows() == sn.NCols() {
			st.SnParent[k] = -1
		} else {
			st.SnParent[k] = st.SnOf[sn.Rows[sn.NCols()]]
		}
	}
	// A minimal elimination tree placeholder keeps Structure consumers
	// that only need the fields above working; scalar parents are not
	// persisted.
	st.Tree = &etree.Tree{Parent: make([]int32, 0)}

	f := &Factor{St: st, Opt: Options{}.withDefaults(), Data: make([][]float64, nblk)}
	for bid := 0; bid < nblk; bid++ {
		var ln uint64
		if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
			return nil, fmt.Errorf("core: block %d data length: %w", bid, err)
		}
		b := &st.Blocks[bid]
		want := int(b.NRows) * st.Snodes[b.Snode].NCols()
		if int(ln) != want {
			return nil, fmt.Errorf("core: block %d data length %d, want %d", bid, ln, want)
		}
		f.Data[bid] = make([]float64, ln)
		if err := binary.Read(br, binary.LittleEndian, f.Data[bid]); err != nil {
			return nil, fmt.Errorf("core: block %d data: %w", bid, err)
		}
	}
	return f, nil
}
