package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sympack/internal/gen"
	"sympack/internal/symbolic"
)

// propCase is one randomized factorization problem: a random sparse SPD
// matrix plus randomized supernode partitioning and scheduling policy, so
// the harness sweeps block shapes from scalar to wide panels and update
// fan-ins from none (diagonal matrices) to dense.
type propCase struct {
	n       int
	density float64
	seed    int64
	maxSn   int
	relax   float64
	sched   SchedulingPolicy
}

func propCases(count int, metaSeed int64) []propCase {
	rng := rand.New(rand.NewSource(metaSeed))
	densities := []float64{0.02, 0.05, 0.1, 0.3, 1.0}
	snSizes := []int{4, 8, 16, 32}
	relaxes := []float64{0, 0.25}
	scheds := []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath}
	out := make([]propCase, count)
	for i := range out {
		out[i] = propCase{
			n:       20 + rng.Intn(101), // 20..120
			density: densities[rng.Intn(len(densities))],
			seed:    rng.Int63(),
			maxSn:   snSizes[rng.Intn(len(snSizes))],
			relax:   relaxes[rng.Intn(len(relaxes))],
			sched:   scheds[rng.Intn(len(scheds))],
		}
	}
	return out
}

func (c propCase) options(workers, ranks int) Options {
	sym := symbolic.DefaultOptions()
	sym.MaxSupernodeSize = c.maxSn
	sym.RelaxRatio = c.relax
	return Options{Ranks: ranks, Workers: workers, Symbolic: &sym, Scheduling: c.sched}
}

// requireSameFactor asserts two factors are bit-identical, block by block.
// Plain == would treat 0 and -0 as equal; the comparison is on the IEEE-754
// bits because the determinism guarantee is about reproducible bytes, not
// just numeric closeness.
func requireSameFactor(t *testing.T, ref, f *Factor, what string) {
	t.Helper()
	for bid := range ref.Data {
		a, b := ref.Data[bid], f.Data[bid]
		if len(a) != len(b) {
			t.Fatalf("%s: block %d: %d vs %d elements", what, bid, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: block %d elem %d: %v vs %v (bits %x vs %x)",
					what, bid, i, a[i], b[i], math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
}

// TestPropertyWorkersRanksDeterminism is the randomized correctness harness
// for the worker-pool execution model: ~50 random sparse SPD matrices of
// varying size, density and supernode partitioning are factored at every
// workers ∈ {1,2,4} × ranks ∈ {1,4} combination. Each run must solve to a
// residual ≤ 1e-10, and every factor must be bit-identical to the
// sequential (workers=1, ranks=1) reference — the ordered-apply guarantee
// that execution interleaving never leaks into the numerics.
func TestPropertyWorkersRanksDeterminism(t *testing.T) {
	cases := propCases(50, 20260805)
	for ci, c := range cases {
		c := c
		name := fmt.Sprintf("case%02d_n%d_d%g_sn%d_%s", ci, c.n, c.density, c.maxSn, c.sched)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := gen.RandomSPD(c.n, c.density, c.seed)
			ref, err := Factorize(a, c.options(1, 1))
			if err != nil {
				t.Fatalf("reference factorization: %v", err)
			}
			if r := solveCheck(t, a, ref, c.seed); r > 1e-10 {
				t.Fatalf("reference residual %g > 1e-10", r)
			}
			for _, workers := range []int{1, 2, 4} {
				for _, ranks := range []int{1, 4} {
					if workers == 1 && ranks == 1 {
						continue // the reference itself
					}
					f, err := Factorize(a, c.options(workers, ranks))
					if err != nil {
						t.Fatalf("workers=%d ranks=%d: %v", workers, ranks, err)
					}
					if r := solveCheck(t, a, f, c.seed); r > 1e-10 {
						t.Fatalf("workers=%d ranks=%d: residual %g > 1e-10", workers, ranks, r)
					}
					requireSameFactor(t, ref, f, fmt.Sprintf("workers=%d ranks=%d", workers, ranks))
				}
			}
		})
	}
}
