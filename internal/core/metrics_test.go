package core

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"sympack/internal/gen"
	"sympack/internal/machine"
	"sympack/internal/metrics"
)

// TestMergedMetricsMatchPerRankStats checks the one-path property: the
// cross-rank merged registry and the legacy Stats.PerRank view are
// projections of the same counters, so the per-op task totals must agree
// exactly.
func TestMergedMetricsMatchPerRankStats(t *testing.T) {
	a := gen.Laplace2D(12, 12)
	f, err := Factorize(a, Options{Ranks: 3, RanksPerNode: 3, GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics == nil {
		t.Fatal("Factor.Metrics not populated")
	}
	snap := f.Metrics.Snapshot()
	for op := 0; op < machine.NumOps; op++ {
		var cpu, gpu int64
		for r := range f.Stats.PerRank {
			cpu += f.Stats.PerRank[r].CPU[op]
			gpu += f.Stats.PerRank[r].GPU[op]
		}
		name := machine.Op(op).String()
		if got := snap.Value("sympack_core_tasks_total", name, "cpu"); got != float64(cpu) {
			t.Errorf("%s cpu: merged %g, Stats sum %d", name, got, cpu)
		}
		if got := snap.Value("sympack_core_tasks_total", name, "gpu"); got != float64(gpu) {
			t.Errorf("%s gpu: merged %g, Stats sum %d", name, got, gpu)
		}
	}
	if peak := snap.Value("sympack_core_rtq_peak"); peak < 1 {
		t.Errorf("rtq peak %g, want >= 1", peak)
	}
	if done := snap.Value("sympack_core_tasks_done"); done != snap.Value("sympack_core_tasks_owned") {
		t.Errorf("tasks done %g != owned %g after completion",
			snap.Value("sympack_core_tasks_done"), snap.Value("sympack_core_tasks_owned"))
	}
}

// histograms extracts every histogram series keyed by name+labels.
func histograms(snap metrics.Snapshot) map[string]metrics.Series {
	out := map[string]metrics.Series{}
	for _, se := range snap.Series {
		if se.Kind != "histogram" {
			continue
		}
		k := se.Name
		for _, l := range se.Labels {
			k += "{" + l.Key + "=" + l.Value + "}"
		}
		out[k] = se
	}
	return out
}

// TestHistogramsDeterministicAcrossWorkers is the determinism-contract
// acceptance test: histograms observe only modeled seconds and payload
// sizes, so for a fixed seeded problem the merged bucket counts are
// bit-identical whether each rank runs one worker or four.
func TestHistogramsDeterministicAcrossWorkers(t *testing.T) {
	a := gen.Laplace3D(5, 5, 4)
	run := func(workers int) metrics.Snapshot {
		f, err := Factorize(a, Options{Ranks: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return f.Metrics.Snapshot()
	}
	h1 := histograms(run(1))
	h4 := histograms(run(4))
	if len(h1) == 0 {
		t.Fatal("no histogram series in merged registry")
	}
	if len(h1) != len(h4) {
		t.Fatalf("series sets differ: %d vs %d", len(h1), len(h4))
	}
	for k, a1 := range h1 {
		a4, ok := h4[k]
		if !ok {
			t.Errorf("%s missing from workers=4 run", k)
			continue
		}
		if len(a1.Counts) != len(a4.Counts) {
			t.Errorf("%s: bucket count %d vs %d", k, len(a1.Counts), len(a4.Counts))
			continue
		}
		for b := range a1.Counts {
			if a1.Counts[b] != a4.Counts[b] {
				t.Errorf("%s bucket %d: %d vs %d", k, b, a1.Counts[b], a4.Counts[b])
			}
		}
		// Same multiset of observations, possibly different addition
		// order: sums agree to rounding.
		if d := math.Abs(a1.Sum - a4.Sum); d > 1e-9*(1+math.Abs(a1.Sum)) {
			t.Errorf("%s: sum %g vs %g", k, a1.Sum, a4.Sum)
		}
	}
}

// TestMetricsEndpoint starts the opt-in HTTP listener on an ephemeral
// port and checks the ISSUE acceptance shape: /metrics is a valid
// Prometheus text exposition with at least 20 distinct families spanning
// the core, upcxx, gpu and faults namespaces, and /healthz serves JSON.
func TestMetricsEndpoint(t *testing.T) {
	a := gen.Laplace2D(10, 10)
	f, err := Factorize(a, Options{Ranks: 2, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.CloseMetrics()
	addr := f.MetricsAddr()
	if addr == "" {
		t.Fatal("no metrics address resolved")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("content type %q", ct)
	}
	families, samples, err := metrics.ValidateExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	if families < 20 {
		t.Errorf("%d metric families, want >= 20", families)
	}
	if samples < families {
		t.Errorf("%d samples < %d families", samples, families)
	}
	for _, prefix := range []string{"sympack_core_", "sympack_upcxx_", "sympack_gpu_", "sympack_faults_"} {
		if !strings.Contains(string(body), prefix) {
			t.Errorf("exposition lacks %s* series", prefix)
		}
	}

	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A completed (non-aborted) factorization is ready: 200, JSON body.
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200 on a healthy job", resp.StatusCode)
	}
	var health any
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, hb)
	}

	if err := f.CloseMetrics(); err != nil {
		t.Errorf("CloseMetrics: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint still serving after CloseMetrics")
	}
}
