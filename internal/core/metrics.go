package core

import (
	"sync"

	"sympack/internal/faults"
	"sympack/internal/machine"
	"sympack/internal/metrics"
	"sympack/internal/trace"
	"sympack/internal/upcxx"
)

// coreMetrics is the per-rank instrumentation bundle. Every series is
// registered eagerly in newCoreMetrics — including the GPU families on
// CPU-only runs — so all ranks hold identically laid-out registries,
// which is the precondition for the element-wise cross-rank reduction
// (upcxx.Rank.ReduceSnapshot), and so /metrics exposes the full inventory
// at zero rather than a shape that depends on the run.
//
// Hot paths touch only the cached handles (one atomic per event); the
// registry maps are never consulted after construction. Histograms
// observe modeled seconds exclusively, keeping bucket counts
// bit-identical across worker counts; wall-clock-dependent quantities
// (waits, backoffs, re-requests) are plain counters.
type coreMetrics struct {
	reg *metrics.Registry

	// Task execution: counts per (op, cpu|gpu) and modeled seconds per op.
	tasks    [machine.NumOps][2]*metrics.Counter
	taskSecs [machine.NumOps]*metrics.Histogram

	// Queue/scheduler state. rtqDepth/inboxDepth/wantedBlocks are live
	// occupancy gauges (summed across ranks); rtqPeak is the high-water
	// mark (maxed across ranks). tasksTotal/tasksDone double as the
	// watchdog's health mirror.
	rtqDepth     *metrics.Gauge
	rtqPeak      *metrics.Gauge
	inboxDepth   *metrics.Gauge
	wantedBlocks *metrics.Gauge
	tasksTotal   *metrics.Gauge
	tasksDone    *metrics.Gauge

	// Dependency and recovery counters.
	depDecrements *metrics.Counter
	updatesParked *metrics.Counter
	reRequests    *metrics.Counter
	backoffWaits  *metrics.Counter
	workerWaits   *metrics.Counter
	fetchFailures *metrics.Counter
	cancelChecks  *metrics.Counter

	// GPU offload economics (engine-side; device-side series live in the
	// runtime registry).
	gpuOffloads   [machine.NumOps]*metrics.Counter
	gpuRejections [machine.NumOps]*metrics.Counter
	gpuDemotions  *metrics.Counter
	allocRetries  *metrics.Counter
	oomFallbacks  *metrics.Counter

	// fp32Demotions counts offloads the size threshold would have admitted
	// that ran on the CPU instead because Options.Precision == PrecFP32
	// forces single-precision CPU kernels (part of the sympack_iter_*
	// mixed-precision namespace; the companion fp32-fallback counter is
	// job-level and lives on the merged registry).
	fp32Demotions *metrics.Counter
}

const (
	targetCPU = 0
	targetGPU = 1
)

func newCoreMetrics(reg *metrics.Registry) *coreMetrics {
	m := &coreMetrics{reg: reg}
	for op := 0; op < machine.NumOps; op++ {
		name := machine.Op(op).String()
		m.tasks[op][targetCPU] = reg.Counter("sympack_core_tasks_total",
			"kernels executed by op and target", "op", name, "target", "cpu")
		m.tasks[op][targetGPU] = reg.Counter("sympack_core_tasks_total",
			"kernels executed by op and target", "op", name, "target", "gpu")
		m.taskSecs[op] = reg.Histogram("sympack_core_task_seconds",
			"modeled kernel seconds by op (deterministic across worker counts)",
			metrics.SecondsBuckets(), "op", name)
		m.gpuOffloads[op] = reg.Counter("sympack_gpu_offloads_total",
			"operations admitted to the device by the size threshold", "op", name)
		m.gpuRejections[op] = reg.Counter("sympack_gpu_threshold_rejections_total",
			"operations kept on the CPU by the size threshold", "op", name)
	}
	m.rtqDepth = reg.Gauge("sympack_core_rtq_depth",
		"ready-task queue occupancy", metrics.MergeSum)
	m.rtqPeak = reg.Gauge("sympack_core_rtq_peak",
		"high-water ready-task queue occupancy", metrics.MergeMax)
	m.inboxDepth = reg.Gauge("sympack_core_inbox_depth",
		"announced-but-unfetched signal count", metrics.MergeSum)
	m.wantedBlocks = reg.Gauge("sympack_core_wanted_blocks",
		"source blocks still awaited", metrics.MergeSum)
	m.tasksTotal = reg.Gauge("sympack_core_tasks_owned",
		"tasks owned by this rank", metrics.MergeSum)
	m.tasksDone = reg.Gauge("sympack_core_tasks_done",
		"owned tasks completed", metrics.MergeSum)
	m.depDecrements = reg.Counter("sympack_core_dep_decrements_total",
		"dependency-counter decrements")
	m.updatesParked = reg.Counter("sympack_core_updates_parked_total",
		"update contributions parked for ordered application")
	m.reRequests = reg.Counter("sympack_core_rerequests_total",
		"lost-signal re-requests issued")
	m.backoffWaits = reg.Counter("sympack_core_backoff_waits_total",
		"idle-loop backoff sleeps")
	m.workerWaits = reg.Counter("sympack_core_worker_waits_total",
		"worker-pool waits on an empty ready queue")
	m.fetchFailures = reg.Counter("sympack_core_fetch_failures_total",
		"block fetches whose transfer retry budget ran out")
	m.cancelChecks = reg.Counter("sympack_core_cancel_detections_total",
		"scheduling loops that observed a canceled context and stopped")
	m.gpuDemotions = reg.Counter("sympack_gpu_demotions_total",
		"ranks demoted to CPU kernels after device failure")
	m.allocRetries = reg.Counter("sympack_gpu_alloc_retries_total",
		"transient device-allocation retries")
	m.oomFallbacks = reg.Counter("sympack_gpu_oom_fallbacks_total",
		"operations run on the CPU after a failed device allocation")
	m.fp32Demotions = reg.Counter("sympack_iter_fp32_demotions_total",
		"GPU-eligible kernels demoted to fp32 CPU execution by Precision=fp32")
	return m
}

// chargeCPU accounts one CPU kernel: count, modeled seconds onto the
// rank clock, and the task-duration histogram.
func (e *engine) chargeCPU(op machine.Op, flops int64) {
	dt := e.opt.Machine.CPUTime(flops)
	e.r.Charge(dt)
	e.met.tasks[op][targetCPU].Inc()
	e.met.taskSecs[op].Observe(dt)
}

// noteGPU records a device kernel whose modeled seconds were already
// charged by the caller (copies are accounted separately).
func (e *engine) noteGPU(op machine.Op, dt float64) {
	e.met.tasks[op][targetGPU].Inc()
	e.met.taskSecs[op].Observe(dt)
}

// exportJob projects job-level state — runtime communication counters,
// device occupancy, injector tallies and the trace event summary — into
// reg. Callers pass a registry that does not yet hold these families
// (fresh at live-gather time, the final merged registry once), so the
// export never double-counts.
func exportJob(reg *metrics.Registry, rt *upcxx.Runtime, inj *faults.Injector, tr *trace.Recorder) {
	rt.ExportStats(reg)
	injected := inj.Injected()
	for c := faults.Class(0); c < faults.NumClasses; c++ {
		reg.Counter("sympack_faults_injected_total",
			"faults injected by class", "class", c.String()).Add(float64(injected[c]))
	}
	if tr != nil {
		for _, ks := range tr.Summary() {
			reg.Counter("sympack_trace_events_total",
				"trace events recorded by kind", "kind", ks.Kind).Add(float64(ks.Count))
		}
	}
}

// faultStatsFrom reads the FaultStats projection out of a registry
// holding the exported runtime and per-rank counters — the single path
// behind Stats.Faults and the health report since the metrics subsystem
// became the source of truth.
func faultStatsFrom(reg *metrics.Registry) FaultStats {
	v := func(name string) int64 { return int64(reg.Value(name)) }
	return FaultStats{
		DroppedSignals:   v("sympack_upcxx_signals_dropped_total"),
		DupSignals:       v("sympack_upcxx_signals_duplicated_total"),
		DelayedSignals:   v("sympack_upcxx_signals_delayed_total"),
		TransferRetries:  v("sympack_upcxx_transfer_retries_total"),
		TransferFailures: v("sympack_upcxx_transfer_failures_total"),
		Stalls:           v("sympack_upcxx_rank_stalls_total"),
		ReRequests:       v("sympack_upcxx_rerequests_total"),
		Redeliveries:     v("sympack_upcxx_redeliveries_total"),
		AllocRetries:     v("sympack_gpu_alloc_retries_total"),
		DeviceDemotions:  v("sympack_gpu_demotions_total"),
	}
}

// runtimeFaultStats folds the runtime's counters into FaultStats through
// a scratch registry (per-rank alloc-retry/demotion counters are added by
// the caller where engines are in scope).
func runtimeFaultStats(rt *upcxx.Runtime) FaultStats {
	reg := metrics.NewRegistry()
	rt.ExportStats(reg)
	return faultStatsFrom(reg)
}

// gatherLive merges the current view of a running (or finished)
// factorization: every engine's per-rank registry, the runtime's live
// registry, and the export-time projections. It backs the /metrics
// endpoint, so it must be safe concurrently with the run; engines is read
// under mu, and per-series torn reads are acceptable mid-run.
func gatherLive(mu *sync.Mutex, engines []*engine, rt *upcxx.Runtime, inj *faults.Injector, tr *trace.Recorder) metrics.Snapshot {
	g := metrics.NewRegistry()
	mu.Lock()
	for _, e := range engines {
		if e != nil {
			g.Import(e.met.reg.Snapshot())
		}
	}
	mu.Unlock()
	g.Import(rt.Metrics().Snapshot())
	exportJob(g, rt, inj, tr)
	return g.Snapshot()
}
