package core

import (
	"math"
	"testing"

	"sympack/internal/blas"
	"sympack/internal/gen"
	"sympack/internal/matrix"
)

// denseCond1 computes the exact κ₁ for small matrices via the dense inverse.
func denseCond1(t *testing.T, a *matrix.SparseSym) float64 {
	t.Helper()
	n := a.N
	d := a.Dense()
	chol := append([]float64(nil), d...)
	if err := blas.Potrf(blas.Lower, n, chol, n); err != nil {
		t.Fatal(err)
	}
	colSum := func(m []float64) float64 {
		var worst float64
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += math.Abs(m[i+j*n])
			}
			if s > worst {
				worst = s
			}
		}
		return worst
	}
	inv := make([]float64, n*n)
	for j := 0; j < n; j++ {
		col := inv[j*n : j*n+n]
		col[j] = 1
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, n, 1, 1, chol, n, col, n)
		blas.Trsm(blas.Left, blas.Lower, blas.Transpose, n, 1, 1, chol, n, col, n)
	}
	return colSum(d) * colSum(inv)
}

func TestCondEst1AgainstDense(t *testing.T) {
	for name, a := range map[string]*matrix.SparseSym{
		"laplace": gen.Laplace2D(8, 8),
		"random":  gen.RandomSPD(30, 0.2, 3),
		"thermal": gen.Thermal2D(10, 10, 2, 4),
		"tiny":    gen.Laplace2D(2, 2),
	} {
		f, err := Factorize(a, Options{Ranks: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		est, err := f.CondEst1(a)
		if err != nil {
			t.Fatal(err)
		}
		exact := denseCond1(t, a)
		// Hager's estimate is a lower bound, rarely below exact/10.
		if est > exact*1.0001 {
			t.Fatalf("%s: estimate %g exceeds exact %g", name, est, exact)
		}
		if est < exact/10 {
			t.Fatalf("%s: estimate %g too far below exact %g", name, est, exact)
		}
	}
}

// The estimator must track conditioning trends: a Laplacian on a finer grid
// is worse conditioned.
func TestCondEst1Trend(t *testing.T) {
	coarse := gen.Laplace2D(6, 6)
	fine := gen.Laplace2D(24, 24)
	fc, err := Factorize(coarse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Factorize(fine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ec, err := fc.CondEst1(coarse)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := ff.CondEst1(fine)
	if err != nil {
		t.Fatal(err)
	}
	if ef <= ec {
		t.Fatalf("finer grid should be worse conditioned: %g vs %g", ef, ec)
	}
	// An identity-like matrix has κ₁ ≈ 1.
	id := gen.RandomSPD(12, 0, 1)
	fi, err := Factorize(id, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ei, err := fi.CondEst1(id)
	if err != nil {
		t.Fatal(err)
	}
	if ei < 1 || ei > 30 {
		t.Fatalf("near-diagonal matrix estimate %g implausible", ei)
	}
}
