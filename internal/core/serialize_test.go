package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"sympack/internal/gen"
)

func TestFactorSaveLoadRoundTrip(t *testing.T) {
	a := gen.Bone3D(5, 5, 5, 0.3, 9)
	f, err := Factorize(a, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structure equality.
	if g.St.N != f.St.N || g.St.NumSupernodes() != f.St.NumSupernodes() || g.St.NumBlocks() != f.St.NumBlocks() {
		t.Fatal("structure shape changed")
	}
	for bid := range f.Data {
		for i := range f.Data[bid] {
			if f.Data[bid][i] != g.Data[bid][i] {
				t.Fatalf("block %d data changed at %d", bid, i)
			}
		}
	}
	// The loaded factor must solve.
	rng := rand.New(rand.NewSource(10))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := g.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("loaded factor solves differently at %d", i)
		}
	}
	// The loaded factor must run distributed solves and selected inversion.
	xd, err := g.SolveDistributed(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, xd, b); r > 1e-10 {
		t.Fatalf("loaded distributed solve residual %g", r)
	}
	si, err := g.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	siRef, err := f.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := siRef.Diag(), si.Diag()
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-14 {
			t.Fatalf("selected inverse diag differs at %d", i)
		}
	}
}

func TestLoadFactorRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a factor"),
		make([]byte, 40), // zero magic
	}
	for i, c := range cases {
		if _, err := LoadFactor(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncated valid stream.
	a := gen.Laplace2D(5, 5)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadFactor(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

// TestLoadFactorTruncatedNeverPanics sweeps every truncation boundary of a
// valid stream through LoadFactor: each prefix must produce a wrapped error
// (usually io.ErrUnexpectedEOF), never a panic and never a Factor.
func TestLoadFactorTruncatedNeverPanics(t *testing.T) {
	a := gen.Laplace2D(6, 6)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sawWrappedEOF := false
	for cut := 0; cut < len(data); cut++ {
		g, err := LoadFactor(bytes.NewReader(data[:cut]))
		if err == nil || g != nil {
			t.Fatalf("truncation at %d/%d: got factor %v, err %v", cut, len(data), g, err)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			sawWrappedEOF = true
		}
	}
	if !sawWrappedEOF {
		t.Fatal("no truncation error wrapped the io sentinel; errors must stay branchable")
	}
}

// TestLoadFactorCorruptNeverPanics flips bytes across the stream and patches
// the structural fields with hostile values; every load must either fail
// with an error or (for benign numeric flips) return a well-formed factor —
// never panic, and never return a factor whose solve panics.
func TestLoadFactorCorruptNeverPanics(t *testing.T) {
	a := gen.Laplace2D(6, 6)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	tryLoad := func(data []byte) {
		g, err := LoadFactor(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that slipped through must still be solvable without
		// panicking (the extent validation guarantees in-range slicing).
		_, _ = g.Solve(b)
	}

	// Single-byte corruption at deterministic positions across the stream.
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		data := append([]byte(nil), pristine...)
		pos := rng.Intn(len(data))
		data[pos] ^= byte(1 + rng.Intn(255))
		tryLoad(data)
	}

	// Hostile structural fields. Offsets: 5×uint64 header, then the
	// n-entry int32 permutation, then per-supernode (first,last,nrows)
	// uint64 triples.
	n := a.N
	snodeOff := 40 + 4*n
	patch := func(off int, v uint64) []byte {
		data := append([]byte(nil), pristine...)
		binary.LittleEndian.PutUint64(data[off:], v)
		return data
	}
	hostile := []struct {
		name string
		data []byte
	}{
		{"bad magic", patch(0, 0xdeadbeef)},
		{"bad version", patch(8, 99)},
		{"huge n", patch(16, 1 << 40)},
		{"nsn > n", patch(24, uint64(n+1))},
		{"nblk < nsn", patch(32, 0)},
		{"huge nblk", patch(32, 1 << 40)},
		{"snode range inverted", patch(snodeOff, 1 << 20)},
		{"huge snode row count", patch(snodeOff+16, 1 << 40)},
		{"zero snode row count", patch(snodeOff+16, 0)},
	}
	for _, h := range hostile {
		if g, err := LoadFactor(bytes.NewReader(h.data)); err == nil {
			t.Fatalf("%s: load succeeded (%v), want error", h.name, g)
		}
	}
}
