package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sympack/internal/gen"
)

func TestFactorSaveLoadRoundTrip(t *testing.T) {
	a := gen.Bone3D(5, 5, 5, 0.3, 9)
	f, err := Factorize(a, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structure equality.
	if g.St.N != f.St.N || g.St.NumSupernodes() != f.St.NumSupernodes() || g.St.NumBlocks() != f.St.NumBlocks() {
		t.Fatal("structure shape changed")
	}
	for bid := range f.Data {
		for i := range f.Data[bid] {
			if f.Data[bid][i] != g.Data[bid][i] {
				t.Fatalf("block %d data changed at %d", bid, i)
			}
		}
	}
	// The loaded factor must solve.
	rng := rand.New(rand.NewSource(10))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := g.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("loaded factor solves differently at %d", i)
		}
	}
	// The loaded factor must run distributed solves and selected inversion.
	xd, err := g.SolveDistributed(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, xd, b); r > 1e-10 {
		t.Fatalf("loaded distributed solve residual %g", r)
	}
	si, err := g.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	siRef, err := f.SelectedInverse()
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := siRef.Diag(), si.Diag()
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-14 {
			t.Fatalf("selected inverse diag differs at %d", i)
		}
	}
}

func TestLoadFactorRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a factor"),
		make([]byte, 40), // zero magic
	}
	for i, c := range cases {
		if _, err := LoadFactor(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncated valid stream.
	a := gen.Laplace2D(5, 5)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadFactor(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}
