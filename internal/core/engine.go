package core

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sympack/internal/blas"
	"sympack/internal/faults"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
	"sympack/internal/upcxx"
)

// taskKind enumerates the paper's three task types (§3.2), plus the apply
// task the fan-in/fan-both formulations add: when an update is computed
// away from its target's owner, the delivered contribution is scattered
// into the target by a separate A task at the target's rank.
type taskKind uint8

const (
	taskDiag   taskKind = iota // D_k: POTRF of a diagonal block
	taskFactor                 // F_{i,k}: TRSM of an off-diagonal block
	taskUpdate                 // U_{i,j,k}: SYRK/GEMM update
	taskApply                  // A_{i,j,k}: scatter a delivered contribution
)

// task is one RTQ entry: a block id for D/F, an update index for U/A. The
// seq and depth fields are the scheduling keys: seq is the push order
// (FIFO/LIFO) and depth the critical-path priority, cached at push time so
// the heap comparator never touches engine state.
type task struct {
	kind  taskKind
	id    int32
	seq   int64
	depth int32
}

// fetched caches a pulled (or locally produced) source block, optionally
// with a device-resident mirror for the paper's "GPU blocks" optimization.
// once guards the lazy device→host materialization in hostOf: several
// executor workers may consume the same source block concurrently.
type fetched struct {
	host []float64
	dev  *gpu.Buffer
	once sync.Once
}

// parkedUpd is a computed update contribution waiting for its canonical
// apply turn on the target block.
type parkedUpd struct {
	ui      int32
	scratch []float64
}

// blockApply sequences update applications into one target block. Because
// floating-point subtraction is not associative, contributions must land in
// a canonical order — ascending update index — for the factor to be
// bit-identical across worker counts, rank counts and scheduling policies.
// A worker whose update finishes out of turn parks the scratch buffer here;
// the worker that completes the preceding update drains the parked queue.
type blockApply struct {
	mu sync.Mutex
	// next is the canonical sequence number of the next update to apply;
	// guarded by bs.mu.
	next   int32
	parked map[int32]parkedUpd // guarded by bs.mu
}

// engine is the per-rank state of the fan-out factorization.
//
// Concurrency: with Options.Workers > 1 the rank runs a worker pool —
// `workers` executor goroutines pulling tasks from the RTQ — plus one
// dedicated progress goroutine (the rank's own goroutine) that owns
// upcxx.Progress, inbox draining and the re-request protocol. The mutex mu
// guards all scheduler state: the RTQ heap, dependency counters, avail,
// inbox, wanted/reqAt/reqCount, produced and doneTasks. Numeric kernels run
// outside mu; ordered application into target blocks is serialized per
// block by blockApply. Lock order: blockApply.mu before engine.mu, never
// the reverse.
type engine struct {
	r   *upcxx.Rank
	st  *symbolic.Structure
	tg  *symbolic.TaskGraph
	a   *matrix.SparseSym
	m2d symbolic.BlockMap
	opt *Options
	// form is the task formulation (cached from opt). The protocol below
	// speaks in *items*: item ids < nBlocks are blocks, and — under
	// contribution-delivering formulations — item nBlocks+ui is the
	// computed contribution of update ui. dir, avail, produced, wanted,
	// reqAt and reqCount are all indexed/keyed by item id.
	form    symbolic.Formulation
	nBlocks int32
	dir     []upcxx.GlobalPtr // shared global directory of item pointers
	// peers is the per-factorization engine registry (index = rank).
	// Producer RPC closures use it to reach the consumer's inbox; the
	// closure executes on the consumer's progress goroutine inside
	// Progress() and goes through the locked enqueueSignal, because the
	// consumer's executor workers share the engine state.
	peers []*engine

	// mu guards the scheduler state listed above; cond wakes idle workers
	// when a task is pushed or the run ends.
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	stopped bool // set on completion or abort; workers exit; guarded by e.mu
	// inflight counts tasks popped but not yet completed, so the progress
	// goroutine can tell "workers busy" from "rank starved" when deciding
	// to suspect lost announcements. Guarded by e.mu.
	inflight int
	pushSeq  int64 // guarded by e.mu

	owned [][]float64 // per block id: storage for blocks this rank owns

	// Dependency counters for tasks this rank owns, indexed by block id
	// and update index respectively. Guarded by e.mu.
	depBlock  []int32
	depUpdate []int32 // guarded by e.mu

	// avail caches source data this rank can consume, by item id (blocks,
	// then delivered contributions). Guarded by e.mu; entries are
	// write-once, which is what licenses the two audited unlocked reads in
	// hostOf and gpuTrsm.
	avail []*fetched

	// updatesByLocalSource maps a source block id to the local update
	// tasks consuming it (precomputed from the task graph restricted to
	// owned targets).
	updatesByLocalSource [][]int32
	// localFOfSnode maps a supernode to this rank's off-diagonal blocks in
	// it (waiting on the supernode's diagonal factor).
	localFOfSnode [][]int32

	// applySeq[ui] is the canonical position of update ui among the
	// updates targeting the same block (ascending update index), and blk
	// holds the per-block ordered-apply state. Together they make the
	// scatter-subtract order — and therefore the factor bits — independent
	// of execution interleaving.
	applySeq []int32
	blk      []blockApply

	// signals received but not yet processed: item ids announced by
	// producers via RPC. Guarded by e.mu.
	inbox []int32

	rtq readyQueue // guarded by e.mu
	// progress counts executed tasks for the stall watchdog (shared
	// across ranks; may be nil in tests constructing engines directly).
	progress *atomic.Int64
	// chainDepth[k] = number of supernodal-tree ancestors above supernode
	// k, the critical-path priority (longer remaining chains run first).
	// Guarded by e.mu.
	chainDepth []int32

	totalTasks int // guarded by e.mu
	doneTasks  int // guarded by e.mu

	// Resilience state (lost-signal recovery, paper Fig. 4 hardened).
	// produced[item] is set by this rank once it has produced and announced
	// the item (a factored block, or a computed contribution under
	// fan-in/fan-both); writers are executor workers and the reader is the
	// re-request RPC handler on the progress goroutine, so both sides go
	// through mu. Guarded by e.mu.
	produced []bool
	// wanted holds source item ids this rank's remaining tasks still
	// await; entries leave on acquire. Its remote members are the
	// candidates for re-requests when the rank idles. Guarded by e.mu.
	wanted map[int32]bool
	// reqAt / reqCount implement per-item exponential backoff between
	// re-requests; reqAt holds the earliest next attempt in wall-clock
	// nanoseconds (ticks proved useless as a clock: the idle loop's short
	// sleeps stretch to OS-timer granularity, freezing tick-based timers).
	// Guarded by e.mu.
	reqAt    map[int32]int64
	reqCount map[int32]int // guarded by e.mu

	// demoted is set when this rank's device dies mid-run: every later
	// offload decision answers CPU. Any worker may demote; all consult it.
	demoted atomic.Bool

	// met is the per-rank metrics bundle (internal/metrics registry).
	// Counter/gauge reads and writes are single atomics, so the stall
	// watchdog and the /metrics endpoint consume it while the rank runs;
	// it replaced the ad-hoc health-mirror and kernel-counter atomics.
	met *coreMetrics
}

func newEngine(r *upcxx.Rank, st *symbolic.Structure, tg *symbolic.TaskGraph, a *matrix.SparseSym, m2d symbolic.BlockMap, opt *Options, dir []upcxx.GlobalPtr, peers []*engine) *engine {
	nItems := len(st.Blocks) + len(tg.Updates)
	e := &engine{
		r: r, st: st, tg: tg, a: a, m2d: m2d, opt: opt, dir: dir, peers: peers,
		form:                 opt.Formulation,
		nBlocks:              int32(len(st.Blocks)),
		owned:                make([][]float64, len(st.Blocks)),
		depBlock:             make([]int32, len(st.Blocks)),
		depUpdate:            make([]int32, len(tg.Updates)),
		avail:                make([]*fetched, nItems),
		updatesByLocalSource: make([][]int32, len(st.Blocks)),
		localFOfSnode:        make([][]int32, len(st.Snodes)),
		applySeq:             make([]int32, len(tg.Updates)),
		blk:                  make([]blockApply, len(st.Blocks)),
		produced:             make([]bool, nItems),
		wanted:               map[int32]bool{},
		reqAt:                map[int32]int64{},
		reqCount:             map[int32]int{},
		workers:              opt.Workers,
	}
	if e.workers < 1 {
		e.workers = 1
	}
	e.cond = sync.NewCond(&e.mu)
	e.rtq.e = e
	e.met = newCoreMetrics(metrics.NewRegistry())
	return e
}

// mine reports whether this rank owns a block.
func (e *engine) mine(b *symbolic.Block) bool { return symbolic.OwnerOfBlock(e.m2d, b) == e.r.ID }

// setup allocates and assembles owned blocks, publishes their global
// pointers, and initializes all dependency counters and queues.
func (e *engine) setup() {
	st, tg := e.st, e.tg
	// The pool has not started yet, so this is single-threaded — but take
	// e.mu anyway: "scheduler state is touched under e.mu, always" is a
	// checkable invariant, "except during setup" is not.
	e.mu.Lock()
	if e.opt.Scheduling == SchedCriticalPath {
		e.chainDepth = chainDepths(st)
	}
	// Allocate owned blocks in the shared segment and publish pointers.
	for bi := range st.Blocks {
		b := &st.Blocks[bi]
		if !e.mine(b) {
			continue
		}
		m, n := blockDims(st, b)
		g := e.r.NewArray(m * n)
		e.owned[b.ID] = g.Data
		e.dir[b.ID] = g
		// D/F dependency counter: updates targeting the block, plus the
		// diagonal factor for off-diagonal blocks.
		dep := tg.InUpdates[b.ID]
		if !b.IsDiag() {
			dep++
			e.localFOfSnode[b.Snode] = append(e.localFOfSnode[b.Snode], b.ID)
			// The panel factorization awaits the supernode's diagonal.
			e.wanted[st.DiagBlock(b.Snode).ID] = true
		}
		e.depBlock[b.ID] = dep
		e.totalTasks++
		if dep == 0 {
			e.push(taskFor(b), b.ID)
		}
	}
	// Update compute tasks execute at the owner of the formulation's
	// compute block — the target under fan-out, a source operand under
	// fan-in/fan-both. The ascending sweep runs over every update
	// unconditionally so each update's canonical apply position within its
	// target block (applySeq) is a pure function of the task graph —
	// identical on every rank, for every mapping and formulation — which
	// is what keeps the scatter-subtract order, and therefore the factor
	// bits, schedule-independent.
	deliver := e.form.DeliversContributions()
	updsIntoBlock := make([]int32, len(st.Blocks))
	for ui := range tg.Updates {
		u := &tg.Updates[ui]
		e.applySeq[ui] = updsIntoBlock[u.Target]
		updsIntoBlock[u.Target]++
		if deliver && e.mine(&st.Blocks[u.Target]) {
			// The apply task scatters the delivered contribution into the
			// target; it becomes ready when the contribution item arrives.
			e.wanted[e.nBlocks+int32(ui)] = true
			e.totalTasks++
		}
		if !e.mine(&st.Blocks[e.form.ComputeBlock(u)]) {
			continue
		}
		deps := int32(2)
		if u.IsSyrk() {
			deps = 1
		}
		e.depUpdate[int32(ui)] = deps
		e.updatesByLocalSource[u.BlkA] = append(e.updatesByLocalSource[u.BlkA], int32(ui))
		e.wanted[u.BlkA] = true
		if u.BlkB != u.BlkA {
			e.updatesByLocalSource[u.BlkB] = append(e.updatesByLocalSource[u.BlkB], int32(ui))
			e.wanted[u.BlkB] = true
		}
		e.totalTasks++
	}
	e.met.tasksTotal.Set(float64(e.totalTasks))
	e.mu.Unlock()
	e.assemble()
}

func taskFor(b *symbolic.Block) taskKind {
	if b.IsDiag() {
		return taskDiag
	}
	return taskFactor
}

// assemble scatters the permuted matrix entries into the owned blocks.
func (e *engine) assemble() {
	st, a := e.st, e.a
	for j := 0; j < a.N; j++ {
		k := st.SnOf[j]
		sn := &st.Snodes[k]
		col := int(int32(j) - sn.FirstCol)
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowInd[p]
			rsn := st.SnOf[r]
			bid := st.FindBlock(rsn, k)
			if bid < 0 {
				panic(fmt.Sprintf("core: entry (%d,%d) outside symbolic structure", r, j))
			}
			data := e.owned[st.Blocks[bid].ID]
			if data == nil {
				continue // another rank's block
			}
			b := &st.Blocks[bid]
			pos := e.rowPosInBlock(b, r)
			data[pos+col*int(b.NRows)] = a.Val[p]
		}
	}
}

// rowPosInBlock locates global row r within a block's row list.
func (e *engine) rowPosInBlock(b *symbolic.Block, r int32) int {
	pos := e.rowPosInBlockOrMissing(b, r)
	if pos < 0 {
		panic(fmt.Sprintf("core: row %d not in block %d", r, b.ID))
	}
	return pos
}

// rowPosInBlockOrMissing locates global row r within a block's row list,
// returning -1 when the row is absent — which only incomplete (IC) scatter
// tolerates: a source row whose target position was dropped by the level
// rule discards its contribution instead of landing it.
func (e *engine) rowPosInBlockOrMissing(b *symbolic.Block, r int32) int {
	sn := &e.st.Snodes[b.Snode]
	rows := sn.Rows[b.RowOff : b.RowOff+b.NRows]
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(rows) || rows[lo] != r {
		return -1
	}
	return lo
}

// push enqueues a task whose dependencies are satisfied and wakes one idle
// worker. Callers hold e.mu (including setup, which runs single-threaded
// but locks anyway to keep the guarded-field discipline uniform).
func (e *engine) push(kind taskKind, id int32) {
	t := task{kind: kind, id: id, seq: e.pushSeq}
	e.pushSeq++
	if e.chainDepth != nil {
		t.depth = e.chainDepth[e.taskSupernode(t)]
	}
	heap.Push(&e.rtq, t)
	depth := float64(e.rtq.Len())
	e.met.rtqDepth.Set(depth)
	e.met.rtqPeak.SetMax(depth)
	e.cond.Signal()
}

// chainDepths returns, per supernode, the length of its ancestor chain in
// the supernodal elimination tree.
func chainDepths(st *symbolic.Structure) []int32 {
	nsn := len(st.Snodes)
	depth := make([]int32, nsn)
	// Supernodal parents have higher indices, so a reverse sweep sees
	// every parent before its children.
	for k := nsn - 1; k >= 0; k-- {
		if p := st.SnParent[k]; p != -1 {
			depth[k] = depth[p] + 1
		}
	}
	return depth
}

// taskSupernode returns the supernode a task advances, for prioritization.
func (e *engine) taskSupernode(t task) int32 {
	if t.kind == taskUpdate || t.kind == taskApply {
		return e.st.Blocks[e.tg.Updates[t.id].Target].Snode
	}
	return e.st.Blocks[t.id].Snode
}

// pop removes the highest-priority task from the RTQ heap according to the
// scheduling policy; callers hold e.mu. The comparator (see engine.before)
// is a strict total order, so the pop sequence is deterministic for a given
// push sequence — no tie-break depends on queue memory layout.
func (e *engine) pop() (task, bool) {
	if e.rtq.Len() == 0 {
		return task{}, false
	}
	t := heap.Pop(&e.rtq).(task)
	e.met.rtqDepth.Set(float64(e.rtq.Len()))
	return t, true
}

// checkCanceled consults Options.Context at a task-pull boundary. On
// cancellation it fails the runtime with an ErrCanceled-wrapped error
// (first failure wins, so concurrent detections collapse to one) and
// returns true; the caller's scheduling loop then exits and the abort
// propagates to every other rank through ShouldAbort. Runs without e.mu.
func (e *engine) checkCanceled() bool {
	ctx := e.opt.Context
	if ctx == nil {
		return false
	}
	err := ctx.Err()
	if err == nil {
		return false
	}
	e.met.cancelChecks.Inc()
	e.r.Runtime().Fail(fmt.Errorf("%w: rank %d: %v", ErrCanceled, e.r.ID, err))
	return true
}

// factorLoop is the sequential (Workers == 1) scheduling loop of paper
// Fig. 3: poll for incoming notifications, then run a ready task; repeat
// until all local tasks are done or the job aborts. When the rank idles
// with source blocks still outstanding it suspects lost announcements and
// runs the re-request protocol, turning what used to be a silent deadlock
// into recovery. Multi-worker ranks run progressLoop/workerLoop instead
// (pool.go); both paths share poll, pop, execute and the recovery logic.
func (e *engine) factorLoop() {
	rt := e.r.Runtime()
	idle := 0
	for {
		if rt.ShouldAbort() {
			return
		}
		if e.checkCanceled() {
			return
		}
		e.poll()
		e.mu.Lock()
		e.mirrorHealth()
		if e.doneTasks >= e.totalTasks {
			e.mu.Unlock()
			return
		}
		t, ok := e.pop()
		e.mu.Unlock()
		if !ok {
			idle++
			if idle > 256 {
				if idle%64 == 0 {
					e.mu.Lock()
					e.reRequestLost()
					e.mu.Unlock()
				}
				e.met.backoffWaits.Inc()
				machine.Backoff(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		e.execute(t, 0)
		e.mu.Lock()
		e.doneTasks++
		e.mu.Unlock()
		if e.progress != nil {
			e.progress.Add(1)
		}
	}
}

// mirrorHealth refreshes the scheduler-occupancy gauges the watchdog and
// the /metrics endpoint read while the rank runs; callers hold e.mu.
func (e *engine) mirrorHealth() {
	e.met.tasksDone.Set(float64(e.doneTasks))
	e.met.rtqDepth.Set(float64(e.rtq.Len()))
	e.met.inboxDepth.Set(float64(len(e.inbox)))
	e.met.wantedBlocks.Set(float64(len(e.wanted)))
}

// drainUntil keeps executing incoming RPCs after this rank's own tasks are
// done, until the job-wide progress counter reaches total (or the job
// aborts). Without it a finished producer parked in the final barrier would
// never run the re-request RPCs other ranks aim at it.
func (e *engine) drainUntil(progress *atomic.Int64, total int64) {
	rt := e.r.Runtime()
	idle := 0
	for progress.Load() < total && !rt.ShouldAbort() {
		if e.checkCanceled() {
			return
		}
		e.r.Progress()
		idle++
		if idle > 256 {
			machine.Backoff(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// reRequestLost asks the producers of still-awaited remote items — source
// blocks, and contribution items under fan-in/fan-both — to re-announce
// anything they have already produced. A producer that has not produced
// the item yet ignores the request (the real announcement will come); one
// whose announcement was dropped re-signals, and the consumer's normal
// poll path takes it from there. Per-item exponential backoff keeps the
// recovery traffic bounded, and the request/redeliver RPCs are themselves
// subject to injection — the protocol only assumes the network delivers
// eventually, not reliably.
func (e *engine) reRequestLost() {
	// Callers hold e.mu (wanted/reqAt/reqCount are scheduler state).
	rt := e.r.Runtime()
	now := machine.WallNow().UnixNano()
	// Re-request in sorted item order: the recovery RPCs race the normal
	// announcement path, and map order here would make the replayed
	// schedule depend on Go's map randomization.
	pending := make([]int32, 0, len(e.wanted))
	for bid := range e.wanted {
		pending = append(pending, bid)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, bid := range pending {
		owner := e.itemProducer(bid)
		if owner == e.r.ID {
			continue // locally produced: delivery is a direct call, never lost
		}
		if now < e.reqAt[bid] {
			continue
		}
		n := e.reqCount[bid]
		e.reqCount[bid] = n + 1
		if n > 6 {
			n = 6
		}
		e.reqAt[bid] = now + int64(4*time.Millisecond)<<n
		b := bid
		requester := e.r.ID
		peers := e.peers
		e.met.reRequests.Inc()
		rt.Stats.ReRequests.Add(1)
		if tr := e.opt.Trace; tr != nil {
			tr.End(int32(e.r.ID), "fault:re-request", tr.Begin(), fmt.Sprintf("item=%d owner=%d", b, owner))
		}
		e.r.RPC(owner, func(t *upcxx.Rank) {
			// Runs on the producer's progress goroutine: if the item is
			// done, re-announce it to the requester; duplicates are
			// absorbed by acquire. produced is written by the producer's
			// executor workers, so read it under the producer's mu.
			pe := peers[t.ID]
			pe.mu.Lock()
			done := pe.produced[b]
			pe.mu.Unlock()
			if !done {
				return
			}
			rt.Stats.Redeliveries.Add(1)
			t.RPC(requester, func(c *upcxx.Rank) {
				peers[c.ID].enqueueSignal(b)
			})
		})
	}
}

// enqueueSignal records an announced block id for the next poll. It is the
// only inbox writer and runs inside RPC closures on this rank's progress
// goroutine; the lock orders it against the poll drain and against health
// snapshots taken while workers run.
func (e *engine) enqueueSignal(bid int32) {
	e.mu.Lock()
	e.inbox = append(e.inbox, bid)
	e.mu.Unlock()
}

// poll drains the RPC queue (which enqueues announced block ids into the
// inbox) and then fetches each announced block with a one-sided get,
// updating dependency counters — paper Fig. 4 steps 2–6. Only the progress
// goroutine calls it.
func (e *engine) poll() {
	e.r.Progress()
	e.mu.Lock()
	if len(e.inbox) > 0 {
		inbox := e.inbox
		e.inbox = nil
		for _, bid := range inbox {
			e.acquire(bid)
		}
	}
	e.mu.Unlock()
}

// acquire makes a source item locally available (fetching it if remote)
// and propagates dependency decrements: a block readies the F/U tasks
// consuming it, a contribution item readies its apply task. It is
// idempotent — duplicated announcements return early — and fault-tolerant:
// a transfer whose retry budget ran out leaves the item in the wanted set,
// where the re-request protocol triggers a fresh announcement and a fresh
// fetch. Callers hold e.mu; the mutex release at the subsequent pop is the
// happens-before edge that lets workers read avail entries unlocked
// afterwards (acquire never rewrites an existing entry).
func (e *engine) acquire(item int32) {
	if e.avail[item] != nil {
		return
	}
	if item >= e.nBlocks {
		e.acquireContribution(item)
		return
	}
	bid := item
	b := &e.st.Blocks[bid]
	var fc fetched
	if data := e.owned[bid]; data != nil {
		fc.host = data
	} else {
		src := e.dir[bid]
		// The paper's "GPU blocks" optimization: a large factorized
		// diagonal block headed for GPU TRSMs is copied straight into
		// device memory (remote host → local device, zero-copy under
		// native memory kinds), skipping the host bounce.
		m, n := blockDims(e.st, b)
		if e.gpuEnabled() && b.IsDiag() && e.opt.Thresholds.ShouldOffload(machine.OpTrsm, m*n) {
			if buf, err := e.devAlloc(m * n); err == nil {
				if f := e.r.Copy(src, upcxx.GlobalPtr{Rank: int32(e.r.ID), Kind: simnet.Device, Data: buf.Data}); f.OK() {
					fc.dev = buf
				} else {
					// Device-direct fetch failed in transit: release the
					// buffer and fall through to the host path.
					e.r.Device().Free(buf)
				}
			} else if !errors.Is(err, gpu.ErrDeviceFailed) {
				e.met.oomFallbacks.Inc()
			}
		}
		if fc.dev == nil {
			fc.host = make([]float64, src.Len())
			if f := e.r.Rget(src, fc.host); !f.OK() {
				// Retries exhausted: keep the block wanted and let the
				// re-request path re-signal it; a later acquire retries
				// the get with a fresh attempt budget.
				e.met.fetchFailures.Inc()
				e.reqAt[bid] = 0
				return
			}
		}
	}
	e.avail[bid] = &fc
	delete(e.wanted, bid)
	if b.IsDiag() {
		// Local panel blocks of this supernode lose their diagonal
		// dependency.
		for _, fbid := range e.localFOfSnode[b.Snode] {
			e.decBlock(fbid)
		}
	}
	// Updates consuming this block lose one source dependency.
	for _, ui := range e.updatesByLocalSource[bid] {
		e.depUpdate[ui]--
		e.met.depDecrements.Inc()
		if e.depUpdate[ui] == 0 {
			e.push(taskUpdate, ui)
		}
	}
}

// acquireContribution makes a delivered update contribution locally
// available and readies its apply task. Same contract as the block path of
// acquire: idempotent via avail, and a failed transfer leaves the item in
// the wanted set for the re-request protocol. The directory entry is
// always populated by the time any signal for the item can arrive — the
// producer publishes before announcing, and redeliveries check produced
// first. Callers hold e.mu.
func (e *engine) acquireContribution(item int32) {
	var fc fetched
	src := e.dir[item]
	if int(src.Rank) == e.r.ID {
		// Computed on this rank (the compute owner is also the target
		// owner): the published buffer is directly readable.
		fc.host = src.Data
	} else {
		fc.host = make([]float64, src.Len())
		if f := e.r.Rget(src, fc.host); !f.OK() {
			e.met.fetchFailures.Inc()
			e.reqAt[item] = 0
			return
		}
	}
	e.avail[item] = &fc
	delete(e.wanted, item)
	e.push(taskApply, item-e.nBlocks)
}

// itemProducer returns the rank that produces an item: the owner of a
// block, or — for a contribution — the owner of the update's compute block
// under the active formulation.
func (e *engine) itemProducer(item int32) int {
	if item < e.nBlocks {
		return symbolic.OwnerOfBlock(e.m2d, &e.st.Blocks[item])
	}
	u := &e.tg.Updates[item-e.nBlocks]
	return symbolic.OwnerOfBlock(e.m2d, &e.st.Blocks[e.form.ComputeBlock(u)])
}

// hostOf returns the host copy of an available item (source block or
// delivered contribution), materializing it from the device mirror when a
// block was fetched device-direct. Concurrent workers consuming the same
// item race to materialize; once serializes.
func (e *engine) hostOf(item int32) []float64 {
	//lint:ignore mutexguard avail entries are write-once under e.mu; the pop that scheduled this task happens-after acquire published the entry (see acquire's doc)
	fc := e.avail[item]
	fc.once.Do(func() {
		if fc.host == nil {
			fc.host = make([]float64, fc.dev.Len())
			e.r.Charge(e.r.Device().DeviceToHost(fc.host, fc.dev))
		}
	})
	return fc.host
}

// decBlockN retires n of a block's dependencies, readying its task at
// zero; callers hold e.mu.
func (e *engine) decBlockN(bid, n int32) {
	e.depBlock[bid] -= n
	e.met.depDecrements.Add(float64(n))
	if e.depBlock[bid] == 0 {
		e.push(taskFor(&e.st.Blocks[bid]), bid)
	}
}

// decBlock retires one dependency of a block; callers hold e.mu.
func (e *engine) decBlock(bid int32) { e.decBlockN(bid, 1) }

func (e *engine) gpuEnabled() bool { return e.r.Device() != nil && !e.demoted.Load() }

// demote permanently retires this rank's device after a hardware failure:
// every subsequent offload decision answers CPU. The factorization
// continues — slower, not dead.
func (e *engine) demote() {
	if e.demoted.Swap(true) {
		return
	}
	e.met.gpuDemotions.Inc()
	if tr := e.opt.Trace; tr != nil {
		tr.End(int32(e.r.ID), "fault:demote-gpu", tr.Begin(), fmt.Sprintf("dev=%d", e.r.Device().ID))
	}
}

// devAlloc wraps device allocation with the resilience policy: transient
// injected failures are retried a few times (they clear by construction),
// and a permanently failed device demotes the rank before surfacing
// ErrDeviceFailed so the caller's CPU fallback runs.
func (e *engine) devAlloc(n int) (*gpu.Buffer, error) {
	d := e.r.Device()
	for attempt := 0; ; attempt++ {
		buf, err := d.Alloc(n)
		if err == nil {
			return buf, nil
		}
		if errors.Is(err, gpu.ErrDeviceFailed) {
			e.demote()
			return nil, err
		}
		if errors.Is(err, faults.ErrTransient) && attempt < 3 {
			e.met.allocRetries.Inc()
			continue
		}
		return nil, err
	}
}

// execute dispatches one ready task, recording it on the executing lane
// when tracing is on. Runs outside e.mu; the caller accounts completion.
func (e *engine) execute(t task, lane int32) {
	tr := e.opt.Trace
	start := tr.Begin()
	switch t.kind {
	case taskDiag:
		e.runDiag(t.id)
		tr.EndLane(int32(e.r.ID), lane, "D", start, fmt.Sprintf("sn=%d", e.st.Blocks[t.id].Snode))
	case taskFactor:
		e.runFactor(t.id)
		tr.EndLane(int32(e.r.ID), lane, "F", start, fmt.Sprintf("blk=%d", t.id))
	case taskUpdate:
		e.runUpdate(t.id)
		tr.EndLane(int32(e.r.ID), lane, "U", start, fmt.Sprintf("upd=%d", t.id))
	case taskApply:
		e.runApply(t.id)
		tr.EndLane(int32(e.r.ID), lane, "A", start, fmt.Sprintf("upd=%d", t.id))
	}
}

// announce notifies every rank holding tasks that consume an item — a
// factored block (paper Fig. 4 step 1) or a computed contribution under
// fan-in/fan-both; the local rank is handled directly. It also records the
// item as produced so the re-request protocol can serve consumers whose
// notification the network lost. The producing worker's write to the item
// data happens-before every consumer read: locally via e.mu (acquire under
// the same lock the consuming pop takes), remotely via the RPC queue lock
// followed by the consumer's inbox drain under its mu.
func (e *engine) announce(bid int32, consumers map[int]bool) {
	e.mu.Lock()
	e.produced[bid] = true
	if consumers[e.r.ID] {
		e.acquire(bid)
	}
	e.mu.Unlock()
	// Notify consumers in sorted rank order so the signal fan-out is a
	// deterministic function of the item, not of map iteration order.
	ranks := make([]int, 0, len(consumers))
	for rank := range consumers {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		if rank == e.r.ID {
			continue
		}
		b := bid
		peers := e.peers
		e.r.RPC(rank, func(target *upcxx.Rank) {
			// Runs on the consumer's progress goroutine inside Progress():
			// record the notification; the consumer's poll does the get.
			peers[target.ID].enqueueSignal(b)
		})
	}
}

// runDiag executes D_k: POTRF of the diagonal block, then fan-out to the
// panel owners.
func (e *engine) runDiag(bid int32) {
	st := e.st
	b := &st.Blocks[bid]
	data := e.owned[bid]
	n, _ := blockDims(st, b)
	var err error
	switch {
	case e.offload(machine.OpPotrf, n*n):
		err = e.gpuPotrf(n, data)
	case e.fp32():
		e.chargeCPU(machine.OpPotrf, machine.KernelFlops(machine.OpPotrf, 0, n, 0))
		err = potrf32(n, data)
	default:
		e.chargeCPU(machine.OpPotrf, machine.KernelFlops(machine.OpPotrf, 0, n, 0))
		err = blas.Potrf(blas.Lower, n, data, n)
	}
	if err != nil {
		e.r.Runtime().Fail(fmt.Errorf("%w: supernode %d: %v", ErrNotPositiveDefinite, b.Snode, err))
		return
	}
	// Consumers: owners of the off-diagonal blocks of this supernode.
	consumers := map[int]bool{}
	blks := st.SnodeBlocks(b.Snode)
	for i := 1; i < len(blks); i++ {
		consumers[symbolic.OwnerOfBlock(e.m2d, &blks[i])] = true
	}
	e.announce(bid, consumers)
}

// runFactor executes F_{i,k}: TRSM of an off-diagonal panel block against
// the supernode's factorized diagonal, then fan-out to update owners.
func (e *engine) runFactor(bid int32) {
	st := e.st
	b := &st.Blocks[bid]
	data := e.owned[bid]
	m, n := blockDims(st, b)
	diagID := st.DiagBlock(b.Snode).ID
	if e.offload(machine.OpTrsm, m*n) {
		e.gpuTrsm(m, n, diagID, data)
	} else {
		e.cpuTrsm(m, n, diagID, data)
	}
	// Consumers: owners of the formulation's compute blocks of every
	// update using this block — the target's owner under fan-out, a source
	// operand's owner under fan-in/fan-both.
	consumers := map[int]bool{}
	for _, ui := range e.tg.UpdatesBySource[bid] {
		u := &e.tg.Updates[ui]
		consumers[symbolic.OwnerOfBlock(e.m2d, &st.Blocks[e.form.ComputeBlock(u)])] = true
	}
	e.announce(bid, consumers)
}

// runUpdate executes U_{i,j,k}: W = B_{i,j}·B_{k,j}ᵀ (SYRK when the blocks
// coincide), then commits the contribution — directly through the
// ordered-apply path under fan-out, or by publishing it to the target's
// owner under the contribution-delivering formulations.
func (e *engine) runUpdate(ui int32) {
	st := e.st
	u := &e.tg.Updates[ui]
	ba := &st.Blocks[u.BlkA] // B_{k,j}
	bb := &st.Blocks[u.BlkB] // B_{i,j}

	w := st.Snodes[u.SrcSn].NCols() // inner dimension
	mB := int(bb.NRows)
	nA := int(ba.NRows)
	scratch := make([]float64, mB*nA)

	syrk := u.IsSyrk()
	hostA := e.hostOf(u.BlkA)
	if syrk {
		switch {
		case e.offload(machine.OpSyrk, mB*nA):
			e.gpuSyrk(mB, w, hostA, scratch)
		case e.fp32():
			e.chargeCPU(machine.OpSyrk, machine.KernelFlops(machine.OpSyrk, mB, w, 0))
			syrk32(mB, w, hostA, scratch)
		default:
			e.chargeCPU(machine.OpSyrk, machine.KernelFlops(machine.OpSyrk, mB, w, 0))
			blas.Syrk(blas.Lower, blas.NoTrans, mB, w, 1, hostA, mB, 0, scratch, mB)
		}
	} else {
		hostB := e.hostOf(u.BlkB)
		switch {
		case e.offload(machine.OpGemm, mB*nA):
			e.gpuGemm(mB, nA, w, hostB, hostA, scratch)
		case e.fp32():
			e.chargeCPU(machine.OpGemm, machine.KernelFlops(machine.OpGemm, mB, nA, w))
			gemm32(mB, nA, w, hostB, hostA, scratch)
		default:
			e.chargeCPU(machine.OpGemm, machine.KernelFlops(machine.OpGemm, mB, nA, w))
			blas.Gemm(blas.NoTrans, blas.Transpose, mB, nA, w, 1, hostB, mB, hostA, nA, 0, scratch, mB)
		}
	}

	if e.form.DeliversContributions() {
		e.publishContribution(ui, scratch)
		return
	}
	e.applyUpdate(ui, scratch)
}

// publishContribution ships a computed contribution toward the target
// block's owner under fan-in/fan-both: the scratch buffer is adopted into
// this rank's shared segment, published in the item directory, and
// announced exactly like a factored block — so a lost or duplicated
// contribution signal is recovered by the same re-request protocol. The
// target's apply task scatters it in the canonical order.
func (e *engine) publishContribution(ui int32, scratch []float64) {
	item := e.nBlocks + ui
	g := e.r.NewArrayFrom(scratch)
	e.mu.Lock()
	e.dir[item] = g
	e.mu.Unlock()
	tgt := &e.st.Blocks[e.tg.Updates[ui].Target]
	e.announce(item, map[int]bool{symbolic.OwnerOfBlock(e.m2d, tgt): true})
}

// runApply executes A_{i,j,k}: scatter a delivered contribution into its
// target block through the ordered-apply path. The numeric work already
// happened at the compute rank; the separate task exists so the scatter
// runs on the target's executor outside e.mu — blockApply.mu must be taken
// strictly before engine.mu, so acquire (which holds e.mu) cannot apply
// inline.
func (e *engine) runApply(ui int32) {
	e.applyUpdate(ui, e.hostOf(e.nBlocks+ui))
}

// applyUpdate commits a computed update contribution to its target block in
// the canonical order (ascending update index, fixed in applySeq at setup).
// An update finishing out of turn parks its scratch; the worker completing
// the preceding update drains everything that became applicable. Because
// every contribution lands in the same order no matter which worker, rank
// or scheduling policy produced it — and floating-point subtraction is not
// associative — the factor is bit-identical across all those dimensions.
func (e *engine) applyUpdate(ui int32, scratch []float64) {
	bid := e.tg.Updates[ui].Target
	bs := &e.blk[bid]
	bs.mu.Lock()
	seq := e.applySeq[ui]
	if seq != bs.next {
		if bs.parked == nil {
			bs.parked = map[int32]parkedUpd{}
		}
		bs.parked[seq] = parkedUpd{ui: ui, scratch: scratch}
		bs.mu.Unlock()
		e.met.updatesParked.Inc()
		return
	}
	e.scatterSub(ui, scratch)
	bs.next++
	applied := int32(1)
	for {
		p, ok := bs.parked[bs.next]
		if !ok {
			break
		}
		delete(bs.parked, bs.next)
		e.scatterSub(p.ui, p.scratch)
		bs.next++
		applied++
	}
	bs.mu.Unlock()
	// Lock order: blockApply.mu strictly before engine.mu.
	e.mu.Lock()
	e.decBlockN(bid, applied)
	e.mu.Unlock()
}

// scatterSub subtracts one update's scratch contribution from its target
// block. Row positions come from the source row lists; column positions are
// the A-block rows relative to the target supernode's first column. Callers
// hold the target's blockApply mutex.
func (e *engine) scatterSub(ui int32, scratch []float64) {
	st := e.st
	u := &e.tg.Updates[ui]
	ba := &st.Blocks[u.BlkA]
	bb := &st.Blocks[u.BlkB]
	tb := &st.Blocks[u.Target]
	tdata := e.owned[u.Target]
	mB := int(bb.NRows)
	syrk := u.IsSyrk()

	snj := &st.Snodes[u.SrcSn]
	snk := &st.Snodes[tb.Snode]
	rowsB := snj.Rows[bb.RowOff : bb.RowOff+bb.NRows]
	rowsA := snj.Rows[ba.RowOff : ba.RowOff+ba.NRows]
	ldT := int(tb.NRows)
	rpos := make([]int, mB)
	if e.st.Incomplete {
		// IC structures drop rows individually: a block that survived the
		// level rule may still lack some of the source's rows. Missing
		// positions mark their contributions for discard.
		for x, r := range rowsB {
			rpos[x] = e.rowPosInBlockOrMissing(tb, r)
		}
	} else {
		for x, r := range rowsB {
			rpos[x] = e.rowPosInBlock(tb, r)
		}
	}
	for y, c := range rowsA {
		colT := int(c - snk.FirstCol)
		colBase := colT * ldT
		wcol := scratch[y*mB : y*mB+mB]
		if syrk {
			// Only the lower triangle of scratch is populated.
			for x := y; x < mB; x++ {
				if rpos[x] < 0 {
					continue
				}
				tdata[rpos[x]+colBase] -= wcol[x]
			}
		} else {
			for x := 0; x < mB; x++ {
				if rpos[x] < 0 {
					continue
				}
				tdata[rpos[x]+colBase] -= wcol[x]
			}
		}
	}
}

// -------------------------------------------------------- GPU execution ----

// offload decides CPU vs GPU for an operation with an output of `elems`
// elements (§4.2's per-op size heuristic), counting admissions and
// threshold rejections per op.
func (e *engine) offload(op machine.Op, elems int) bool {
	if !e.gpuEnabled() {
		return false
	}
	if e.fp32() {
		// fp32 mode forces CPU kernels: the modeled device speaks fp64
		// only, and routing some kernels through it would mix precisions
		// within one factor. Count the offloads the threshold would have
		// admitted as demotions so the cost of the policy is visible.
		if e.opt.Thresholds.ShouldOffload(op, elems) {
			e.met.fp32Demotions.Inc()
		}
		return false
	}
	if !e.opt.Thresholds.ShouldOffload(op, elems) {
		e.met.gpuRejections[op].Inc()
		return false
	}
	e.met.gpuOffloads[op].Inc()
	return true
}

// opStats reads the kernel counters out of the metrics bundle.
func (e *engine) opStats() OpStats {
	var s OpStats
	for i := range s.CPU {
		s.CPU[i] = int64(e.met.tasks[i][targetCPU].Value())
		s.GPU[i] = int64(e.met.tasks[i][targetGPU].Value())
	}
	return s
}

// fallbackCPU handles a failed device allocation according to policy,
// returning true when the caller should run the CPU path. Only a genuine
// capacity OOM under FallbackError aborts: a dead device demotes the rank
// (the job survives on CPU kernels), and transient injected failures that
// outlived their retries fall back silently — transient faults must never
// reach the hard-abort path.
func (e *engine) fallbackCPU(err error) bool {
	if errors.Is(err, gpu.ErrDeviceFailed) {
		return true // demoted by devAlloc; run this op on the CPU
	}
	if errors.Is(err, faults.ErrTransient) {
		e.met.oomFallbacks.Inc()
		return true
	}
	if e.opt.Fallback == gpu.FallbackError {
		e.r.Runtime().Fail(fmt.Errorf("core: device allocation failed and fallback=error: %w", err))
		return false
	}
	e.met.oomFallbacks.Inc()
	return true
}

func (e *engine) gpuPotrf(n int, data []float64) error {
	d := e.r.Device()
	buf, err := e.devAlloc(n * n)
	if err != nil {
		if !e.fallbackCPU(err) {
			return nil // job is aborting
		}
		e.chargeCPU(machine.OpPotrf, machine.KernelFlops(machine.OpPotrf, 0, n, 0))
		return blas.Potrf(blas.Lower, n, data, n)
	}
	defer d.Free(buf)
	e.r.Charge(d.HostToDevice(buf, data))
	dt, kerr := d.Potrf(n, buf, n)
	e.r.Charge(dt)
	if kerr != nil {
		return kerr
	}
	e.r.Charge(d.DeviceToHost(data, buf))
	e.noteGPU(machine.OpPotrf, dt)
	return nil
}

func (e *engine) gpuTrsm(m, n int, diagID int32, data []float64) {
	d := e.r.Device()
	// Reuse a device-resident diagonal when the fetch already placed it
	// there (GPU-blocks optimization); otherwise stage it now.
	//lint:ignore mutexguard avail entries are write-once under e.mu; the pop that scheduled this TRSM happens-after acquire published the diagonal
	fc := e.avail[diagID]
	var diagBuf *gpu.Buffer
	ownDiag := false
	if fc != nil && fc.dev != nil {
		diagBuf = fc.dev
	} else {
		host := e.hostOf(diagID)
		buf, err := e.devAlloc(len(host))
		if err != nil {
			if !e.fallbackCPU(err) {
				return
			}
			e.cpuTrsm(m, n, diagID, data)
			return
		}
		diagBuf = buf
		ownDiag = true
		e.r.Charge(d.HostToDevice(buf, host))
	}
	bBuf, err := e.devAlloc(m * n)
	if err != nil {
		if ownDiag {
			d.Free(diagBuf)
		}
		if !e.fallbackCPU(err) {
			return
		}
		e.cpuTrsm(m, n, diagID, data)
		return
	}
	e.r.Charge(d.HostToDevice(bBuf, data))
	dt := d.Trsm(m, n, diagBuf, n, bBuf, m)
	e.r.Charge(dt)
	e.r.Charge(d.DeviceToHost(data, bBuf))
	d.Free(bBuf)
	if ownDiag {
		d.Free(diagBuf)
	}
	e.noteGPU(machine.OpTrsm, dt)
}

func (e *engine) cpuTrsm(m, n int, diagID int32, data []float64) {
	e.chargeCPU(machine.OpTrsm, machine.KernelFlops(machine.OpTrsm, m, n, 0))
	diag := e.hostOf(diagID)
	if e.fp32() {
		trsm32(m, n, diag, data)
		return
	}
	blas.Trsm(blas.Right, blas.Lower, blas.Transpose, m, n, 1, diag, n, data, m)
}

func (e *engine) gpuSyrk(n, k int, a, scratch []float64) {
	d := e.r.Device()
	cpu := func() {
		e.chargeCPU(machine.OpSyrk, machine.KernelFlops(machine.OpSyrk, n, k, 0))
		blas.Syrk(blas.Lower, blas.NoTrans, n, k, 1, a, n, 0, scratch, n)
	}
	aBuf, err1 := e.devAlloc(len(a))
	if err1 != nil {
		if e.fallbackCPU(err1) {
			cpu()
		}
		return
	}
	cBuf, err2 := e.devAlloc(len(scratch))
	if err2 != nil {
		d.Free(aBuf)
		if e.fallbackCPU(err2) {
			cpu()
		}
		return
	}
	e.r.Charge(d.HostToDevice(aBuf, a))
	dt := d.Syrk(n, k, aBuf, n, cBuf, n)
	e.r.Charge(dt)
	e.r.Charge(d.DeviceToHost(scratch, cBuf))
	d.Free(aBuf)
	d.Free(cBuf)
	e.noteGPU(machine.OpSyrk, dt)
}

func (e *engine) gpuGemm(m, n, k int, b, a, scratch []float64) {
	d := e.r.Device()
	cpu := func() {
		e.chargeCPU(machine.OpGemm, machine.KernelFlops(machine.OpGemm, m, n, k))
		blas.Gemm(blas.NoTrans, blas.Transpose, m, n, k, 1, b, m, a, n, 0, scratch, m)
	}
	bBuf, err := e.devAlloc(len(b))
	if err != nil {
		if e.fallbackCPU(err) {
			cpu()
		}
		return
	}
	aBuf, err := e.devAlloc(len(a))
	if err != nil {
		d.Free(bBuf)
		if e.fallbackCPU(err) {
			cpu()
		}
		return
	}
	cBuf, err := e.devAlloc(len(scratch))
	if err != nil {
		d.Free(bBuf)
		d.Free(aBuf)
		if e.fallbackCPU(err) {
			cpu()
		}
		return
	}
	e.r.Charge(d.HostToDevice(bBuf, b))
	e.r.Charge(d.HostToDevice(aBuf, a))
	dt := d.Gemm(m, n, k, bBuf, m, aBuf, n, cBuf, m)
	e.r.Charge(dt)
	e.r.Charge(d.DeviceToHost(scratch, cBuf))
	d.Free(bBuf)
	d.Free(aBuf)
	d.Free(cBuf)
	e.noteGPU(machine.OpGemm, dt)
}

// ErrInternal flags invariant violations.
var ErrInternal = errors.New("core: internal error")
