package core

import (
	"math"
	"math/rand"
	"testing"

	"sympack/internal/gen"
	"sympack/internal/matrix"
)

// illConditioned returns a Laplacian whose rows are rescaled over many
// orders of magnitude: still SPD, but badly enough conditioned that a
// single fp64 solve leaves a residual refinement can visibly improve.
func illConditioned(t *testing.T, nx, ny int, decades float64) *matrix.SparseSym {
	t.Helper()
	a := gen.Laplace2D(nx, ny)
	n := a.N
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = math.Pow(10, decades*float64(i)/float64(n-1))
	}
	// D·A·D symmetric rescaling on the stored lower triangle.
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			a.Val[p] *= scale[j] * scale[a.RowInd[p]]
		}
	}
	return a
}

func refineRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func TestSolveRefinedIllConditioned(t *testing.T) {
	a := illConditioned(t, 10, 10, 8)
	b := refineRHS(a.N, 1)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xRaw, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	raw := ResidualNorm(a, xRaw, b)
	// tol below the conditioning floor: refinement must sweep at least once
	// and improve on the raw solve before the no-progress break fires.
	x, rel, iters, err := f.SolveRefined(a, b, 1e-14, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-12 {
		t.Fatalf("refinement stalled at residual %g after %d sweeps", rel, iters)
	}
	if got := ResidualNorm(a, x, b); got > 1e-11 {
		t.Fatalf("reported residual %g but actual %g", rel, got)
	}
	if iters == 0 || raw <= rel {
		t.Fatalf("refinement did no observable work (raw %g, refined %g, %d sweeps)", raw, rel, iters)
	}
}

// TestSolveRefinedNoProgressStops: an unreachable tolerance must terminate
// via the no-progress break, not burn the whole sweep budget.
func TestSolveRefinedNoProgressStops(t *testing.T) {
	a := gen.Laplace2D(8, 8)
	b := refineRHS(a.N, 2)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, rel, iters, err := f.SolveRefined(a, b, 1e-30, 50)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= 50 {
		t.Fatalf("refinement ran all %d sweeps chasing an unreachable tolerance", iters)
	}
	if rel > 1e-12 {
		t.Fatalf("residual %g after %d sweeps; working precision expected", rel, iters)
	}
}

// TestSolveRefinedFP32Recovery is the mixed-precision acceptance criterion:
// a single-precision factor polished by fp64 refinement must reach a
// residual an unrefined fp32 solve cannot.
func TestSolveRefinedFP32Recovery(t *testing.T) {
	for name, a := range map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(12, 12),
		"flan":      gen.Flan3D(4, 4, 4, 3),
		"randspd":   gen.RandomSPD(150, 0.05, 4),
	} {
		b := refineRHS(a.N, 5)
		f, err := Factorize(a, Options{Precision: PrecFP32})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		xRaw, err := f.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw := ResidualNorm(a, xRaw, b)
		x, rel, iters, err := f.SolveRefined(a, b, 1e-12, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel > 1e-10 {
			t.Fatalf("%s: fp32+refinement residual %g > 1e-10 (%d sweeps)", name, rel, iters)
		}
		if got := ResidualNorm(a, x, b); got > 1e-10 {
			t.Fatalf("%s: actual residual %g", name, got)
		}
		if iters == 0 || raw <= rel {
			t.Fatalf("%s: refinement did no observable work (raw %g, refined %g, %d sweeps)", name, raw, rel, iters)
		}
	}
}

// TestSolveRefinedDeterministicAcrossWorkers: the refinement trajectory —
// every sweep's iterate — must be bit-identical across worker and rank
// counts, the factorization's determinism guarantee extended through the
// mixed-precision solve path.
func TestSolveRefinedDeterministicAcrossWorkers(t *testing.T) {
	grid := []struct {
		name string
		a    *matrix.SparseSym
	}{
		{"laplace2d", gen.Laplace2D(11, 13)},
		{"thermal", gen.Thermal2D(14, 14, 3, 6)},
		{"randspd", gen.RandomSPD(120, 0.06, 7)},
	}
	for _, g := range grid {
		b := refineRHS(g.a.N, 8)
		var refX []float64
		var refRel float64
		var refIters int
		for _, cfg := range []struct{ ranks, workers int }{
			{1, 1}, {1, 2}, {1, 4}, {4, 1}, {4, 4},
		} {
			f, err := Factorize(g.a, Options{
				Ranks: cfg.ranks, Workers: cfg.workers, Precision: PrecFP32,
			})
			if err != nil {
				t.Fatalf("%s r%dw%d: %v", g.name, cfg.ranks, cfg.workers, err)
			}
			x, rel, iters, err := f.SolveRefined(g.a, b, 1e-12, 10)
			if err != nil {
				t.Fatalf("%s r%dw%d: %v", g.name, cfg.ranks, cfg.workers, err)
			}
			if refX == nil {
				refX, refRel, refIters = x, rel, iters
				continue
			}
			if rel != refRel || iters != refIters {
				t.Fatalf("%s r%dw%d: trajectory diverged: rel %g vs %g, sweeps %d vs %d",
					g.name, cfg.ranks, cfg.workers, rel, refRel, iters, refIters)
			}
			for i := range refX {
				if x[i] != refX[i] {
					t.Fatalf("%s r%dw%d: solution bit %d differs across worker counts", g.name, cfg.ranks, cfg.workers, i)
				}
			}
		}
	}
}

// TestSolveRefinedSweepMetric: each refinement sweep lands on the factor's
// registry as sympack_iter_refine_sweeps_total.
func TestSolveRefinedSweepMetric(t *testing.T) {
	a := gen.Laplace2D(10, 10)
	b := refineRHS(a.N, 9)
	f, err := Factorize(a, Options{Precision: PrecFP32})
	if err != nil {
		t.Fatal(err)
	}
	_, _, iters, err := f.SolveRefined(a, b, 1e-12, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Metrics.Counter("sympack_iter_refine_sweeps_total",
		"iterative-refinement sweeps performed by SolveRefined")
	if int(c.Value()) != iters {
		t.Fatalf("counter %v, want %d sweeps", c.Value(), iters)
	}
}
