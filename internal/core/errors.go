package core

import (
	"errors"
	"fmt"
	"strings"

	"sympack/internal/faults"
	"sympack/internal/gpu"
)

// Typed error taxonomy for the resilient runtime. ErrStalled and
// ErrNotPositiveDefinite (core.go) predate it; these wrap or re-export the
// lower layers' classes so callers can branch with errors.Is against core
// alone.
var (
	// ErrTransient classifies recoverable injected faults (dropped or
	// delayed signals, failing transfers, transient device allocations).
	// A factorization should never abort with only transient faults.
	ErrTransient = faults.ErrTransient

	// ErrDeviceFailed marks a permanently dead device. The owning rank
	// demotes itself to CPU kernels; the job continues.
	ErrDeviceFailed = gpu.ErrDeviceFailed

	// ErrLostSignal marks a stall in which ranks were still waiting on
	// source blocks after exercising the re-request protocol — the
	// signature of irrecoverably lost announcements (or a dead producer).
	ErrLostSignal = errors.New("core: lost signal")

	// ErrCanceled is returned when a factorization or solve is abandoned
	// because Options.Context was canceled or its deadline expired.
	// Cancellation is cooperative: every scheduling loop checks the
	// context at its task-pull boundary, so in-flight kernels finish but
	// no new task starts. A canceled factorization returns no Factor;
	// the analysis it consumed remains valid for a retry.
	ErrCanceled = errors.New("core: canceled")
)

// FaultStats aggregates the fault-injection and recovery counters of one
// factorization or solve phase. All zeros on a perfect network.
type FaultStats struct {
	DroppedSignals   int64 // producer announcements discarded by the injector
	DupSignals       int64 // announcements delivered twice (absorbed idempotently)
	DelayedSignals   int64 // announcements deferred by progress ticks
	TransferRetries  int64 // Rget/Rput/Copy attempts that failed and retried
	TransferFailures int64 // transfers whose retry budget ran out
	Stalls           int64 // injected rank-stall windows
	ReRequests       int64 // consumer re-requests for missing announcements
	Redeliveries     int64 // producer re-announcements serving re-requests
	AllocRetries     int64 // transient device-allocation failures retried
	DeviceDemotions  int64 // ranks that permanently fell back to CPU kernels
}

// Any reports whether any fault or recovery event was recorded.
func (s FaultStats) Any() bool { return s != FaultStats{} }

// Add accumulates another counter set.
func (s *FaultStats) Add(o FaultStats) {
	s.DroppedSignals += o.DroppedSignals
	s.DupSignals += o.DupSignals
	s.DelayedSignals += o.DelayedSignals
	s.TransferRetries += o.TransferRetries
	s.TransferFailures += o.TransferFailures
	s.Stalls += o.Stalls
	s.ReRequests += o.ReRequests
	s.Redeliveries += o.Redeliveries
	s.AllocRetries += o.AllocRetries
	s.DeviceDemotions += o.DeviceDemotions
}

func (s FaultStats) String() string {
	if !s.Any() {
		return "no faults"
	}
	var b strings.Builder
	add := func(name string, v int64) {
		if v != 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", name, v)
		}
	}
	add("dropped", s.DroppedSignals)
	add("dup", s.DupSignals)
	add("delayed", s.DelayedSignals)
	add("xfer-retries", s.TransferRetries)
	add("xfer-failures", s.TransferFailures)
	add("stalls", s.Stalls)
	add("re-requests", s.ReRequests)
	add("redeliveries", s.Redeliveries)
	add("alloc-retries", s.AllocRetries)
	add("gpu-demotions", s.DeviceDemotions)
	return b.String()
}

// RankHealth is one rank's progress snapshot inside a HealthReport.
type RankHealth struct {
	Rank            int
	Done, Total     int   // executed vs owned tasks (the LTQ view)
	RTQDepth        int   // ready tasks queued but not yet run
	Inbox           int   // announcements received but not yet acquired
	PendingRPCs     int   // RPCs enqueued on the rank but not yet executed
	OutstandingDeps int   // source blocks still awaited (wanted set)
	ReRequests      int64 // lost-signal re-requests this rank has sent
}

// HealthReport is the stall watchdog's structured diagnosis: per-rank queue
// depths and dependency debt plus the job-wide fault counters, replacing the
// old free-text "done/total" line. Snapshots are taken from per-engine
// atomic mirrors so the watchdog can read them race-free mid-run.
type HealthReport struct {
	Ranks  []RankHealth
	Faults FaultStats
}

// Waiting reports whether any rank is still owed source blocks — with
// re-requests already sent, the lost-signal signature.
func (h *HealthReport) Waiting() bool {
	for _, r := range h.Ranks {
		if r.OutstandingDeps > 0 {
			return true
		}
	}
	return false
}

// ReRequested reports whether any rank exercised the re-request protocol.
func (h *HealthReport) ReRequested() bool {
	for _, r := range h.Ranks {
		if r.ReRequests > 0 {
			return true
		}
	}
	return false
}

func (h *HealthReport) String() string {
	var b strings.Builder
	b.WriteString("health:")
	for _, r := range h.Ranks {
		fmt.Fprintf(&b, " [r%d %d/%d rtq=%d inbox=%d rpc=%d deps=%d rereq=%d]",
			r.Rank, r.Done, r.Total, r.RTQDepth, r.Inbox, r.PendingRPCs,
			r.OutstandingDeps, r.ReRequests)
	}
	fmt.Fprintf(&b, " faults{%s}", h.Faults)
	return b.String()
}
