package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.DropSignal(0) || in.DupSignal(1) || in.DelaySignalTicks(2) != 0 ||
		in.TransferFault(0) || in.AllocFault(0) || in.DeviceFailed(0) ||
		in.StallWindow(0) != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	if in.Counts() != "none" {
		t.Fatalf("counts = %q", in.Counts())
	}
	if in.Restrict(DropSignal) != nil {
		t.Fatal("nil restrict must stay nil")
	}
}

func TestDeterministicSequences(t *testing.T) {
	plan := DefaultChaos(42)
	a := New(plan, 4)
	b := New(plan, 4)
	for i := 0; i < 2000; i++ {
		rank := i % 4
		if a.DropSignal(rank) != b.DropSignal(rank) {
			t.Fatalf("drop decision %d diverged", i)
		}
		if a.DelaySignalTicks(rank) != b.DelaySignalTicks(rank) {
			t.Fatalf("delay decision %d diverged", i)
		}
		if a.TransferFault(rank) != b.TransferFault(rank) {
			t.Fatalf("transfer decision %d diverged", i)
		}
	}
	if a.Count(DropSignal) != b.Count(DropSignal) {
		t.Fatalf("counts diverged: %d vs %d", a.Count(DropSignal), b.Count(DropSignal))
	}
	if a.Count(DropSignal) == 0 {
		t.Fatal("a 5% drop rate over 2000 draws should inject at least once")
	}
}

func TestSeedsDiffer(t *testing.T) {
	plan1, plan2 := DefaultChaos(1), DefaultChaos(2)
	a, b := New(plan1, 1), New(plan2, 1)
	same := true
	for i := 0; i < 500; i++ {
		if a.DropSignal(0) != b.DropSignal(0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop sequences")
	}
}

func TestRateOneAlwaysInjects(t *testing.T) {
	var p Plan
	p.Rate[TransientTransfer] = 1
	in := New(p, 2)
	for i := 0; i < 50; i++ {
		if !in.TransferFault(i % 2) {
			t.Fatalf("rate-1 transfer fault missed at %d", i)
		}
	}
	if in.Count(TransientTransfer) != 50 {
		t.Fatalf("count = %d", in.Count(TransientTransfer))
	}
}

func TestLimitCapsInjections(t *testing.T) {
	var p Plan
	p.Rate[DropSignal] = 1
	p.Limit[DropSignal] = 3
	in := New(p, 1)
	hits := 0
	for i := 0; i < 100; i++ {
		if in.DropSignal(0) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("injected %d drops, want 3 (capped)", hits)
	}
}

func TestRestrictMasksClasses(t *testing.T) {
	var p Plan
	p.Rate[DropSignal] = 1
	p.Rate[RankStall] = 1
	full := New(p, 1)
	solve := full.Restrict(RankStall)
	if solve.DropSignal(0) {
		t.Fatal("restricted view must not inject masked classes")
	}
	if solve.StallWindow(0) == 0 {
		t.Fatal("restricted view must keep allowed classes")
	}
	// Counters are shared with the parent.
	if full.Count(RankStall) != 1 {
		t.Fatalf("shared stall count = %d", full.Count(RankStall))
	}
}

func TestDeviceFailLatches(t *testing.T) {
	var p Plan
	p.Rate[DeviceFail] = 1
	in := New(p, 2)
	if !in.DeviceFailed(0) {
		t.Fatal("rate-1 device failure must trigger")
	}
	for i := 0; i < 5; i++ {
		if !in.DeviceFailed(0) {
			t.Fatal("device failure must latch")
		}
	}
	if got := in.Count(DeviceFail); got != 1 {
		t.Fatalf("latched failure counted %d times", got)
	}
}

func TestDelayTicksBounded(t *testing.T) {
	var p Plan
	p.Rate[DelaySignal] = 1
	p.MaxDelayTicks = 4
	in := New(p, 1)
	for i := 0; i < 200; i++ {
		d := in.DelaySignalTicks(0)
		if d < 1 || d > 4 {
			t.Fatalf("delay %d out of [1,4]", d)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("drop=0.02, dup=0.5/10 ,transfer=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rate[DropSignal] != 0.02 || p.Rate[DupSignal] != 0.5 ||
		p.Limit[DupSignal] != 10 || p.Rate[TransientTransfer] != 1 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := Parse(p.String(), 7)
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip: %+v vs %+v", back, p)
	}
}

func TestParseAll(t *testing.T) {
	p, err := Parse("all=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := Class(0); c < NumClasses; c++ {
		want := 0.1
		if c == DeviceFail || IsServerClass(c) {
			want = 0 // devfail and the server classes are opt-in only
		}
		if p.Rate[c] != want {
			t.Fatalf("class %v rate = %g, want %g", c, p.Rate[c], want)
		}
	}
}

func TestParseServerClasses(t *testing.T) {
	p, err := Parse("slowclient=0.2,cancelreq=0.1/5,cachethrash=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate[SlowClient] != 0.2 || p.Rate[CanceledRequest] != 0.1 ||
		p.Limit[CanceledRequest] != 5 || p.Rate[CacheThrash] != 1 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := Parse(p.String(), 9)
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip: %+v vs %+v", back, p)
	}
}

func TestServerInjections(t *testing.T) {
	var p Plan
	p.Rate[SlowClient] = 1
	p.Rate[CanceledRequest] = 1
	p.Rate[CacheThrash] = 1
	in := New(p, 1)
	for req := 0; req < 100; req++ {
		d := in.SlowClientDelay(req)
		if d < in.plan.StallWindow || d > 8*in.plan.StallWindow {
			t.Fatalf("slow-client delay %v outside [1,8] stall windows", d)
		}
		if !in.CanceledRequest(req) || !in.CacheThrash(req) {
			t.Fatalf("rate-1 server fault missed at request %d", req)
		}
	}
	if in.Count(SlowClient) != 100 || in.Count(CanceledRequest) != 100 || in.Count(CacheThrash) != 100 {
		t.Fatalf("server counts = %d/%d/%d", in.Count(SlowClient), in.Count(CanceledRequest), in.Count(CacheThrash))
	}
	// A nil injector answers "no fault" for the server classes too.
	var nilIn *Injector
	if nilIn.SlowClientDelay(0) != 0 || nilIn.CanceledRequest(0) || nilIn.CacheThrash(0) {
		t.Fatal("nil injector must not inject server faults")
	}
}

func TestServerChaosPlan(t *testing.T) {
	p := ServerChaos(11)
	if !p.Active() {
		t.Fatal("server chaos must be active")
	}
	for c := Class(0); c < NumClasses; c++ {
		if p.Rate[c] > 0 && !IsServerClass(c) {
			t.Fatalf("server chaos enables runtime class %v", c)
		}
	}
	back, err := Parse(p.String(), 11)
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip: %+v vs %+v", back, p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"nope=0.1", "drop", "drop=2", "drop=-1", "drop=0.1/x"} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestPlanActiveAndString(t *testing.T) {
	var p Plan
	if p.Active() || (&p).String() != "none" {
		t.Fatal("zero plan must be inactive")
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan must be inactive")
	}
	c := DefaultChaos(3)
	if !c.Active() {
		t.Fatal("default chaos must be active")
	}
	if c.String() == "none" {
		t.Fatal("active plan must render its classes")
	}
}

func TestErrTransientWrapping(t *testing.T) {
	err := fmt.Errorf("layer: %w", ErrTransient)
	if !errors.Is(err, ErrTransient) {
		t.Fatal("wrapping must preserve transience")
	}
}

func TestStallWindowDefault(t *testing.T) {
	var p Plan
	p.Rate[RankStall] = 1
	in := New(p, 1)
	if w := in.StallWindow(0); w != 100*time.Microsecond {
		t.Fatalf("default stall window = %v", w)
	}
}
