// Package faults is a seeded, deterministic fault-injection layer for the
// simulated PGAS runtime. The paper's signal/poll protocol (§3.4, Figs. 3–4)
// assumes every producer RPC eventually reaches every consumer and every
// one-sided get completes — guarantees a real GASNet-EX deployment does not
// provide for free. This package lets tests and the CLI revoke those
// guarantees on purpose: the simulated NIC, RPC layer, and GPU device consult
// an Injector on every operation and may be told to drop, duplicate, or
// delay a signal, transiently fail a transfer or a device allocation, stall
// a rank, or kill a device outright.
//
// Decisions are pure functions of (seed, fault class, actor, per-actor
// operation index) via a splitmix64 hash, so a plan with a fixed seed injects
// the same fault sequence into each actor on every run regardless of how the
// scheduler interleaves ranks — the property the chaos suite's
// bitwise-checked reproductions rely on.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrTransient is the base class of every injected fault that a resilient
// caller is expected to absorb (retry, fall back, or re-request) rather than
// abort on. Wrapped errors satisfy errors.Is(err, ErrTransient).
var ErrTransient = errors.New("faults: transient fault")

// Class enumerates the injectable fault classes.
type Class uint8

const (
	// DropSignal silently discards a producer→consumer RPC.
	DropSignal Class = iota
	// DupSignal delivers an RPC twice (at-least-once delivery).
	DupSignal
	// DelaySignal defers an RPC's delivery by several progress ticks.
	DelaySignal
	// TransientTransfer fails an Rget/Rput/Copy attempt; the runtime
	// retries with exponential backoff.
	TransientTransfer
	// TransientOOM fails a device allocation once; the next attempt may
	// succeed.
	TransientOOM
	// RankStall freezes a rank for a short real-time window.
	RankStall
	// DeviceFail kills a device permanently; the bound ranks must demote
	// themselves to CPU kernels.
	DeviceFail

	// The server classes model client- and cache-side misbehaviour against
	// sympackd rather than runtime faults inside a factorization. The
	// "actor" of their decision streams is a request sequence number, not
	// a rank. They are excluded from the "all" pseudo-class: "all" means
	// every transient fault a factorization must absorb, and these target
	// the service layer above it.

	// SlowClient holds an admitted request for a while before serving it,
	// simulating a client that trickles its body or a stalled upstream —
	// the load pattern that exhausts admission capacity.
	SlowClient
	// CanceledRequest cancels an admitted request's context mid-flight,
	// exercising the cooperative-cancellation path end to end.
	CanceledRequest
	// CacheThrash force-evicts the cache entries a request would have hit,
	// simulating budget pressure from competing patterns.
	CacheThrash

	// NumClasses is the number of fault classes.
	NumClasses
)

var classNames = [NumClasses]string{
	DropSignal:        "drop",
	DupSignal:         "dup",
	DelaySignal:       "delay",
	TransientTransfer: "transfer",
	TransientOOM:      "oom",
	RankStall:         "stall",
	DeviceFail:        "devfail",
	SlowClient:        "slowclient",
	CanceledRequest:   "cancelreq",
	CacheThrash:       "cachethrash",
}

// IsServerClass reports whether c targets the service layer (sympackd)
// rather than the factorization runtime.
func IsServerClass(c Class) bool {
	return c == SlowClient || c == CanceledRequest || c == CacheThrash
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Plan describes what to inject: a per-class probability (per operation),
// an optional per-class cap on total injections, and the shape parameters
// of delays and stalls. The zero value injects nothing.
type Plan struct {
	// Seed drives every injection decision.
	Seed int64
	// Rate is the per-operation injection probability per class, in [0,1].
	Rate [NumClasses]float64
	// Limit caps the total injections per class (0 = unlimited).
	Limit [NumClasses]int64
	// MaxDelayTicks bounds how many progress ticks a delayed signal is
	// deferred (default 3; the actual delay is 1..MaxDelayTicks).
	MaxDelayTicks int
	// StallWindow is the real-time duration of one injected rank stall
	// (default 100µs).
	StallWindow time.Duration
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rate {
		if r > 0 {
			return true
		}
	}
	return false
}

// String renders the plan in the syntax Parse accepts.
func (p *Plan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	for c := Class(0); c < NumClasses; c++ {
		if p.Rate[c] <= 0 {
			continue
		}
		s := fmt.Sprintf("%s=%g", c, p.Rate[c])
		if p.Limit[c] > 0 {
			s += fmt.Sprintf("/%d", p.Limit[c])
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// DefaultChaos returns a moderate all-transient-classes plan: every
// recoverable class is exercised, device death is left out (it is a
// different contract — permanent demotion — and is opted into explicitly).
func DefaultChaos(seed int64) Plan {
	p := Plan{Seed: seed}
	p.Rate[DropSignal] = 0.05
	p.Rate[DupSignal] = 0.05
	p.Rate[DelaySignal] = 0.10
	p.Rate[TransientTransfer] = 0.05
	p.Rate[TransientOOM] = 0.10
	p.Rate[RankStall] = 0.002
	return p
}

// ServerChaos returns a moderate plan over the server fault classes, the
// counterpart of DefaultChaos for sympackd's request path: slow clients,
// mid-flight cancellations and cache thrashing, all deterministic in the
// seed and the request sequence number.
func ServerChaos(seed int64) Plan {
	p := Plan{Seed: seed}
	p.Rate[SlowClient] = 0.10
	p.Rate[CanceledRequest] = 0.05
	p.Rate[CacheThrash] = 0.05
	return p
}

// Parse builds a Plan from a comma-separated spec like
//
//	drop=0.02,dup=0.02,delay=0.05,transfer=0.02,oom=0.05,stall=0.002
//
// Each entry is class=rate or class=rate/limit; the pseudo-class "all"
// applies a rate to every transient runtime class (everything except
// devfail and the server classes, which are opted into by name).
func Parse(spec string, seed int64) (Plan, error) {
	p := Plan{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Plan{}, fmt.Errorf("faults: bad entry %q (want class=rate)", part)
		}
		val, lim := kv[1], ""
		if i := strings.IndexByte(val, '/'); i >= 0 {
			val, lim = val[:i], val[i+1:]
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return Plan{}, fmt.Errorf("faults: bad rate in %q (want 0..1)", part)
		}
		var limit int64
		if lim != "" {
			limit, err = strconv.ParseInt(lim, 10, 64)
			if err != nil || limit < 0 {
				return Plan{}, fmt.Errorf("faults: bad limit in %q", part)
			}
		}
		name := strings.ToLower(strings.TrimSpace(kv[0]))
		if name == "all" {
			for c := Class(0); c < NumClasses; c++ {
				if c == DeviceFail || IsServerClass(c) {
					continue
				}
				p.Rate[c], p.Limit[c] = rate, limit
			}
			continue
		}
		found := false
		for c := Class(0); c < NumClasses; c++ {
			if classNames[c] == name {
				p.Rate[c], p.Limit[c] = rate, limit
				found = true
				break
			}
		}
		if !found {
			return Plan{}, fmt.Errorf("faults: unknown class %q (have drop dup delay transfer oom stall devfail slowclient cancelreq cachethrash all)", name)
		}
	}
	return p, nil
}

// ---------------------------------------------------------------- Injector --

// state is shared between an Injector and its Restrict views, so counters
// aggregate across a whole job regardless of which view injected.
type state struct {
	// seq is the per-(class, actor) operation counter: each actor draws a
	// deterministic decision sequence independent of other actors.
	seq [NumClasses][]atomic.Int64
	// counts tallies actual injections per class.
	counts [NumClasses]atomic.Int64
	// failedDev latches permanently failed devices.
	failedDev []atomic.Bool
}

// Injector answers "inject a fault into this operation?" queries. All
// methods are safe on a nil receiver (answering "no"), so call sites need no
// guards, and safe for concurrent use.
type Injector struct {
	plan Plan
	mask uint32 // bit per enabled class
	st   *state
}

// New builds an injector for a plan over `actors` independent decision
// streams (ranks and devices; indexes beyond the count are folded back in).
func New(plan Plan, actors int) *Injector {
	if actors < 1 {
		actors = 1
	}
	if plan.MaxDelayTicks <= 0 {
		plan.MaxDelayTicks = 3
	}
	if plan.StallWindow <= 0 {
		plan.StallWindow = 100 * time.Microsecond
	}
	st := &state{failedDev: make([]atomic.Bool, actors)}
	for c := range st.seq {
		st.seq[c] = make([]atomic.Int64, actors)
	}
	return &Injector{plan: plan, mask: (1 << NumClasses) - 1, st: st}
}

// Restrict returns a view of the injector limited to the given classes; the
// underlying counters and sequences are shared. The solve phase uses this to
// keep generic faults (delays, transfer failures, stalls) while excluding
// the announcement-protocol faults its one-shot RPCs cannot recover from.
func (in *Injector) Restrict(classes ...Class) *Injector {
	if in == nil {
		return nil
	}
	var mask uint32
	for _, c := range classes {
		mask |= 1 << c
	}
	return &Injector{plan: in.plan, mask: mask, st: in.st}
}

// Plan returns the plan the injector runs.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Count returns how many faults of a class have been injected so far.
func (in *Injector) Count(c Class) int64 {
	if in == nil {
		return 0
	}
	return in.st.counts[c].Load()
}

// Injected returns the per-class injection tallies (all zero on a nil
// injector) — the projection the metrics registry exports as
// sympack_faults_injected_total{class}.
func (in *Injector) Injected() [NumClasses]int64 {
	var out [NumClasses]int64
	if in == nil {
		return out
	}
	for c := Class(0); c < NumClasses; c++ {
		out[c] = in.st.counts[c].Load()
	}
	return out
}

// splitmix64 is the standard 64-bit finalizer used as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the deterministic uniform sample for the actor's next
// operation of a class, or (0, false) when the class is inactive.
func (in *Injector) draw(c Class, actor int) (uint64, bool) {
	if in == nil || in.mask&(1<<c) == 0 || in.plan.Rate[c] <= 0 {
		return 0, false
	}
	seqs := in.st.seq[c]
	a := actor % len(seqs)
	if a < 0 {
		a = 0
	}
	seq := seqs[a].Add(1) - 1
	h := splitmix64(uint64(in.plan.Seed)<<8 ^ uint64(c+1)*0x51_7c_c1_b7_27_22_0a_95 ^ uint64(a)<<40 ^ uint64(seq))
	return h, true
}

// roll decides whether to inject a fault of class c into the actor's current
// operation, respecting the class cap. The second return value is the raw
// hash for shaping (e.g. delay length).
func (in *Injector) roll(c Class, actor int) (bool, uint64) {
	h, ok := in.draw(c, actor)
	if !ok {
		return false, 0
	}
	// Top 53 bits → uniform in [0,1).
	if float64(h>>11)/(1<<53) >= in.plan.Rate[c] {
		return false, 0
	}
	if lim := in.plan.Limit[c]; lim > 0 {
		if n := in.st.counts[c].Add(1); n > lim {
			in.st.counts[c].Add(-1)
			return false, 0
		}
		return true, h
	}
	in.st.counts[c].Add(1)
	return true, h
}

// DropSignal reports whether the rank's next outgoing RPC is dropped.
func (in *Injector) DropSignal(rank int) bool {
	hit, _ := in.roll(DropSignal, rank)
	return hit
}

// DupSignal reports whether the rank's next outgoing RPC is duplicated.
func (in *Injector) DupSignal(rank int) bool {
	hit, _ := in.roll(DupSignal, rank)
	return hit
}

// DelaySignalTicks returns how many progress ticks to defer the rank's next
// outgoing RPC (0 = deliver immediately).
func (in *Injector) DelaySignalTicks(rank int) int {
	hit, h := in.roll(DelaySignal, rank)
	if !hit {
		return 0
	}
	return 1 + int((h>>17)%uint64(in.plan.MaxDelayTicks))
}

// TransferFault reports whether the rank's next transfer attempt fails.
func (in *Injector) TransferFault(rank int) bool {
	hit, _ := in.roll(TransientTransfer, rank)
	return hit
}

// AllocFault reports whether the device's next allocation transiently fails.
func (in *Injector) AllocFault(dev int) bool {
	hit, _ := in.roll(TransientOOM, dev)
	return hit
}

// DeviceFailed reports whether the device is (now) permanently dead. Once it
// triggers for a device it stays true.
func (in *Injector) DeviceFailed(dev int) bool {
	if in == nil || in.mask&(1<<DeviceFail) == 0 {
		return false
	}
	a := dev % len(in.st.failedDev)
	if a < 0 {
		a = 0
	}
	if in.st.failedDev[a].Load() {
		return true
	}
	if hit, _ := in.roll(DeviceFail, dev); hit {
		in.st.failedDev[a].Store(true)
		return true
	}
	return false
}

// StallWindow returns a non-zero duration when the rank should freeze now.
func (in *Injector) StallWindow(rank int) time.Duration {
	hit, _ := in.roll(RankStall, rank)
	if !hit {
		return 0
	}
	return in.plan.StallWindow
}

// SlowClientDelay returns a non-zero hold duration when the request should
// be served as if its client were slow. The delay is shaped from the
// decision hash: 1–8 stall windows, so a chaos run sees a spread of client
// speeds rather than one fixed latency.
func (in *Injector) SlowClientDelay(req int) time.Duration {
	hit, h := in.roll(SlowClient, req)
	if !hit {
		return 0
	}
	return in.plan.StallWindow * time.Duration(1+(h>>23)%8)
}

// CanceledRequest reports whether the request's context should be canceled
// mid-flight.
func (in *Injector) CanceledRequest(req int) bool {
	hit, _ := in.roll(CanceledRequest, req)
	return hit
}

// CacheThrash reports whether the cache entries the request would hit
// should be force-evicted first.
func (in *Injector) CacheThrash(req int) bool {
	hit, _ := in.roll(CacheThrash, req)
	return hit
}

// Counts renders all non-zero injection counters, for reports.
func (in *Injector) Counts() string {
	if in == nil {
		return "none"
	}
	var parts []string
	for c := Class(0); c < NumClasses; c++ {
		if n := in.st.counts[c].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
