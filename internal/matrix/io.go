package matrix

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two exchange formats the paper's experiments use
// (AD/AE §A.2.4): Matrix Market (used for the PaStiX runs) and
// Rutherford-Boeing (used for the symPACK runs). Both readers accept
// symmetric real matrices; pattern-only inputs get unit diagonals plus -1/deg
// off-diagonals so they remain SPD-usable in tests.

// ErrFormat reports a malformed input file.
var ErrFormat = errors.New("matrix: malformed file")

// ReadMatrixMarket parses a Matrix Market "coordinate real symmetric" (or
// pattern/general-square-symmetric-content) stream into a SparseSym.
func ReadMatrixMarket(r io.Reader) (*SparseSym, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty matrix market stream", ErrFormat)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("%w: bad MatrixMarket header", ErrFormat)
	}
	field, sym := header[3], header[4]
	if field != "real" && field != "integer" && field != "pattern" {
		return nil, fmt.Errorf("%w: unsupported field %q", ErrFormat, field)
	}
	if sym != "symmetric" && sym != "general" {
		return nil, fmt.Errorf("%w: unsupported symmetry %q", ErrFormat, sym)
	}
	// Skip comments, read size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &m, &n, &nnz); err != nil {
			return nil, fmt.Errorf("%w: bad size line %q", ErrFormat, line)
		}
		break
	}
	if m != n {
		return nil, ErrNotSquare
	}
	coo := NewCOO(n)
	count := 0
	for sc.Scan() && count < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("%w: bad entry line %q", ErrFormat, line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: bad indices in %q", ErrFormat, line)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("%w: missing value in %q", ErrFormat, line)
			}
			v, err1 = strconv.ParseFloat(f[2], 64)
			if err1 != nil {
				return nil, fmt.Errorf("%w: bad value in %q", ErrFormat, line)
			}
		}
		i, j = i-1, j-1 // 1-based on disk
		if sym == "general" && i < j {
			// Keep only the lower triangle of a general file; the
			// caller asserts the content is symmetric.
			continue
		}
		coo.Add(i, j, v)
		count++
	}
	if count < nnz {
		return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrFormat, nnz, count)
	}
	s, err := coo.ToSym()
	if err != nil {
		return nil, err
	}
	if field == "pattern" {
		patternValues(s)
	}
	return s, nil
}

// WriteMatrixMarket writes s in "coordinate real symmetric" form (lower
// triangle, 1-based indices).
func WriteMatrixMarket(w io.Writer, s *SparseSym) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", s.N, s.N, s.Nnz())
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", s.RowInd[p]+1, j+1, s.Val[p])
		}
	}
	return bw.Flush()
}

// ReadRutherfordBoeing parses a Rutherford-Boeing symmetric assembled real
// ("rsa") or pattern ("psa") matrix. The format is the fixed-record Harwell-
// Boeing descendant: four header lines then column pointers, row indices and
// values as whitespace-separated integers/reals.
func ReadRutherfordBoeing(r io.Reader) (*SparseSym, error) {
	br := bufio.NewReader(r)
	readLine := func() (string, error) {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return "", err
		}
		return strings.TrimRight(line, "\r\n"), nil
	}
	// Line 1: title + key. Line 2: totcrd ptrcrd indcrd valcrd.
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("%w: missing RB title", ErrFormat)
	}
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("%w: missing RB card counts", ErrFormat)
	}
	l3, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("%w: missing RB type line", ErrFormat)
	}
	f3 := strings.Fields(l3)
	if len(f3) < 4 {
		return nil, fmt.Errorf("%w: bad RB type line %q", ErrFormat, l3)
	}
	mxtype := strings.ToLower(f3[0])
	if len(mxtype) != 3 || (mxtype[1] != 's') || mxtype[2] != 'a' {
		return nil, fmt.Errorf("%w: unsupported RB type %q (want ?sa)", ErrFormat, mxtype)
	}
	pattern := mxtype[0] == 'p'
	nrow, err1 := strconv.Atoi(f3[1])
	ncol, err2 := strconv.Atoi(f3[2])
	nnz, err3 := strconv.Atoi(f3[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("%w: bad RB dimensions %q", ErrFormat, l3)
	}
	if nrow != ncol {
		return nil, ErrNotSquare
	}
	// Bound allocations against hostile headers: a symmetric assembled
	// matrix cannot carry more than a full lower triangle.
	if ncol < 0 || nnz < 0 || int64(nnz) > int64(ncol)*(int64(ncol)+1)/2 {
		return nil, fmt.Errorf("%w: implausible RB sizes n=%d nnz=%d", ErrFormat, ncol, nnz)
	}
	if _, err := readLine(); err != nil { // line 4: formats
		return nil, fmt.Errorf("%w: missing RB format line", ErrFormat)
	}
	// Free-form token scanner over the remainder.
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	sc.Split(bufio.ScanWords)
	nextInt := func() (int, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("%w: truncated RB data", ErrFormat)
		}
		return strconv.Atoi(sc.Text())
	}
	nextFloat := func() (float64, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("%w: truncated RB data", ErrFormat)
		}
		// Fortran D exponents.
		t := strings.ReplaceAll(strings.ReplaceAll(sc.Text(), "D", "E"), "d", "e")
		return strconv.ParseFloat(t, 64)
	}
	colPtr := make([]int32, ncol+1)
	for j := 0; j <= ncol; j++ {
		v, err := nextInt()
		if err != nil {
			return nil, err
		}
		colPtr[j] = int32(v - 1)
	}
	rowInd := make([]int32, nnz)
	for k := 0; k < nnz; k++ {
		v, err := nextInt()
		if err != nil {
			return nil, err
		}
		rowInd[k] = int32(v - 1)
	}
	vals := make([]float64, nnz)
	if pattern {
		for k := range vals {
			vals[k] = 1
		}
	} else {
		for k := 0; k < nnz; k++ {
			v, err := nextFloat()
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
	}
	// RB symmetric files store the lower triangle; columns may be unsorted,
	// so route through COO for canonicalization.
	coo := NewCOO(ncol)
	for j := 0; j < ncol; j++ {
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			coo.Add(int(rowInd[p]), j, vals[p])
		}
	}
	s, err := coo.ToSym()
	if err != nil {
		return nil, err
	}
	if pattern {
		patternValues(s)
	}
	return s, nil
}

// WriteRutherfordBoeing writes s as an "rsa" Rutherford-Boeing file.
func WriteRutherfordBoeing(w io.Writer, s *SparseSym, title string) error {
	bw := bufio.NewWriter(w)
	if title == "" {
		title = "sympack-go matrix"
	}
	nnz := s.Nnz()
	fmt.Fprintf(bw, "%-72s%-8s\n", title, "SYMPACK")
	// Card counts are advisory in this free-form writer; emit plausible ones.
	fmt.Fprintf(bw, "%14d%14d%14d%14d\n", 3, 1, 1, 1)
	fmt.Fprintf(bw, "%3s%14d%14d%14d%14d\n", "rsa", s.N, s.N, nnz, 0)
	fmt.Fprintf(bw, "%-16s%-16s%-20s\n", "(10I8)", "(10I8)", "(3E25.16)")
	for j := 0; j <= s.N; j++ {
		fmt.Fprintf(bw, "%d\n", s.ColPtr[j]+1)
	}
	for _, r := range s.RowInd {
		fmt.Fprintf(bw, "%d\n", r+1)
	}
	for _, v := range s.Val {
		fmt.Fprintf(bw, "%.16E\n", v)
	}
	return bw.Flush()
}

// patternValues fills a structure-only matrix with diagonally dominant
// values: a[i,i] = 1 + deg(i), off-diagonals -1. The result is SPD for any
// connected pattern, letting pattern files drive numeric tests.
func patternValues(s *SparseSym) {
	deg := make([]float64, s.N)
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := int(s.RowInd[p])
			if i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if int(s.RowInd[p]) == j {
				s.Val[p] = 1 + deg[j]
			} else {
				s.Val[p] = -1
			}
		}
	}
}
