// Package matrix provides the sparse-matrix containers used throughout the
// solver: a coordinate-format builder, a compressed-sparse-column symmetric
// matrix storing the lower triangle (the representation symPACK factors),
// and readers/writers for the Matrix Market and Rutherford-Boeing formats
// used in the paper's experiments (AD/AE §A.2.4).
package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotSquare is returned when an operation requires a square matrix.
var ErrNotSquare = errors.New("matrix: not square")

// ErrBadTriplet is returned for out-of-range COO entries.
var ErrBadTriplet = errors.New("matrix: triplet index out of range")

// COO is a coordinate-format accumulator. Duplicate entries are summed when
// the COO is compiled into a CSC matrix. For symmetric matrices, store each
// off-diagonal pair once (either triangle); ToSym folds everything into the
// lower triangle.
type COO struct {
	N       int
	Rows    []int32
	Cols    []int32
	Vals    []float64
	invalid bool
}

// NewCOO creates an empty n×n coordinate accumulator.
func NewCOO(n int) *COO { return &COO{N: n} }

// Add appends entry (i,j) += v. Out-of-range indices poison the builder and
// surface as an error from ToSym, so bulk loaders need not check every call.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		c.invalid = true
		return
	}
	c.Rows = append(c.Rows, int32(i))
	c.Cols = append(c.Cols, int32(j))
	c.Vals = append(c.Vals, v)
}

// Nnz returns the number of accumulated triplets (before deduplication).
func (c *COO) Nnz() int { return len(c.Vals) }

// SparseSym is a symmetric sparse matrix stored as the lower triangle
// (diagonal included) in compressed sparse column format. Row indices within
// each column are strictly increasing. This is the input format of the
// solver and the output format of the generators.
type SparseSym struct {
	N      int
	ColPtr []int32   // len N+1
	RowInd []int32   // len nnz(lower)
	Val    []float64 // len nnz(lower)
}

// ToSym compiles the accumulated triplets into a SparseSym, folding upper-
// triangle entries onto the lower triangle and summing duplicates. Entries
// (i,j) and (j,i) are treated as the same logical entry of the symmetric
// matrix, so exactly one of each pair should be inserted; if both are, their
// values are summed (matching common symmetric-assembly conventions).
func (c *COO) ToSym() (*SparseSym, error) {
	if c.invalid {
		return nil, ErrBadTriplet
	}
	n := c.N
	type ent struct {
		r, c int32
		v    float64
	}
	ents := make([]ent, 0, len(c.Vals))
	for k := range c.Vals {
		r, cc := c.Rows[k], c.Cols[k]
		if r < cc {
			r, cc = cc, r // fold to lower triangle
		}
		ents = append(ents, ent{r, cc, c.Vals[k]})
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].c != ents[b].c {
			return ents[a].c < ents[b].c
		}
		return ents[a].r < ents[b].r
	})
	s := &SparseSym{N: n, ColPtr: make([]int32, n+1)}
	for k := 0; k < len(ents); {
		e := ents[k]
		v := e.v
		k++
		for k < len(ents) && ents[k].r == e.r && ents[k].c == e.c {
			v += ents[k].v
			k++
		}
		s.RowInd = append(s.RowInd, e.r)
		s.Val = append(s.Val, v)
		s.ColPtr[e.c+1]++
	}
	for j := 0; j < n; j++ {
		s.ColPtr[j+1] += s.ColPtr[j]
	}
	return s, nil
}

// Nnz returns the number of stored (lower-triangle) nonzeros.
func (s *SparseSym) Nnz() int { return len(s.Val) }

// NnzFull returns the nonzero count of the full symmetric matrix
// (off-diagonal entries counted twice), the convention of the paper's
// Table 1.
func (s *SparseSym) NnzFull() int {
	diag := 0
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if int(s.RowInd[p]) == j {
				diag++
			}
		}
	}
	return 2*len(s.Val) - diag
}

// At returns element (i,j) by binary search; O(log nnz(col)). Intended for
// tests and small problems, not inner loops.
func (s *SparseSym) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	lo, hi := int(s.ColPtr[j]), int(s.ColPtr[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(s.RowInd[mid]) < i:
			lo = mid + 1
		case int(s.RowInd[mid]) > i:
			hi = mid
		default:
			return s.Val[mid]
		}
	}
	return 0
}

// Diag returns a copy of the diagonal.
func (s *SparseSym) Diag() []float64 {
	d := make([]float64, s.N)
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if int(s.RowInd[p]) == j {
				d[j] = s.Val[p]
			}
		}
	}
	return d
}

// MulVec computes y = A·x for the full symmetric operator.
func (s *SparseSym) MulVec(x []float64) []float64 {
	y := make([]float64, s.N)
	s.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A·x in place into y (len N).
func (s *SparseSym) MulVecTo(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < s.N; j++ {
		xj := x[j]
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := int(s.RowInd[p])
			v := s.Val[p]
			y[i] += v * xj
			if i != j {
				y[j] += v * x[i]
			}
		}
	}
}

// Permute returns the symmetrically permuted matrix B = PAPᵀ, where perm is
// the new-to-old ordering: new index k corresponds to old index perm[k].
// Equivalently B[inv[i], inv[j]] = A[i,j] with inv the inverse permutation.
func (s *SparseSym) Permute(perm []int32) (*SparseSym, error) {
	n := s.N
	if len(perm) != n {
		return nil, fmt.Errorf("matrix: permutation length %d != n %d", len(perm), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for k, old := range perm {
		if old < 0 || int(old) >= n || seen[old] {
			return nil, fmt.Errorf("matrix: invalid permutation at position %d", k)
		}
		seen[old] = true
		inv[old] = int32(k)
	}
	coo := NewCOO(n)
	for j := 0; j < n; j++ {
		nj := inv[j]
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			ni := inv[s.RowInd[p]]
			coo.Add(int(ni), int(nj), s.Val[p])
		}
	}
	return coo.ToSym()
}

// Scale returns a copy of s with all values multiplied by alpha.
func (s *SparseSym) Scale(alpha float64) *SparseSym {
	out := s.Clone()
	for i := range out.Val {
		out.Val[i] *= alpha
	}
	return out
}

// ShiftDiag returns A + sigma·I, the operation the PEXSI-style repeated
// factorization example performs. The sparsity pattern is unchanged
// (a missing structural diagonal entry is an error: the generators always
// emit diagonals).
func (s *SparseSym) ShiftDiag(sigma float64) (*SparseSym, error) {
	out := s.Clone()
	for j := 0; j < s.N; j++ {
		found := false
		for p := out.ColPtr[j]; p < out.ColPtr[j+1]; p++ {
			if int(out.RowInd[p]) == j {
				out.Val[p] += sigma
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("matrix: column %d has no structural diagonal entry", j)
		}
	}
	return out, nil
}

// Clone returns a deep copy.
func (s *SparseSym) Clone() *SparseSym {
	return &SparseSym{
		N:      s.N,
		ColPtr: append([]int32(nil), s.ColPtr...),
		RowInd: append([]int32(nil), s.RowInd...),
		Val:    append([]float64(nil), s.Val...),
	}
}

// Dense materializes the full symmetric matrix into a column-major n×n
// buffer; for tests and small reference computations only.
func (s *SparseSym) Dense() []float64 {
	d := make([]float64, s.N*s.N)
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := int(s.RowInd[p])
			d[i+j*s.N] = s.Val[p]
			d[j+i*s.N] = s.Val[p]
		}
	}
	return d
}

// Validate checks structural invariants: sorted strictly-increasing row
// indices per column, indices in [j, n), monotone ColPtr. It returns a
// descriptive error for the first violation found.
func (s *SparseSym) Validate() error {
	if len(s.ColPtr) != s.N+1 {
		return fmt.Errorf("matrix: ColPtr length %d != N+1", len(s.ColPtr))
	}
	if s.ColPtr[0] != 0 {
		return errors.New("matrix: ColPtr[0] != 0")
	}
	for j := 0; j < s.N; j++ {
		if s.ColPtr[j+1] < s.ColPtr[j] {
			return fmt.Errorf("matrix: ColPtr not monotone at column %d", j)
		}
		prev := int32(j) - 1
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			r := s.RowInd[p]
			if r < int32(j) || r >= int32(s.N) {
				return fmt.Errorf("matrix: row %d out of range in column %d", r, j)
			}
			if r <= prev {
				return fmt.Errorf("matrix: unsorted/duplicate row %d in column %d", r, j)
			}
			prev = r
		}
	}
	if int(s.ColPtr[s.N]) != len(s.RowInd) || len(s.RowInd) != len(s.Val) {
		return errors.New("matrix: inconsistent array lengths")
	}
	return nil
}

// NormFro returns the Frobenius norm of the full symmetric matrix.
func (s *SparseSym) NormFro() float64 {
	var sum float64
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			v := s.Val[p] * s.Val[p]
			if int(s.RowInd[p]) == j {
				sum += v
			} else {
				sum += 2 * v
			}
		}
	}
	return math.Sqrt(sum)
}

// LowerAdjacency returns, for each column j, the off-diagonal lower row
// indices — the adjacency structure consumed by the ordering and symbolic
// phases.
func (s *SparseSym) LowerAdjacency() [][]int32 {
	adj := make([][]int32, s.N)
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if i := s.RowInd[p]; int(i) != j {
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}
