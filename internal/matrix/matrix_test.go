package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomSym builds a random symmetric matrix with a guaranteed diagonal.
func randomSym(rng *rand.Rand, n int, density float64) *SparseSym {
	coo := NewCOO(n)
	for j := 0; j < n; j++ {
		coo.Add(j, j, float64(n)+rng.Float64())
		for i := j + 1; i < n; i++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	s, err := coo.ToSym()
	if err != nil {
		panic(err)
	}
	return s
}

func TestCOOToSymFoldsAndSums(t *testing.T) {
	coo := NewCOO(3)
	coo.Add(0, 0, 4)
	coo.Add(1, 0, 1)
	coo.Add(0, 1, 2) // upper-triangle entry folds onto (1,0) and sums
	coo.Add(2, 2, 5)
	coo.Add(1, 1, 3)
	s, err := coo.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.At(1, 0); got != 3 {
		t.Fatalf("folded entry = %g, want 3", got)
	}
	if got := s.At(0, 1); got != 3 {
		t.Fatalf("symmetric access = %g, want 3", got)
	}
	if s.Nnz() != 4 {
		t.Fatalf("nnz = %d, want 4", s.Nnz())
	}
}

func TestCOOOutOfRange(t *testing.T) {
	coo := NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(5, 0, 1)
	if _, err := coo.ToSym(); err == nil {
		t.Fatal("expected ErrBadTriplet")
	}
}

func TestNnzFull(t *testing.T) {
	coo := NewCOO(3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(2, 2, 1)
	coo.Add(1, 0, -1)
	s, _ := coo.ToSym()
	if got := s.NnzFull(); got != 5 {
		t.Fatalf("NnzFull = %d, want 5", got)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomSym(rng, 20, 0.3)
	d := s.Dense()
	x := make([]float64, s.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := s.MulVec(x)
	for i := 0; i < s.N; i++ {
		var want float64
		for j := 0; j < s.N; j++ {
			want += d[i+j*s.N] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-10 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSym(rng, 15, 0.25)
	perm := rng.Perm(s.N)
	p32 := make([]int32, s.N)
	for i, v := range perm {
		p32[i] = int32(v)
	}
	ps, err := s.Permute(p32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	// B[k,l] must equal A[perm[k], perm[l]].
	for k := 0; k < s.N; k++ {
		for l := 0; l <= k; l++ {
			if got, want := ps.At(k, l), s.At(perm[k], perm[l]); got != want {
				t.Fatalf("permuted (%d,%d) = %g, want %g", k, l, got, want)
			}
		}
	}
	// Inverse permutation restores the original.
	inv := make([]int32, s.N)
	for k, old := range perm {
		inv[old] = int32(k)
	}
	back, err := ps.Permute(inv)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nnz() != s.Nnz() {
		t.Fatalf("round-trip nnz %d != %d", back.Nnz(), s.Nnz())
	}
	for p := range s.Val {
		if s.Val[p] != back.Val[p] || s.RowInd[p] != back.RowInd[p] {
			t.Fatal("round-trip did not restore matrix")
		}
	}
}

func TestPermuteRejectsBadPerm(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(3)), 4, 0.5)
	if _, err := s.Permute([]int32{0, 1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := s.Permute([]int32{0, 1, 1, 3}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := s.Permute([]int32{0, 1, 2, 9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestShiftDiag(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(4)), 8, 0.3)
	sh, err := s.ShiftDiag(2.5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.N; j++ {
		if math.Abs(sh.At(j, j)-s.At(j, j)-2.5) > 1e-12 {
			t.Fatalf("diagonal %d not shifted", j)
		}
		for i := j + 1; i < s.N; i++ {
			if sh.At(i, j) != s.At(i, j) {
				t.Fatalf("off-diagonal (%d,%d) changed", i, j)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(5)), 6, 0.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s.Clone()
	bad.RowInd[0] = int32(bad.N + 3)
	if err := bad.Validate(); err == nil {
		t.Fatal("expected out-of-range detection")
	}
	bad2 := s.Clone()
	if len(bad2.ColPtr) > 2 {
		bad2.ColPtr[1] = bad2.ColPtr[0] - 1
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected monotonicity detection")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(6)), 12, 0.3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || got.Nnz() != s.Nnz() {
		t.Fatalf("shape mismatch: n=%d nnz=%d", got.N, got.Nnz())
	}
	for p := range s.Val {
		if s.Val[p] != got.Val[p] || s.RowInd[p] != got.RowInd[p] {
			t.Fatal("values not preserved")
		}
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 4
1 1
2 1
2 2
3 3
`
	s, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 2 { // 1 + deg 1
		t.Fatalf("pattern diagonal = %g", s.At(0, 0))
	}
	if s.At(1, 0) != -1 {
		t.Fatalf("pattern off-diagonal = %g", s.At(1, 0))
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real symmetric\n2 2\n1\n2\n3\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n1 1 1 0\n",
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestRutherfordBoeingRoundTrip(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(7)), 10, 0.4)
	var buf bytes.Buffer
	if err := WriteRutherfordBoeing(&buf, s, "test matrix"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRutherfordBoeing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || got.Nnz() != s.Nnz() {
		t.Fatalf("shape mismatch: n=%d nnz=%d want n=%d nnz=%d", got.N, got.Nnz(), s.N, s.Nnz())
	}
	for p := range s.Val {
		if math.Abs(s.Val[p]-got.Val[p]) > 1e-14 || s.RowInd[p] != got.RowInd[p] {
			t.Fatal("values not preserved")
		}
	}
}

func TestRutherfordBoeingRejectsUnsymmetric(t *testing.T) {
	in := "title\n 1 1 1 1\nrua 2 2 1 0\n(fmt) (fmt) (fmt)\n1\n2\n2\n1\n1.0\n"
	if _, err := ReadRutherfordBoeing(strings.NewReader(in)); err == nil {
		t.Fatal("expected unsupported-type error for rua")
	}
}

func TestNormFro(t *testing.T) {
	coo := NewCOO(2)
	coo.Add(0, 0, 3)
	coo.Add(1, 1, 4)
	coo.Add(1, 0, 1)
	s, _ := coo.ToSym()
	want := math.Sqrt(9 + 16 + 2)
	if got := s.NormFro(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NormFro = %g, want %g", got, want)
	}
}

// Property: MulVec of a symmetric matrix satisfies xᵀ(Ay) == yᵀ(Ax).
func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomSym(rng, n, 0.3)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		ax, ay := s.MulVec(x), s.MulVec(y)
		var xay, yax float64
		for i := 0; i < n; i++ {
			xay += x[i] * ay[i]
			yax += y[i] * ax[i]
		}
		return math.Abs(xay-yax) < 1e-8*(1+math.Abs(xay))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: permutation preserves the Frobenius norm and diagonal multiset.
func TestPermuteInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomSym(rng, n, 0.4)
		perm := rng.Perm(n)
		p32 := make([]int32, n)
		for i, v := range perm {
			p32[i] = int32(v)
		}
		ps, err := s.Permute(p32)
		if err != nil {
			return false
		}
		if math.Abs(ps.NormFro()-s.NormFro()) > 1e-9 {
			return false
		}
		d1, d2 := s.Diag(), ps.Diag()
		var s1, s2 float64
		for i := 0; i < n; i++ {
			s1 += d1[i]
			s2 += d2[i]
		}
		return math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Readers must reject malformed input with errors, never panics, for a
// corpus of truncations and corruptions of valid files.
func TestReadersRejectCorruption(t *testing.T) {
	s := randomSym(rand.New(rand.NewSource(8)), 8, 0.4)
	var mm, rb bytes.Buffer
	if err := WriteMatrixMarket(&mm, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteRutherfordBoeing(&rb, s, "x"); err != nil {
		t.Fatal(err)
	}
	corpus := [][]byte{}
	for _, valid := range [][]byte{mm.Bytes(), rb.Bytes()} {
		for _, frac := range []int{1, 2, 3, 5, 10} {
			corpus = append(corpus, valid[:len(valid)/frac])
		}
		// Bit-flip style corruptions of the header region.
		for i := 0; i < 20 && i < len(valid); i += 3 {
			c := append([]byte(nil), valid...)
			c[i] = '~'
			corpus = append(corpus, c)
		}
	}
	corpus = append(corpus, []byte("%%MatrixMarket matrix coordinate real symmetric\n-3 -3 1\n1 1 1\n"))
	corpus = append(corpus, []byte("t\n1 1 1 1\nrsa 4 4 99999999\n(f)(f)(f)\n1\n"))
	for i, c := range corpus {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("case %d: reader panicked: %v", i, r)
				}
			}()
			m1, err1 := ReadMatrixMarket(bytes.NewReader(c))
			if err1 == nil && m1 != nil {
				if err := m1.Validate(); err != nil {
					t.Fatalf("case %d: MatrixMarket accepted invalid matrix: %v", i, err)
				}
			}
			m2, err2 := ReadRutherfordBoeing(bytes.NewReader(c))
			if err2 == nil && m2 != nil {
				if err := m2.Validate(); err != nil {
					t.Fatalf("case %d: RutherfordBoeing accepted invalid matrix: %v", i, err)
				}
			}
		}()
	}
}
