package upcxx

import (
	"errors"
	"math"
	"testing"

	"sympack/internal/machine"
)

func TestBroadcast(t *testing.T) {
	rt := newRT(t, 6)
	err := rt.Run(func(r *Rank) {
		data := make([]float64, 8)
		if r.ID == 2 {
			for i := range data {
				data[i] = float64(10 + i)
			}
		}
		if err := r.Broadcast(2, data); err != nil {
			t.Error(err)
			return
		}
		for i, v := range data {
			if v != float64(10+i) {
				t.Errorf("rank %d: data[%d] = %g", r.ID, i, v)
				return
			}
		}
		if r.Elapsed() <= 0 && rt.P() > 1 {
			t.Errorf("rank %d: collective cost not charged", r.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	rt := newRT(t, 5)
	err := rt.Run(func(r *Rank) {
		data := []float64{float64(r.ID), 1}
		if err := r.AllReduce(OpSum, data); err != nil {
			t.Error(err)
			return
		}
		// Σ 0..4 = 10, Σ 1 = 5.
		if data[0] != 10 || data[1] != 5 {
			t.Errorf("rank %d: reduce = %v", r.ID, data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMax(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.Run(func(r *Rank) {
		data := []float64{math.Sin(float64(r.ID))}
		if err := r.AllReduce(OpMax, data); err != nil {
			t.Error(err)
			return
		}
		want := math.Sin(2) // max of sin(0..3): sin(2) ≈ 0.909
		if math.Abs(data[0]-want) > 1e-15 {
			t.Errorf("rank %d: max = %g, want %g", r.ID, data[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSequence(t *testing.T) {
	// Repeated collectives must not deadlock or cross-contaminate.
	rt := newRT(t, 3)
	err := rt.Run(func(r *Rank) {
		for round := 0; round < 10; round++ {
			data := []float64{1}
			if err := r.AllReduce(OpSum, data); err != nil {
				t.Error(err)
				return
			}
			if data[0] != 3 {
				t.Errorf("round %d: %g", round, data[0])
				return
			}
			b := []float64{float64(round)}
			if r.ID != 0 {
				b[0] = -1
			}
			if err := r.Broadcast(0, b); err != nil {
				t.Error(err)
				return
			}
			if b[0] != float64(round) {
				t.Errorf("round %d: broadcast got %g", round, b[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveAborts(t *testing.T) {
	rt := newRT(t, 3)
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			rt.Fail(errors.New("synthetic"))
			return
		}
		if err := r.AllReduce(OpSum, []float64{1}); !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d: err = %v, want ErrAborted", r.ID, err)
		}
	})
	if err == nil {
		t.Fatal("expected recorded failure")
	}
}

func TestCollectiveSingleRank(t *testing.T) {
	rt, err := NewRuntime(Config{Ranks: 1, Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(r *Rank) {
		d := []float64{4}
		if err := r.AllReduce(OpSum, d); err != nil || d[0] != 4 {
			t.Errorf("single-rank reduce: %v %v", d, err)
		}
		if err := r.Broadcast(0, d); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
