package upcxx

import (
	"errors"
	"sync/atomic"
	"testing"

	"sympack/internal/faults"
	"sympack/internal/machine"
)

func newFaultyRT(t *testing.T, p int, plan faults.Plan) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{
		Ranks:   p,
		Machine: machine.Perlmutter(),
		Faults:  faults.New(plan, p),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func planOf(seed int64, c faults.Class, rate float64, limit int64) faults.Plan {
	p := faults.Plan{Seed: seed}
	p.Rate[c] = rate
	p.Limit[c] = limit
	return p
}

func TestFutureErrorPropagation(t *testing.T) {
	f := FailedFuture(errors.New("synthetic"))
	if f.OK() || f.Err() == nil {
		t.Fatalf("failed future reports OK=%v Err=%v", f.OK(), f.Err())
	}
	ran := false
	g := f.Then(func() { ran = true })
	if ran {
		t.Fatal("Then must skip its callback on a failed future")
	}
	if g.Err() == nil {
		t.Fatal("Then must propagate the failure, not clear it")
	}
	ok := Future{seconds: 2}
	if !ok.OK() || ok.Err() != nil {
		t.Fatal("clean future must report OK")
	}
}

func TestInjectedDropSignal(t *testing.T) {
	rt := newFaultyRT(t, 2, planOf(7, faults.DropSignal, 1.0, 0))
	var hits atomic.Int64
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				r.RPC(1, func(*Rank) { hits.Add(1) })
			}
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		for r.PendingRPCs() > 0 {
			r.Progress()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 0 {
		t.Fatalf("drop rate 1.0 delivered %d RPCs", hits.Load())
	}
	if rt.Stats.DroppedSignals.Load() != 5 {
		t.Fatalf("dropped = %d, want 5", rt.Stats.DroppedSignals.Load())
	}
}

func TestInjectedDupSignal(t *testing.T) {
	rt := newFaultyRT(t, 2, planOf(7, faults.DupSignal, 1.0, 0))
	var hits atomic.Int64
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				r.RPC(1, func(*Rank) { hits.Add(1) })
			}
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		for r.PendingRPCs() > 0 {
			r.Progress()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 10 {
		t.Fatalf("dup rate 1.0 delivered %d RPCs, want 10", hits.Load())
	}
	if rt.Stats.DupSignals.Load() != 5 {
		t.Fatalf("dup = %d, want 5", rt.Stats.DupSignals.Load())
	}
}

func TestInjectedDelaySignal(t *testing.T) {
	rt := newFaultyRT(t, 2, planOf(7, faults.DelaySignal, 1.0, 0))
	var hits atomic.Int64
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				r.RPC(1, func(*Rank) { hits.Add(1) })
			}
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		if r.ID == 1 {
			// Delayed RPCs sit in the delay queue and only run after
			// enough progress ticks age them out.
			rounds := 0
			for r.PendingRPCs() > 0 {
				r.Progress()
				rounds++
				if rounds > 100 {
					t.Error("delayed RPCs never matured")
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 5 {
		t.Fatalf("delivered %d RPCs, want 5", hits.Load())
	}
	if rt.Stats.DelayedSignals.Load() != 5 {
		t.Fatalf("delayed = %d, want 5", rt.Stats.DelayedSignals.Load())
	}
}

func TestTransferRetrySucceeds(t *testing.T) {
	// Limit 3 < TransferAttempts 8: the first three attempts fail, the
	// fourth succeeds, and the data must arrive intact.
	rt := newFaultyRT(t, 1, planOf(7, faults.TransientTransfer, 1.0, 3))
	err := rt.Run(func(r *Rank) {
		src := r.NewArray(16)
		for i := range src.Data {
			src.Data[i] = float64(i)
		}
		dst := make([]float64, 16)
		f := r.Rget(src, dst)
		if !f.OK() {
			t.Errorf("rget failed despite retry budget: %v", f.Err())
			return
		}
		if dst[15] != 15 {
			t.Errorf("data not moved: dst[15] = %g", dst[15])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.TransferRetries.Load() != 3 {
		t.Fatalf("retries = %d, want 3", rt.Stats.TransferRetries.Load())
	}
	if rt.Stats.TransferFailures.Load() != 0 {
		t.Fatalf("failures = %d, want 0", rt.Stats.TransferFailures.Load())
	}
}

func TestTransferExhaustionLeavesDataUntouched(t *testing.T) {
	// Unlimited faults exhaust the retry budget; the future must carry
	// ErrTransferFailed (a transient), and the destination stays unwritten.
	rt := newFaultyRT(t, 1, planOf(7, faults.TransientTransfer, 1.0, 0))
	err := rt.Run(func(r *Rank) {
		src := r.NewArray(8)
		for i := range src.Data {
			src.Data[i] = 1
		}
		dst := make([]float64, 8)
		f := r.Rget(src, dst)
		if f.OK() {
			t.Error("rget succeeded under total transfer loss")
			return
		}
		if !errors.Is(f.Err(), ErrTransferFailed) {
			t.Errorf("err = %v, want ErrTransferFailed", f.Err())
		}
		if !errors.Is(f.Err(), faults.ErrTransient) {
			t.Errorf("err = %v, want transient classification", f.Err())
		}
		for i, v := range dst {
			if v != 0 {
				t.Errorf("dst[%d] = %g written despite failed transfer", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.TransferFailures.Load() == 0 {
		t.Fatal("no transfer failure recorded")
	}
}

// TestConcurrentFailBarrierAbort has several ranks call Fail simultaneously
// while the rest sit in a barrier: every waiter must be released with
// ErrAborted, and exactly one failure must win as the recorded cause.
func TestConcurrentFailBarrierAbort(t *testing.T) {
	rt := newRT(t, 8)
	err := rt.Run(func(r *Rank) {
		if r.ID < 4 {
			rt.Fail(errors.New("concurrent failure"))
			return
		}
		if err := r.Barrier(); !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d: barrier err = %v, want ErrAborted", r.ID, err)
		}
	})
	if err == nil || rt.Err() == nil {
		t.Fatal("expected recorded failure")
	}
	if !rt.ShouldAbort() {
		t.Fatal("abort flag not set")
	}
}
