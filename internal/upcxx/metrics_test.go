package upcxx

import (
	"math"
	"testing"

	"sympack/internal/metrics"
)

// TestReduceSnapshotMergesSumAndMax checks the cross-rank aggregation
// protocol end to end: counters, histogram buckets/sums and sum-mode
// gauges add across ranks, max-mode gauges take the maximum, and every
// rank receives the same merged view.
func TestReduceSnapshotMergesSumAndMax(t *testing.T) {
	const p = 4
	rt := newRT(t, p)
	err := rt.Run(func(r *Rank) {
		reg := metrics.NewRegistry()
		reg.Counter("test_ops_total", "per-rank op count").Add(float64(r.ID + 1))
		reg.Gauge("test_depth", "occupancy", metrics.MergeSum).Set(1)
		reg.Gauge("test_peak", "high-water", metrics.MergeMax).Set(float64(10 * r.ID))
		reg.Histogram("test_seconds", "modeled time", metrics.ExpBuckets(1, 2, 4)).
			Observe(float64(r.ID) + 0.5)

		merged, err := r.ReduceSnapshot(reg.Snapshot())
		if err != nil {
			t.Error(err)
			return
		}
		// Σ (id+1) over 0..3 = 10; Σ 1 = 4; max 10·id = 30.
		if v := merged.Value("test_ops_total"); v != 10 {
			t.Errorf("rank %d: ops = %g, want 10", r.ID, v)
		}
		if v := merged.Value("test_depth"); v != p {
			t.Errorf("rank %d: depth = %g, want %d", r.ID, v, p)
		}
		if v := merged.Value("test_peak"); v != 30 {
			t.Errorf("rank %d: peak = %g, want 30", r.ID, v)
		}
		for i := range merged.Series {
			se := &merged.Series[i]
			if se.Name != "test_seconds" {
				continue
			}
			// Observations 0.5, 1.5, 2.5, 3.5 over bounds 1,2,4,8:
			// buckets [1 1 2 0 0], sum 8.
			want := []int64{1, 1, 2, 0, 0}
			if len(se.Counts) != len(want) {
				t.Errorf("rank %d: %d buckets, want %d", r.ID, len(se.Counts), len(want))
				return
			}
			for b := range want {
				if se.Counts[b] != want[b] {
					t.Errorf("rank %d: bucket %d = %d, want %d", r.ID, b, se.Counts[b], want[b])
				}
			}
			if math.Abs(se.Sum-8) > 1e-12 {
				t.Errorf("rank %d: sum = %g, want 8", r.ID, se.Sum)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceBackToBack is the regression test for the collective
// staging-buffer race: the last arriver of one AllReduce could enter the
// next AllReduce and overwrite the shared accumulator before the first
// call's waiters had copied their result, handing them the second
// reduction's values. ReduceSnapshot's sum-then-max pair is exactly this
// shape, so the test hammers back-to-back reductions with distinguishable
// operands.
func TestAllReduceBackToBack(t *testing.T) {
	const p = 8
	rt := newRT(t, p)
	err := rt.Run(func(r *Rank) {
		for round := 0; round < 200; round++ {
			sum := []float64{float64(r.ID + 1)}
			if err := r.AllReduce(OpSum, sum); err != nil {
				t.Error(err)
				return
			}
			max := []float64{float64(1000 + r.ID)}
			if err := r.AllReduce(OpMax, max); err != nil {
				t.Error(err)
				return
			}
			if sum[0] != 36 { // Σ 1..8
				t.Errorf("rank %d round %d: sum = %g, want 36", r.ID, round, sum[0])
				return
			}
			if max[0] != 1007 {
				t.Errorf("rank %d round %d: max = %g, want 1007", r.ID, round, max[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExportStatsFreshRegistry checks that exporting into a fresh
// registry twice yields identical values (no accumulation inside the
// runtime), the property gather-time callers rely on to avoid
// double-counting.
func TestExportStatsFreshRegistry(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(r *Rank) {
		if r.ID != 0 {
			return
		}
		fut := r.Rput(make([]float64, 32), r.NewArray(32))
		fut.Wait()
		if err := fut.Err(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := metrics.NewRegistry(), metrics.NewRegistry()
	rt.ExportStats(a)
	rt.ExportStats(b)
	if va, vb := a.Value("sympack_upcxx_rma_puts_total"), b.Value("sympack_upcxx_rma_puts_total"); va != vb || va == 0 {
		t.Fatalf("export not idempotent: %g vs %g", va, vb)
	}
}
