package upcxx

import (
	"errors"
	"sync/atomic"
	"testing"

	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/simnet"
)

func newRT(t *testing.T, p int) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{Ranks: p, Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Config{Ranks: 0}); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
}

func TestRunExecutesEveryRank(t *testing.T) {
	rt := newRT(t, 8)
	var hits atomic.Int64
	if err := rt.Run(func(r *Rank) { hits.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 8 {
		t.Fatalf("ran %d ranks", hits.Load())
	}
}

func TestRPCAndProgress(t *testing.T) {
	rt := newRT(t, 4)
	var sum atomic.Int64
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			for tgt := 1; tgt < 4; tgt++ {
				v := int64(tgt * 10)
				r.RPC(tgt, func(me *Rank) { sum.Add(v + int64(me.ID)) })
			}
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		if r.ID != 0 {
			if r.PendingRPCs() != 1 {
				t.Errorf("rank %d: pending = %d", r.ID, r.PendingRPCs())
			}
			if n := r.Progress(); n != 1 {
				t.Errorf("rank %d: progress ran %d", r.ID, n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10+1 + 20+2 + 30+3 = 66.
	if sum.Load() != 66 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if rt.Stats.RPCs.Load() != 3 {
		t.Fatalf("rpc count = %d", rt.Stats.RPCs.Load())
	}
}

func TestRgetRputRoundTrip(t *testing.T) {
	rt := newRT(t, 2)
	ptrs := make([]GlobalPtr, 2)
	err := rt.Run(func(r *Rank) {
		g := r.NewArray(16)
		for i := range g.Data {
			g.Data[i] = float64(r.ID*100 + i)
		}
		ptrs[r.ID] = g
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		other := 1 - r.ID
		dst := make([]float64, 16)
		f := r.Rget(ptrs[other], dst)
		if f.Wait() <= 0 {
			t.Error("rget must model positive time")
		}
		for i, v := range dst {
			if v != float64(other*100+i) {
				t.Errorf("rank %d got %g at %d", r.ID, v, i)
				return
			}
		}
		// Rput into the other rank's second half.
		r.Rput(dst[:8], ptrs[other].Slice(8, 16))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Rgets.Load() != 2 || rt.Stats.Rputs.Load() != 2 {
		t.Fatalf("stats: %d gets %d puts", rt.Stats.Rgets.Load(), rt.Stats.Rputs.Load())
	}
	// Rank 0's slots 8..16 were overwritten by rank 1 with rank 0's data.
	if ptrs[0].Data[8] != 0 {
		t.Fatalf("rput result = %g, want 0 (rank 0 element 0)", ptrs[0].Data[8])
	}
}

func TestDeviceAllocAndCopyKinds(t *testing.T) {
	rt, err := NewRuntime(Config{
		Ranks: 2, RanksPerNode: 1, GPUsPerNode: 1,
		Machine: machine.Perlmutter(), DeviceCapacity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hostPtrs := make([]GlobalPtr, 2)
	devPtrs := make([]GlobalPtr, 2)
	bufs := make([]*gpu.Buffer, 2)
	err = rt.Run(func(r *Rank) {
		h := r.NewArray(32)
		for i := range h.Data {
			h.Data[i] = float64(r.ID + 1)
		}
		hostPtrs[r.ID] = h
		d, buf, err := r.DeviceAlloc(32)
		if err != nil {
			t.Error(err)
			return
		}
		devPtrs[r.ID] = d
		bufs[r.ID] = buf
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		if r.ID == 0 {
			// Remote host → local... rather: host on rank 0 to device on
			// rank 1 — the direct GDR path of §4.2.
			f := r.Copy(hostPtrs[0], devPtrs[1])
			if f.Seconds() <= 0 {
				t.Error("copy must model positive time")
			}
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if devPtrs[1].Data[0] != 1 {
		t.Fatalf("device data = %g, want 1", devPtrs[1].Data[0])
	}
	// The transfer must have been classified GDR (native kinds).
	if rt.Stats.ByPath[simnet.PathGDR].Load() == 0 {
		t.Fatal("expected a GDR-path transfer")
	}
	// OOM beyond capacity.
	err = rt.Run(func(r *Rank) {
		if r.ID == 0 {
			if _, _, err := r.DeviceAlloc(2000); !errors.Is(err, gpu.ErrOutOfMemory) {
				t.Errorf("expected OOM, got %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCopyStagedWithoutGDR(t *testing.T) {
	rt, err := NewRuntime(Config{
		Ranks: 2, RanksPerNode: 1, GPUsPerNode: 1,
		Machine: machine.Perlmutter().WithoutGDR(),
	})
	if err != nil {
		t.Fatal(err)
	}
	devPtrs := make([]GlobalPtr, 2)
	err = rt.Run(func(r *Rank) {
		d, _, err := r.DeviceAlloc(8)
		if err != nil {
			t.Error(err)
			return
		}
		devPtrs[r.ID] = d
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		if r.ID == 0 {
			src := r.NewArray(8)
			r.Copy(src, devPtrs[1])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.ByPath[simnet.PathStaged].Load() == 0 {
		t.Fatal("expected a staged-path transfer without GDR")
	}
}

func TestLocalHostDeviceCopy(t *testing.T) {
	rt, err := NewRuntime(Config{Ranks: 1, GPUsPerNode: 1, Machine: machine.Perlmutter()})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(r *Rank) {
		h := r.NewArray(4)
		h.Data[2] = 7
		d, _, err := r.DeviceAlloc(4)
		if err != nil {
			t.Error(err)
			return
		}
		r.Copy(h, d)
		if d.Data[2] != 7 {
			t.Error("local host→device copy failed")
		}
		r.Copy(d, h)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceBindingCyclic(t *testing.T) {
	rt, err := NewRuntime(Config{
		Ranks: 8, RanksPerNode: 4, GPUsPerNode: 2,
		Machine: machine.Perlmutter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Devices()) != 4 { // 2 nodes × 2 GPUs
		t.Fatalf("device count = %d", len(rt.Devices()))
	}
	// Ranks 0..3 on node 0: devices 0,1,0,1. Ranks 4..7 on node 1: 2,3,2,3.
	want := []int{0, 1, 0, 1, 2, 3, 2, 3}
	for i, r := range rt.ranks {
		if r.device.ID != want[i] {
			t.Fatalf("rank %d bound to device %d, want %d", i, r.device.ID, want[i])
		}
	}
	if rt.Node(3) != 0 || rt.Node(4) != 1 {
		t.Fatal("node mapping wrong")
	}
}

func TestPanicAbortsJob(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.Run(func(r *Rank) {
		if r.ID == 2 {
			panic("boom")
		}
		// Everyone else waits at a barrier that must release on abort.
		if err := r.Barrier(); err == nil {
			t.Error("barrier should return ErrAborted")
		}
	})
	if err == nil || rt.Err() == nil {
		t.Fatal("expected recorded failure")
	}
	if !rt.ShouldAbort() {
		t.Fatal("abort flag not set")
	}
}

func TestFailReleasesBarrierAndDropsRPCs(t *testing.T) {
	rt := newRT(t, 3)
	err := rt.Run(func(r *Rank) {
		if r.ID == 0 {
			rt.Fail(errors.New("synthetic"))
			r.RPC(1, func(*Rank) {}) // dropped after abort
			return
		}
		if err := r.Barrier(); !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d: barrier err = %v", r.ID, err)
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if rt.Stats.Dropped.Load() != 1 {
		t.Fatalf("dropped = %d", rt.Stats.Dropped.Load())
	}
}

func TestBarrierSynchronizesPhases(t *testing.T) {
	rt := newRT(t, 6)
	shared := make([]int, 6)
	err := rt.Run(func(r *Rank) {
		shared[r.ID] = r.ID + 1
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		sum := 0
		for _, v := range shared {
			sum += v
		}
		if sum != 21 {
			t.Errorf("rank %d saw incomplete writes: %d", r.ID, sum)
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockAccumulates(t *testing.T) {
	rt := newRT(t, 2)
	elapsed := make([]float64, 2)
	ptr := make([]GlobalPtr, 2)
	err := rt.Run(func(r *Rank) {
		ptr[r.ID] = r.NewArray(1 << 16)
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		dst := make([]float64, 1<<16)
		r.Rget(ptr[1-r.ID], dst)
		elapsed[r.ID] = r.Elapsed()
		r.ResetClock()
		if r.Elapsed() != 0 {
			t.Error("reset failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range elapsed {
		if e <= 0 {
			t.Fatalf("rank %d clock = %g", i, e)
		}
	}
}

func TestRgetLengthMismatchPanics(t *testing.T) {
	rt := newRT(t, 1)
	err := rt.Run(func(r *Rank) {
		g := r.NewArray(4)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.Rget(g, make([]float64, 3))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFutureThen(t *testing.T) {
	ran := false
	f := Future{seconds: 1}.Then(func() { ran = true })
	if !ran || f.Seconds() != 1 {
		t.Fatal("Then chaining broken")
	}
}

// Stress: a storm of concurrent RPCs and one-sided gets across ranks must
// deliver every message exactly once (run with -race to check memory
// safety).
func TestRPCStorm(t *testing.T) {
	const p, msgs = 8, 400
	rt := newRT(t, p)
	var delivered [p]atomic.Int64
	err := rt.Run(func(r *Rank) {
		src := r.NewArray(64)
		for i := range src.Data {
			src.Data[i] = float64(r.ID)
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		for m := 0; m < msgs; m++ {
			tgt := (r.ID + m + 1) % p
			r.RPC(tgt, func(me *Rank) { delivered[me.ID].Add(1) })
			if m%16 == 0 {
				dst := make([]float64, 64)
				r.Rget(src, dst)
				r.Progress()
			}
		}
		// Drain until the global count settles: all ranks stop sending
		// after msgs messages, so polling until the barrier is safe.
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		for r.PendingRPCs() > 0 {
			r.Progress()
		}
		if err := r.Barrier(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range delivered {
		total += delivered[i].Load()
	}
	if total != p*msgs {
		t.Fatalf("delivered %d of %d messages", total, p*msgs)
	}
}
