package upcxx

import (
	"sync"

	"sympack/internal/simnet"
)

// UPC++-style collectives. The solver's hot paths use only the one-sided
// primitives, but setup phases and applications use broadcasts and
// reductions (upcxx::broadcast, upcxx::reduce_all), so the runtime provides
// them. All collectives are barriers: every rank must call them in the same
// order with matching arguments, as in UPC++.

// collective state lives on the runtime, guarded by its own lock.
//
// buf/rbuf are entry-time staging (broadcast source, reduction
// accumulator); res is the published result of the most recently completed
// generation. Waiters read only res: a rank that finishes generation g and
// immediately enters generation g+1 overwrites the staging buffers, but
// g+1 cannot complete — and res cannot be republished — until every
// generation-g waiter has copied its result and left, because those
// waiters are among the P ranks g+1 needs.
type collectiveState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	gen   int64
	count int
	buf   []float64
	rbuf  []float64
	res   []float64
}

func (rt *Runtime) coll() *collectiveState {
	rt.collOnce.Do(func() {
		rt.collSt = &collectiveState{}
		rt.collSt.cond = sync.NewCond(&rt.collSt.mu)
	})
	return rt.collSt
}

// Broadcast distributes the root's buffer to every rank: on the root,
// data's contents are the source; on other ranks, data receives the values.
// Modeled cost: a binomial tree of host-host messages.
func (r *Rank) Broadcast(root int, data []float64) error {
	cs := r.rt.coll()
	cs.mu.Lock()
	if r.ID == root {
		cs.buf = append(cs.buf[:0], data...)
	}
	err := r.collWaitLocked(cs, func() {
		cs.res = append(cs.res[:0], cs.buf...)
	})
	if err == nil && r.ID != root {
		copy(data, cs.res)
	}
	cs.mu.Unlock()
	r.chargeCollective(len(data))
	return err
}

// ReduceOp is a binary reduction operator.
type ReduceOp func(a, b float64) float64

// OpSum and OpMax are the common reductions.
func OpSum(a, b float64) float64 { return a + b }
func OpMax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AllReduce combines every rank's data element-wise with op; on return each
// rank's data holds the reduction. Modeled cost: a recursive-doubling
// exchange.
func (r *Rank) AllReduce(op ReduceOp, data []float64) error {
	cs := r.rt.coll()
	cs.mu.Lock()
	if cs.count == 0 {
		cs.rbuf = append(cs.rbuf[:0], data...)
	} else {
		for i := range data {
			cs.rbuf[i] = op(cs.rbuf[i], data[i])
		}
	}
	err := r.collWaitLocked(cs, func() {
		cs.res = append(cs.res[:0], cs.rbuf...)
	})
	if err == nil {
		copy(data, cs.res)
	}
	cs.mu.Unlock()
	r.chargeCollective(len(data))
	return err
}

// collWaitLocked implements the rendezvous: the last arriving rank runs
// publish (moving the generation's staging buffer into cs.res, where it is
// safe from the next collective's entry-time writes) and releases the
// generation; later collectives reuse the state. cs.mu must be held.
func (r *Rank) collWaitLocked(cs *collectiveState, publish func()) error {
	if r.rt.ShouldAbort() {
		return ErrAborted
	}
	gen := cs.gen
	cs.count++
	if cs.count == r.rt.P() {
		publish()
		cs.count = 0
		cs.gen++
		cs.cond.Broadcast()
		return nil
	}
	for gen == cs.gen && !r.rt.ShouldAbort() {
		cs.cond.Wait()
	}
	if r.rt.ShouldAbort() {
		return ErrAborted
	}
	return nil
}

// chargeCollective accounts a log(P)-depth tree exchange of the payload.
func (r *Rank) chargeCollective(elems int) {
	p := r.rt.P()
	depth := 0
	for 1<<depth < p {
		depth++
	}
	if depth == 0 {
		return
	}
	per := r.rt.net.Time(simnet.PathHostHost, int64(elems*8), false)
	r.Charge(float64(depth) * per)
}

// abortCollectives releases any ranks blocked inside a collective.
func (rt *Runtime) abortCollectives() {
	cs := rt.coll()
	cs.mu.Lock()
	cs.cond.Broadcast()
	cs.mu.Unlock()
}
