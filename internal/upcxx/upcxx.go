// Package upcxx is the in-process substitute for the UPC++ PGAS library the
// paper builds on (§3.4, §4.1). It provides the primitives symPACK's
// communication paradigm is written against:
//
//   - ranks with private memory and global pointers carrying affinity;
//   - one-sided RMA (Rget/Rput) that moves data without involving the
//     remote rank's execution stream;
//   - remote procedure calls enqueued on the target and executed when the
//     target calls Progress() — the paper's signal(ptr,meta) notification;
//   - memory kinds: global pointers to device memory allocated from a
//     per-rank device allocator, and a device-aware Copy() that models the
//     zero-copy GPUDirect path (or the staged reference path) between any
//     combination of host and device memories on any ranks.
//
// Ranks run as goroutines inside one process, so "RMA" is a memcpy; the
// modeled time of each transfer is computed by internal/simnet and
// accounted on the initiating rank's virtual clock, while correctness
// (who may read what, when) follows the same notification discipline the
// real library requires.
package upcxx

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/simnet"
)

// Config describes the simulated job layout.
type Config struct {
	Ranks        int
	RanksPerNode int // 0 = all ranks on one node
	GPUsPerNode  int // 0 = no devices
	Machine      machine.Machine
	// DeviceCapacity is the per-device memory in float64 elements
	// (0 = unbounded). All ranks bound to a device share its capacity,
	// as on a real node.
	DeviceCapacity int64
}

// Runtime is one simulated UPC++ job.
type Runtime struct {
	cfg     Config
	net     *simnet.Network
	ranks   []*Rank
	devices []*gpu.Device
	bar     *barrier

	aborted atomic.Bool
	failMu  sync.Mutex
	failErr error

	collOnce sync.Once
	collSt   *collectiveState

	Stats Stats
}

// Stats aggregates communication counters across the job; all fields are
// updated atomically and may be read after Run returns.
type Stats struct {
	RPCs    atomic.Int64
	Rgets   atomic.Int64
	Rputs   atomic.Int64
	Copies  atomic.Int64
	ByPath  [6]atomic.Int64 // transfer count per simnet.Path
	Bytes   [6]atomic.Int64 // bytes per simnet.Path
	Dropped atomic.Int64    // RPCs delivered after abort
}

// NewRuntime creates a runtime with the given layout.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("upcxx: need at least one rank, got %d", cfg.Ranks)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = cfg.Ranks
	}
	rt := &Runtime{
		cfg: cfg,
		net: simnet.New(cfg.Machine),
		bar: newBarrier(cfg.Ranks),
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	if cfg.GPUsPerNode > 0 {
		rt.devices = make([]*gpu.Device, nodes*cfg.GPUsPerNode)
		for i := range rt.devices {
			rt.devices[i] = gpu.NewDevice(i, cfg.Machine, cfg.DeviceCapacity)
		}
	}
	rt.ranks = make([]*Rank, cfg.Ranks)
	for i := 0; i < cfg.Ranks; i++ {
		r := &Rank{ID: i, rt: rt}
		if cfg.GPUsPerNode > 0 {
			// The paper's recommended binding: process p on its node is
			// bound to device (p mod d).
			node := i / cfg.RanksPerNode
			local := i % cfg.RanksPerNode
			r.device = rt.devices[node*cfg.GPUsPerNode+local%cfg.GPUsPerNode]
		}
		rt.ranks[i] = r
	}
	return rt, nil
}

// P returns the rank count.
func (rt *Runtime) P() int { return rt.cfg.Ranks }

// Network exposes the transfer-cost model.
func (rt *Runtime) Network() *simnet.Network { return rt.net }

// Node returns the node index hosting a rank.
func (rt *Runtime) Node(rank int) int { return rank / rt.cfg.RanksPerNode }

// Devices returns the simulated devices (one slice entry per physical GPU).
func (rt *Runtime) Devices() []*gpu.Device { return rt.devices }

// Fail records the first error and aborts the job: barriers release and
// ShouldAbort turns true everywhere.
func (rt *Runtime) Fail(err error) {
	rt.failMu.Lock()
	if rt.failErr == nil {
		rt.failErr = err
	}
	rt.failMu.Unlock()
	rt.aborted.Store(true)
	rt.bar.abort()
	rt.abortCollectives()
}

// Err returns the recorded failure, if any.
func (rt *Runtime) Err() error {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	return rt.failErr
}

// ShouldAbort reports whether the job is aborting.
func (rt *Runtime) ShouldAbort() bool { return rt.aborted.Load() }

// Run executes f once per rank, each in its own goroutine, and waits for
// all to return. A panicking rank aborts the whole job and surfaces as an
// error. Run may be called repeatedly (phases).
func (rt *Runtime) Run(f func(r *Rank)) error {
	var wg sync.WaitGroup
	wg.Add(len(rt.ranks))
	for _, r := range rt.ranks {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					rt.Fail(fmt.Errorf("upcxx: rank %d panicked: %v", r.ID, p))
				}
			}()
			f(r)
		}(r)
	}
	wg.Wait()
	return rt.Err()
}

// ErrAborted is returned by Barrier when the job failed.
var ErrAborted = errors.New("upcxx: job aborted")

// ---------------------------------------------------------------- Rank ----

// Rank is one simulated UPC++ process.
type Rank struct {
	ID int
	rt *Runtime

	qmu  sync.Mutex
	rpcq []func(*Rank)

	device *gpu.Device
	clock  machine.Clock
}

// Runtime returns the owning runtime.
func (r *Rank) Runtime() *Runtime { return r.rt }

// Device returns the GPU this rank is bound to (nil when the job has no
// devices).
func (r *Rank) Device() *gpu.Device { return r.device }

// Charge adds modeled seconds to this rank's virtual clock. Kernels and
// transfers executed on behalf of the rank call it; user code may too.
func (r *Rank) Charge(dt float64) { r.clock.Advance(dt) }

// Elapsed returns the rank's accumulated virtual seconds.
func (r *Rank) Elapsed() float64 { return r.clock.Seconds() }

// ResetClock zeroes the rank's virtual clock (between phases).
func (r *Rank) ResetClock() { r.clock.Reset() }

// Barrier blocks until every rank arrives (or the job aborts).
func (r *Rank) Barrier() error { return r.rt.bar.await(r.rt) }

// ------------------------------------------------------- global memory ----

// GlobalPtr references memory with affinity to a rank, possibly device
// memory (memory kinds). The zero value is a null pointer.
type GlobalPtr struct {
	Rank int32
	Kind simnet.MemKind
	Data []float64 // aliases the owner's storage
}

// IsNil reports whether the pointer is null.
func (g GlobalPtr) IsNil() bool { return g.Data == nil }

// Len returns the referenced element count.
func (g GlobalPtr) Len() int { return len(g.Data) }

// Slice returns a sub-pointer covering elements [lo, hi).
func (g GlobalPtr) Slice(lo, hi int) GlobalPtr {
	return GlobalPtr{Rank: g.Rank, Kind: g.Kind, Data: g.Data[lo:hi]}
}

// NewArray allocates n elements of host shared-segment memory with affinity
// to this rank and returns a global pointer to it.
func (r *Rank) NewArray(n int) GlobalPtr {
	return GlobalPtr{Rank: int32(r.ID), Kind: simnet.Host, Data: make([]float64, n)}
}

// DeviceAlloc allocates n elements on this rank's device via the device
// allocator (upcxx::device_allocator). It returns gpu.ErrOutOfMemory when
// the device is full — the trigger for the solver's fallback options — and
// an error when the job has no devices.
func (r *Rank) DeviceAlloc(n int) (GlobalPtr, *gpu.Buffer, error) {
	if r.device == nil {
		return GlobalPtr{}, nil, errors.New("upcxx: rank has no device")
	}
	buf, err := r.device.Alloc(n)
	if err != nil {
		return GlobalPtr{}, nil, err
	}
	return GlobalPtr{Rank: int32(r.ID), Kind: simnet.Device, Data: buf.Data}, buf, nil
}

// DeviceFree releases a device allocation.
func (r *Rank) DeviceFree(buf *gpu.Buffer) {
	if r.device == nil || buf == nil {
		return
	}
	r.device.Free(buf)
}

// ------------------------------------------------------------- futures ----

// Future represents a (already internally completed) asynchronous
// operation, carrying its modeled duration. Callers chain work with Then
// and synchronize with Wait, mirroring upcxx::future.
type Future struct {
	seconds float64
}

// Wait blocks until the operation is complete (a no-op in-process) and
// returns its modeled duration.
func (f Future) Wait() float64 { return f.seconds }

// Seconds returns the modeled duration without waiting.
func (f Future) Seconds() float64 { return f.seconds }

// Then runs fn after completion and returns the future for chaining.
func (f Future) Then(fn func()) Future {
	fn()
	return f
}

// ------------------------------------------------------------------ RPC ----

// RPC enqueues fn for execution on the target rank the next time it calls
// Progress(). This is the paper's producer-side notification (Fig. 4 step
// 1): fire-and-forget, no reply.
func (r *Rank) RPC(target int, fn func(*Rank)) {
	rt := r.rt
	if rt.ShouldAbort() {
		rt.Stats.Dropped.Add(1)
		return
	}
	t := rt.ranks[target]
	t.qmu.Lock()
	t.rpcq = append(t.rpcq, fn)
	t.qmu.Unlock()
	rt.Stats.RPCs.Add(1)
	// A small active message: charge its latency to the initiator.
	r.Charge(rt.net.Time(simnet.PathHostHost, 64, rt.Node(r.ID) == rt.Node(target)))
}

// Progress executes all RPCs currently queued on this rank (Fig. 4 steps
// 2–4) and returns how many ran.
func (r *Rank) Progress() int {
	r.qmu.Lock()
	q := r.rpcq
	r.rpcq = nil
	r.qmu.Unlock()
	for _, fn := range q {
		fn(r)
	}
	return len(q)
}

// PendingRPCs reports the queued-but-unexecuted RPC count.
func (r *Rank) PendingRPCs() int {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	return len(r.rpcq)
}

// -------------------------------------------------------------- RMA ops ----

func (r *Rank) account(p simnet.Path, bytes int64, sameNode bool) float64 {
	rt := r.rt
	rt.Stats.ByPath[p].Add(1)
	rt.Stats.Bytes[p].Add(bytes)
	dt := rt.net.Time(p, bytes, sameNode)
	r.Charge(dt)
	return dt
}

// Rget copies Len elements from a (possibly remote) source into local host
// memory — upcxx::rget, the one-sided pull of Fig. 4 step 5.
func (r *Rank) Rget(src GlobalPtr, dst []float64) Future {
	if len(dst) != src.Len() {
		panic(fmt.Sprintf("upcxx: Rget length mismatch %d vs %d", len(dst), src.Len()))
	}
	copy(dst, src.Data)
	same := src.Rank == int32(r.ID)
	p := r.rt.net.Classify(src.Kind, simnet.Host, same, r.sameNode(src.Rank))
	r.rt.Stats.Rgets.Add(1)
	return Future{seconds: r.account(p, int64(len(dst)*8), r.sameNode(src.Rank))}
}

// Rput copies local host data into a (possibly remote) destination —
// upcxx::rput.
func (r *Rank) Rput(src []float64, dst GlobalPtr) Future {
	if len(src) != dst.Len() {
		panic(fmt.Sprintf("upcxx: Rput length mismatch %d vs %d", len(src), dst.Len()))
	}
	copy(dst.Data, src)
	same := dst.Rank == int32(r.ID)
	p := r.rt.net.Classify(simnet.Host, dst.Kind, same, r.sameNode(dst.Rank))
	r.rt.Stats.Rputs.Add(1)
	return Future{seconds: r.account(p, int64(len(src)*8), r.sameNode(dst.Rank))}
}

// Copy moves data between any two global pointers regardless of kind or
// affinity — upcxx::copy(), the memory-kinds workhorse (§4.1). With GDR
// enabled a host→remote-device copy is zero-copy; without it the transfer
// stages through host memory, exactly the difference Fig. 5 measures.
func (r *Rank) Copy(src, dst GlobalPtr) Future {
	if src.Len() != dst.Len() {
		panic(fmt.Sprintf("upcxx: Copy length mismatch %d vs %d", src.Len(), dst.Len()))
	}
	copy(dst.Data, src.Data)
	same := src.Rank == dst.Rank
	sameNode := r.rt.Node(int(src.Rank)) == r.rt.Node(int(dst.Rank))
	var p simnet.Path
	if same {
		if src.Kind != dst.Kind {
			// Host↔device within one process: PCIe copy.
			r.rt.Stats.Copies.Add(1)
			dt := r.rt.cfg.Machine.HostDeviceCopyTime(int64(src.Len() * 8))
			r.Charge(dt)
			return Future{seconds: dt}
		}
		p = simnet.PathLocal
	} else {
		p = r.rt.net.Classify(src.Kind, dst.Kind, false, sameNode)
	}
	r.rt.Stats.Copies.Add(1)
	return Future{seconds: r.account(p, int64(src.Len()*8), sameNode)}
}

func (r *Rank) sameNode(other int32) bool {
	return r.rt.Node(r.ID) == r.rt.Node(int(other))
}

// -------------------------------------------------------------- barrier ----

type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	gen     int
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(rt *Runtime) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	return nil
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
