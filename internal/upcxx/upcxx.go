// Package upcxx is the in-process substitute for the UPC++ PGAS library the
// paper builds on (§3.4, §4.1). It provides the primitives symPACK's
// communication paradigm is written against:
//
//   - ranks with private memory and global pointers carrying affinity;
//   - one-sided RMA (Rget/Rput) that moves data without involving the
//     remote rank's execution stream;
//   - remote procedure calls enqueued on the target and executed when the
//     target calls Progress() — the paper's signal(ptr,meta) notification;
//   - memory kinds: global pointers to device memory allocated from a
//     per-rank device allocator, and a device-aware Copy() that models the
//     zero-copy GPUDirect path (or the staged reference path) between any
//     combination of host and device memories on any ranks.
//
// Ranks run as goroutines inside one process, so "RMA" is a memcpy; the
// modeled time of each transfer is computed by internal/simnet and
// accounted on the initiating rank's virtual clock, while correctness
// (who may read what, when) follows the same notification discipline the
// real library requires.
package upcxx

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sympack/internal/faults"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/metrics"
	"sympack/internal/simnet"
	"sympack/internal/trace"
)

// Config describes the simulated job layout.
type Config struct {
	Ranks        int
	RanksPerNode int // 0 = all ranks on one node
	GPUsPerNode  int // 0 = no devices
	Machine      machine.Machine
	// DeviceCapacity is the per-device memory in float64 elements
	// (0 = unbounded). All ranks bound to a device share its capacity,
	// as on a real node.
	DeviceCapacity int64
	// Faults, when non-nil, is consulted on every RPC, transfer, and
	// device allocation; nil means a perfect network.
	Faults *faults.Injector
	// Trace, when non-nil, receives instant fault/recovery events so
	// Chrome traces show them alongside task events.
	Trace *trace.Recorder
	// TransferAttempts bounds the retry loop of a transiently failing
	// Rget/Rput/Copy (0 = default 8).
	TransferAttempts int
	// TransferBackoff is the modeled seconds charged for the first retry
	// wait; it doubles per attempt, so TransferAttempts × TransferBackoff
	// defines the per-operation timeout (0 = default 2µs).
	TransferBackoff float64
	// ElemBytes is the modeled width of one transferred element in bytes
	// (0 = 8, the float64 default). Mixed-precision factorizations pass 4:
	// the wire cost model then charges half the bytes per Rget/Rput/Copy,
	// matching an implementation that ships fp32 payloads. Host storage
	// stays []float64 either way — only the byte accounting changes.
	ElemBytes int
}

// elemBytes resolves the configured element width.
func (c *Config) elemBytes() int64 {
	if c.ElemBytes > 0 {
		return int64(c.ElemBytes)
	}
	return 8
}

// Runtime is one simulated UPC++ job.
type Runtime struct {
	cfg     Config
	net     *simnet.Network
	ranks   []*Rank
	devices []*gpu.Device
	bar     *barrier

	aborted atomic.Bool
	failMu  sync.Mutex
	failErr error

	collOnce sync.Once
	collSt   *collectiveState

	Stats Stats

	// reg/met are the runtime's live metric registry and hot-path handles
	// (see metrics.go); created unconditionally by NewRuntime.
	reg *metrics.Registry
	met *rtMetrics
}

// Stats aggregates communication counters across the job; all fields are
// updated atomically and may be read after Run returns.
type Stats struct {
	RPCs    atomic.Int64
	Rgets   atomic.Int64
	Rputs   atomic.Int64
	Copies  atomic.Int64
	ByPath  [6]atomic.Int64 // transfer count per simnet.Path
	Bytes   [6]atomic.Int64 // bytes per simnet.Path
	Dropped atomic.Int64    // RPCs delivered after abort

	// Fault-injection and recovery counters (zero on a perfect network).
	DroppedSignals   atomic.Int64 // RPCs discarded by the injector
	DupSignals       atomic.Int64 // RPCs delivered twice
	DelayedSignals   atomic.Int64 // RPCs deferred by progress ticks
	TransferRetries  atomic.Int64 // transfer attempts that failed and retried
	TransferFailures atomic.Int64 // transfers whose retry budget ran out
	Stalls           atomic.Int64 // injected rank-stall windows
	ReRequests       atomic.Int64 // consumer re-requests for lost signals
	Redeliveries     atomic.Int64 // producer re-announcements of done blocks
}

// NewRuntime creates a runtime with the given layout.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("upcxx: need at least one rank, got %d", cfg.Ranks)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = cfg.Ranks
	}
	if cfg.TransferAttempts <= 0 {
		cfg.TransferAttempts = 8
	}
	if cfg.TransferBackoff <= 0 {
		cfg.TransferBackoff = 2e-6
	}
	rt := &Runtime{
		cfg: cfg,
		net: simnet.New(cfg.Machine),
		bar: newBarrier(cfg.Ranks),
		reg: metrics.NewRegistry(),
	}
	rt.met = newRTMetrics(rt.reg)
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	if cfg.GPUsPerNode > 0 {
		rt.devices = make([]*gpu.Device, nodes*cfg.GPUsPerNode)
		for i := range rt.devices {
			rt.devices[i] = gpu.NewDevice(i, cfg.Machine, cfg.DeviceCapacity)
			rt.devices[i].SetFaults(cfg.Faults)
			rt.devices[i].SetMetrics(rt.reg)
		}
	}
	rt.ranks = make([]*Rank, cfg.Ranks)
	for i := 0; i < cfg.Ranks; i++ {
		r := &Rank{ID: i, rt: rt}
		if cfg.GPUsPerNode > 0 {
			// The paper's recommended binding: process p on its node is
			// bound to device (p mod d).
			node := i / cfg.RanksPerNode
			local := i % cfg.RanksPerNode
			r.device = rt.devices[node*cfg.GPUsPerNode+local%cfg.GPUsPerNode]
		}
		rt.ranks[i] = r
	}
	return rt, nil
}

// P returns the rank count.
func (rt *Runtime) P() int { return rt.cfg.Ranks }

// Network exposes the transfer-cost model.
func (rt *Runtime) Network() *simnet.Network { return rt.net }

// Node returns the node index hosting a rank.
func (rt *Runtime) Node(rank int) int { return rank / rt.cfg.RanksPerNode }

// Devices returns the simulated devices (one slice entry per physical GPU).
func (rt *Runtime) Devices() []*gpu.Device { return rt.devices }

// Fail records the first error and aborts the job: barriers release and
// ShouldAbort turns true everywhere.
func (rt *Runtime) Fail(err error) {
	rt.failMu.Lock()
	if rt.failErr == nil {
		rt.failErr = err
	}
	rt.failMu.Unlock()
	rt.aborted.Store(true)
	rt.bar.abort()
	rt.abortCollectives()
}

// Err returns the recorded failure, if any.
func (rt *Runtime) Err() error {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	return rt.failErr
}

// ShouldAbort reports whether the job is aborting.
func (rt *Runtime) ShouldAbort() bool { return rt.aborted.Load() }

// Run executes f once per rank, each in its own goroutine, and waits for
// all to return. A panicking rank aborts the whole job and surfaces as an
// error. Run may be called repeatedly (phases).
func (rt *Runtime) Run(f func(r *Rank)) error {
	var wg sync.WaitGroup
	wg.Add(len(rt.ranks))
	for _, r := range rt.ranks {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					rt.Fail(fmt.Errorf("upcxx: rank %d panicked: %v", r.ID, p))
				}
			}()
			f(r)
		}(r)
	}
	wg.Wait()
	return rt.Err()
}

// ErrAborted is returned by Barrier when the job failed.
var ErrAborted = errors.New("upcxx: job aborted")

// ---------------------------------------------------------------- Rank ----

// Rank is one simulated UPC++ process. A rank may host several executor
// goroutines (the engine's worker pool) plus one progress goroutine; the
// clock is charge-safe from any of them, while Progress is serialized so RPC
// handlers keep the single-threaded execution guarantee of the real
// library's progress engine.
type Rank struct {
	ID int
	rt *Runtime

	qmu    sync.Mutex
	rpcq   []func(*Rank)
	delayq []delayedRPC // injected-delay holding pen, matured by Progress

	// progressMu serializes Progress so handler execution is
	// single-threaded per rank even if more than one goroutine polls.
	progressMu sync.Mutex

	device *gpu.Device
	clock  machine.Clock
}

// delayedRPC is an enqueued RPC the injector deferred by `ticks` progress
// calls on the target.
type delayedRPC struct {
	fn    func(*Rank)
	ticks int
}

// Runtime returns the owning runtime.
func (r *Rank) Runtime() *Runtime { return r.rt }

// Device returns the GPU this rank is bound to (nil when the job has no
// devices).
func (r *Rank) Device() *gpu.Device { return r.device }

// Charge adds modeled seconds to this rank's virtual clock. Kernels and
// transfers executed on behalf of the rank call it; user code may too.
func (r *Rank) Charge(dt float64) { r.clock.Advance(dt) }

// Elapsed returns the rank's accumulated virtual seconds.
func (r *Rank) Elapsed() float64 { return r.clock.Seconds() }

// ResetClock zeroes the rank's virtual clock (between phases).
func (r *Rank) ResetClock() { r.clock.Reset() }

// Barrier blocks until every rank arrives (or the job aborts).
func (r *Rank) Barrier() error { return r.rt.bar.await(r.rt) }

// ------------------------------------------------------- global memory ----

// GlobalPtr references memory with affinity to a rank, possibly device
// memory (memory kinds). The zero value is a null pointer.
type GlobalPtr struct {
	Rank int32
	Kind simnet.MemKind
	Data []float64 // aliases the owner's storage
}

// IsNil reports whether the pointer is null.
func (g GlobalPtr) IsNil() bool { return g.Data == nil }

// Len returns the referenced element count.
func (g GlobalPtr) Len() int { return len(g.Data) }

// Slice returns a sub-pointer covering elements [lo, hi).
func (g GlobalPtr) Slice(lo, hi int) GlobalPtr {
	return GlobalPtr{Rank: g.Rank, Kind: g.Kind, Data: g.Data[lo:hi]}
}

// NewArray allocates n elements of host shared-segment memory with affinity
// to this rank and returns a global pointer to it.
func (r *Rank) NewArray(n int) GlobalPtr {
	return GlobalPtr{Rank: int32(r.ID), Kind: simnet.Host, Data: make([]float64, n)}
}

// NewArrayFrom adopts an already-populated local buffer into this rank's
// shared segment and returns a global pointer to it, so a computed result
// (e.g. an update contribution under the fan-in/fan-both formulations) can
// be published for one-sided gets without a copy. The caller must not write
// to the buffer after publishing it.
func (r *Rank) NewArrayFrom(data []float64) GlobalPtr {
	return GlobalPtr{Rank: int32(r.ID), Kind: simnet.Host, Data: data}
}

// DeviceAlloc allocates n elements on this rank's device via the device
// allocator (upcxx::device_allocator). It returns gpu.ErrOutOfMemory when
// the device is full — the trigger for the solver's fallback options — and
// an error when the job has no devices.
func (r *Rank) DeviceAlloc(n int) (GlobalPtr, *gpu.Buffer, error) {
	if r.device == nil {
		return GlobalPtr{}, nil, errors.New("upcxx: rank has no device")
	}
	buf, err := r.device.Alloc(n)
	if err != nil {
		return GlobalPtr{}, nil, err
	}
	return GlobalPtr{Rank: int32(r.ID), Kind: simnet.Device, Data: buf.Data}, buf, nil
}

// DeviceFree releases a device allocation.
func (r *Rank) DeviceFree(buf *gpu.Buffer) {
	if r.device == nil || buf == nil {
		return
	}
	r.device.Free(buf)
}

// ------------------------------------------------------------- futures ----

// Future represents a (already internally completed) asynchronous
// operation, carrying its modeled duration and, since the runtime tolerates
// injected faults, its completion state. Callers chain work with Then and
// synchronize with Wait, mirroring upcxx::future.
type Future struct {
	seconds float64
	err     error
}

// Wait blocks until the operation is complete (a no-op in-process) and
// returns its modeled duration. Check Err for the completion state.
func (f Future) Wait() float64 { return f.seconds }

// Seconds returns the modeled duration without waiting.
func (f Future) Seconds() float64 { return f.seconds }

// Err returns the operation's failure, if any. A transfer whose retry
// budget ran out reports an error wrapping faults.ErrTransient; its data
// must be treated as not moved.
func (f Future) Err() error { return f.err }

// OK reports whether the operation completed successfully.
func (f Future) OK() bool { return f.err == nil }

// Then runs fn after successful completion and returns the future for
// chaining. A failed future propagates its error without running fn, so
// continuations never observe data a faulted transfer did not deliver.
func (f Future) Then(fn func()) Future {
	if f.err == nil {
		fn()
	}
	return f
}

// FailedFuture returns a future carrying an error, for layers that detect
// failure before issuing the underlying operation.
func FailedFuture(err error) Future { return Future{err: err} }

// ------------------------------------------------------------------ RPC ----

// RPC enqueues fn for execution on the target rank the next time it calls
// Progress(). This is the paper's producer-side notification (Fig. 4 step
// 1): fire-and-forget, no reply. Under fault injection the message may be
// dropped (never enqueued), duplicated (enqueued twice — handlers must be
// idempotent), or delayed (held until later Progress calls); the sender is
// charged the wire latency in every case, as it would be on a real NIC.
func (r *Rank) RPC(target int, fn func(*Rank)) {
	rt := r.rt
	if rt.ShouldAbort() {
		rt.Stats.Dropped.Add(1)
		return
	}
	rt.Stats.RPCs.Add(1)
	// A small active message: charge its latency to the initiator.
	r.Charge(rt.net.Time(simnet.PathHostHost, 64, rt.Node(r.ID) == rt.Node(target)))
	inj := rt.cfg.Faults
	if inj.DropSignal(r.ID) {
		rt.Stats.DroppedSignals.Add(1)
		rt.traceFault(int32(r.ID), "fault:drop-signal", fmt.Sprintf("to=%d", target))
		return
	}
	copies := 1
	if inj.DupSignal(r.ID) {
		copies = 2
		rt.Stats.DupSignals.Add(1)
		rt.traceFault(int32(r.ID), "fault:dup-signal", fmt.Sprintf("to=%d", target))
	}
	delay := inj.DelaySignalTicks(r.ID)
	if delay > 0 {
		rt.Stats.DelayedSignals.Add(1)
		rt.traceFault(int32(r.ID), "fault:delay-signal", fmt.Sprintf("to=%d ticks=%d", target, delay))
	}
	t := rt.ranks[target]
	t.qmu.Lock()
	for i := 0; i < copies; i++ {
		if delay > 0 {
			t.delayq = append(t.delayq, delayedRPC{fn: fn, ticks: delay})
		} else {
			t.rpcq = append(t.rpcq, fn)
		}
	}
	t.qmu.Unlock()
}

// Progress executes all RPCs currently queued on this rank (Fig. 4 steps
// 2–4) and returns how many ran. It also ages injector-delayed messages
// (each Progress call is one tick) and serves as the injection point for
// rank-stall windows, which freeze the rank in real time the way an OS
// scheduler hiccup or congested progress thread would.
//
// Handlers run serialized: concurrent Progress calls queue behind one
// another, so RPC closures may treat themselves as the only code running on
// the rank's progress stream (they must still lock any state shared with
// the rank's executor workers).
func (r *Rank) Progress() int {
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	if w := r.rt.cfg.Faults.StallWindow(r.ID); w > 0 {
		r.rt.Stats.Stalls.Add(1)
		r.rt.traceFault(int32(r.ID), "fault:rank-stall", w.String())
		machine.Backoff(w)
		r.Charge(w.Seconds())
	}
	r.qmu.Lock()
	if len(r.delayq) > 0 {
		kept := r.delayq[:0]
		for i := range r.delayq {
			r.delayq[i].ticks--
			if r.delayq[i].ticks <= 0 {
				r.rpcq = append(r.rpcq, r.delayq[i].fn)
			} else {
				kept = append(kept, r.delayq[i])
			}
		}
		r.delayq = kept
	}
	q := r.rpcq
	r.rpcq = nil
	r.qmu.Unlock()
	for _, fn := range q {
		fn(r)
	}
	r.rt.met.progressIters.Inc()
	if len(q) > 0 {
		r.rt.met.signalsReceived.Add(float64(len(q)))
	}
	return len(q)
}

// PendingRPCs reports the queued-but-unexecuted RPC count, including
// injector-delayed messages that have not matured yet.
func (r *Rank) PendingRPCs() int {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	return len(r.rpcq) + len(r.delayq)
}

// traceFault records an instant fault/recovery event when tracing is on.
func (rt *Runtime) traceFault(rank int32, kind, detail string) {
	if tr := rt.cfg.Trace; tr != nil {
		tr.End(rank, kind, tr.Begin(), detail)
	}
}

// -------------------------------------------------------------- RMA ops ----

// ErrTransferFailed is carried by the future of a transfer whose bounded
// retry budget was exhausted. It wraps faults.ErrTransient: callers that
// can re-request the data later should; callers that cannot may escalate.
var ErrTransferFailed = fmt.Errorf("upcxx: transfer failed after retries: %w", faults.ErrTransient)

func (r *Rank) account(p simnet.Path, bytes int64, sameNode bool) float64 {
	rt := r.rt
	rt.Stats.ByPath[p].Add(1)
	rt.Stats.Bytes[p].Add(bytes)
	dt := rt.net.Time(p, bytes, sameNode)
	r.Charge(dt)
	return dt
}

// retryTransfer runs the injector's transfer-fault gauntlet for one RMA
// operation: each failed attempt charges an exponentially growing backoff
// to the rank's virtual clock, and the attempt cap bounds the operation's
// modeled timeout (TransferAttempts × doubling TransferBackoff). It returns
// the modeled seconds burned on retries and ErrTransferFailed when the
// budget runs out, in which case the caller must not move the data.
func (r *Rank) retryTransfer(kind string) (float64, error) {
	rt := r.rt
	inj := rt.cfg.Faults
	if inj == nil {
		return 0, nil
	}
	var extra float64
	backoff := rt.cfg.TransferBackoff
	for attempt := 1; ; attempt++ {
		if !inj.TransferFault(r.ID) {
			return extra, nil
		}
		rt.Stats.TransferRetries.Add(1)
		rt.traceFault(int32(r.ID), "fault:transfer-retry", fmt.Sprintf("%s attempt=%d", kind, attempt))
		if attempt >= rt.cfg.TransferAttempts {
			rt.Stats.TransferFailures.Add(1)
			rt.traceFault(int32(r.ID), "fault:transfer-timeout", kind)
			return extra, fmt.Errorf("%s: %w", kind, ErrTransferFailed)
		}
		extra += backoff
		backoff *= 2
	}
}

// Rget copies Len elements from a (possibly remote) source into local host
// memory — upcxx::rget, the one-sided pull of Fig. 4 step 5. Transient
// injected faults are retried internally; a future with a non-nil Err means
// the destination was not written.
func (r *Rank) Rget(src GlobalPtr, dst []float64) Future {
	if len(dst) != src.Len() {
		panic(fmt.Sprintf("upcxx: Rget length mismatch %d vs %d", len(dst), src.Len()))
	}
	r.rt.Stats.Rgets.Add(1)
	extra, err := r.retryTransfer("rget")
	if extra > 0 {
		r.Charge(extra)
	}
	if err != nil {
		return Future{seconds: extra, err: err}
	}
	copy(dst, src.Data)
	same := src.Rank == int32(r.ID)
	p := r.rt.net.Classify(src.Kind, simnet.Host, same, r.sameNode(src.Rank))
	bytes := int64(len(dst)) * r.rt.cfg.elemBytes()
	sec := extra + r.account(p, bytes, r.sameNode(src.Rank))
	r.rt.met.rgetBytes.Observe(float64(bytes))
	r.rt.met.rgetSeconds.Observe(sec)
	return Future{seconds: sec}
}

// Rput copies local host data into a (possibly remote) destination —
// upcxx::rput. Retry semantics match Rget.
func (r *Rank) Rput(src []float64, dst GlobalPtr) Future {
	if len(src) != dst.Len() {
		panic(fmt.Sprintf("upcxx: Rput length mismatch %d vs %d", len(src), dst.Len()))
	}
	r.rt.Stats.Rputs.Add(1)
	extra, err := r.retryTransfer("rput")
	if extra > 0 {
		r.Charge(extra)
	}
	if err != nil {
		return Future{seconds: extra, err: err}
	}
	copy(dst.Data, src)
	same := dst.Rank == int32(r.ID)
	p := r.rt.net.Classify(simnet.Host, dst.Kind, same, r.sameNode(dst.Rank))
	return Future{seconds: extra + r.account(p, int64(len(src))*r.rt.cfg.elemBytes(), r.sameNode(dst.Rank))}
}

// Copy moves data between any two global pointers regardless of kind or
// affinity — upcxx::copy(), the memory-kinds workhorse (§4.1). With GDR
// enabled a host→remote-device copy is zero-copy; without it the transfer
// stages through host memory, exactly the difference Fig. 5 measures.
// Retry semantics match Rget.
func (r *Rank) Copy(src, dst GlobalPtr) Future {
	if src.Len() != dst.Len() {
		panic(fmt.Sprintf("upcxx: Copy length mismatch %d vs %d", src.Len(), dst.Len()))
	}
	r.rt.Stats.Copies.Add(1)
	extra, err := r.retryTransfer("copy")
	if extra > 0 {
		r.Charge(extra)
	}
	if err != nil {
		return Future{seconds: extra, err: err}
	}
	copy(dst.Data, src.Data)
	same := src.Rank == dst.Rank
	sameNode := r.rt.Node(int(src.Rank)) == r.rt.Node(int(dst.Rank))
	var p simnet.Path
	if same {
		if src.Kind != dst.Kind {
			// Host↔device within one process: PCIe copy.
			dt := r.rt.cfg.Machine.HostDeviceCopyTime(int64(src.Len()) * r.rt.cfg.elemBytes())
			r.Charge(dt)
			return Future{seconds: extra + dt}
		}
		p = simnet.PathLocal
	} else {
		p = r.rt.net.Classify(src.Kind, dst.Kind, false, sameNode)
	}
	return Future{seconds: extra + r.account(p, int64(src.Len())*r.rt.cfg.elemBytes(), sameNode)}
}

func (r *Rank) sameNode(other int32) bool {
	return r.rt.Node(r.ID) == r.rt.Node(int(other))
}

// -------------------------------------------------------------- barrier ----

type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	gen     int
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(rt *Runtime) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	return nil
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
