package upcxx

import (
	"strconv"

	"sympack/internal/metrics"
	"sympack/internal/simnet"
)

// rtMetrics bundles the runtime's live series — the ones updated on hot
// paths, where a handle dereference plus one atomic is the whole cost.
// Histograms observe only modeled seconds and payload sizes, never wall
// time, per the metrics package determinism contract.
type rtMetrics struct {
	progressIters   *metrics.Counter
	signalsReceived *metrics.Counter
	rgetBytes       *metrics.Histogram
	rgetSeconds     *metrics.Histogram
}

func newRTMetrics(reg *metrics.Registry) *rtMetrics {
	return &rtMetrics{
		progressIters: reg.Counter("sympack_upcxx_progress_iterations_total",
			"Progress() calls across all ranks"),
		signalsReceived: reg.Counter("sympack_upcxx_signals_received_total",
			"RPC handlers executed by Progress() across all ranks"),
		rgetBytes: reg.Histogram("sympack_upcxx_rma_get_bytes",
			"payload size of successful one-sided gets", metrics.BytesBuckets()),
		rgetSeconds: reg.Histogram("sympack_upcxx_rma_get_seconds",
			"modeled duration of successful one-sided gets (retry backoff included)",
			metrics.SecondsBuckets()),
	}
}

// Metrics returns the runtime's live registry: progress-loop and
// signal-delivery counters plus the RMA get histograms. It is job-wide
// (all ranks share it), so it needs no cross-rank reduction.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.reg }

// ExportStats projects the runtime's atomic Stats counters, per-path
// transfer tallies and device state into reg as metric series. Callers
// pass a fresh registry (or one that does not yet hold these families) at
// gather time so repeated exports never double-count.
func (rt *Runtime) ExportStats(reg *metrics.Registry) {
	count := func(name, help string, v int64) {
		reg.Counter(name, help).Add(float64(v))
	}
	s := &rt.Stats
	count("sympack_upcxx_signals_sent_total", "RPC notifications issued (paper Fig. 4 step 1)", s.RPCs.Load())
	count("sympack_upcxx_rma_gets_total", "one-sided gets issued", s.Rgets.Load())
	count("sympack_upcxx_rma_puts_total", "one-sided puts issued", s.Rputs.Load())
	count("sympack_upcxx_rma_copies_total", "memory-kinds copies issued", s.Copies.Load())
	count("sympack_upcxx_rpcs_dropped_abort_total", "RPCs discarded because the job was aborting", s.Dropped.Load())
	count("sympack_upcxx_signals_dropped_total", "RPCs discarded by the fault injector", s.DroppedSignals.Load())
	count("sympack_upcxx_signals_duplicated_total", "RPCs delivered twice by the fault injector", s.DupSignals.Load())
	count("sympack_upcxx_signals_delayed_total", "RPCs deferred by injected progress-tick delays", s.DelayedSignals.Load())
	count("sympack_upcxx_transfer_retries_total", "transfer attempts that failed and retried", s.TransferRetries.Load())
	count("sympack_upcxx_transfer_failures_total", "transfers whose retry budget ran out", s.TransferFailures.Load())
	count("sympack_upcxx_rank_stalls_total", "injected rank-stall windows", s.Stalls.Load())
	count("sympack_upcxx_rerequests_total", "consumer re-requests for lost signals", s.ReRequests.Load())
	count("sympack_upcxx_redeliveries_total", "producer re-announcements of done blocks", s.Redeliveries.Load())
	for p := 0; p < len(s.ByPath); p++ {
		path := simnet.Path(p).String()
		reg.Counter("sympack_upcxx_path_transfers_total",
			"transfers per memory-kinds path", "path", path).Add(float64(s.ByPath[p].Load()))
		reg.Counter("sympack_upcxx_path_bytes_total",
			"bytes moved per memory-kinds path", "path", path).Add(float64(s.Bytes[p].Load()))
	}
	for _, d := range rt.devices {
		id := strconv.Itoa(d.ID)
		reg.Gauge("sympack_gpu_mem_used_elements",
			"current device memory use in float64 elements", metrics.MergeMax, "device", id).
			Set(float64(d.Used()))
		reg.Counter("sympack_gpu_busy_seconds_total",
			"accumulated modeled kernel seconds per device", "device", id).Add(d.BusySeconds())
		failed := 0.0
		if d.Failed() {
			failed = 1
		}
		reg.Gauge("sympack_gpu_device_failed",
			"1 once the device has gone permanently bad", metrics.MergeMax, "device", id).Set(failed)
	}
}

// ReduceSnapshot element-wise reduces a per-rank snapshot across all
// ranks — counters, histogram buckets and sum-mode gauges add, max-mode
// gauges take the maximum — and returns the merged view to every rank.
// It is a collective: all ranks must call it with snapshots of
// identically registered metrics (same series, same order), which holds
// whenever every rank registers the same instrumentation bundle.
func (r *Rank) ReduceSnapshot(snap metrics.Snapshot) (metrics.Snapshot, error) {
	sum, max := snap.Vectors()
	if err := r.AllReduce(OpSum, sum); err != nil {
		return metrics.Snapshot{}, err
	}
	if err := r.AllReduce(OpMax, max); err != nil {
		return metrics.Snapshot{}, err
	}
	return snap.FromVectors(sum, max)
}
