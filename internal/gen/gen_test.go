package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sympack/internal/blas"
	"sympack/internal/matrix"
)

// isSPDDense checks positive definiteness by dense Cholesky; only usable for
// small n.
func isSPDDense(t *testing.T, s *matrix.SparseSym) bool {
	t.Helper()
	if s.N > 400 {
		t.Fatalf("isSPDDense called with n=%d", s.N)
	}
	d := s.Dense()
	return blas.Potrf(blas.Lower, s.N, d, s.N) == nil
}

func TestLaplace2DStructure(t *testing.T) {
	s := Laplace2D(4, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N != 12 {
		t.Fatalf("n = %d, want 12", s.N)
	}
	// Interior node degree 4, corner degree 2.
	if got := s.At(0, 0); got != 3 { // corner: 1 + 2 edges
		t.Fatalf("corner diagonal = %g, want 3", got)
	}
	if got := s.At(5, 5); got != 5 { // interior of 4x3: 1 + 4 edges
		t.Fatalf("interior diagonal = %g, want 5", got)
	}
	if got := s.At(1, 0); got != -1 {
		t.Fatalf("coupling = %g, want -1", got)
	}
	if !isSPDDense(t, s) {
		t.Fatal("Laplace2D not SPD")
	}
}

func TestLaplace3DStructure(t *testing.T) {
	s := Laplace3D(3, 3, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N != 27 {
		t.Fatalf("n = %d, want 27", s.N)
	}
	// Center node has 6 neighbors.
	if got := s.At(13, 13); got != 7 {
		t.Fatalf("center diagonal = %g, want 7", got)
	}
	if !isSPDDense(t, s) {
		t.Fatal("Laplace3D not SPD")
	}
}

func TestFlan3DIsSPDAndDense(t *testing.T) {
	s := Flan3D(3, 3, 3, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N != 81 {
		t.Fatalf("n = %d, want 81 (3 dof × 27 nodes)", s.N)
	}
	if !isSPDDense(t, s) {
		t.Fatal("Flan3D not SPD")
	}
	// High connectivity: nnz/row well above the 7-point stencil's.
	perRow := float64(s.NnzFull()) / float64(s.N)
	if perRow < 15 {
		t.Fatalf("Flan3D nnz/row = %.1f, want dense-ish (>15)", perRow)
	}
}

func TestFlan3DDeterministic(t *testing.T) {
	a := Flan3D(3, 3, 2, 7)
	b := Flan3D(3, 3, 2, 7)
	if a.Nnz() != b.Nnz() {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("same seed produced different values")
		}
	}
	c := Flan3D(3, 3, 2, 8)
	same := a.Nnz() == c.Nnz()
	if same {
		for i := range a.Val {
			if a.Val[i] != c.Val[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestBone3DPorosity(t *testing.T) {
	full := Bone3D(8, 8, 8, 0, 3)
	porous := Bone3D(8, 8, 8, 0.4, 3)
	if porous.N >= full.N {
		t.Fatalf("porosity did not remove nodes: %d vs %d", porous.N, full.N)
	}
	if porous.N < 100 { // ~60% of 512
		t.Fatalf("porosity removed too many nodes: %d", porous.N)
	}
	if err := porous.Validate(); err != nil {
		t.Fatal(err)
	}
	small := Bone3D(5, 5, 5, 0.4, 3)
	if !isSPDDense(t, small) {
		t.Fatal("Bone3D not SPD")
	}
}

func TestBone3DExtremePorosity(t *testing.T) {
	s := Bone3D(4, 4, 4, 1.0, 1)
	if s.N < 1 {
		t.Fatal("degenerate porosity must leave at least one node")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThermal2DSparsity(t *testing.T) {
	s := Thermal2D(32, 32, 6, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N >= 32*32 {
		t.Fatal("voids did not remove nodes")
	}
	perRow := float64(s.NnzFull()) / float64(s.N)
	if perRow > 6 {
		t.Fatalf("Thermal2D nnz/row = %.1f, want very sparse (≤6)", perRow)
	}
	small := Thermal2D(12, 12, 3, 4)
	if !isSPDDense(t, small) {
		t.Fatal("Thermal2D not SPD")
	}
}

func TestRandomSPD(t *testing.T) {
	s := RandomSPD(30, 0.2, 5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !isSPDDense(t, s) {
		t.Fatal("RandomSPD not SPD")
	}
}

func TestTable1Problems(t *testing.T) {
	probs := Table1Problems()
	if len(probs) != 3 {
		t.Fatalf("want 3 problems, got %d", len(probs))
	}
	names := map[string]bool{}
	for _, p := range probs {
		m := p.Build(1)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := StatsOf(p.Name, p.Description, m)
		if st.N != m.N || st.Nnz != m.NnzFull() {
			t.Fatalf("%s: bad stats", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"Flan_1565", "boneS10", "thermal2"} {
		if !names[want] {
			t.Fatalf("missing problem %s", want)
		}
	}
}

// Table 1 regime check: the Flan analogue must be the densest per row and
// the thermal analogue the sparsest, matching the originals' character.
func TestTable1StructuralRegimes(t *testing.T) {
	probs := Table1Problems()
	per := map[string]float64{}
	for _, p := range probs {
		m := p.Build(2)
		per[p.Name] = float64(m.NnzFull()) / float64(m.N)
	}
	if !(per["Flan_1565"] > per["boneS10"] && per["boneS10"] > per["thermal2"]) {
		t.Fatalf("density ordering wrong: %v", per)
	}
}

// Property: every generator output is SPD (diagonal dominance ⇒ dense Potrf
// succeeds) for random small shapes.
func TestGeneratorsSPDProperty(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		nx, ny := int(a%5)+2, int(b%5)+2
		mats := []*matrix.SparseSym{
			Laplace2D(nx, ny),
			Thermal2D(nx*3, ny*3, 2, seed),
			Bone3D(nx, ny, 3, 0.3, seed),
			RandomSPD(nx*ny, 0.3, seed),
		}
		for _, m := range mats {
			if m.Validate() != nil {
				return false
			}
			if m.N <= 200 {
				d := m.Dense()
				if blas.Potrf(blas.Lower, m.N, d, m.N) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
