// Package gen synthesizes the test problems used in the paper's evaluation.
//
// The paper measures three SuiteSparse matrices (Table 1): Flan_1565 (a 3D
// steel-flange elasticity model, n=1.56M), boneS10 (3D trabecular bone,
// n=915k) and thermal2 (steady-state thermal, n=1.23M, unusually sparse and
// irregular). Those files are proprietary-by-inconvenience here (no network),
// so this package generates scaled-down matrices in the same structural
// regimes:
//
//   - Flan3D:    3D hexahedral mesh with 3 dof per node and 27-point nodal
//     connectivity — large dense supernodes, high nnz/row (like Flan_1565's
//     ~73 nnz/row).
//   - Bone3D:    3D grid with random porosity (cells knocked out) — an
//     irregular 3D structure like trabecular bone.
//   - Thermal2D: 5-point stencil on a 2D domain with voids — very high
//     sparsity and thin supernodes (thermal2 has ~7 nnz/row).
//
// All generators emit symmetric positive definite matrices by construction
// (strict diagonal dominance with positive diagonal), so every generated
// problem can be factored and solved in tests and benchmarks.
package gen

import (
	"math/rand"

	"sympack/internal/matrix"
)

// edge is an undirected graph edge with a coupling weight.
type edge struct {
	u, v int
	w    float64
}

// assembleSPD builds a symmetric strictly-diagonally-dominant matrix from an
// edge list: off-diagonal (u,v) gets -w, and each diagonal gets
// 1 + Σ|incident weights|. The result is SPD (Gershgorin).
func assembleSPD(n int, edges []edge) *matrix.SparseSym {
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 1
	}
	coo := matrix.NewCOO(n)
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		coo.Add(e.u, e.v, -e.w)
		diag[e.u] += e.w
		diag[e.v] += e.w
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, diag[i])
	}
	s, err := coo.ToSym()
	if err != nil {
		// assembleSPD is only called with in-range indices; a failure
		// here is a generator bug.
		panic(err)
	}
	return s
}

// Laplace2D returns the standard 5-point Laplacian on an nx×ny grid with a
// unit diagonal shift: the canonical well-understood test problem.
func Laplace2D(nx, ny int) *matrix.SparseSym {
	idx := func(i, j int) int { return i + j*nx }
	var edges []edge
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				edges = append(edges, edge{idx(i, j), idx(i+1, j), 1})
			}
			if j+1 < ny {
				edges = append(edges, edge{idx(i, j), idx(i, j+1), 1})
			}
		}
	}
	return assembleSPD(nx*ny, edges)
}

// Laplace3D returns the 7-point Laplacian on an nx×ny×nz grid.
func Laplace3D(nx, ny, nz int) *matrix.SparseSym {
	idx := func(i, j, k int) int { return i + nx*(j+ny*k) }
	var edges []edge
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if i+1 < nx {
					edges = append(edges, edge{idx(i, j, k), idx(i+1, j, k), 1})
				}
				if j+1 < ny {
					edges = append(edges, edge{idx(i, j, k), idx(i, j+1, k), 1})
				}
				if k+1 < nz {
					edges = append(edges, edge{idx(i, j, k), idx(i, j, k+1), 1})
				}
			}
		}
	}
	return assembleSPD(nx*ny*nz, edges)
}

// Flan3D generates a Flan_1565-like 3D elasticity problem: an nx×ny×nz node
// mesh with 3 degrees of freedom per node and 27-point connectivity; every
// pair of neighboring nodes couples all 3×3 dof combinations. The resulting
// matrix has n = 3·nx·ny·nz rows and a high nnz/row, which is what produces
// the large dense supernodes that make GPU offload profitable.
func Flan3D(nx, ny, nz int, seed int64) *matrix.SparseSym {
	rng := rand.New(rand.NewSource(seed))
	nodes := nx * ny * nz
	nid := func(i, j, k int) int { return i + nx*(j+ny*k) }
	var edges []edge
	addCoupling := func(a, b int) {
		// Couple all dof pairs of the two nodes, including cross terms.
		for da := 0; da < 3; da++ {
			for db := 0; db < 3; db++ {
				w := 0.5 + rng.Float64()
				if da != db {
					w *= 0.25 // weaker shear coupling
				}
				edges = append(edges, edge{3*a + da, 3*b + db, w})
			}
		}
		// Intra-node dof coupling on node a (added once per neighbor pass
		// is fine: weights just accumulate into dominance).
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				a := nid(i, j, k)
				// 27-point: half the neighbor offsets to avoid duplicates.
				for dk := 0; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							if dk == 0 && (dj < 0 || (dj == 0 && di <= 0)) {
								continue
							}
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
								continue
							}
							addCoupling(a, nid(ii, jj, kk))
						}
					}
				}
				// Intra-node dof block.
				for da := 0; da < 3; da++ {
					for db := da + 1; db < 3; db++ {
						edges = append(edges, edge{3*a + da, 3*a + db, 0.1 + 0.1*rng.Float64()})
					}
				}
			}
		}
	}
	return assembleSPD(3*nodes, edges)
}

// Bone3D generates a boneS10-like porous 3D structure: an nx×ny×nz grid from
// which a `porosity` fraction of nodes is removed (trabecular voids), the
// remainder renumbered compactly and connected by 7-point (face-neighbor)
// plus a sprinkling of diagonal couplings. The surviving structure is
// irregular, which stresses supernode detection and load balance.
func Bone3D(nx, ny, nz int, porosity float64, seed int64) *matrix.SparseSym {
	rng := rand.New(rand.NewSource(seed))
	total := nx * ny * nz
	keep := make([]bool, total)
	id := make([]int, total)
	n := 0
	for v := 0; v < total; v++ {
		if rng.Float64() >= porosity {
			keep[v] = true
			id[v] = n
			n++
		}
	}
	if n == 0 { // degenerate porosity: keep one node
		keep[0] = true
		id[0] = 0
		n = 1
	}
	idx := func(i, j, k int) int { return i + nx*(j+ny*k) }
	var edges []edge
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				a := idx(i, j, k)
				if !keep[a] {
					continue
				}
				type off struct{ di, dj, dk int }
				offs := []off{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}
				for _, o := range offs {
					ii, jj, kk := i+o.di, j+o.dj, k+o.dk
					if ii >= nx || jj >= ny || kk >= nz {
						continue
					}
					b := idx(ii, jj, kk)
					if !keep[b] {
						continue
					}
					// Diagonal couplings appear with lower probability,
					// mimicking partially connected trabeculae.
					isDiag := o.di+o.dj+o.dk > 1
					if isDiag && rng.Float64() > 0.35 {
						continue
					}
					edges = append(edges, edge{id[a], id[b], 0.5 + rng.Float64()})
				}
			}
		}
	}
	return assembleSPD(n, edges)
}

// Thermal2D generates a thermal2-like problem: a 5-point conduction stencil
// on an nx×ny plate with elliptical voids cut out, yielding a very sparse,
// irregular matrix (≈7 nnz/row like thermal2) whose thin supernodes keep
// most BLAS calls below GPU offload thresholds.
func Thermal2D(nx, ny int, voids int, seed int64) *matrix.SparseSym {
	rng := rand.New(rand.NewSource(seed))
	keep := make([]bool, nx*ny)
	for i := range keep {
		keep[i] = true
	}
	for v := 0; v < voids; v++ {
		cx, cy := rng.Float64()*float64(nx), rng.Float64()*float64(ny)
		rx := 1 + rng.Float64()*float64(nx)/12
		ry := 1 + rng.Float64()*float64(ny)/12
		x0, x1 := int(cx-rx), int(cx+rx)+1
		y0, y1 := int(cy-ry), int(cy+ry)+1
		for j := max(0, y0); j < min(ny, y1); j++ {
			for i := max(0, x0); i < min(nx, x1); i++ {
				dx := (float64(i) - cx) / rx
				dy := (float64(j) - cy) / ry
				if dx*dx+dy*dy <= 1 {
					keep[i+j*nx] = false
				}
			}
		}
	}
	id := make([]int, nx*ny)
	n := 0
	for v, k := range keep {
		if k {
			id[v] = n
			n++
		}
	}
	if n == 0 {
		keep[0] = true
		id[0] = 0
		n = 1
	}
	var edges []edge
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a := i + j*nx
			if !keep[a] {
				continue
			}
			if i+1 < nx && keep[a+1] {
				edges = append(edges, edge{id[a], id[a+1], 0.5 + rng.Float64()})
			}
			if j+1 < ny && keep[a+nx] {
				edges = append(edges, edge{id[a], id[a+nx], 0.5 + rng.Float64()})
			}
		}
	}
	return assembleSPD(n, edges)
}

// RandomSPD returns an n×n SPD matrix with approximately `density` fraction
// of the strict lower triangle populated; used by property-based tests.
func RandomSPD(n int, density float64, seed int64) *matrix.SparseSym {
	rng := rand.New(rand.NewSource(seed))
	var edges []edge
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if rng.Float64() < density {
				edges = append(edges, edge{i, j, 0.1 + rng.Float64()})
			}
		}
	}
	return assembleSPD(n, edges)
}

// Stats describes a generated matrix in the paper's Table 1 format.
type Stats struct {
	Name        string
	Description string
	N           int
	Nnz         int // full-matrix count, as in Table 1
}

// Table1Problem identifies one of the paper's three evaluation matrices.
type Table1Problem struct {
	Name        string
	Description string
	Build       func(scale int) *matrix.SparseSym
}

// Table1Problems returns generators for the three evaluation matrices at a
// given integer scale (≥1). Scale 1 is sized for CI-speed tests; larger
// scales approach the structural regime of the originals.
func Table1Problems() []Table1Problem {
	return []Table1Problem{
		{
			Name:        "Flan_1565",
			Description: "3D model of a steel flange (synthetic analogue)",
			Build: func(scale int) *matrix.SparseSym {
				s := 4 + 2*scale
				return Flan3D(s, s, s, 1565)
			},
		},
		{
			Name:        "boneS10",
			Description: "3D trabecular bone (synthetic analogue)",
			Build: func(scale int) *matrix.SparseSym {
				s := 6 + 3*scale
				return Bone3D(s, s, s, 0.35, 10)
			},
		},
		{
			Name:        "thermal2",
			Description: "steady state thermal (synthetic analogue)",
			Build: func(scale int) *matrix.SparseSym {
				s := 16 + 8*scale
				return Thermal2D(s, s, s/4, 2)
			},
		},
	}
}

// StatsOf computes Table 1 statistics for a matrix.
func StatsOf(name, desc string, m *matrix.SparseSym) Stats {
	return Stats{Name: name, Description: desc, N: m.N, Nnz: m.NnzFull()}
}
