// Package baseline implements the comparison solver of the paper's
// evaluation (§5.3): a right-looking supernodal Cholesky in the PaStiX
// mold. Where symPACK (internal/core) schedules block tasks dynamically and
// communicates with one-sided notifications, the baseline sweeps supernodes
// left to right, eagerly pushing each factored panel's updates into the
// trailing matrix — the classic right-looking discipline. The numeric code
// here is a second, independently structured implementation of the same
// factorization, which the tests use to cross-validate internal/core; its
// distributed-memory performance personality (two-sided rendezvous
// messaging, host-staged GPU copies, level-synchronized scheduling) lives
// in internal/des.
package baseline

import (
	"fmt"

	"sympack/internal/blas"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

// Options configures the baseline factorization.
type Options struct {
	Ordering ordering.Kind
	Symbolic *symbolic.Options
}

// Factor holds a completed baseline factorization, storing each supernode
// as one dense trapezoid (PaStiX's column-block layout) rather than
// symPACK's per-block storage.
type Factor struct {
	St *symbolic.Structure
	// Panels[k] is supernode k's dense storage, column-major,
	// ld = NRows(k).
	Panels [][]float64
}

// Factorize computes the right-looking supernodal factorization.
func Factorize(a *matrix.SparseSym, opt Options) (*Factor, error) {
	if opt.Ordering == 0 {
		opt.Ordering = ordering.NestedDissection
	}
	if opt.Symbolic == nil {
		s := symbolic.DefaultOptions()
		opt.Symbolic = &s
	}
	st, pa, err := symbolic.Analyze(a, opt.Ordering, *opt.Symbolic)
	if err != nil {
		return nil, err
	}
	return FactorizeAnalyzed(st, pa)
}

// FactorizeAnalyzed factors with an existing symbolic analysis (pa is the
// permuted matrix from symbolic.Analyze).
func FactorizeAnalyzed(st *symbolic.Structure, pa *matrix.SparseSym) (*Factor, error) {
	f := &Factor{St: st, Panels: make([][]float64, st.NumSupernodes())}
	// Allocate and assemble panels.
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		f.Panels[k] = make([]float64, sn.NRows()*sn.NCols())
	}
	for j := 0; j < pa.N; j++ {
		k := st.SnOf[j]
		sn := &st.Snodes[k]
		ld := sn.NRows()
		col := int(int32(j) - sn.FirstCol)
		for p := pa.ColPtr[j]; p < pa.ColPtr[j+1]; p++ {
			r := pa.RowInd[p]
			pos := rowPos(sn.Rows, r)
			if pos < 0 {
				return nil, fmt.Errorf("baseline: entry (%d,%d) outside structure", r, j)
			}
			f.Panels[k][pos+col*ld] = pa.Val[p]
		}
	}
	// Right-looking sweep.
	for k := range st.Snodes {
		if err := f.factorPanel(int32(k)); err != nil {
			return nil, err
		}
		f.updateTrailing(int32(k))
	}
	return f, nil
}

// rowPos locates global row r in a sorted row list, -1 if absent.
func rowPos(rows []int32, r int32) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(rows) || rows[lo] != r {
		return -1
	}
	return lo
}

// factorPanel runs POTRF on the diagonal block and TRSM on the subdiagonal
// part of supernode k, in place.
func (f *Factor) factorPanel(k int32) error {
	sn := &f.St.Snodes[k]
	nc := sn.NCols()
	nr := sn.NRows()
	panel := f.Panels[k]
	if err := blas.Potrf(blas.Lower, nc, panel, nr); err != nil {
		return fmt.Errorf("baseline: supernode %d: %w", k, err)
	}
	if nr > nc {
		blas.Trsm(blas.Right, blas.Lower, blas.Transpose, nr-nc, nc, 1, panel, nr, panel[nc:], nr)
	}
	return nil
}

// updateTrailing applies supernode k's outer-product updates to every
// ancestor supernode it touches — the "look to the right" of §2.3.
func (f *Factor) updateTrailing(k int32) {
	st := f.St
	sn := &st.Snodes[k]
	nc := sn.NCols()
	nr := sn.NRows()
	if nr == nc {
		return
	}
	panel := f.Panels[k]
	below := sn.Rows[nc:] // off-diagonal rows
	sub := panel[nc:]     // subdiagonal panel, ld = nr
	// Scratch for the full outer product W = sub·subᵀ (lower triangle).
	m := nr - nc
	w := make([]float64, m*m)
	blas.Syrk(blas.Lower, blas.NoTrans, m, nc, 1, sub, nr, 0, w, m)
	// Scatter W into ancestor panels: entry (x, y) of W updates global
	// (below[x], below[y]), x ≥ y, which lives in the panel of the
	// supernode owning column below[y].
	for y := 0; y < m; y++ {
		colG := below[y]
		t := st.SnOf[colG]
		tsn := &st.Snodes[t]
		ld := tsn.NRows()
		colL := int(colG - tsn.FirstCol)
		tp := f.Panels[t]
		for x := y; x < m; x++ {
			pos := rowPos(tsn.Rows, below[x])
			if pos < 0 {
				panic("baseline: fill row missing from ancestor structure")
			}
			tp[pos+colL*ld] -= w[x+y*m]
		}
	}
}

// L returns the factor entry at permuted position (i, j), 0 when outside
// the structure.
func (f *Factor) L(i, j int32) float64 {
	if i < j {
		return 0
	}
	st := f.St
	k := st.SnOf[j]
	sn := &st.Snodes[k]
	pos := rowPos(sn.Rows, i)
	if pos < 0 {
		return 0
	}
	return f.Panels[k][pos+int(j-sn.FirstCol)*sn.NRows()]
}

// Solve solves A·x = b (original ordering) using the factor.
func (f *Factor) Solve(b []float64) ([]float64, error) {
	st := f.St
	n := st.N
	if len(b) != n {
		return nil, fmt.Errorf("baseline: rhs length %d, want %d", len(b), n)
	}
	y := make([]float64, n)
	for kk := 0; kk < n; kk++ {
		y[kk] = b[st.Perm[kk]]
	}
	// Forward.
	for k := 0; k < st.NumSupernodes(); k++ {
		sn := &st.Snodes[k]
		nc, nr := sn.NCols(), sn.NRows()
		panel := f.Panels[k]
		yk := y[sn.FirstCol : int(sn.FirstCol)+nc]
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, nc, 1, 1, panel, nr, yk, nc)
		for c := 0; c < nc; c++ {
			t := yk[c]
			if t == 0 {
				continue
			}
			col := panel[c*nr : c*nr+nr]
			for x := nc; x < nr; x++ {
				y[sn.Rows[x]] -= col[x] * t
			}
		}
	}
	// Backward.
	for k := st.NumSupernodes() - 1; k >= 0; k-- {
		sn := &st.Snodes[k]
		nc, nr := sn.NCols(), sn.NRows()
		panel := f.Panels[k]
		yk := y[sn.FirstCol : int(sn.FirstCol)+nc]
		for c := 0; c < nc; c++ {
			col := panel[c*nr : c*nr+nr]
			var s float64
			for x := nc; x < nr; x++ {
				s += col[x] * y[sn.Rows[x]]
			}
			yk[c] -= s
		}
		blas.Trsm(blas.Left, blas.Lower, blas.Transpose, nc, 1, 1, panel, nr, yk, nc)
	}
	x := make([]float64, n)
	for kk := 0; kk < n; kk++ {
		x[st.Perm[kk]] = y[kk]
	}
	return x, nil
}
