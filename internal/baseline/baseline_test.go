package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sympack/internal/core"
	"sympack/internal/gen"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

func problems() map[string]*matrix.SparseSym {
	return map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(9, 8),
		"laplace3d": gen.Laplace3D(4, 3, 3),
		"flan":      gen.Flan3D(2, 2, 2, 1),
		"thermal":   gen.Thermal2D(11, 11, 2, 3),
		"random":    gen.RandomSPD(40, 0.12, 4),
		"dense":     gen.RandomSPD(15, 1.0, 5),
		"tiny":      gen.Laplace2D(1, 1),
	}
}

func TestBaselineSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, a := range problems() {
		f, err := Factorize(a, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		xT := make([]float64, a.N)
		for i := range xT {
			xT[i] = rng.NormFloat64()
		}
		b := a.MulVec(xT)
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := core.ResidualNorm(a, x, b); r > 1e-10 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

// Cross-validation: the right-looking baseline and the fan-out solver are
// independent implementations; with identical orderings their factors must
// agree entry for entry.
func TestBaselineMatchesCore(t *testing.T) {
	for name, a := range problems() {
		bf, err := Factorize(a, Options{Ordering: ordering.NestedDissection})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cf, err := core.Factorize(a, core.Options{Ranks: 3, Ordering: ordering.NestedDissection})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := int32(a.N)
		for j := int32(0); j < n; j++ {
			for i := j; i < n; i++ {
				if d := math.Abs(bf.L(i, j) - cf.L(i, j)); d > 1e-9 {
					t.Fatalf("%s: L(%d,%d) differs by %g (baseline %g vs core %g)",
						name, i, j, d, bf.L(i, j), cf.L(i, j))
				}
			}
		}
	}
}

func TestBaselineNotPositiveDefinite(t *testing.T) {
	coo := matrix.NewCOO(3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(2, 2, 1)
	coo.Add(1, 0, 4)
	a, _ := coo.ToSym()
	if _, err := Factorize(a, Options{}); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestBaselineRHSLengthError(t *testing.T) {
	a := gen.Laplace2D(4, 4)
	f, err := Factorize(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

// Property: baseline solves random SPD systems across orderings.
func TestBaselineProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8, ordPick uint8) bool {
		n := int(nRaw%25) + 1
		a := gen.RandomSPD(n, float64(dRaw%10)/15, seed)
		ords := []ordering.Kind{ordering.Natural, ordering.MinDegree, ordering.NestedDissection}
		fac, err := Factorize(a, Options{Ordering: ords[int(ordPick)%len(ords)]})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		xT := make([]float64, n)
		for i := range xT {
			xT[i] = rng.NormFloat64()
		}
		b := a.MulVec(xT)
		x, err := fac.Solve(b)
		if err != nil {
			return false
		}
		return core.ResidualNorm(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
