package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRunReportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sympack_core_tasks_total", "tasks", "op", "POTRF", "target", "cpu").Add(42)
	r.Histogram("sympack_core_task_seconds", "seconds", []float64{1e-6, 1e-3}).Observe(1e-4)
	rep := &RunReport{
		Command:      "sympack2d",
		Timestamp:    "2026-08-05T00:00:00Z",
		Matrix:       "laplace2d:64",
		N:            4096,
		Nnz:          20224,
		Ranks:        4,
		Workers:      2,
		WallSeconds:  0.5,
		ModelSeconds: 0.01,
		GFlops:       12.5,
		Metrics:      r.Snapshot().Series,
		Figures: []Figure{{
			Name:  "fig7",
			Phase: "factor",
			Points: []Point{
				{Nodes: 1, Seconds: 2.0, Baseline: 2.0},
				{Nodes: 4, Seconds: 0.6},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteRunReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != ReportSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
	if back.Matrix != rep.Matrix || back.Ranks != 4 || back.GFlops != 12.5 {
		t.Fatalf("fields lost: %+v", back)
	}
	if len(back.Metrics) != 2 {
		t.Fatalf("metrics = %d series, want 2", len(back.Metrics))
	}
	snap := Snapshot{Series: back.Metrics}
	if got := snap.Value("sympack_core_tasks_total", "POTRF", "cpu"); got != 42 {
		t.Fatalf("round-tripped counter = %v, want 42", got)
	}
	if len(back.Figures) != 1 || len(back.Figures[0].Points) != 2 {
		t.Fatalf("figures lost: %+v", back.Figures)
	}
	// Round-tripped histogram series import cleanly into a registry.
	reg := NewRegistry()
	reg.Import(snap)
	if got := reg.Value("sympack_core_tasks_total", "op", "POTRF", "target", "cpu"); got != 42 {
		t.Fatalf("imported counter = %v, want 42", got)
	}
}

func TestReportFilename(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 30, 45, 0, time.UTC)
	if got := ReportFilename("benchfig", ts); got != "BENCH_benchfig_20260805T123045Z.json" {
		t.Fatalf("filename = %q", got)
	}
}
