package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ReportSchema versions the run-report JSON document.
const ReportSchema = "sympack-run-report/v1"

// RunReport is the machine-readable summary of one solver run: problem
// identity, configuration, headline performance and the full merged
// metric snapshot. Every command writes the same schema
// (BENCH_<cmd>_<ts>.json), so benchmark trajectories accumulate in one
// greppable format across PRs.
type RunReport struct {
	Schema       string   `json:"schema"`
	Command      string   `json:"command"`
	Timestamp    string   `json:"timestamp,omitempty"` // RFC3339, supplied by the caller
	Matrix       string   `json:"matrix,omitempty"`
	N            int      `json:"n,omitempty"`
	Nnz          int64    `json:"nnz,omitempty"`
	Ranks        int      `json:"ranks,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	GPUs         int      `json:"gpus,omitempty"`
	WallSeconds  float64  `json:"wall_seconds,omitempty"`
	ModelSeconds float64  `json:"model_seconds,omitempty"`
	GFlops       float64  `json:"gflops,omitempty"` // factor flops / modeled seconds / 1e9
	Metrics      []Series `json:"metrics,omitempty"`
	Figures      []Figure `json:"figures,omitempty"`
}

// Figure is one benchmark curve — e.g. a strong-scaling series from
// cmd/benchfig reproducing Figs. 7–12.
type Figure struct {
	Name   string  `json:"name"`
	Matrix string  `json:"matrix,omitempty"`
	Phase  string  `json:"phase,omitempty"` // "factor" or "solve"
	Points []Point `json:"points"`
}

// Point is one (node count, modeled seconds) sample of a scaling curve.
// Iterative-solve figures additionally record the Krylov iteration count
// behind the time-to-solution (absent — zero — on direct-solver curves).
type Point struct {
	Nodes      int     `json:"nodes"`
	Seconds    float64 `json:"seconds"`
	Baseline   float64 `json:"baseline_seconds,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
}

// WriteRunReport writes the report as indented JSON, defaulting the
// schema field.
func WriteRunReport(w io.Writer, rep *RunReport) error {
	if rep.Schema == "" {
		rep.Schema = ReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReportFilename returns the canonical BENCH_<cmd>_<ts>.json name for a
// report written at t (the caller sources t through the machine wall
// facade or its own clock; this package never reads the clock itself).
func ReportFilename(cmd string, t time.Time) string {
	return fmt.Sprintf("BENCH_%s_%s.json", cmd, t.UTC().Format("20060102T150405Z"))
}
