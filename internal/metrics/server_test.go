package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sympack_live_total", "live counter")
	c.Add(5)
	type health struct {
		Ranks int
		OK    bool
	}
	var ready atomic.Bool
	ready.Store(true)
	srv, err := Serve("127.0.0.1:0", r.Snapshot, func() (any, bool) {
		ok := ready.Load()
		return health{Ranks: 2, OK: ok}, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if ctype != ContentType {
		t.Fatalf("content type = %q", ctype)
	}
	if !strings.Contains(body, "sympack_live_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if _, _, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("endpoint served invalid exposition: %v", err)
	}

	// Scrapes see live values.
	c.Add(2)
	body, _ = get("/metrics")
	if !strings.Contains(body, "sympack_live_total 7") {
		t.Fatalf("second scrape not live:\n%s", body)
	}

	hbody, hctype := get("/healthz")
	if hctype != "application/json" {
		t.Fatalf("healthz content type = %q", hctype)
	}
	var h health
	if err := json.Unmarshal([]byte(hbody), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, hbody)
	}
	if h.Ranks != 2 || !h.OK {
		t.Fatalf("healthz payload = %+v", h)
	}

	// A degraded health source turns /healthz into a 503 with the JSON
	// body intact, and recovery restores 200 — the readiness contract.
	ready.Store(false)
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body503, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status = %d, want 503", resp.StatusCode)
	}
	var hd health
	if err := json.Unmarshal(body503, &hd); err != nil {
		t.Fatalf("degraded healthz body not JSON: %v\n%s", err, body503)
	}
	if hd.OK {
		t.Fatalf("degraded payload = %+v", hd)
	}
	ready.Store(true)
	hbody, _ = get("/healthz")
	if !strings.Contains(hbody, "true") {
		t.Fatalf("recovered healthz = %s", hbody)
	}
}
