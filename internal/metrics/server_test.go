package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sympack_live_total", "live counter")
	c.Add(5)
	type health struct {
		Ranks int
		OK    bool
	}
	srv, err := Serve("127.0.0.1:0", r.Snapshot, func() any { return health{Ranks: 2, OK: true} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if ctype != ContentType {
		t.Fatalf("content type = %q", ctype)
	}
	if !strings.Contains(body, "sympack_live_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if _, _, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("endpoint served invalid exposition: %v", err)
	}

	// Scrapes see live values.
	c.Add(2)
	body, _ = get("/metrics")
	if !strings.Contains(body, "sympack_live_total 7") {
		t.Fatalf("second scrape not live:\n%s", body)
	}

	hbody, hctype := get("/healthz")
	if hctype != "application/json" {
		t.Fatalf("healthz content type = %q", hctype)
	}
	var h health
	if err := json.Unmarshal([]byte(hbody), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, hbody)
	}
	if h.Ranks != 2 || !h.OK {
		t.Fatalf("healthz payload = %+v", h)
	}
}
