package metrics

// IterMetrics is the instrumentation bundle of the iterative-solve
// subsystem (internal/krylov + internal/precond): the sympack_iter_*
// namespace. Like coreMetrics, every series registers eagerly so registries
// holding the bundle expose the full inventory at zero and stay
// layout-identical across runs. Histograms observe deterministic quantities
// only — residual norms, whose bits are identical across worker and rank
// counts by the drivers' fixed reduction order — except the preconditioner
// apply-time series, which is wall-clock by nature and therefore varies run
// to run the way the plain counters do.
type IterMetrics struct {
	// Iterations counts Krylov iterations across solves; MatVecs the
	// operator applications (the comparable cost unit between CG and PCG).
	Iterations *Counter
	MatVecs    *Counter
	// Converged/Breakdowns split solve outcomes: converged within budget
	// vs terminated by an indefiniteness breakdown (ErrIndefinite).
	Converged  *Counter
	Breakdowns *Counter
	// ResidualNorm observes the final relative residual of each solve.
	ResidualNorm *Histogram
	// PrecondApplySeconds observes the wall time of each preconditioner
	// application (the M⁻¹r solve inside PCG).
	PrecondApplySeconds *Histogram
	// RefineSweeps counts iterative-refinement sweeps performed by
	// SolveRefined (the fp32-factor polish loop).
	RefineSweeps *Counter
	// FP32Fallbacks counts factorizations retried in fp64 after an fp32
	// pivot breakdown (the per-kernel demotion counter lives in the core
	// bundle as sympack_iter_fp32_demotions_total).
	FP32Fallbacks *Counter
}

// ResidualBuckets spans relative residuals from machine epsilon to O(1):
// decade buckets 1e-16 … 1e+1.
func ResidualBuckets() []float64 { return ExpBuckets(1e-16, 10, 18) }

// NewIterMetrics registers the iterative-solve bundle on reg (get-or-create:
// safe to call on a registry that already holds the series).
func NewIterMetrics(reg *Registry) *IterMetrics {
	return &IterMetrics{
		Iterations: reg.Counter("sympack_iter_iterations_total",
			"Krylov iterations performed"),
		MatVecs: reg.Counter("sympack_iter_matvecs_total",
			"operator applications performed"),
		Converged: reg.Counter("sympack_iter_converged_total",
			"iterative solves that reached their tolerance"),
		Breakdowns: reg.Counter("sympack_iter_breakdowns_total",
			"iterative solves terminated by an indefiniteness breakdown"),
		ResidualNorm: reg.Histogram("sympack_iter_residual_norm",
			"final relative residual of each iterative solve",
			ResidualBuckets()),
		PrecondApplySeconds: reg.Histogram("sympack_iter_precond_apply_seconds",
			"wall time per preconditioner application",
			SecondsBuckets()),
		RefineSweeps: reg.Counter("sympack_iter_refine_sweeps_total",
			"iterative-refinement sweeps performed by SolveRefined"),
		FP32Fallbacks: reg.Counter("sympack_iter_fp32_fallbacks_total",
			"factorizations retried in fp64 after fp32 pivot breakdown"),
	}
}
