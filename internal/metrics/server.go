package metrics

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
)

// Server is the opt-in observability endpoint: GET /metrics serves the
// gathered snapshot in Prometheus text format, GET /healthz the solver's
// health report as JSON. Both callbacks run per request, so scrapes see
// live values while a factorization is in flight.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve listens on addr (host:port; ":0" picks a free port) and serves
// until Close. gather produces the metric snapshot; health produces any
// JSON-marshalable health payload plus a readiness verdict (nil disables
// /healthz). A false verdict serves the payload with 503 Service
// Unavailable — the real readiness signal load balancers and probes key
// on — instead of the former unconditional 200.
func Serve(addr string, gather func() Snapshot, health func() (any, bool)) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := WriteText(&buf, gather()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", HealthHandler(health))
	s := &Server{lis: lis, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// HealthHandler adapts a health callback into an http.HandlerFunc with the
// /healthz contract described on Serve, so daemons that run their own mux
// (sympackd) expose the identical endpoint.
func HealthHandler(health func() (any, bool)) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			http.Error(w, "no health source", http.StatusNotFound)
			return
		}
		body, ready := health()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	}
}

// Addr returns the bound listen address (resolving ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
