package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// the /metrics endpoint.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText encodes a snapshot in Prometheus text exposition format
// v0.0.4: one # HELP / # TYPE header per family followed by its samples;
// histograms expand to cumulative _bucket{le=...} lines (ending at
// le="+Inf") plus _sum and _count. The snapshot's sorted order makes the
// output byte-deterministic.
func WriteText(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	prev := ""
	for i := range snap.Series {
		se := &snap.Series[i]
		if se.Name != prev {
			prev = se.Name
			if se.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", se.Name, escapeHelp(se.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", se.Name, se.Kind)
		}
		switch se.Kind {
		case "histogram":
			cum := int64(0)
			for b, c := range se.Counts {
				cum += c
				le := "+Inf"
				if b < len(se.Bounds) {
					le = formatValue(se.Bounds[b])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", se.Name, labelString(se.Labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", se.Name, labelString(se.Labels, "", ""), formatValue(se.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", se.Name, labelString(se.Labels, "", ""), cum)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", se.Name, labelString(se.Labels, "", ""), formatValue(se.Value))
		}
	}
	return bw.Flush()
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label); empty label sets render as nothing.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition parses a Prometheus text exposition and checks line
// format: legal metric and label names, quoted/escaped label values,
// parseable sample values, and — for every family declared histogram —
// the presence of the +Inf bucket, _sum and _count. It returns the number
// of distinct metric families sampled and the number of sample lines.
// This is the no-external-deps checker behind cmd/promcheck and the CI
// metrics smoke job.
func ValidateExposition(r io.Reader) (families, samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	famSet := map[string]bool{}
	type histSeen struct{ inf, sum, count bool }
	hists := map[string]*histSeen{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			fields := strings.Fields(rest)
			if len(fields) >= 1 && (fields[0] == "HELP" || fields[0] == "TYPE") {
				if len(fields) < 2 || !validMetricName(fields[1]) {
					return 0, 0, fmt.Errorf("line %d: malformed %s comment", lineNo, fields[0])
				}
				if fields[0] == "TYPE" {
					if len(fields) != 3 {
						return 0, 0, fmt.Errorf("line %d: TYPE needs a metric type", lineNo)
					}
					switch fields[2] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[2])
					}
					if prev, dup := types[fields[1]]; dup && prev != fields[2] {
						return 0, 0, fmt.Errorf("line %d: conflicting TYPE for %s", lineNo, fields[1])
					}
					types[fields[1]] = fields[2]
				}
			}
			continue // other # lines are free-form comments
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return 0, 0, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++
		fam := name
		base, suffix := splitHistSuffix(name)
		if suffix != "" && (types[base] == "histogram" || types[base] == "summary") {
			fam = base
			if types[base] == "histogram" {
				h := hists[base]
				if h == nil {
					h = &histSeen{}
					hists[base] = h
				}
				switch suffix {
				case "_bucket":
					le, ok := labels["le"]
					if !ok {
						return 0, 0, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
					}
					if le == "+Inf" {
						h.inf = true
					}
				case "_sum":
					h.sum = true
				case "_count":
					h.count = true
				}
			}
		}
		famSet[fam] = true
		_ = value
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	var typed []string
	for name := range types {
		typed = append(typed, name)
	}
	sort.Strings(typed)
	for _, name := range typed {
		if types[name] != "histogram" || !famSet[name] {
			continue
		}
		h := hists[name]
		if h == nil || !h.inf || !h.sum || !h.count {
			return 0, 0, fmt.Errorf("histogram %s missing +Inf bucket, _sum or _count", name)
		}
	}
	return len(famSet), samples, nil
}

func splitHistSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample hand-parses one sample line: name[{labels}] value [ts].
// A quote-and-escape-aware scanner, so label values may contain } and ,.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == ',') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label pair")
			}
			lname := strings.TrimSpace(line[i:j])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return "", nil, 0, fmt.Errorf("label %s: value not quoted", lname)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return "", nil, 0, fmt.Errorf("label %s: unterminated value", lname)
				}
				c := line[i]
				if c == '\\' {
					if i+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("label %s: dangling escape", lname)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("label %s: bad escape \\%c", lname, line[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			labels[lname] = val.String()
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp], got %q", strings.TrimSpace(line[i:]))
	}
	value, err = strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", rest[0])
	}
	if len(rest) == 2 {
		if _, terr := strconv.ParseInt(rest[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return name, labels, value, nil
}
