package metrics

// ServerMetrics is sympackd's instrumentation bundle: the
// sympack_server_* namespace covering the robustness envelope around each
// request — admission queue depth and shedding, deadline misses and
// cancellations, circuit-breaker state, cache economics and per-endpoint
// request latencies. Unlike the per-rank solver bundles these series
// describe one process and are never reduced across ranks; the latency
// histograms observe wall seconds (the documented exception to the
// package determinism contract — a service's p99 is a wall-clock fact).
//
// Every family is registered eagerly so /metrics exposes the full
// inventory at zero from the first scrape; hot paths touch only the
// cached handles plus a per-(endpoint, code) register-or-lookup for the
// request counter, which is a map read under the registry lock —
// negligible next to HTTP handling.
type ServerMetrics struct {
	reg *Registry

	// Admission control.
	QueueDepth *Gauge   // requests waiting for an inflight slot
	QueuePeak  *Gauge   // high-water queue depth
	Inflight   *Gauge   // requests holding a slot
	Shed       *Counter // requests rejected 429 at a full queue
	Draining   *Gauge   // 1 while the server refuses new work

	// Deadlines, cancellations, retries.
	Canceled     *Counter // requests whose context was canceled mid-flight
	DeadlineMiss *Counter // requests that exceeded their deadline (504)
	Retries      *Counter // transient-fault retries of the factor engine

	// Circuit breaker. State encodes 0=closed, 1=open, 2=half-open.
	BreakerState *Gauge
	BreakerTrips *Counter

	// Pattern cache.
	CacheBytes     *Gauge
	CacheEntries   *Gauge
	CachePinned    *Gauge // entries (evicted or live) still pinned by requests
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter
}

// NewServerMetrics registers the server families on reg and returns the
// bundle.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	m := &ServerMetrics{reg: reg}
	m.QueueDepth = reg.Gauge("sympack_server_queue_depth",
		"admission-queue occupancy", MergeSum)
	m.QueuePeak = reg.Gauge("sympack_server_queue_peak",
		"high-water admission-queue occupancy", MergeMax)
	m.Inflight = reg.Gauge("sympack_server_inflight",
		"requests currently holding an admission slot", MergeSum)
	m.Shed = reg.Counter("sympack_server_shed_total",
		"requests shed with 429 at a saturated admission queue")
	m.Draining = reg.Gauge("sympack_server_draining",
		"1 while the server is draining (refusing new work)", MergeMax)
	m.Canceled = reg.Counter("sympack_server_canceled_total",
		"requests canceled mid-flight (client gone or chaos-injected)")
	m.DeadlineMiss = reg.Counter("sympack_server_deadline_miss_total",
		"requests that exceeded their deadline and returned 504")
	m.Retries = reg.Counter("sympack_server_retries_total",
		"transient-fault retries of factorizations")
	m.BreakerState = reg.Gauge("sympack_server_breaker_state",
		"circuit breaker state (0=closed 1=open 2=half-open)", MergeMax)
	m.BreakerTrips = reg.Counter("sympack_server_breaker_trips_total",
		"circuit-breaker trips to the open state")
	m.CacheBytes = reg.Gauge("sympack_server_cache_bytes",
		"bytes held by the pattern cache", MergeSum)
	m.CacheEntries = reg.Gauge("sympack_server_cache_entries",
		"entries held by the pattern cache", MergeSum)
	m.CachePinned = reg.Gauge("sympack_server_cache_pinned",
		"cache objects pinned by in-flight requests", MergeSum)
	m.CacheHits = reg.Counter("sympack_server_cache_hits_total",
		"pattern-cache hits")
	m.CacheMisses = reg.Counter("sympack_server_cache_misses_total",
		"pattern-cache misses")
	m.CacheEvictions = reg.Counter("sympack_server_cache_evictions_total",
		"pattern-cache evictions (budget pressure or chaos thrash)")
	// Pre-register the per-endpoint latency and request families so the
	// exposition shape does not depend on which endpoints saw traffic.
	for _, ep := range serverEndpoints {
		m.Latency(ep)
	}
	return m
}

// serverEndpoints is the fixed endpoint vocabulary of the request-scoped
// families (labels beyond it are still accepted — lookups register on
// first use).
var serverEndpoints = []string{"analyze", "factor", "solve", "solvebatch"}

// Registry returns the registry the bundle registers on.
func (m *ServerMetrics) Registry() *Registry { return m.reg }

// Request returns the request counter for an (endpoint, HTTP status code)
// pair, registering the series on first use.
func (m *ServerMetrics) Request(endpoint, code string) *Counter {
	return m.reg.Counter("sympack_server_requests_total",
		"requests by endpoint and HTTP status code",
		"endpoint", endpoint, "code", code)
}

// Latency returns the wall-seconds request-latency histogram for an
// endpoint (see the bundle doc for the determinism exception).
func (m *ServerMetrics) Latency(endpoint string) *Histogram {
	return m.reg.Histogram("sympack_server_request_seconds",
		"request wall seconds by endpoint (service telemetry; not part of the determinism contract)",
		SecondsBuckets(), "endpoint", endpoint)
}
