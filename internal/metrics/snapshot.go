package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Label is one key=value pair on a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Series is the JSON-friendly snapshot of one time series. For counters
// and gauges Value carries the reading; for histograms Bounds/Counts/Sum
// do (Counts has one extra trailing slot for the +Inf bucket).
type Series struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Kind   string    `json:"kind"`
	Merge  string    `json:"merge,omitempty"` // "max" for peak gauges; default sum
	Labels []Label   `json:"labels,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
}

// key identifies a series across snapshots: family name + label values.
func (se *Series) key() string {
	k := se.Name
	for _, l := range se.Labels {
		k += "\x00" + l.Value
	}
	return k
}

// Snapshot is a point-in-time reading of a registry, sorted by
// (name, label values) so iteration, encoding and reduction-vector
// layout are deterministic.
type Snapshot struct {
	Series []Series `json:"series"`
}

// Snapshot reads every series atomically and returns them in sorted
// order. Map iteration collects keys first and sorts them, per the
// mapiterdeterminism contract.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := r.fams
	r.mu.Unlock()
	sort.Strings(names)

	var snap Snapshot
	for _, name := range names {
		r.mu.Lock()
		f := fams[name]
		r.mu.Unlock()
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			se := Series{Name: f.name, Help: f.help, Kind: f.kind.String()}
			if f.kind == KindGauge && f.merge == MergeMax {
				se.Merge = "max"
			}
			for i, v := range s.labels {
				se.Labels = append(se.Labels, Label{Key: f.keys[i], Value: v})
			}
			switch f.kind {
			case KindHistogram:
				se.Bounds = append([]float64(nil), f.bounds...)
				se.Counts = make([]int64, len(s.counts))
				for i := range s.counts {
					se.Counts[i] = s.counts[i].Load()
				}
				se.Sum = math.Float64frombits(s.sumBits.Load())
			default:
				se.Value = s.value()
			}
			snap.Series = append(snap.Series, se)
		}
		f.mu.Unlock()
	}
	return snap
}

// Import folds a snapshot into the registry, creating families and series
// as needed: counters and histograms accumulate, gauges combine per their
// merge mode. It is the building block for merging per-rank, runtime and
// export-time views into one registry.
func (r *Registry) Import(snap Snapshot) {
	for i := range snap.Series {
		se := &snap.Series[i]
		kv := make([]string, 0, 2*len(se.Labels))
		for _, l := range se.Labels {
			kv = append(kv, l.Key, l.Value)
		}
		switch se.Kind {
		case "counter":
			r.Counter(se.Name, se.Help, kv...).Add(se.Value)
		case "gauge":
			mode := MergeSum
			if se.Merge == "max" {
				mode = MergeMax
			}
			g := r.Gauge(se.Name, se.Help, mode, kv...)
			if mode == MergeMax {
				g.SetMax(se.Value)
			} else {
				g.Add(se.Value)
			}
		case "histogram":
			h := r.Histogram(se.Name, se.Help, se.Bounds, kv...)
			for b, n := range se.Counts {
				if b < len(h.s.counts) {
					h.s.counts[b].Add(n)
				}
			}
			h.s.addSum(se.Sum)
		}
	}
}

// MergeSnapshots combines per-rank snapshots into the global view:
// counters and histogram buckets sum, gauges sum or max per their merge
// mode. Series present in only some snapshots pass through.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	reg := NewRegistry()
	for _, s := range snaps {
		reg.Import(s)
	}
	return reg.Snapshot()
}

// slots returns the reduction-vector length of one series.
func seriesSlots(se *Series) int {
	if se.Kind == "histogram" {
		return len(se.Counts) + 1 // buckets + sum
	}
	return 1
}

// Vectors flattens the snapshot into two parallel reduction vectors: sum
// carries everything that sums (counters, histogram buckets and sums,
// sum-mode gauges), max carries the max-mode gauge values (zero
// elsewhere, the identity for both operators). Ranks holding snapshots of
// identically registered metrics produce identical layouts, which is what
// lets a pair of element-wise AllReduce calls merge them.
func (s Snapshot) Vectors() (sum, max []float64) {
	n := 0
	for i := range s.Series {
		n += seriesSlots(&s.Series[i])
	}
	sum = make([]float64, n)
	max = make([]float64, n)
	at := 0
	for i := range s.Series {
		se := &s.Series[i]
		switch {
		case se.Kind == "histogram":
			for b, c := range se.Counts {
				sum[at+b] = float64(c)
			}
			sum[at+len(se.Counts)] = se.Sum
		case se.Kind == "gauge" && se.Merge == "max":
			max[at] = se.Value
		default:
			sum[at] = se.Value
		}
		at += seriesSlots(se)
	}
	return sum, max
}

// FromVectors rebuilds a merged snapshot from reduced vectors laid out by
// Vectors on a snapshot with the same series set.
func (s Snapshot) FromVectors(sum, max []float64) (Snapshot, error) {
	out := Snapshot{Series: make([]Series, len(s.Series))}
	at := 0
	for i := range s.Series {
		se := s.Series[i] // copy
		w := seriesSlots(&se)
		if at+w > len(sum) || at+w > len(max) {
			return Snapshot{}, fmt.Errorf("metrics: reduction vector too short (%d slots, need %d)", len(sum), at+w)
		}
		switch {
		case se.Kind == "histogram":
			se.Counts = make([]int64, len(s.Series[i].Counts))
			for b := range se.Counts {
				se.Counts[b] = int64(sum[at+b])
			}
			se.Bounds = append([]float64(nil), s.Series[i].Bounds...)
			se.Sum = sum[at+len(se.Counts)]
		case se.Kind == "gauge" && se.Merge == "max":
			se.Value = max[at]
		default:
			se.Value = sum[at]
		}
		out.Series[i] = se
		at += w
	}
	if at != len(sum) || at != len(max) {
		return Snapshot{}, fmt.Errorf("metrics: reduction vector length %d, snapshot needs %d", len(sum), at)
	}
	return out, nil
}

// Value returns the reading of a counter or gauge series in the snapshot,
// or 0 when absent. Label values are matched in order.
func (s Snapshot) Value(name string, labelValues ...string) float64 {
	for i := range s.Series {
		se := &s.Series[i]
		if se.Name != name || len(se.Labels) != len(labelValues) {
			continue
		}
		ok := true
		for j, l := range se.Labels {
			if l.Value != labelValues[j] {
				ok = false
				break
			}
		}
		if ok {
			return se.Value
		}
	}
	return 0
}
