package metrics

import (
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exact exposition bytes: HELP/TYPE lines,
// label escaping, cumulative histogram buckets ending at +Inf, _sum and
// _count, and sorted family/series order.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sympack_tasks_total", `tasks run, split "cpu" vs gpu`, "op", "POTRF", "target", "cpu").Add(3)
	r.Counter("sympack_tasks_total", `tasks run, split "cpu" vs gpu`, "op", "GEMM", "target", "gpu").Add(1)
	r.Gauge("sympack_rtq_depth", "ready-task queue depth", MergeSum).Set(2)
	r.Counter("sympack_odd_total", "value with\nnewline and back\\slash", "k", `quote" back\ nl
`).Inc()
	h := r.Histogram("sympack_task_seconds", "modeled task seconds", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(10)

	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sympack_odd_total value with\nnewline and back\\slash
# TYPE sympack_odd_total counter
sympack_odd_total{k="quote\" back\\ nl\n"} 1
# HELP sympack_rtq_depth ready-task queue depth
# TYPE sympack_rtq_depth gauge
sympack_rtq_depth 2
# HELP sympack_task_seconds modeled task seconds
# TYPE sympack_task_seconds histogram
sympack_task_seconds_bucket{le="0.5"} 2
sympack_task_seconds_bucket{le="2"} 3
sympack_task_seconds_bucket{le="+Inf"} 4
sympack_task_seconds_sum 11.5
sympack_task_seconds_count 4
# HELP sympack_tasks_total tasks run, split "cpu" vs gpu
# TYPE sympack_tasks_total counter
sympack_tasks_total{op="GEMM",target="gpu"} 1
sympack_tasks_total{op="POTRF",target="cpu"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestValidateRoundTrip runs the validator over the encoder's own output.
func TestValidateRoundTrip(t *testing.T) {
	r := NewRegistry()
	for i, name := range []string{"a_total", "b_total", "c_total"} {
		r.Counter(name, "help", "i", string(rune('0'+i))).Inc()
	}
	r.Gauge("g", "", MergeSum).Set(1.5)
	r.Histogram("h_seconds", "hist", SecondsBuckets()).Observe(1e-5)
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, samples, err := ValidateExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("validator rejected our own exposition: %v\n%s", err, b.String())
	}
	if fams != 5 {
		t.Fatalf("families = %d, want 5", fams)
	}
	// 3 counters + 1 gauge + (22 buckets + Inf + sum + count) = 29.
	if samples != 29 {
		t.Fatalf("samples = %d, want 29", samples)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":           "1bad_name 3\n",
		"bad value":          "ok_metric abc\n",
		"unquoted label":     "m{a=1} 2\n",
		"unterminated value": "m{a=\"x} 2\n",
		"bad escape":         "m{a=\"\\q\"} 2\n",
		"bad type":           "# TYPE m weird\nm 1\n",
		"missing inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"missing sum":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"trailing garbage":   "m 1 2 3\n",
		"bad label name":     "m{9x=\"v\"} 1\n",
		"conflicting retype": "# TYPE m counter\n# TYPE m gauge\nm 1\n",
	}
	for name, in := range cases {
		if _, _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestValidateAcceptsForeignExposition(t *testing.T) {
	// Hand-written exposition with timestamps, comments, +Inf values and
	// labels containing } and , — shapes other exporters emit.
	in := `# a free comment
# HELP up whether the target is up
# TYPE up gauge
up{job="api",instance="h:9100"} 1 1712000000000
odd{lbl="a}b,c\"d"} +Inf
# TYPE lat summary
lat{quantile="0.5"} 0.2
lat_sum 99
lat_count 3
`
	fams, samples, err := ValidateExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams != 3 || samples != 5 {
		t.Fatalf("fams=%d samples=%d, want 3/5", fams, samples)
	}
}
