// Package metrics is the solver-wide observability layer: a stdlib-only
// typed metric registry (counters, gauges, histograms) with deterministic
// snapshots, a Prometheus text-format (v0.0.4) encoder, cross-rank
// aggregation helpers and a machine-readable run-report schema.
//
// Determinism contract. Histogram bucket bounds are fixed at registration
// (log-spaced, see ExpBuckets), and in the solver namespaces
// (sympack_core_*, sympack_upcxx_*, sympack_gpu_*, sympack_faults_*)
// instrumentation sites observe only modeled quantities — virtual-clock
// seconds from the machine model, byte or element sizes — never host
// wall-clock durations, so bucket counts are bit-identical across worker
// and rank counts for a fixed seeded problem; wall-time quantities may
// only feed counters and gauges there. The sympack_server_* namespace
// (ServerMetrics) is the documented exception: request-latency histograms
// are service telemetry observing wall seconds, are never merged across
// ranks, and make no determinism claim.
// Snapshots emit families and series in sorted (name, label-values)
// order, so the encoded exposition and the reduction vectors built from a
// snapshot are deterministic too; the package sits in the wallclock and
// mapiterdeterminism analyzer scopes to keep both properties honest.
//
// Concurrency. Registration takes locks and should happen at setup time;
// Inc/Add/Set/Observe on the returned handles are lock-free atomics and
// safe on hot paths. Snapshot may run concurrently with updates — it
// reads each series atomically (per-series torn reads across a histogram's
// buckets and sum are possible mid-run; final snapshots taken after a
// barrier are exact).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the three metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "kind?"
	}
}

// MergeMode says how a gauge combines across ranks when snapshots are
// merged: occupancy-style gauges sum, peak/high-water gauges take the
// maximum. Counters and histograms always sum.
type MergeMode uint8

const (
	MergeSum MergeMode = iota
	MergeMax
)

func (m MergeMode) String() string {
	if m == MergeMax {
		return "max"
	}
	return "sum"
}

// Registry holds metric families keyed by name. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	merge  MergeMode
	keys   []string  // label keys, fixed at first registration
	bounds []float64 // histogram upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	series map[string]*series // keyed by joined label values
}

// series is one (name, label-values) time series. Counters and gauges
// store their float64 value as bits in an atomic word; histograms keep
// per-bucket counts plus the sum of observations.
type series struct {
	labels []string // label values aligned with family.keys

	bits atomic.Uint64 // counter/gauge value, math.Float64bits

	counts  []atomic.Int64 // histogram: counts[i] ≤ bounds[i]; last is +Inf
	sumBits atomic.Uint64  // histogram: sum of observations, float64 bits
}

func (s *series) add(v float64) {
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (s *series) setMax(v float64) {
	for {
		old := s.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (s *series) value() float64 { return math.Float64frombits(s.bits.Load()) }

func (s *series) addSum(v float64) {
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically non-decreasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decremented")
	}
	c.s.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.s.value() }

// Gauge is a value that can go up and down. Gauges that participate in
// cross-rank max-merging must stay non-negative (the merge identity is 0).
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.s.add(v) }

// SetMax raises the gauge to v if v is larger — the high-water update.
func (g *Gauge) SetMax(v float64) { g.s.setMax(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.value() }

// Histogram counts observations into fixed cumulative-style buckets.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records v into its bucket and the running sum. Only modeled or
// size-like quantities may be observed (see the package determinism
// contract).
func (h *Histogram) Observe(v float64) {
	h.s.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.s.addSum(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n
}

// ExpBuckets returns n log-spaced upper bounds start, start·factor,
// start·factor², … — the fixed-bucket scheme that keeps aggregated
// histograms bit-reproducible across worker counts.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// SecondsBuckets spans 1 µs … ~2 s in powers of two — the modeled-time
// range of kernels and transfers.
func SecondsBuckets() []float64 { return ExpBuckets(1e-6, 2, 22) }

// BytesBuckets spans 64 B … ~1 GiB in powers of four — the RMA payload
// range.
func BytesBuckets() []float64 { return ExpBuckets(64, 4, 12) }

// Counter registers (or looks up) a counter series. Labels alternate
// key, value; every series of a family must use the same keys in the
// same order.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return &Counter{s: r.register(name, help, KindCounter, MergeSum, nil, kv)}
}

// Gauge registers (or looks up) a gauge series with the given cross-rank
// merge mode.
func (r *Registry) Gauge(name, help string, merge MergeMode, kv ...string) *Gauge {
	return &Gauge{s: r.register(name, help, KindGauge, merge, nil, kv)}
}

// Histogram registers (or looks up) a histogram series over the given
// ascending upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	s := r.register(name, help, KindHistogram, MergeSum, bounds, kv)
	return &Histogram{s: s, bounds: r.famBounds(name)}
}

// Value returns the current value of a counter or gauge series, or 0 when
// the series does not exist — the read-only lookup reporting code uses.
func (r *Registry) Value(name string, kv ...string) float64 {
	_, vals := splitKV(name, kv)
	r.mu.Lock()
	f := r.fams[name]
	r.mu.Unlock()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	s := f.series[labelKey(vals)]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.value()
}

func (r *Registry) famBounds(name string) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fams[name].bounds
}

func splitKV(name string, kv []string) (keys, vals []string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label key/value list", name))
	}
	keys = make([]string, 0, len(kv)/2)
	vals = make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		keys = append(keys, kv[i])
		vals = append(vals, kv[i+1])
	}
	return keys, vals
}

// labelKey joins label values with NUL — values never contain NUL.
func labelKey(vals []string) string {
	k := ""
	for i, v := range vals {
		if i > 0 {
			k += "\x00"
		}
		k += v
	}
	return k
}

func (r *Registry) register(name, help string, kind Kind, merge MergeMode, bounds []float64, kv []string) *series {
	keys, vals := splitKV(name, kv)
	r.mu.Lock()
	f := r.fams[name]
	if f == nil {
		if kind == KindHistogram {
			if len(bounds) == 0 {
				panic(fmt.Sprintf("metrics: histogram %s needs buckets", name))
			}
			if !sort.Float64sAreSorted(bounds) {
				panic(fmt.Sprintf("metrics: histogram %s buckets not ascending", name))
			}
			bounds = append([]float64(nil), bounds...)
		}
		f = &family{
			name: name, help: help, kind: kind, merge: merge,
			keys: keys, bounds: bounds, series: map[string]*series{},
		}
		r.fams[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	if len(keys) != len(f.keys) {
		panic(fmt.Sprintf("metrics: %s label keys %v do not match %v", name, keys, f.keys))
	}
	for i := range keys {
		if keys[i] != f.keys[i] {
			panic(fmt.Sprintf("metrics: %s label keys %v do not match %v", name, keys, f.keys))
		}
	}
	if kind == KindHistogram && len(bounds) > 0 && len(f.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: histogram %s re-registered with different buckets", name))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(vals)
	s := f.series[key]
	if s == nil {
		s = &series{labels: vals}
		if kind == KindHistogram {
			s.counts = make([]atomic.Int64, len(f.bounds)+1)
		}
		f.series[key] = s
	}
	return s
}
