package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "kind", "a")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same (name, labels) resolves to the same series.
	if got := r.Counter("jobs_total", "jobs", "kind", "a").Value(); got != 3.5 {
		t.Fatalf("re-registered counter = %v, want 3.5", got)
	}
	if got := r.Value("jobs_total", "kind", "a"); got != 3.5 {
		t.Fatalf("Value lookup = %v, want 3.5", got)
	}
	if got := r.Value("jobs_total", "kind", "missing"); got != 0 {
		t.Fatalf("missing series = %v, want 0", got)
	}

	g := r.Gauge("depth", "queue depth", MergeSum)
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	p := r.Gauge("peak", "peak depth", MergeMax)
	p.SetMax(7)
	p.SetMax(5)
	if got := p.Value(); got != 7 {
		t.Fatalf("peak gauge = %v, want 7", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "", MergeSum)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 50, 99, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(snap.Series))
	}
	se := snap.Series[0]
	// le=1 gets {0.5, 1}; le=10 gets {1.0001}; le=100 gets {50, 99}; +Inf gets {1000}.
	want := []int64{2, 1, 2, 1}
	for i, w := range want {
		if se.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, se.Counts[i], w, se.Counts)
		}
	}
	if math.Abs(se.Sum-1151.5001) > 1e-9 {
		t.Fatalf("sum = %v", se.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if got := len(SecondsBuckets()); got != 22 {
		t.Fatalf("SecondsBuckets len = %d", got)
	}
	if got := len(BytesBuckets()); got != 12 {
		t.Fatalf("BytesBuckets len = %d", got)
	}
}

func TestSnapshotSortedAndMerge(t *testing.T) {
	mk := func(inc float64) Snapshot {
		r := NewRegistry()
		r.Counter("zz_total", "").Add(inc)
		r.Counter("aa_total", "", "op", "b").Add(inc)
		r.Counter("aa_total", "", "op", "a").Add(2 * inc)
		r.Gauge("depth", "", MergeSum).Set(inc)
		r.Gauge("peak", "", MergeMax).Set(10 * inc)
		r.Histogram("h", "", []float64{1, 2}).Observe(inc)
		return r.Snapshot()
	}
	s := mk(1)
	order := []string{"aa_total", "aa_total", "depth", "h", "peak", "zz_total"}
	for i, name := range order {
		if s.Series[i].Name != name {
			t.Fatalf("series %d = %s, want %s", i, s.Series[i].Name, name)
		}
	}
	if s.Series[0].Labels[0].Value != "a" || s.Series[1].Labels[0].Value != "b" {
		t.Fatalf("label order not sorted: %+v", s.Series[:2])
	}

	m := MergeSnapshots(mk(1), mk(2))
	if got := m.Value("zz_total"); got != 3 {
		t.Fatalf("merged counter = %v, want 3", got)
	}
	if got := m.Value("depth"); got != 3 {
		t.Fatalf("merged sum gauge = %v, want 3", got)
	}
	if got := m.Value("peak"); got != 20 {
		t.Fatalf("merged max gauge = %v, want 20", got)
	}
	for i := range m.Series {
		if m.Series[i].Name == "h" {
			if m.Series[i].Counts[0] != 1 || m.Series[i].Counts[1] != 1 {
				t.Fatalf("merged histogram counts = %v", m.Series[i].Counts)
			}
			if m.Series[i].Sum != 3 {
				t.Fatalf("merged histogram sum = %v", m.Series[i].Sum)
			}
		}
	}
}

func TestVectorsRoundTrip(t *testing.T) {
	mk := func(inc float64) Snapshot {
		r := NewRegistry()
		r.Counter("c_total", "").Add(inc)
		r.Gauge("g", "", MergeSum).Set(inc)
		r.Gauge("p", "", MergeMax).Set(inc * inc)
		h := r.Histogram("h", "", []float64{1, 4})
		h.Observe(inc)
		return r.Snapshot()
	}
	a, b := mk(1), mk(3)
	sumA, maxA := a.Vectors()
	sumB, maxB := b.Vectors()
	if len(sumA) != len(sumB) || len(maxA) != len(maxB) {
		t.Fatalf("vector layouts differ: %d/%d vs %d/%d", len(sumA), len(maxA), len(sumB), len(maxB))
	}
	for i := range sumA {
		sumA[i] += sumB[i]
		if maxB[i] > maxA[i] {
			maxA[i] = maxB[i]
		}
	}
	merged, err := a.FromVectors(sumA, maxA)
	if err != nil {
		t.Fatal(err)
	}
	ref := MergeSnapshots(mk(1), mk(3))
	if len(merged.Series) != len(ref.Series) {
		t.Fatalf("series count %d vs %d", len(merged.Series), len(ref.Series))
	}
	for i := range ref.Series {
		m, r := merged.Series[i], ref.Series[i]
		if m.Name != r.Name || m.Value != r.Value || m.Sum != r.Sum {
			t.Fatalf("series %d: %+v vs %+v", i, m, r)
		}
		for b := range r.Counts {
			if m.Counts[b] != r.Counts[b] {
				t.Fatalf("series %s bucket %d: %d vs %d", r.Name, b, m.Counts[b], r.Counts[b])
			}
		}
	}
}

func TestFromVectorsLengthMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	s := r.Snapshot()
	if _, err := s.FromVectors([]float64{}, []float64{}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := s.FromVectors([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("long vector accepted")
	}
}

// TestConcurrentUpdatesAndSnapshots is the -race acceptance test: handles
// update from many goroutines while snapshots are taken concurrently, and
// the final snapshot is exact.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "", MergeSum)
	p := r.Gauge("peak", "", MergeMax)
	h := r.Histogram("lat", "", ExpBuckets(1, 2, 10))
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				p.SetMax(float64(w*iters + i))
				h.Observe(float64(i%1024) + 0.5)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := p.Value(); got != workers*iters-1 {
		t.Fatalf("peak = %v, want %d", got, workers*iters-1)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
