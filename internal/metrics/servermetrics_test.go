package metrics

import (
	"strings"
	"testing"
)

func TestServerMetricsShape(t *testing.T) {
	reg := NewRegistry()
	m := NewServerMetrics(reg)
	m.QueueDepth.Set(3)
	m.QueuePeak.SetMax(5)
	m.Shed.Inc()
	m.Request("factor", "200").Inc()
	m.Request("factor", "429").Add(2)
	m.Latency("factor").Observe(0.25)

	var sb strings.Builder
	if err := WriteText(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if _, _, err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("server bundle encodes invalid exposition: %v", err)
	}
	// The full inventory is present even for untouched families, and the
	// latency families cover every endpoint from the first scrape.
	for _, want := range []string{
		"sympack_server_queue_depth 3",
		"sympack_server_queue_peak 5",
		"sympack_server_shed_total 1",
		"sympack_server_breaker_state 0",
		"sympack_server_cache_bytes 0",
		`sympack_server_requests_total{endpoint="factor",code="429"} 2`,
		`sympack_server_request_seconds_count{endpoint="solvebatch"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if got := reg.Value("sympack_server_requests_total", "endpoint", "factor", "code", "200"); got != 1 {
		t.Fatalf("request counter = %g", got)
	}
}
