package krylov

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sympack/internal/gen"
)

func TestDotMatchesSequentialSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, dotBlock, dotBlock + 1, 3*dotBlock + 17} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		got := Dot(x, y)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("n=%d: Dot=%g, sequential=%g", n, got, want)
		}
	}
}

// TestDotShapeIndependence: the reduction result must be a pure function of
// the data — recomputing on copies or subslices of a larger backing array
// gives identical bits.
func TestDotShapeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4*dotBlock + 333
	backing := make([]float64, n+64)
	for i := range backing {
		backing[i] = rng.NormFloat64()
	}
	x := backing[32 : 32+n]
	xc := append([]float64(nil), x...)
	if Dot(x, x) != Dot(xc, xc) {
		t.Fatal("Dot result depends on slice identity, not content")
	}
}

func TestCGConvergesOnSPD(t *testing.T) {
	a := gen.Laplace2D(12, 12)
	n := a.N
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := Solve(a, b, Options{Rtol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CG did not converge on a Laplacian")
	}
	// Check the true residual, not just the recurrence's.
	r := make([]float64, n)
	a.MulVecTo(r, res.X)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if rel := Norm2(r) / Norm2(b); rel > 1e-8 {
		t.Fatalf("true relative residual %g exceeds 1e-8", rel)
	}
	if res.MatVecs != res.Iterations {
		t.Fatalf("MatVecs=%d, Iterations=%d; CG performs one matvec per iteration", res.MatVecs, res.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := gen.Laplace2D(4, 4)
	res, err := Solve(a, make([]float64, a.N), Options{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: err=%v converged=%v", err, res.Converged)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

// indefOp is a diagonal operator with one negative eigenvalue.
type indefOp struct{ n int }

func (o indefOp) MulVecTo(y, x []float64) {
	copy(y, x)
	y[0] = -x[0]
}

func TestCGIndefiniteBreakdown(t *testing.T) {
	n := 8
	b := make([]float64, n)
	b[0] = 1
	res, err := Solve(indefOp{n}, b, Options{})
	if !errors.Is(err, ErrIndefinite) {
		t.Fatalf("want ErrIndefinite, got %v", err)
	}
	if res == nil {
		t.Fatal("breakdown must still return the partial result")
	}
}

// indefPrecond flips the sign of r, making rᵀz negative.
type indefPrecond struct{}

func (indefPrecond) Apply(z, r []float64) error {
	for i := range r {
		z[i] = -r[i]
	}
	return nil
}

func TestPCGPrecondIndefiniteBreakdown(t *testing.T) {
	a := gen.Laplace2D(5, 5)
	b := make([]float64, a.N)
	b[0] = 1
	_, err := Solve(a, b, Options{Precond: indefPrecond{}})
	if !errors.Is(err, ErrIndefinite) {
		t.Fatalf("want ErrIndefinite from indefinite preconditioner, got %v", err)
	}
}

func TestCGNoConvergence(t *testing.T) {
	a := gen.Laplace2D(16, 16)
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(5))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := Solve(a, b, Options{Rtol: 1e-12, MaxIter: 3})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	if res == nil || res.Iterations != 3 {
		t.Fatalf("partial result should report 3 iterations, got %+v", res)
	}
}

func TestCGCanceledContext(t *testing.T) {
	a := gen.Laplace2D(10, 10)
	b := make([]float64, a.N)
	b[0] = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(a, b, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// jacobi is a trivial but genuinely SPD preconditioner for trajectory and
// acceleration checks that stay inside this package.
type jacobi struct{ inv []float64 }

func (j jacobi) Apply(z, r []float64) error {
	for i := range r {
		z[i] = j.inv[i] * r[i]
	}
	return nil
}

func TestPCGTrajectoryDeterministic(t *testing.T) {
	a := gen.Thermal2D(10, 10, 3, 2)
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	inv := make([]float64, a.N)
	for i, d := range a.Diag() {
		inv[i] = 1 / d
	}
	var ref []float64
	for trial := 0; trial < 3; trial++ {
		res, err := Solve(a, b, Options{Rtol: 1e-9, Precond: jacobi{inv}, RecordTrajectory: true})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = res.Trajectory
			continue
		}
		if len(res.Trajectory) != len(ref) {
			t.Fatalf("trajectory length changed: %d vs %d", len(res.Trajectory), len(ref))
		}
		for i := range ref {
			if res.Trajectory[i] != ref[i] {
				t.Fatalf("iteration %d: residual bits differ across identical solves", i)
			}
		}
	}
}
