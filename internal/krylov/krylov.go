// Package krylov implements the conjugate-gradient drivers of the
// iterative-solve subsystem: CG and preconditioned CG over any SPD operator,
// with the blocked IC(k) factor of internal/precond as the intended
// preconditioner (Kim et al.'s partitioned-block incomplete Cholesky,
// PAPERS.md).
//
// Determinism contract: every inner product is computed by Dot, a fixed
// recursive pairwise reduction whose association tree depends only on the
// vector length — never on worker count, rank count, scheduling policy or
// chunk boundaries. With a bit-deterministic operator (matrix.SparseSym's
// column-order MulVecTo) and preconditioner (the engine's ordered-apply
// factor + sequential triangular solves), every iterate, residual and
// scalar of the CG recurrence is a pure function of (A, M, b, options) —
// the same bit-identity guarantee the factorization makes, extended to
// iterate trajectories.
package krylov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sympack/internal/machine"
	"sympack/internal/metrics"
)

// Operator is a symmetric positive definite linear operator y = A·x.
// matrix.SparseSym satisfies it.
type Operator interface {
	MulVecTo(y, x []float64)
}

// Preconditioner applies z = M⁻¹·r for an SPD approximation M ≈ A.
type Preconditioner interface {
	Apply(z, r []float64) error
}

// ErrIndefinite is returned when the CG recurrence meets a non-positive
// curvature pᵀAp ≤ 0 or a non-positive preconditioned product rᵀz ≤ 0: the
// operator (or preconditioner) is not positive definite on the Krylov
// space, and the recurrence's divisions are meaningless past this point.
var ErrIndefinite = errors.New("krylov: operator not positive definite")

// ErrNoConvergence is returned when MaxIter iterations pass without the
// residual reaching tolerance. The partial Result is still returned.
var ErrNoConvergence = errors.New("krylov: no convergence within iteration budget")

// Options configures a CG solve.
type Options struct {
	// Rtol is the relative tolerance: converge when ‖r‖ ≤ max(Rtol·‖b‖,
	// Atol). 0 means 1e-8.
	Rtol float64
	// Atol is the absolute tolerance floor (0 = none).
	Atol float64
	// MaxIter bounds the iteration count (0 = 10·n, capped at 10000).
	MaxIter int
	// Precond, when non-nil, turns CG into PCG.
	Precond Preconditioner
	// Ctx, when non-nil, bounds the solve: cancellation is checked once
	// per iteration and surfaces as the context's error.
	Ctx context.Context
	// Metrics, when non-nil, receives iteration counts, matvec counts,
	// outcome tallies and the final residual observation.
	Metrics *metrics.IterMetrics
	// RecordTrajectory retains ‖r‖ after every iteration in
	// Result.Trajectory — the bit-comparison artifact of the conformance
	// tests. Off by default to keep long solves allocation-light.
	RecordTrajectory bool
}

// Result reports a CG solve.
type Result struct {
	X          []float64
	Iterations int
	MatVecs    int
	// Residual is the final relative residual ‖r‖/‖b‖ (2-norm, from the
	// recurrence).
	Residual  float64
	Converged bool
	// Trajectory holds ‖r‖ after each iteration when RecordTrajectory was
	// set; bit-identical across worker and rank counts.
	Trajectory []float64
}

// dotBlock is the pairwise-reduction leaf size: below it the sum runs
// sequentially. A fixed constant — never derived from worker counts — so
// the association tree is a pure function of the length.
const dotBlock = 512

// Dot returns xᵀy by fixed-shape recursive pairwise reduction. Beyond its
// O(ε·log n) error advantage over sequential summation, its purpose is
// determinism: the same association tree for a given n, every time,
// everywhere.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("krylov: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	return pairwiseDot(x, y)
}

func pairwiseDot(x, y []float64) float64 {
	n := len(x)
	if n <= dotBlock {
		var s float64
		for i, v := range x {
			s += v * y[i]
		}
		return s
	}
	h := n / 2
	return pairwiseDot(x[:h], y[:h]) + pairwiseDot(x[h:], y[h:])
}

// Norm2 returns ‖x‖₂ with the same fixed reduction shape as Dot.
func Norm2(x []float64) float64 { return math.Sqrt(pairwiseDot(x, x)) }

// Solve runs (preconditioned) conjugate gradients on A·x = b from the zero
// initial guess. On ErrIndefinite or ErrNoConvergence the partial Result is
// returned alongside the error; on context cancellation the context's error
// is wrapped.
func Solve(a Operator, b []float64, opt Options) (*Result, error) {
	n := len(b)
	if opt.Rtol == 0 {
		opt.Rtol = 1e-8
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
		if opt.MaxIter > 10000 {
			opt.MaxIter = 10000
		}
	}
	res := &Result{X: make([]float64, n)}
	met := opt.Metrics

	bnorm := Norm2(b)
	if bnorm == 0 {
		// b = 0 ⇒ x = 0 exactly.
		res.Converged = true
		if met != nil {
			met.Converged.Inc()
			met.ResidualNorm.Observe(0)
		}
		return res, nil
	}
	threshold := opt.Rtol * bnorm
	if opt.Atol > threshold {
		threshold = opt.Atol
	}

	r := make([]float64, n)
	copy(r, b) // r = b - A·0
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	applyPrecond := func() error {
		if opt.Precond == nil {
			copy(z, r)
			return nil
		}
		start := machine.WallNow()
		err := opt.Precond.Apply(z, r)
		if met != nil {
			met.PrecondApplySeconds.Observe(machine.WallSince(start).Seconds())
		}
		return err
	}

	finish := func(rnorm float64, err error) (*Result, error) {
		res.Residual = rnorm / bnorm
		if met != nil {
			met.ResidualNorm.Observe(res.Residual)
			if res.Converged {
				met.Converged.Inc()
			}
			if errors.Is(err, ErrIndefinite) {
				met.Breakdowns.Inc()
			}
		}
		return res, err
	}

	if err := applyPrecond(); err != nil {
		return finish(bnorm, err)
	}
	rz := Dot(r, z)
	if opt.Precond != nil && rz <= 0 {
		return finish(bnorm, fmt.Errorf("%w: preconditioner yielded rᵀz = %g", ErrIndefinite, rz))
	}
	copy(p, z)
	rnorm := bnorm

	for iter := 0; iter < opt.MaxIter; iter++ {
		if ctx := opt.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return finish(rnorm, fmt.Errorf("krylov: solve canceled: %w", err))
			}
		}
		a.MulVecTo(ap, p)
		res.MatVecs++
		if met != nil {
			met.MatVecs.Inc()
		}
		pap := Dot(p, ap)
		if pap <= 0 {
			return finish(rnorm, fmt.Errorf("%w: curvature pᵀAp = %g at iteration %d", ErrIndefinite, pap, iter))
		}
		alpha := rz / pap
		for i := range res.X {
			res.X[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * ap[i]
		}
		res.Iterations++
		if met != nil {
			met.Iterations.Inc()
		}
		rnorm = Norm2(r)
		if opt.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, rnorm)
		}
		if rnorm <= threshold {
			res.Converged = true
			return finish(rnorm, nil)
		}
		if err := applyPrecond(); err != nil {
			return finish(rnorm, err)
		}
		rzNext := Dot(r, z)
		if opt.Precond != nil && rzNext <= 0 {
			return finish(rnorm, fmt.Errorf("%w: preconditioner yielded rᵀz = %g at iteration %d", ErrIndefinite, rzNext, iter))
		}
		beta := rzNext / rz
		rz = rzNext
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return finish(rnorm, fmt.Errorf("%w: ‖r‖/‖b‖ = %g after %d iterations", ErrNoConvergence, rnorm/bnorm, res.Iterations))
}
