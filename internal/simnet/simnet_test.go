package simnet

import (
	"testing"

	"sympack/internal/machine"
)

func TestClassify(t *testing.T) {
	native := New(machine.Perlmutter())
	ref := New(machine.Perlmutter().WithoutGDR())

	if p := native.Classify(Host, Host, true, true); p != PathLocal {
		t.Fatalf("same-process = %v", p)
	}
	if p := native.Classify(Host, Host, false, false); p != PathHostHost {
		t.Fatalf("host-host = %v", p)
	}
	if p := native.Classify(Host, Device, false, false); p != PathGDR {
		t.Fatalf("native device path = %v", p)
	}
	if p := ref.Classify(Host, Device, false, false); p != PathStaged {
		t.Fatalf("reference device path = %v", p)
	}
	if p := ref.Classify(Device, Host, false, false); p != PathStaged {
		t.Fatalf("reference device src path = %v", p)
	}
}

// The Fig. 5 shape: native memory kinds beat the reference implementation
// by 2.3–5.9×, and MPI lands within ~20% of native across sizes.
func TestFig5Ratios(t *testing.T) {
	n := New(machine.Perlmutter())
	const window = 64
	for _, bytes := range []int64{8 << 10, 64 << 10, 1 << 20, 4 << 20} {
		nat := n.Bandwidth(PathGDR, bytes, window)
		ref := n.Bandwidth(PathStaged, bytes, window)
		ratio := nat / ref
		if ratio < 1.8 || ratio > 8 {
			t.Fatalf("bytes=%d: native/reference ratio %.2f outside the paper's 2.3–5.9 regime", bytes, ratio)
		}
	}
	// MPI (one-sided MPI_Get, the osu_get_bw series) stays within ~20% of
	// native across the entire measured range, as the paper reports.
	for _, bytes := range []int64{16, 256, 8 << 10, 64 << 10, 1 << 20, 4 << 20} {
		gap := n.Bandwidth(PathGDR, bytes, window) / n.Bandwidth(PathMPIGet, bytes, window)
		if gap < 0.8 || gap > 1.25 {
			t.Fatalf("bytes=%d: native vs MPI gap %.2f, want within ~20%%", bytes, gap)
		}
	}
	// The ratio must shrink with payload (5.9× at 8 KiB → 2.3× ≥ 1 MiB).
	rSmall := n.Bandwidth(PathGDR, 8<<10, window) / n.Bandwidth(PathStaged, 8<<10, window)
	rBig := n.Bandwidth(PathGDR, 4<<20, window) / n.Bandwidth(PathStaged, 4<<20, window)
	if rSmall <= rBig {
		t.Fatalf("ratio should shrink with size: small=%.2f big=%.2f", rSmall, rBig)
	}
}

func TestTimeMonotoneInBytes(t *testing.T) {
	n := New(machine.Perlmutter())
	for _, p := range []Path{PathLocal, PathHostHost, PathGDR, PathStaged, PathTwoSided, PathMPIGet} {
		prev := -1.0
		for _, b := range []int64{16, 1 << 10, 1 << 16, 1 << 22} {
			dt := n.Time(p, b, false)
			if dt <= prev {
				t.Fatalf("%v: time not monotone at %d bytes", p, b)
			}
			prev = dt
		}
	}
}

func TestSameNodeFaster(t *testing.T) {
	n := New(machine.Perlmutter())
	for _, p := range []Path{PathHostHost, PathStaged, PathTwoSided} {
		if n.Time(p, 1<<20, true) >= n.Time(p, 1<<20, false) {
			t.Fatalf("%v: same-node should be faster", p)
		}
	}
}

func TestBandwidthApproachesWire(t *testing.T) {
	n := New(machine.Perlmutter())
	bw := n.Bandwidth(PathHostHost, 64<<20, 64)
	if bw < 0.8*n.M.NICBandwidth {
		t.Fatalf("asymptotic bandwidth %.2g too far below wire %.2g", bw, n.M.NICBandwidth)
	}
	// Tiny payloads are latency-bound: far below wire speed.
	if small := n.Bandwidth(PathHostHost, 16, 1); small > 0.05*n.M.NICBandwidth {
		t.Fatalf("tiny transfer bandwidth %.2g implausibly high", small)
	}
}

func TestWindowImprovesSmallTransferBandwidth(t *testing.T) {
	n := New(machine.Perlmutter())
	if n.Bandwidth(PathGDR, 4096, 64) <= n.Bandwidth(PathGDR, 4096, 1) {
		t.Fatal("pipelining should raise small-message flood bandwidth")
	}
}

func TestPathAndKindStrings(t *testing.T) {
	for _, p := range []Path{PathLocal, PathHostHost, PathGDR, PathStaged, PathTwoSided, PathMPIGet} {
		if p.String() == "path?" {
			t.Fatalf("missing name for %d", p)
		}
	}
	if Host.String() != "host" || Device.String() != "device" {
		t.Fatal("kind strings")
	}
}
