// Package simnet models the communication fabric: the transfer-time cost of
// one-sided RMA operations between host and device memories on the same or
// different nodes, with and without GPUDirect RDMA ("native" versus
// "reference" memory kinds in the paper's Fig. 5), plus a two-sided MPI-like
// path for the baseline solver.
package simnet

import "sympack/internal/machine"

// MemKind distinguishes host and device buffers, mirroring UPC++ memory
// kinds (paper §4.1).
type MemKind uint8

const (
	Host MemKind = iota
	Device
)

func (k MemKind) String() string {
	if k == Host {
		return "host"
	}
	return "device"
}

// Path identifies how a transfer is realized, for statistics and for the
// Fig. 5 microbenchmark series.
type Path uint8

const (
	// PathLocal is a same-process memcpy (no NIC).
	PathLocal Path = iota
	// PathHostHost is RDMA between two host segments.
	PathHostHost
	// PathGDR is zero-copy RDMA directly into/out of device memory
	// (native memory kinds over GPUDirect RDMA).
	PathGDR
	// PathStaged bounces device data through host memory (reference
	// memory kinds implementation).
	PathStaged
	// PathTwoSided is a rendezvous send/recv pair, the MPI baseline's
	// transport; device buffers additionally stage unless the MPI is
	// CUDA-aware (modeled GDR-like but with matching overhead).
	PathTwoSided
	// PathMPIGet is CUDA-aware one-sided MPI_Get into device memory, the
	// comparator series of Fig. 5 (osu_get_bw): GDR-class bandwidth with
	// slightly higher latency than UPC++ native memory kinds.
	PathMPIGet
)

func (p Path) String() string {
	switch p {
	case PathLocal:
		return "local"
	case PathHostHost:
		return "host-host"
	case PathGDR:
		return "gdr"
	case PathStaged:
		return "staged"
	case PathTwoSided:
		return "two-sided"
	case PathMPIGet:
		return "mpi-get"
	default:
		return "path?"
	}
}

// Network wraps a machine model with transfer-time queries.
type Network struct {
	M machine.Machine
}

// New builds a network model on a machine description.
func New(m machine.Machine) *Network { return &Network{M: m} }

// Classify returns the path an RMA transfer takes between the given
// endpoint kinds, given whether the endpoints share a process or a node.
func (n *Network) Classify(src, dst MemKind, sameProcess, sameNode bool) Path {
	if sameProcess {
		return PathLocal
	}
	touchesDevice := src == Device || dst == Device
	if !touchesDevice {
		return PathHostHost
	}
	if n.M.GDR {
		return PathGDR
	}
	return PathStaged
}

// Time returns the modeled seconds for moving `bytes` along a path.
// Same-node inter-process transfers share memory in this in-process
// simulation; they are charged the loopback cost below instead of the wire.
func (n *Network) Time(p Path, bytes int64, sameNode bool) float64 {
	m := &n.M
	b := float64(bytes)
	switch p {
	case PathLocal:
		// memcpy at memory bandwidth (~50 GB/s effective).
		return 1e-7 + b/50e9
	case PathHostHost:
		lat, bw := m.NICLatency, m.NICBandwidth
		if sameNode {
			lat, bw = m.NICLatency/2, m.NICBandwidth*2 // shared-memory transport
		}
		return lat + b/bw
	case PathGDR:
		// Zero-copy: NIC writes device memory directly; slightly higher
		// latency than host-host, same asymptotic bandwidth.
		lat, bw := m.NICLatency*1.3, m.NICBandwidth
		if sameNode {
			// Same-node device transfers ride the PCIe/NVLink fabric.
			return m.GPUCopyLatency + b/m.GPUCopyBandwidth
		}
		return lat + b/bw
	case PathStaged:
		// Wire transfer into a host bounce buffer, then a host↔device
		// copy, plus progress-thread handoff overhead; the two stages
		// serialize, which is what costs the 2–6× of Fig. 5.
		wire := m.NICLatency + b/m.NICBandwidth
		if sameNode {
			wire = m.NICLatency/2 + b/(m.NICBandwidth*2)
		}
		bounce := m.GPUCopyLatency + b/m.StagingBandwidth
		return m.StagingOverhead + wire + bounce
	case PathMPIGet:
		// One-sided MPI_Get over GDR: same zero-copy wire as native
		// memory kinds, modestly higher initiation cost (window/flush
		// bookkeeping) — the "within 20%" series of Fig. 5.
		lat, bw := m.NICLatency*1.55, m.NICBandwidth*0.985
		if sameNode {
			lat, bw = m.NICLatency*0.7, m.NICBandwidth*1.9
		}
		return lat + b/bw
	case PathTwoSided:
		// Rendezvous: RTS/CTS handshake plus receiver-side matching
		// before the wire moves — roughly three one-way latencies for a
		// cross-node message. CUDA-aware MPI reaches GDR-like bandwidth
		// with this higher latency (Fig. 5 shows MPI within 20% of
		// native UPC++ on large transfers while losing on small ones).
		lat, bw := m.NICLatency*3.2, m.NICBandwidth*0.95
		if sameNode {
			lat, bw = m.NICLatency, m.NICBandwidth*1.8
		}
		return lat + b/bw
	default:
		return 0
	}
}

// Bandwidth returns the effective bandwidth (bytes/s) a flood of
// back-to-back transfers of the given size achieves on a path, the metric
// plotted in Fig. 5. A window of in-flight operations hides a fraction of
// the per-transfer latency, as the flood benchmarks do.
func (n *Network) Bandwidth(p Path, bytes int64, window int) float64 {
	t := n.Time(p, bytes, false)
	// The reference memory-kinds implementation pipelines poorly: its
	// bounce-buffer pool bounds how many staged transfers can be in
	// flight, so deep windows stop helping — a large part of why Fig. 5's
	// gap is widest at small payloads.
	if p == PathStaged && window > 24 {
		window = 24
	}
	if window > 1 {
		// Pipelining hides latency but not occupancy: the wire term
		// stays, a share of the fixed costs overlaps.
		fixed := t - float64(bytes)/n.wireRate(p)
		t = fixed/float64(window) + float64(bytes)/n.wireRate(p)
	}
	return float64(bytes) / t
}

// wireRate returns the asymptotic byte rate of a path.
func (n *Network) wireRate(p Path) float64 {
	m := &n.M
	switch p {
	case PathLocal:
		return 50e9
	case PathHostHost:
		return m.NICBandwidth
	case PathGDR:
		return m.NICBandwidth
	case PathStaged:
		// Serialized stages: harmonic combination of wire and bounce.
		return 1 / (1/m.NICBandwidth + 1/m.StagingBandwidth)
	case PathTwoSided:
		return m.NICBandwidth * 0.95
	case PathMPIGet:
		return m.NICBandwidth * 0.985
	default:
		return 1
	}
}
