package server

import (
	"errors"
	"sync"
	"time"

	"sympack/internal/core"
	"sympack/internal/machine"
	"sympack/internal/metrics"
)

// Breaker states, mirrored into the sympack_server_breaker_state gauge.
const (
	brkClosed   = 0
	brkOpen     = 1
	brkHalfOpen = 2
)

// breaker is the circuit breaker over the GPU-enabled execution path.
// Repeated ErrDeviceFailed/ErrStalled results trip it open; while open,
// factorizations are routed CPU-only (GPUsPerNode=0) — degraded throughput
// instead of degraded availability. After a cooldown, one half-open probe
// runs with GPUs again: success closes the breaker, another breaker-class
// failure re-opens it for a fresh cooldown.
type breaker struct {
	mu        sync.Mutex
	state     int
	fails     int // consecutive breaker-class failures while closed
	threshold int
	cooldown  time.Duration
	openedAt  time.Time // wall facade; pacing only
	probing   bool      // a half-open probe is in flight

	met *metrics.ServerMetrics
}

func newBreaker(threshold int, cooldown time.Duration, met *metrics.ServerMetrics) *breaker {
	return &breaker{state: brkClosed, threshold: threshold, cooldown: cooldown, met: met}
}

// acquire decides the execution route for one factorization: useGPU is
// whether the request may touch devices, probe marks it as the single
// half-open canary whose outcome resolves the breaker. The caller must
// report every acquire through result.
func (b *breaker) acquire() (useGPU, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return true, false
	case brkOpen:
		if !b.probing && machine.WallSince(b.openedAt) >= b.cooldown {
			b.state = brkHalfOpen
			b.probing = true
			b.met.BreakerState.Set(brkHalfOpen)
			return true, true
		}
		return false, false
	default: // half-open: the probe is already out; stay CPU-only
		return false, false
	}
}

// breakerClass reports whether err is one of the failure classes the
// breaker counts (device death, scheduling stall). Transient faults,
// cancellations and client errors never move the breaker.
func breakerClass(err error) bool {
	return err != nil &&
		(errors.Is(err, core.ErrDeviceFailed) || errors.Is(err, core.ErrStalled))
}

// result reports the outcome of an acquired route.
func (b *breaker) result(err error, probe bool) {
	bad := breakerClass(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if bad {
			// The canary died: back to open for a fresh cooldown.
			b.state = brkOpen
			b.openedAt = machine.WallNow()
			b.met.BreakerState.Set(brkOpen)
			return
		}
		// Success — or a failure the breaker does not count (a canceled
		// probe says nothing about device health, but holding the breaker
		// open on it would wedge a healthy fleet). Close and reset.
		b.state = brkClosed
		b.fails = 0
		b.met.BreakerState.Set(brkClosed)
		return
	}
	if !bad {
		if err == nil && b.state == brkClosed {
			b.fails = 0
		}
		return
	}
	if b.state != brkClosed {
		return // already open; CPU-routed failures don't re-trip
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = brkOpen
		b.openedAt = machine.WallNow()
		b.met.BreakerTrips.Inc()
		b.met.BreakerState.Set(brkOpen)
	}
}

// snapshot returns the current state for health reports.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// stateName renders a breaker state for JSON health bodies.
func stateName(s int) string {
	switch s {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
