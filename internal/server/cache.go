package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/symbolic"
)

// patternHash fingerprints the sparsity structure of a matrix — dimension,
// column pointers and row indices, never values — so analyses are shared
// across same-structure matrices (the PEXSI reuse pattern of paper §5.3).
// The hex-truncated digest doubles as the client-visible pattern id.
func patternHash(a *matrix.SparseSym) string {
	h := sha256.New()
	var dim [8]byte
	binary.LittleEndian.PutUint64(dim[:], uint64(a.N))
	h.Write(dim[:])
	h.Write(int32Bytes(a.ColPtr))
	h.Write(int32Bytes(a.RowInd))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// valueHash fingerprints the numeric values. A Factor is keyed by
// pattern+values: two matrices with the same structure but different
// entries must never share a cached factor.
func valueHash(a *matrix.SparseSym) string {
	h := sha256.New()
	buf := make([]byte, 8*len(a.Val))
	for i, v := range a.Val {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func int32Bytes(s []int32) []byte {
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// analysis is the cached symbolic phase: the structure plus the permuted
// matrix it was computed for is everything FactorizeAnalyzed needs.
type analysis struct {
	st *symbolic.Structure
	pa *matrix.SparseSym
}

// analysisBytes estimates the retained size of a cached analysis. It is a
// budget estimate, not an accounting guarantee: the dominant arrays (row
// index lists, block tables, the permuted matrix) are counted, fixed
// per-object overheads are not.
func analysisBytes(st *symbolic.Structure, pa *matrix.SparseSym) int64 {
	b := int64(st.NnzL) * 4 // supernode row lists are int32
	b += int64(len(st.Blocks)) * 32
	b += int64(st.N) * 12 // perm, iperm, snof
	b += int64(len(pa.ColPtr))*4 + int64(len(pa.RowInd))*4 + int64(len(pa.Val))*8
	return b
}

// factorBytes estimates the retained size of a cached Factor: the dense
// block storage dominates everything else.
func factorBytes(data [][]float64) int64 {
	var b int64
	for _, blk := range data {
		b += int64(len(blk)) * 8
	}
	return b
}

// entry is one cached object. pins counts in-flight requests holding it;
// elem is its LRU slot, nil once the entry has been evicted. Eviction only
// detaches the entry from the cache's index — holders keep using the
// object through their own pointer and the garbage collector reclaims it
// when the last pin drops, so an eviction can never invalidate a request
// that is mid-solve on the factor.
type entry struct {
	key  string
	size int64
	val  any
	pins int
	elem *list.Element
}

// lruCache is the byte-budgeted LRU over Analysis and Factor objects,
// keyed by pattern (and, for factors, value) hash. All state is guarded by
// mu; the stored objects themselves are immutable after insertion.
type lruCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *entry
	items  map[string]*entry
	met    *metrics.ServerMetrics
}

func newCache(budget int64, met *metrics.ServerMetrics) *lruCache {
	return &lruCache{budget: budget, ll: list.New(), items: map[string]*entry{}, met: met}
}

// get returns the cached object under key, pinned. The returned release
// function must be called exactly once when the request is done with the
// object. ok is false on a miss (and release is nil).
func (c *lruCache) get(key string) (val any, release func(), ok bool) {
	c.mu.Lock()
	e := c.items[key]
	if e == nil {
		c.mu.Unlock()
		c.met.CacheMisses.Inc()
		return nil, nil, false
	}
	c.pinLocked(e)
	if e.elem != nil {
		c.ll.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	c.met.CacheHits.Inc()
	return e.val, c.releaseFn(e), true
}

// put inserts (or re-pins an already-present) object and returns it pinned.
// Insertion may evict least-recently-used entries to honor the byte budget;
// see entry for why eviction is safe against concurrent holders.
func (c *lruCache) put(key string, val any, size int64) (stored any, release func()) {
	c.mu.Lock()
	if e := c.items[key]; e != nil {
		// Two requests raced on the same miss; keep the first object so
		// every holder shares one copy.
		c.pinLocked(e)
		if e.elem != nil {
			c.ll.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		return e.val, c.releaseFn(e)
	}
	e := &entry{key: key, size: size, val: val}
	e.elem = c.ll.PushFront(e)
	c.items[key] = e
	c.bytes += size
	c.pinLocked(e)
	c.evictLocked()
	c.publishLocked()
	c.mu.Unlock()
	return val, c.releaseFn(e)
}

// thrash force-evicts the given keys — the CacheThrash chaos hook — and
// reports how many were present.
func (c *lruCache) thrash(keys ...string) int {
	c.mu.Lock()
	n := 0
	for _, k := range keys {
		if e := c.items[k]; e != nil {
			c.dropLocked(e)
			n++
		}
	}
	c.publishLocked()
	c.mu.Unlock()
	return n
}

// pinLocked takes one pin on e (mu held).
func (c *lruCache) pinLocked(e *entry) {
	e.pins++
	c.met.CachePinned.Add(1)
}

// releaseFn builds the idempotence-unchecked unpin closure for e.
func (c *lruCache) releaseFn(e *entry) func() {
	return func() {
		c.mu.Lock()
		e.pins--
		c.mu.Unlock()
		c.met.CachePinned.Add(-1)
	}
}

// evictLocked drops LRU entries until the budget holds. Pinned entries are
// skipped — they are in active use and would be re-fetched immediately —
// unless every remaining entry is pinned, in which case the cache simply
// runs over budget until pins drop (the budget is advisory, correctness
// is not).
func (c *lruCache) evictLocked() {
	for c.bytes > c.budget {
		var victim *entry
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.dropLocked(victim)
	}
}

// dropLocked detaches e from the index and LRU list (mu held).
func (c *lruCache) dropLocked(e *entry) {
	if e.elem != nil {
		c.ll.Remove(e.elem)
		e.elem = nil
	}
	delete(c.items, e.key)
	c.bytes -= e.size
	c.met.CacheEvictions.Inc()
}

// publishLocked refreshes the occupancy gauges (mu held).
func (c *lruCache) publishLocked() {
	c.met.CacheBytes.Set(float64(c.bytes))
	c.met.CacheEntries.Set(float64(len(c.items)))
}

// stats returns the current occupancy for health reports.
func (c *lruCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, len(c.items)
}
