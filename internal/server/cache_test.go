package server

import (
	"testing"

	"sympack/internal/gen"
	"sympack/internal/metrics"
)

func testCache(budget int64) *lruCache {
	return newCache(budget, metrics.NewServerMetrics(metrics.NewRegistry()))
}

func TestCacheHitMissAndBudgetEviction(t *testing.T) {
	c := testCache(100)
	if _, _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	_, relA := c.put("a", "A", 40)
	relA()
	_, relB := c.put("b", "B", 40)
	relB()
	if v, rel, ok := c.get("a"); !ok || v.(string) != "A" {
		t.Fatalf("get a = %v, %v", v, ok)
	} else {
		rel()
	}
	// 40+40+40 > 100: the LRU entry must go. "b" is least recent ("a" was
	// just touched), so it is the victim.
	_, relC := c.put("c", "C", 40)
	relC()
	if _, _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		v, rel, ok := c.get(k)
		if !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
		_ = v
		rel()
	}
	if bytes, entries := c.stats(); bytes != 80 || entries != 2 {
		t.Fatalf("stats = %d bytes, %d entries; want 80, 2", bytes, entries)
	}
}

func TestCacheEvictionSkipsPinnedEntries(t *testing.T) {
	c := testCache(100)
	_, relA := c.put("a", "A", 60) // stays pinned
	_, relB := c.put("b", "B", 30)
	relB()
	// Over budget: "a" is older but pinned, so "b" must be the victim and
	// the cache may run over budget only if everything is pinned.
	_, relC := c.put("c", "C", 60)
	relC()
	if _, _, ok := c.get("b"); ok {
		t.Fatal("unpinned b survived while pinned a was evictable")
	}
	if v, rel, ok := c.get("a"); !ok || v.(string) != "A" {
		t.Fatal("pinned entry was evicted from the index")
	} else {
		rel()
	}
	relA()
}

func TestCacheEvictedEntryStaysUsableByHolder(t *testing.T) {
	c := testCache(100)
	v, rel := c.put("a", []float64{1, 2, 3}, 50)
	// Force-evict while the holder is mid-flight.
	if n := c.thrash("a"); n != 1 {
		t.Fatalf("thrash evicted %d entries, want 1", n)
	}
	if _, _, ok := c.get("a"); ok {
		t.Fatal("thrashed entry still indexed")
	}
	// The holder's pointer is untouched by the eviction.
	if got := v.([]float64)[2]; got != 3 {
		t.Fatalf("evicted value corrupted: %v", got)
	}
	rel() // releasing an evicted entry must be safe
	// And re-inserting under the same key works.
	v2, rel2 := c.put("a", []float64{9}, 10)
	if v2.([]float64)[0] != 9 {
		t.Fatal("re-insert after thrash returned stale object")
	}
	rel2()
}

func TestCachePutRaceKeepsFirstObject(t *testing.T) {
	c := testCache(1000)
	first, rel1 := c.put("k", "first", 10)
	second, rel2 := c.put("k", "second", 10)
	if first.(string) != "first" || second.(string) != "first" {
		t.Fatalf("racing puts returned %v / %v; want both to share the first object", first, second)
	}
	if bytes, entries := c.stats(); entries != 1 || bytes != 10 {
		t.Fatalf("stats after racing puts = %d bytes, %d entries", bytes, entries)
	}
	rel1()
	rel2()
}

func TestPatternAndValueHashes(t *testing.T) {
	a := gen.Laplace2D(5, 5)
	b := gen.Laplace2D(5, 5)
	if patternHash(a) != patternHash(b) {
		t.Fatal("identical matrices hash to different patterns")
	}
	if valueHash(a) != valueHash(b) {
		t.Fatal("identical matrices hash to different values")
	}
	c := a.Clone()
	c.Val[0] *= 2
	if patternHash(a) != patternHash(c) {
		t.Fatal("value change altered the pattern hash")
	}
	if valueHash(a) == valueHash(c) {
		t.Fatal("value change did not alter the value hash")
	}
	d := gen.Laplace2D(5, 6)
	if patternHash(a) == patternHash(d) {
		t.Fatal("different structures share a pattern hash")
	}
}
