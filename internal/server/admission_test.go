package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sympack/internal/metrics"
)

func testAdmission(capacity, queue int) *admission {
	return newAdmission(capacity, queue, metrics.NewServerMetrics(metrics.NewRegistry()))
}

func TestAdmissionCapacityAndShed(t *testing.T) {
	a := testAdmission(2, 1)
	ctx := context.Background()
	if err := a.enter(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.enter(ctx); err != nil {
		t.Fatal(err)
	}
	// Both slots held: the third caller queues; the fourth is shed.
	third := make(chan error, 1)
	go func() { third <- a.enter(ctx) }()
	waitFor(t, func() bool { _, q := a.occupancy(); return q == 1 })
	if err := a.enter(ctx); !errors.Is(err, errShed) {
		t.Fatalf("4th enter = %v, want errShed", err)
	}
	if !a.saturated() {
		t.Fatal("queue full but not saturated")
	}
	// Leaving transfers the slot to the queued waiter, not to new arrivals.
	a.leave()
	if err := <-third; err != nil {
		t.Fatalf("queued waiter got %v", err)
	}
	if inflight, queued := a.occupancy(); inflight != 2 || queued != 0 {
		t.Fatalf("occupancy = %d/%d, want 2/0", inflight, queued)
	}
	a.leave()
	a.leave()
	if inflight, _ := a.occupancy(); inflight != 0 {
		t.Fatalf("inflight = %d after all leaves", inflight)
	}
}

func TestAdmissionQueuedWaiterCancel(t *testing.T) {
	a := testAdmission(1, 4)
	if err := a.enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- a.enter(ctx) }()
	waitFor(t, func() bool { _, q := a.occupancy(); return q == 1 })
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	if _, queued := a.occupancy(); queued != 0 {
		t.Fatal("canceled waiter still queued")
	}
	// The held slot is unaffected and still transfers cleanly.
	ok := make(chan error, 1)
	go func() { ok <- a.enter(context.Background()) }()
	waitFor(t, func() bool { _, q := a.occupancy(); return q == 1 })
	a.leave()
	if err := <-ok; err != nil {
		t.Fatal(err)
	}
	a.leave()
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := testAdmission(1, 8)
	if err := a.enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.enter(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.leave()
		}()
		// Serialize arrival so queue order is 0,1,2.
		waitFor(t, func() bool { _, q := a.occupancy(); return q == i+1 })
	}
	a.leave()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("admission order = %v, want [0 1 2]", order)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	a := testAdmission(2, 2)
	ring := &latencyRing{}
	// Cold ring: the 1s default still yields a sane clamped header.
	if got := retryAfterSeconds(ring, a); got < 1 || got > 60 {
		t.Fatalf("cold retry-after = %d, want within [1,60]", got)
	}
	for i := 0; i < 300; i++ {
		ring.observe(0.001)
	}
	if got := retryAfterSeconds(ring, a); got != 1 {
		t.Fatalf("fast-service retry-after = %d, want clamp to 1", got)
	}
	for i := 0; i < 300; i++ {
		ring.observe(500.0)
	}
	if got := retryAfterSeconds(ring, a); got != 60 {
		t.Fatalf("slow-service retry-after = %d, want clamp to 60", got)
	}
}

func TestLatencyRingP99(t *testing.T) {
	r := &latencyRing{}
	if got := r.p99(2.5); got != 2.5 {
		t.Fatalf("empty ring p99 = %g, want the default", got)
	}
	// 50 fast samples + 1 outlier: index ⌊51·99/100⌋ = 50 is the outlier.
	for i := 0; i < 50; i++ {
		r.observe(0.01)
	}
	r.observe(9.0)
	if got := r.p99(0); got != 9.0 {
		t.Fatalf("p99 = %g, want the tail observation 9.0", got)
	}
}

// waitFor polls cond with a bounded budget; these tests only wait on
// scheduler progress, never on wall-clock-dependent behavior.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
