package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sympack/internal/core"
	"sympack/internal/metrics"
)

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *metrics.ServerMetrics) {
	met := metrics.NewServerMetrics(metrics.NewRegistry())
	return newBreaker(threshold, cooldown, met), met
}

func devFail() error { return fmt.Errorf("boom: %w", core.ErrDeviceFailed) }

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, met := testBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		useGPU, probe := b.acquire()
		if !useGPU || probe {
			t.Fatalf("closed breaker acquire = (%v, %v)", useGPU, probe)
		}
		b.result(devFail(), probe)
	}
	// A success in between resets the streak.
	_, probe := b.acquire()
	b.result(nil, probe)
	for i := 0; i < 2; i++ {
		_, probe := b.acquire()
		b.result(devFail(), probe)
	}
	if b.snapshot() != brkClosed {
		t.Fatal("breaker tripped before the threshold of consecutive failures")
	}
	_, probe = b.acquire()
	b.result(devFail(), probe)
	if b.snapshot() != brkOpen {
		t.Fatal("breaker not open after 3 consecutive device failures")
	}
	if got := met.BreakerTrips.Value(); got != 1 {
		t.Fatalf("trips = %g, want 1", got)
	}
	// While open (cooldown not elapsed): CPU-only routing.
	if useGPU, probe := b.acquire(); useGPU || probe {
		t.Fatalf("open breaker acquire = (%v, %v), want CPU-only", useGPU, probe)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, _ := testBreaker(1, time.Millisecond)
	_, probe := b.acquire()
	b.result(devFail(), probe)
	if b.snapshot() != brkOpen {
		t.Fatal("threshold-1 breaker did not trip")
	}
	time.Sleep(3 * time.Millisecond)
	// Cooldown elapsed: exactly one probe goes out with GPUs enabled,
	// concurrent traffic stays CPU-only.
	useGPU, probe := b.acquire()
	if !useGPU || !probe {
		t.Fatalf("post-cooldown acquire = (%v, %v), want GPU probe", useGPU, probe)
	}
	if useGPU2, probe2 := b.acquire(); useGPU2 || probe2 {
		t.Fatalf("second acquire during probe = (%v, %v), want CPU-only", useGPU2, probe2)
	}
	b.result(nil, probe)
	if b.snapshot() != brkClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if useGPU, _ := b.acquire(); !useGPU {
		t.Fatal("closed breaker routes CPU-only")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, _ := testBreaker(1, time.Millisecond)
	_, probe := b.acquire()
	b.result(fmt.Errorf("wedged: %w", core.ErrStalled), probe)
	time.Sleep(3 * time.Millisecond)
	_, probe = b.acquire()
	if !probe {
		t.Fatal("expected a half-open probe")
	}
	b.result(devFail(), probe)
	if b.snapshot() != brkOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// A fresh cooldown applies: immediately after, still CPU-only.
	if useGPU, probe := b.acquire(); useGPU || probe {
		t.Fatalf("acquire right after failed probe = (%v, %v)", useGPU, probe)
	}
}

func TestBreakerIgnoresNonBreakerErrors(t *testing.T) {
	b, _ := testBreaker(1, time.Hour)
	for i := 0; i < 5; i++ {
		_, probe := b.acquire()
		b.result(fmt.Errorf("deadline: %w", core.ErrCanceled), probe)
		_, probe = b.acquire()
		b.result(errors.New("not positive definite"), probe)
	}
	if b.snapshot() != brkClosed {
		t.Fatal("non-breaker errors moved the breaker")
	}
}
