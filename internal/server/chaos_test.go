package server

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"sympack/internal/core"
	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/matrix"
)

// chaosSeeds mirrors the core chaos suite's seed set: a fixed trio for CI
// plus an optional extra from CHAOS_EXTRA_SEED for soak runs.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("CHAOS_EXTRA_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_EXTRA_SEED=%q: %v", s, err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// serverStorm returns an aggressive all-server-classes plan: rates high
// enough that a dozen requests exercise every class, with a stall window
// long enough that injected cancellations land while the engine is
// actually running.
func serverStorm(seed int64) *faults.Plan {
	p := faults.ServerChaos(seed)
	p.Rate[faults.SlowClient] = 0.3
	p.Rate[faults.CanceledRequest] = 0.3
	p.Rate[faults.CacheThrash] = 0.3
	p.StallWindow = 2 * time.Millisecond
	return &p
}

// TestServerChaosGrid drives the full request pipeline under every server
// fault class at ranks {1,4} × the chaos seed set. The invariants:
//
//   - every response stays inside the documented status vocabulary — a
//     chaos storm may shed, cancel or time out requests but never turns
//     them into unexpected 5xx or panics;
//   - after the storm, every matrix factors and solves cleanly with a
//     small residual: an injected mid-flight cancellation never poisons a
//     cached Factor (the acceptance pin).
//
// Requests run sequentially, so the injector's per-request decision
// stream — and therefore the whole grid cell — is deterministic in the
// seed.
func TestServerChaosGrid(t *testing.T) {
	mats := []*matrix.SparseSym{
		gen.Laplace2D(6, 6),
		gen.Laplace2D(7, 5),
		gen.Laplace3D(4, 3, 3),
	}
	rhsFor := func(a *matrix.SparseSym) []float64 {
		b := make([]float64, a.N)
		for i := range b {
			b[i] = float64(i%5) + 1
		}
		return b
	}
	allowed := map[int]bool{
		http.StatusOK:              true,
		http.StatusTooManyRequests: true,
		StatusClientClosedRequest:  true,
		http.StatusGatewayTimeout:  true,
		http.StatusNotFound:        true, // solve raced a thrash or a canceled factor
	}

	for _, ranks := range []int{1, 4} {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("r%d_seed%d", ranks, seed), func(t *testing.T) {
				solverChaos := faults.DefaultChaos(seed)
				s := startServer(t, Config{
					InflightCap: 2,
					QueueCap:    2,
					Chaos:       serverStorm(seed),
					SolverChaos: &solverChaos,
					Solver:      core.Options{Ranks: ranks, Workers: 2},
				})

				// The storm: factor+solve every matrix a few times over.
				factorIDs := map[string]string{}
				for round := 0; round < 2; round++ {
					for mi, a := range mats {
						var fr FactorResponse
						code, _ := post(t, s.Addr(), "/v1/factor",
							FactorRequest{Matrix: wire(a)}, &fr)
						if !allowed[code] {
							t.Fatalf("round %d matrix %d: factor status %d outside the vocabulary", round, mi, code)
						}
						if code == http.StatusOK {
							factorIDs[fr.Factor] = fr.Factor
							var sr SolveResponse
							scode, _ := post(t, s.Addr(), "/v1/solve",
								SolveRequest{Factor: fr.Factor, B: rhsFor(a)}, &sr)
							if !allowed[scode] {
								t.Fatalf("round %d matrix %d: solve status %d outside the vocabulary", round, mi, scode)
							}
							if scode == http.StatusOK {
								if res := core.ResidualNorm(a, sr.X, rhsFor(a)); res > 1e-10 {
									t.Fatalf("round %d matrix %d: storm residual %g", round, mi, res)
								}
							}
						}
					}
				}

				// The pin: after (and still under) chaos, every matrix is
				// recoverable — the injected cancellations left no corrupt
				// Factor behind. Retry a few times because chaos may cancel
				// the recovery attempts themselves.
				for mi, a := range mats {
					var lastCode int
					recovered := false
					for attempt := 0; attempt < 8 && !recovered; attempt++ {
						var fr FactorResponse
						lastCode, _ = post(t, s.Addr(), "/v1/factor",
							FactorRequest{Matrix: wire(a)}, &fr)
						if lastCode != http.StatusOK {
							continue
						}
						var sr SolveResponse
						lastCode, _ = post(t, s.Addr(), "/v1/solve",
							SolveRequest{Factor: fr.Factor, B: rhsFor(a)}, &sr)
						if lastCode != http.StatusOK {
							continue
						}
						if res := core.ResidualNorm(a, sr.X, rhsFor(a)); res > 1e-10 {
							t.Fatalf("matrix %d: recovery residual %g — cached Factor poisoned", mi, res)
						}
						recovered = true
					}
					if !recovered {
						t.Fatalf("matrix %d never recovered under chaos (last status %d)", mi, lastCode)
					}
				}
			})
		}
	}
}

// TestServerChaosInjectionDeterminism replays one grid cell twice and
// requires identical per-class injection tallies — the property that makes
// chaos failures reproducible from their seed.
func TestServerChaosInjectionDeterminism(t *testing.T) {
	run := func() [faults.NumClasses]int64 {
		s := startServer(t, Config{Chaos: serverStorm(7)})
		a := gen.Laplace2D(6, 6)
		for i := 0; i < 10; i++ {
			m := a.Clone()
			m.Val[0] += float64(i) // distinct factor keys
			post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(m)}, nil)
		}
		return s.inj.Injected()
	}
	c1, c2 := run(), run()
	if c1 != c2 {
		t.Fatalf("injection tallies diverged across identical runs:\n%v\n%v", c1, c2)
	}
	var total int64
	for c := faults.Class(0); c < faults.NumClasses; c++ {
		if faults.IsServerClass(c) {
			total += c1[c]
		} else if c1[c] != 0 {
			t.Fatalf("non-server class %v injected %d times by a server-only plan", c, c1[c])
		}
	}
	if total == 0 {
		t.Fatal("storm plan injected nothing across 10 requests")
	}
}
