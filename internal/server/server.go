// Package server implements sympackd's service layer: an HTTP/JSON façade
// over the factorization engine with the robustness envelope a long-lived
// daemon needs and a one-shot CLI does not — per-request deadlines wired
// into the engine's cooperative cancellation, a bounded admission queue
// with load shedding, a circuit breaker that degrades to CPU-only
// execution when devices look unhealthy, a byte-budgeted LRU cache of
// Analysis and Factor objects keyed by sparsity-pattern hash, and a
// graceful drain path for rolling restarts.
//
// The request pipeline is admission → chaos hooks → cache → breaker →
// engine; every stage is observable through the sympack_server_* metric
// namespace and every failure maps onto a small, documented status
// vocabulary (429 shed, 499 client-canceled, 504 deadline, 422 not SPD,
// 503 draining, 500 engine failure).
package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sympack/internal/core"
	"sympack/internal/faults"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a serving default.
type Config struct {
	// InflightCap bounds concurrently executing requests (default 4).
	InflightCap int
	// QueueCap bounds requests waiting for a slot beyond InflightCap;
	// arrivals past it are shed with 429 (default 2×InflightCap).
	QueueCap int
	// CacheBudget bounds the Analysis/Factor cache in bytes
	// (default 256 MiB).
	CacheBudget int64
	// DefaultDeadline bounds requests that specify none (0 = unbounded).
	DefaultDeadline time.Duration
	// BreakerThreshold is the consecutive device/stall failure count that
	// trips the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before the
	// half-open probe (default 5s).
	BreakerCooldown time.Duration
	// Solver is the baseline engine configuration (ranks, workers, GPUs,
	// ordering...). Per-request fields may override parts of it; Context
	// and Faults are always owned by the server.
	Solver core.Options
	// Chaos, when active, injects the server fault classes (slow clients,
	// mid-flight cancellations, cache thrashing) keyed by request
	// sequence number.
	Chaos *faults.Plan
	// SolverChaos, when active, is forwarded to every factorization as
	// its fault plan, composing runtime chaos under the service envelope.
	SolverChaos *faults.Plan
	// Registry receives the server metrics; a fresh registry is created
	// when nil.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.InflightCap <= 0 {
		c.InflightCap = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.InflightCap
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = 256 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Server is the daemon state. Create with New, serve with Start (or mount
// Handler on your own listener), stop with Shutdown.
type Server struct {
	cfg   Config
	met   *metrics.ServerMetrics
	adm   *admission
	brk   *breaker
	cache *lruCache
	inj   *faults.Injector // server-class chaos; nil when inactive
	ring  *latencyRing

	seq      atomic.Int64 // request sequence number, the chaos actor
	draining atomic.Bool
	wg       sync.WaitGroup // in-flight request handlers

	mux *http.ServeMux
	hs  *http.Server
	lis net.Listener

	// factorFn is the engine seam; tests substitute failures and delays
	// without building matrices that actually break devices.
	factorFn func(st *symbolic.Structure, pa *matrix.SparseSym, opt core.Options) (*core.Factor, error)
	// analyzeFn is the symbolic seam.
	analyzeFn func(a *matrix.SparseSym, opt core.Options) (*symbolic.Structure, *matrix.SparseSym, error)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := metrics.NewServerMetrics(cfg.Registry)
	s := &Server{
		cfg:   cfg,
		met:   met,
		adm:   newAdmission(cfg.InflightCap, cfg.QueueCap, met),
		brk:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, met),
		cache: newCache(cfg.CacheBudget, met),
		ring:  &latencyRing{},
		factorFn: func(st *symbolic.Structure, pa *matrix.SparseSym, opt core.Options) (*core.Factor, error) {
			return core.FactorizeAnalyzed(st, pa, opt)
		},
		analyzeFn: func(a *matrix.SparseSym, opt core.Options) (*symbolic.Structure, *matrix.SparseSym, error) {
			ord := opt.Ordering
			if ord == 0 {
				ord = ordering.NestedDissection
			}
			sopt := symbolic.DefaultOptions()
			if opt.Symbolic != nil {
				sopt = *opt.Symbolic
			}
			return symbolic.Analyze(a, ord, sopt)
		},
	}
	if cfg.Chaos != nil && cfg.Chaos.Active() {
		// Actor streams fold modulo the count, so 1024 gives distinct
		// per-request decision streams for any realistic burst.
		s.inj = faults.New(*cfg.Chaos, 1024)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.wrap("analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/factor", s.wrap("factor", s.handleFactor))
	s.mux.HandleFunc("POST /v1/solve", s.wrap("solve", s.handleSolve))
	s.mux.HandleFunc("POST /v1/solvebatch", s.wrap("solvebatch", s.handleSolveBatch))
	s.mux.HandleFunc("POST /v1/solvecg", s.wrap("solvecg", s.handleSolveCG))
	s.mux.HandleFunc("GET /healthz", metrics.HealthHandler(s.health))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metric registry the server publishes into.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// Start listens on addr ("host:0" binds an ephemeral port) and serves in
// the background until Shutdown.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.hs = &http.Server{Handler: s.mux}
	go func() { _ = s.hs.Serve(lis) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Shutdown drains the server: new requests are refused with 503, in-flight
// requests run to completion (bounded by ctx), and the listener closes.
// Safe to call without Start (it just marks the handler draining).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.met.Draining.Set(1)
	// Wait for admitted requests even when serving through Handler() on
	// an external listener Shutdown cannot see.
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.hs != nil {
		return s.hs.Shutdown(ctx)
	}
	return nil
}

// Health is the /healthz body: the readiness verdict plus the state that
// produced it.
type Health struct {
	OK           bool   `json:"ok"`
	Draining     bool   `json:"draining"`
	Breaker      string `json:"breaker"`
	Inflight     int    `json:"inflight"`
	InflightCap  int    `json:"inflight_cap"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	CacheBytes   int64  `json:"cache_bytes"`
	CacheEntries int    `json:"cache_entries"`
}

// health adapts HealthCheck to the metrics.HealthHandler signature.
func (s *Server) health() (any, bool) {
	h, ok := s.HealthCheck()
	return h, ok
}

// HealthCheck produces the /healthz payload and readiness verdict — also
// the hook a sidecar metrics listener mounts. Not ready means: draining,
// breaker open (devices unhealthy, capacity degraded), or admission queue
// saturated (the next arrival would be shed) — the states where a load
// balancer should route elsewhere.
func (s *Server) HealthCheck() (Health, bool) {
	brk := s.brk.snapshot()
	inflight, queued := s.adm.occupancy()
	bytes, entries := s.cache.stats()
	h := Health{
		Draining:     s.draining.Load(),
		Breaker:      stateName(brk),
		Inflight:     inflight,
		InflightCap:  s.cfg.InflightCap,
		QueueDepth:   queued,
		QueueCap:     s.cfg.QueueCap,
		CacheBytes:   bytes,
		CacheEntries: entries,
	}
	h.OK = !h.Draining && brk != brkOpen && queued < s.cfg.QueueCap
	return h, h.OK
}
